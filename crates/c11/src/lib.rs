//! # cdsspec-c11
//!
//! Foundation crate for the CDSSpec reproduction: the vocabulary of the
//! C/C++11 memory model as used by the model checker (`cdsspec-mc`) and the
//! specification checker (`cdsspec-core`).
//!
//! This crate is deliberately free of any execution machinery. It defines:
//!
//! * [`ordering::MemOrd`] — the five C/C++11 memory orderings (with
//!   `memory_order_consume` folded into `Acquire`, as every practical
//!   compiler and CDSChecker itself do);
//! * [`value::Val`] and [`value::PrimVal`] — the bit-level value model
//!   (every atomic cell holds a `u64`);
//! * [`event::EventKind`] — the logical description of one trace event
//!   (atomic load/store, RMW, fence, thread lifecycle), with
//!   [`event::EventTag`] as its dense one-byte discriminant;
//! * [`clock::Clock`] — vector clocks extended with per-location coherence
//!   indices, the core of our coherence enforcement;
//! * [`trace::Trace`] — a completed execution stored struct-of-arrays:
//!   events as rows across dense columns, per-location modification
//!   order, SC order, spec annotations, and incrementally maintained
//!   relation indexes;
//! * [`relations`] — derived relations (`hb`, SC order, `mo`), a fast
//!   index-trusting auditor, plus an *independent* post-hoc axiom oracle
//!   used to property-test the model checker.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod loc;
pub mod ordering;
pub mod relations;
pub mod trace;
pub mod value;

pub use clock::{Clock, VecClock};
pub use event::{EventId, EventKind, EventTag, Tid};
pub use loc::{DataId, LocId};
pub use ordering::MemOrd;
pub use trace::{Annotation, SpecNote, SpecVal, Trace};
pub use value::{PrimVal, Val};
