//! # cdsspec-c11
//!
//! Foundation crate for the CDSSpec reproduction: the vocabulary of the
//! C/C++11 memory model as used by the model checker (`cdsspec-mc`) and the
//! specification checker (`cdsspec-core`).
//!
//! This crate is deliberately free of any execution machinery. It defines:
//!
//! * [`ordering::MemOrd`] — the five C/C++11 memory orderings (with
//!   `memory_order_consume` folded into `Acquire`, as every practical
//!   compiler and CDSChecker itself do);
//! * [`value::Val`] and [`value::PrimVal`] — the bit-level value model
//!   (every atomic cell holds a `u64`);
//! * [`event::Event`] — one node of an execution trace (atomic load/store,
//!   RMW, fence, thread lifecycle);
//! * [`clock::Clock`] — vector clocks extended with per-location coherence
//!   indices, the core of our coherence enforcement;
//! * [`trace::Trace`] — a completed execution: events, per-location
//!   modification order, SC order, and spec annotations;
//! * [`relations`] — derived relations (`hb`, SC order, `mo`) plus an
//!   *independent* axiom validator used to property-test the model checker.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod loc;
pub mod ordering;
pub mod relations;
pub mod trace;
pub mod value;

pub use clock::{Clock, VecClock};
pub use event::{Event, EventId, EventKind, Tid};
pub use loc::{DataId, LocId};
pub use ordering::MemOrd;
pub use trace::{Annotation, SpecNote, SpecVal, Trace};
pub use value::{PrimVal, Val};
