//! The C/C++11 memory orderings.
//!
//! `memory_order_consume` is intentionally absent: every practical compiler
//! (and CDSChecker, the substrate of the original paper) strengthens it to
//! `Acquire`, and so do we.

/// A C/C++11 memory ordering parameter.
///
/// Ordered from weakest to strongest so that `Ord` comparisons follow the
/// intuitive strength lattice for the subsets that are totally ordered
/// (`Relaxed < Acquire < AcqRel < SeqCst` and
/// `Relaxed < Release < AcqRel < SeqCst`). `Acquire` and `Release` are
/// incomparable in the model; their derived `Ord` order is arbitrary and
/// must not be used for strength reasoning — use [`MemOrd::at_least`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOrd {
    /// `memory_order_relaxed`: atomicity only, no synchronization.
    Relaxed,
    /// `memory_order_acquire`: a load that reads from a release store (or a
    /// store carrying a release-fence clock) synchronizes with it.
    Acquire,
    /// `memory_order_release`: a store that is read by an acquire load
    /// synchronizes with it.
    Release,
    /// `memory_order_acq_rel`: both of the above (meaningful for RMWs and
    /// fences).
    AcqRel,
    /// `memory_order_seq_cst`: acquire+release plus membership in the single
    /// total order *S* over all SC operations.
    SeqCst,
}

impl MemOrd {
    /// Does this ordering include acquire semantics (for loads, RMW reads,
    /// and fences)?
    #[inline]
    pub fn is_acquire(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    /// Does this ordering include release semantics (for stores, RMW writes,
    /// and fences)?
    #[inline]
    pub fn is_release(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    /// Is this operation part of the SC total order *S*?
    #[inline]
    pub fn is_seq_cst(self) -> bool {
        matches!(self, MemOrd::SeqCst)
    }

    /// `true` when `self` is at least as strong as `other` in the strength
    /// lattice (`AcqRel` ≥ both `Acquire` and `Release`; `Acquire` and
    /// `Release` are incomparable).
    pub fn at_least(self, other: MemOrd) -> bool {
        use MemOrd::*;
        match (self, other) {
            (_, Relaxed) => true,
            (SeqCst, _) => true,
            (AcqRel, SeqCst) => false,
            (AcqRel, _) => true,
            (Acquire, Acquire) | (Release, Release) => true,
            _ => false,
        }
    }

    /// The next-weaker ordering for a *load*, following the paper's §6.4.2
    /// injection ladder (`seq_cst → acquire → relaxed`). Returns `None`
    /// when already `Relaxed` (nothing to weaken).
    pub fn weaken_load(self) -> Option<MemOrd> {
        match self {
            MemOrd::SeqCst | MemOrd::AcqRel => Some(MemOrd::Acquire),
            MemOrd::Acquire | MemOrd::Release => Some(MemOrd::Relaxed),
            MemOrd::Relaxed => None,
        }
    }

    /// The next-weaker ordering for a *store*
    /// (`seq_cst → release → relaxed`).
    pub fn weaken_store(self) -> Option<MemOrd> {
        match self {
            MemOrd::SeqCst | MemOrd::AcqRel => Some(MemOrd::Release),
            MemOrd::Release | MemOrd::Acquire => Some(MemOrd::Relaxed),
            MemOrd::Relaxed => None,
        }
    }

    /// The next-weaker ordering for an *RMW or fence*
    /// (`seq_cst → acq_rel → release → relaxed`, the paper's
    /// "acq_rel to release/acquire" step instantiated with `release`; the
    /// `acquire` twin is available as a distinct injection site via
    /// [`MemOrd::weaken_rmw_acq`]).
    pub fn weaken_rmw(self) -> Option<MemOrd> {
        match self {
            MemOrd::SeqCst => Some(MemOrd::AcqRel),
            MemOrd::AcqRel => Some(MemOrd::Release),
            MemOrd::Release | MemOrd::Acquire => Some(MemOrd::Relaxed),
            MemOrd::Relaxed => None,
        }
    }

    /// Like [`MemOrd::weaken_rmw`] but steps `acq_rel → acquire`.
    pub fn weaken_rmw_acq(self) -> Option<MemOrd> {
        match self {
            MemOrd::SeqCst => Some(MemOrd::AcqRel),
            MemOrd::AcqRel => Some(MemOrd::Acquire),
            MemOrd::Release | MemOrd::Acquire => Some(MemOrd::Relaxed),
            MemOrd::Relaxed => None,
        }
    }

    /// Short human-readable name matching the C11 spelling.
    pub fn name(self) -> &'static str {
        match self {
            MemOrd::Relaxed => "relaxed",
            MemOrd::Acquire => "acquire",
            MemOrd::Release => "release",
            MemOrd::AcqRel => "acq_rel",
            MemOrd::SeqCst => "seq_cst",
        }
    }
}

impl std::fmt::Display for MemOrd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::MemOrd::*;

    #[test]
    fn acquire_release_classification() {
        assert!(Acquire.is_acquire() && !Acquire.is_release());
        assert!(Release.is_release() && !Release.is_acquire());
        assert!(AcqRel.is_acquire() && AcqRel.is_release());
        assert!(SeqCst.is_acquire() && SeqCst.is_release() && SeqCst.is_seq_cst());
        assert!(!Relaxed.is_acquire() && !Relaxed.is_release() && !Relaxed.is_seq_cst());
    }

    #[test]
    fn strength_lattice() {
        assert!(SeqCst.at_least(AcqRel) && SeqCst.at_least(Acquire));
        assert!(AcqRel.at_least(Acquire) && AcqRel.at_least(Release));
        assert!(!Acquire.at_least(Release) && !Release.at_least(Acquire));
        assert!(Acquire.at_least(Relaxed) && !Relaxed.at_least(Acquire));
        // reflexivity
        for o in [Relaxed, Acquire, Release, AcqRel, SeqCst] {
            assert!(o.at_least(o));
        }
    }

    #[test]
    fn weakening_ladders_terminate_at_relaxed() {
        let mut o = SeqCst;
        let mut steps = 0;
        while let Some(w) = o.weaken_rmw() {
            o = w;
            steps += 1;
            assert!(steps < 10);
        }
        assert_eq!(o, Relaxed);
        assert_eq!(SeqCst.weaken_load(), Some(Acquire));
        assert_eq!(Acquire.weaken_load(), Some(Relaxed));
        assert_eq!(SeqCst.weaken_store(), Some(Release));
        assert_eq!(Relaxed.weaken_store(), None);
        assert_eq!(AcqRel.weaken_rmw_acq(), Some(Acquire));
    }

    #[test]
    fn weakening_strictly_weakens() {
        for o in [Relaxed, Acquire, Release, AcqRel, SeqCst] {
            for w in [
                o.weaken_load(),
                o.weaken_store(),
                o.weaken_rmw(),
                o.weaken_rmw_acq(),
            ]
            .into_iter()
            .flatten()
            {
                assert!(o.at_least(w) && o != w, "{o} -> {w} must strictly weaken");
            }
        }
    }
}
