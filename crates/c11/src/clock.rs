//! Vector clocks extended with per-location coherence indices.
//!
//! The model checker derives modification order (`mo`) from per-location
//! store execution order. Under that choice the C/C++11 coherence axioms
//! reduce to *lower bounds on the mo index a load may read from*:
//!
//! * **CoWR** ("no hidden store"): a load `R` may not read store `W` if some
//!   store `W'` to the same location with `mo(W) < mo(W')` happens-before
//!   `R`. We track, per location, the maximal mo index of a store that
//!   happens-before the current point: [`Clock::wmax`].
//! * **CoRR** (read coherence): a load `R` may not read `W` if a load `R'`
//!   with `R' hb R` read a store `W'` with `mo(W) < mo(W')`. We track the
//!   maximal mo index *read* so far: [`Clock::rmax`].
//!
//! Both tables are joined pointwise whenever clocks join (program order,
//! synchronizes-with, thread create/join), so the bounds flow along exactly
//! the happens-before edges.

use crate::event::Tid;
use crate::loc::LocId;

/// A plain vector clock: `vc[t]` = number of events of thread `t` known to
/// happen-before (or equal) the current point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecClock {
    counts: Vec<u32>,
}

impl VecClock {
    /// The empty clock (knows nothing).
    pub fn new() -> Self {
        VecClock { counts: Vec::new() }
    }

    /// Number of events of `tid` known at this clock.
    #[inline]
    pub fn get(&self, tid: Tid) -> u32 {
        self.counts.get(tid.idx()).copied().unwrap_or(0)
    }

    /// Record that `tid` has performed `count` events.
    pub fn set(&mut self, tid: Tid, count: u32) {
        if self.counts.len() <= tid.idx() {
            self.counts.resize(tid.idx() + 1, 0);
        }
        self.counts[tid.idx()] = count;
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VecClock) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Does this clock dominate `other` pointwise (`other ⊑ self`)?
    pub fn includes(&self, other: &VecClock) -> bool {
        (0..other.counts.len()).all(|i| other.counts[i] <= self.counts.get(i).copied().unwrap_or(0))
    }

    /// Does this clock know about event number `seq` (1-based) of `tid`?
    #[inline]
    pub fn knows(&self, tid: Tid, seq: u32) -> bool {
        self.get(tid) >= seq
    }
}

/// A per-location table of mo-index lower bounds. Index `loc.idx()`;
/// `None` is encoded as `i64::MIN` so joins are a plain `max`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoherenceMap {
    bounds: Vec<i64>,
}

const NO_BOUND: i64 = i64::MIN;

impl CoherenceMap {
    /// Empty table: no location constrained.
    pub fn new() -> Self {
        CoherenceMap { bounds: Vec::new() }
    }

    /// Current bound for `loc`, or `None` if unconstrained.
    #[inline]
    pub fn get(&self, loc: LocId) -> Option<u32> {
        match self.bounds.get(loc.idx()).copied().unwrap_or(NO_BOUND) {
            NO_BOUND => None,
            b => Some(b as u32),
        }
    }

    /// Raise the bound for `loc` to at least `idx`.
    pub fn raise(&mut self, loc: LocId, idx: u32) {
        if self.bounds.len() <= loc.idx() {
            self.bounds.resize(loc.idx() + 1, NO_BOUND);
        }
        let slot = &mut self.bounds[loc.idx()];
        *slot = (*slot).max(idx as i64);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &CoherenceMap) {
        if self.bounds.len() < other.bounds.len() {
            self.bounds.resize(other.bounds.len(), NO_BOUND);
        }
        for (mine, theirs) in self.bounds.iter_mut().zip(&other.bounds) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// The full clock carried by threads and attached to synchronizing stores:
/// a vector clock plus the two coherence tables described in the module
/// docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    /// Happens-before knowledge.
    pub vc: VecClock,
    /// Per-location max mo index of stores that happen-before here (CoWR).
    pub wmax: CoherenceMap,
    /// Per-location max mo index read by loads that happen-before here
    /// (CoRR).
    pub rmax: CoherenceMap,
}

impl Clock {
    /// The empty clock.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Join every component pointwise.
    pub fn join(&mut self, other: &Clock) {
        self.vc.join(&other.vc);
        self.wmax.join(&other.wmax);
        self.rmax.join(&other.rmax);
    }

    /// The least mo index a load of `loc` holding this clock may read from
    /// (`max(wmax, rmax)`), or `None` if unconstrained.
    pub fn read_floor(&self, loc: LocId) -> Option<u32> {
        match (self.wmax.get(loc), self.rmax.get(loc)) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0).max(b.unwrap_or(0))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Tid {
        Tid(i)
    }

    #[test]
    fn vecclock_join_is_pointwise_max() {
        let mut a = VecClock::new();
        a.set(t(0), 3);
        a.set(t(2), 1);
        let mut b = VecClock::new();
        b.set(t(0), 1);
        b.set(t(1), 5);
        a.join(&b);
        assert_eq!(a.get(t(0)), 3);
        assert_eq!(a.get(t(1)), 5);
        assert_eq!(a.get(t(2)), 1);
        assert_eq!(a.get(t(9)), 0);
    }

    #[test]
    fn vecclock_includes_and_knows() {
        let mut a = VecClock::new();
        a.set(t(0), 2);
        let mut b = VecClock::new();
        b.set(t(0), 1);
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        assert!(a.includes(&a));
        assert!(a.knows(t(0), 2));
        assert!(!a.knows(t(0), 3));
        assert!(!a.knows(t(5), 1));
        // empty clock is included in everything
        assert!(b.includes(&VecClock::new()));
    }

    #[test]
    fn coherence_map_raise_and_join() {
        let l0 = LocId(0);
        let l3 = LocId(3);
        let mut m = CoherenceMap::new();
        assert_eq!(m.get(l0), None);
        m.raise(l3, 2);
        m.raise(l3, 1); // lower raise is a no-op
        assert_eq!(m.get(l3), Some(2));
        assert_eq!(m.get(l0), None);

        let mut n = CoherenceMap::new();
        n.raise(l0, 0);
        n.join(&m);
        assert_eq!(n.get(l0), Some(0));
        assert_eq!(n.get(l3), Some(2));
    }

    #[test]
    fn coherence_index_zero_is_a_real_bound() {
        // Regression guard: mo index 0 must be distinguishable from "no
        // bound" — reading the very first store must still be floor-checked.
        let mut m = CoherenceMap::new();
        m.raise(LocId(1), 0);
        assert_eq!(m.get(LocId(1)), Some(0));
    }

    #[test]
    fn clock_read_floor_combines_tables() {
        let l = LocId(0);
        let mut c = Clock::new();
        assert_eq!(c.read_floor(l), None);
        c.wmax.raise(l, 1);
        assert_eq!(c.read_floor(l), Some(1));
        c.rmax.raise(l, 4);
        assert_eq!(c.read_floor(l), Some(4));
        c.wmax.raise(l, 9);
        assert_eq!(c.read_floor(l), Some(9));
    }

    #[test]
    fn clock_join_joins_all_components() {
        let l = LocId(2);
        let mut a = Clock::new();
        a.vc.set(t(1), 7);
        a.rmax.raise(l, 3);
        let mut b = Clock::new();
        b.wmax.raise(l, 5);
        a.join(&b);
        assert_eq!(a.vc.get(t(1)), 7);
        assert_eq!(a.read_floor(l), Some(5));
    }
}
