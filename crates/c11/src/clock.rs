//! Vector clocks extended with per-location coherence indices.
//!
//! The model checker derives modification order (`mo`) from per-location
//! store execution order. Under that choice the C/C++11 coherence axioms
//! reduce to *lower bounds on the mo index a load may read from*:
//!
//! * **CoWR** ("no hidden store"): a load `R` may not read store `W` if some
//!   store `W'` to the same location with `mo(W) < mo(W')` happens-before
//!   `R`. We track, per location, the maximal mo index of a store that
//!   happens-before the current point: [`Clock::wmax`].
//! * **CoRR** (read coherence): a load `R` may not read `W` if a load `R'`
//!   with `R' hb R` read a store `W'` with `mo(W) < mo(W')`. We track the
//!   maximal mo index *read* so far: [`Clock::rmax`].
//!
//! Both tables are joined pointwise whenever clocks join (program order,
//! synchronizes-with, thread create/join), so the bounds flow along exactly
//! the happens-before edges.
//!
//! # Inline-first, copy-on-write-spill representation
//!
//! Clocks are the allocation hot spot of the checker: every event snapshots
//! its thread's clock, every acquire joins a store's release payload, and a
//! figure-7 exploration takes millions of both. A pure `Arc<Vec<_>>`
//! copy-on-write table keeps *clones* free but makes the write after a
//! snapshot expensive: the thread clock advances at every event, so each
//! event snapshot forces one deep buffer copy — roughly one heap
//! allocation per event. Unit-test workloads never exceed a handful of
//! threads and locations, so both [`VecClock`] and [`CoherenceMap`] store
//! their table inline first and spill to the shared heap form only past
//! `INLINE` entries:
//!
//! * tables with at most `INLINE` entries live in a fixed array inside the
//!   struct: `clone()` is a memcpy, mutation writes in place, and no heap
//!   allocation ever happens — this is the only form the figure-7
//!   workloads reach;
//! * larger tables spill to `Arc<Vec<_>>`: `clone()` is a refcount bump,
//!   mutation goes through [`std::sync::Arc::make_mut`] (copying only
//!   while shared), and `join` short-circuits to a no-op or a pointer
//!   copy when one side already covers the other;
//! * a spilled table never shrinks back to inline — oscillating at the
//!   boundary must not thrash.
//!
//! **Invariants.** The representation is observational: a trailing run of
//! default entries (`0` counts, absent bounds) is indistinguishable from a
//! shorter buffer, and `PartialEq` is defined accordingly. No operation may
//! branch on buffer length, capacity, or inline-vs-heap form, and no caller
//! can observe whether a fast path or the slow pointwise walk produced a
//! result — the `cow_equivalence` proptest suite checks exactly this
//! against the [`naive`] reference implementation.

use std::sync::Arc;

use crate::event::Tid;
use crate::loc::LocId;

/// `b ⊑ a` on raw slices, absent entries reading as `default`.
fn dominates<T: Copy + Ord>(a: &[T], b: &[T], default: T) -> bool {
    b.iter()
        .enumerate()
        .all(|(i, &x)| x <= a.get(i).copied().unwrap_or(default))
}

/// Observational equality on raw slices, absent entries reading as
/// `default` (so `[3]` equals `[3, 0, 0]` for clocks).
fn slices_eq<T: Copy + PartialEq>(a: &[T], b: &[T], default: T) -> bool {
    let n = a.len().max(b.len());
    (0..n).all(|i| a.get(i).copied().unwrap_or(default) == b.get(i).copied().unwrap_or(default))
}

/// Inline capacity of the small-buffer representation (see the module
/// docs): tables indexed past this spill to the shared heap form.
const INLINE: usize = 8;

/// The shared table storage behind [`VecClock`] and [`CoherenceMap`]:
/// inline array first, copy-on-write `Arc<Vec<_>>` on spill.
#[derive(Clone, Debug)]
enum Buf<T> {
    /// `buf[..len]` held by value — clones are memcpys, writes in place.
    Inline {
        /// Entries in use (`<= INLINE`).
        len: u8,
        /// Fixed storage; entries past `len` hold the default.
        buf: [T; INLINE],
    },
    /// Spilled table: shared buffer, copied on write while shared.
    Heap(Arc<Vec<T>>),
}

impl<T: Copy + Ord> Buf<T> {
    fn empty(default: T) -> Self {
        Buf::Inline {
            len: 0,
            buf: [default; INLINE],
        }
    }

    #[inline]
    fn slice(&self) -> &[T] {
        match self {
            Buf::Inline { len, buf } => &buf[..*len as usize],
            Buf::Heap(v) => v,
        }
    }

    /// Store `val` at `idx`, extending with `default`. Callers are
    /// responsible for the observational no-op checks (`set` to the same
    /// value, `raise` to a not-higher bound) *before* calling in.
    fn write(&mut self, idx: usize, val: T, default: T) {
        match self {
            Buf::Inline { len, buf } if idx < INLINE => {
                let l = *len as usize;
                if idx >= l {
                    buf[l..idx].fill(default);
                    *len = (idx + 1) as u8;
                }
                buf[idx] = val;
            }
            Buf::Inline { len, buf } => {
                let mut v: Vec<T> = Vec::with_capacity(idx + 1);
                v.extend_from_slice(&buf[..*len as usize]);
                v.resize(idx + 1, default);
                v[idx] = val;
                *self = Buf::Heap(Arc::new(v));
            }
            Buf::Heap(arc) => {
                let v = Arc::make_mut(arc);
                if v.len() <= idx {
                    v.resize(idx + 1, default);
                }
                v[idx] = val;
            }
        }
    }

    /// Pointwise maximum with `other`. In the inline form this is a plain
    /// 8-wide max loop; in the heap form the copy-on-write fast paths
    /// (identical buffer, either side dominating) avoid the deep copy.
    fn join(&mut self, other: &Buf<T>, default: T) {
        let theirs = other.slice();
        if theirs.is_empty() {
            return;
        }
        match self {
            Buf::Inline { len, buf } if theirs.len() <= INLINE => {
                let l = *len as usize;
                for (i, &t) in theirs.iter().enumerate() {
                    let m = if i < l { buf[i] } else { default };
                    buf[i] = if m >= t { m } else { t };
                }
                *len = (*len).max(theirs.len() as u8);
            }
            Buf::Inline { len, buf } => {
                let mut v: Vec<T> = Vec::with_capacity(theirs.len());
                v.extend_from_slice(theirs);
                for (slot, &m) in v.iter_mut().zip(&buf[..*len as usize]) {
                    if m > *slot {
                        *slot = m;
                    }
                }
                *self = Buf::Heap(Arc::new(v));
            }
            Buf::Heap(mine) => {
                if let Buf::Heap(b) = other {
                    if Arc::ptr_eq(mine, b) {
                        return;
                    }
                }
                if dominates(mine, theirs, default) {
                    return;
                }
                if let (true, Buf::Heap(b)) = (dominates(theirs, mine, default), other) {
                    *mine = Arc::clone(b);
                    return;
                }
                let v = Arc::make_mut(mine);
                if v.len() < theirs.len() {
                    v.resize(theirs.len(), default);
                }
                for (m, &t) in v.iter_mut().zip(theirs) {
                    if t > *m {
                        *m = t;
                    }
                }
            }
        }
    }

    /// `other ⊑ self` pointwise.
    fn includes(&self, other: &Buf<T>, default: T) -> bool {
        if let (Buf::Heap(a), Buf::Heap(b)) = (self, other) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        dominates(self.slice(), other.slice(), default)
    }
}

/// A plain vector clock: `vc[t]` = number of events of thread `t` known to
/// happen-before (or equal) the current point.
///
/// Inline-first: see the module docs. Cloning is a memcpy (inline) or an
/// `Arc` bump (spilled); mutation never allocates while inline.
#[derive(Clone, Debug)]
pub struct VecClock {
    /// Counts table, absent entries implicit.
    counts: Buf<u32>,
}

impl Default for VecClock {
    fn default() -> Self {
        VecClock {
            counts: Buf::empty(0),
        }
    }
}

impl VecClock {
    /// The empty clock (knows nothing). Does not allocate.
    pub fn new() -> Self {
        VecClock::default()
    }

    /// The raw counts, absent entries implicit.
    #[inline]
    fn slice(&self) -> &[u32] {
        self.counts.slice()
    }

    /// Number of events of `tid` known at this clock.
    #[inline]
    pub fn get(&self, tid: Tid) -> u32 {
        self.slice().get(tid.idx()).copied().unwrap_or(0)
    }

    /// Record that `tid` has performed `count` events. A `set` to the
    /// value already held is a no-op (and keeps a spilled buffer shared).
    pub fn set(&mut self, tid: Tid, count: u32) {
        if self.get(tid) == count {
            return;
        }
        self.counts.write(tid.idx(), count, 0);
    }

    /// Raise `tid`'s count to at least `seq`. A raise at or below the
    /// current count is a no-op (and keeps a spilled buffer shared). This
    /// is the stamping primitive for release payloads and thread-lifecycle
    /// clocks, where the thread's own (implicit) component must be made
    /// explicit before the clock is handed to another thread.
    pub fn raise(&mut self, tid: Tid, seq: u32) {
        if self.get(tid) >= seq {
            return;
        }
        self.counts.write(tid.idx(), seq, 0);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VecClock) {
        self.counts.join(&other.counts, 0);
    }

    /// Does this clock dominate `other` pointwise (`other ⊑ self`)?
    pub fn includes(&self, other: &VecClock) -> bool {
        self.counts.includes(&other.counts, 0)
    }

    /// Does this clock know about event number `seq` (1-based) of `tid`?
    #[inline]
    pub fn knows(&self, tid: Tid, seq: u32) -> bool {
        self.get(tid) >= seq
    }
}

impl PartialEq for VecClock {
    fn eq(&self, other: &Self) -> bool {
        slices_eq(self.slice(), other.slice(), 0)
    }
}
impl Eq for VecClock {}

/// A per-location table of mo-index lower bounds. Index `loc.idx()`;
/// `None` is encoded as `i64::MIN` so joins are a plain `max`.
///
/// Inline-first: see the module docs. Cloning is a memcpy (inline) or an
/// `Arc` bump (spilled); mutation never allocates while inline.
#[derive(Clone, Debug)]
pub struct CoherenceMap {
    /// Bounds table, absent entries implicit (`NO_BOUND`).
    bounds: Buf<i64>,
}

const NO_BOUND: i64 = i64::MIN;

impl Default for CoherenceMap {
    fn default() -> Self {
        CoherenceMap {
            bounds: Buf::empty(NO_BOUND),
        }
    }
}

impl CoherenceMap {
    /// Empty table: no location constrained. Does not allocate.
    pub fn new() -> Self {
        CoherenceMap::default()
    }

    /// The raw bounds, absent entries implicit.
    #[inline]
    fn slice(&self) -> &[i64] {
        self.bounds.slice()
    }

    /// Current bound for `loc`, or `None` if unconstrained.
    #[inline]
    pub fn get(&self, loc: LocId) -> Option<u32> {
        match self.slice().get(loc.idx()).copied().unwrap_or(NO_BOUND) {
            NO_BOUND => None,
            b => Some(b as u32),
        }
    }

    /// Raise the bound for `loc` to at least `idx`. A raise at or below
    /// the current bound is a no-op (and keeps a spilled buffer shared).
    pub fn raise(&mut self, loc: LocId, idx: u32) {
        let current = self.slice().get(loc.idx()).copied().unwrap_or(NO_BOUND);
        if current >= idx as i64 {
            return;
        }
        self.bounds.write(loc.idx(), idx as i64, NO_BOUND);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &CoherenceMap) {
        self.bounds.join(&other.bounds, NO_BOUND);
    }

    /// Does this table bound at least as tightly as `other` everywhere?
    pub fn includes(&self, other: &CoherenceMap) -> bool {
        self.bounds.includes(&other.bounds, NO_BOUND)
    }
}

impl PartialEq for CoherenceMap {
    fn eq(&self, other: &Self) -> bool {
        slices_eq(self.slice(), other.slice(), NO_BOUND)
    }
}
impl Eq for CoherenceMap {}

/// The full clock carried by threads and attached to synchronizing stores:
/// a vector clock plus the two coherence tables described in the module
/// docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    /// Happens-before knowledge.
    pub vc: VecClock,
    /// Per-location max mo index of stores that happen-before here (CoWR).
    pub wmax: CoherenceMap,
    /// Per-location max mo index read by loads that happen-before here
    /// (CoRR).
    pub rmax: CoherenceMap,
}

impl Clock {
    /// The empty clock. Does not allocate.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Join every component pointwise. Each component short-circuits
    /// independently (an acquire that learns nothing new touches no
    /// memory).
    pub fn join(&mut self, other: &Clock) {
        self.vc.join(&other.vc);
        self.wmax.join(&other.wmax);
        self.rmax.join(&other.rmax);
    }

    /// Does this clock dominate `other` in every component? When true,
    /// `self.join(other)` is a guaranteed no-op.
    pub fn includes(&self, other: &Clock) -> bool {
        self.vc.includes(&other.vc)
            && self.wmax.includes(&other.wmax)
            && self.rmax.includes(&other.rmax)
    }

    /// The least mo index a load of `loc` holding this clock may read from
    /// (`max(wmax, rmax)`), or `None` if unconstrained.
    pub fn read_floor(&self, loc: LocId) -> Option<u32> {
        match (self.wmax.get(loc), self.rmax.get(loc)) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0).max(b.unwrap_or(0))),
        }
    }
}

/// The pre-copy-on-write reference implementation: plain `Vec`-backed
/// tables with the textbook pointwise loops and no sharing, no fast
/// paths, no observational no-ops.
///
/// Retained **only** as the oracle for the `cow_equivalence` proptest
/// suite, which drives random operation sequences through both
/// implementations and requires observationally identical answers. Not
/// used by the checker.
pub mod naive {
    use super::{Tid, NO_BOUND};
    use crate::loc::LocId;

    /// Reference [`super::VecClock`]: an owned, eagerly-resized `Vec`.
    #[derive(Clone, Debug, Default)]
    pub struct VecClock {
        /// Owned counts, one per thread index.
        pub counts: Vec<u32>,
    }

    impl VecClock {
        /// See [`super::VecClock::get`].
        pub fn get(&self, tid: Tid) -> u32 {
            self.counts.get(tid.idx()).copied().unwrap_or(0)
        }

        /// See [`super::VecClock::set`].
        pub fn set(&mut self, tid: Tid, count: u32) {
            if self.counts.len() <= tid.idx() {
                self.counts.resize(tid.idx() + 1, 0);
            }
            self.counts[tid.idx()] = count;
        }

        /// See [`super::VecClock::raise`].
        pub fn raise(&mut self, tid: Tid, seq: u32) {
            if self.counts.len() <= tid.idx() {
                self.counts.resize(tid.idx() + 1, 0);
            }
            let slot = &mut self.counts[tid.idx()];
            *slot = (*slot).max(seq);
        }

        /// See [`super::VecClock::join`].
        pub fn join(&mut self, other: &VecClock) {
            if self.counts.len() < other.counts.len() {
                self.counts.resize(other.counts.len(), 0);
            }
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine = (*mine).max(*theirs);
            }
        }

        /// See [`super::VecClock::includes`].
        pub fn includes(&self, other: &VecClock) -> bool {
            (0..other.counts.len())
                .all(|i| other.counts[i] <= self.counts.get(i).copied().unwrap_or(0))
        }

        /// See [`super::VecClock::knows`].
        pub fn knows(&self, tid: Tid, seq: u32) -> bool {
            self.get(tid) >= seq
        }
    }

    /// Reference [`super::CoherenceMap`]: an owned, eagerly-resized `Vec`.
    #[derive(Clone, Debug, Default)]
    pub struct CoherenceMap {
        /// Owned bounds, `NO_BOUND` = unconstrained.
        pub bounds: Vec<i64>,
    }

    impl CoherenceMap {
        /// See [`super::CoherenceMap::get`].
        pub fn get(&self, loc: LocId) -> Option<u32> {
            match self.bounds.get(loc.idx()).copied().unwrap_or(NO_BOUND) {
                NO_BOUND => None,
                b => Some(b as u32),
            }
        }

        /// See [`super::CoherenceMap::raise`].
        pub fn raise(&mut self, loc: LocId, idx: u32) {
            if self.bounds.len() <= loc.idx() {
                self.bounds.resize(loc.idx() + 1, NO_BOUND);
            }
            let slot = &mut self.bounds[loc.idx()];
            *slot = (*slot).max(idx as i64);
        }

        /// See [`super::CoherenceMap::join`].
        pub fn join(&mut self, other: &CoherenceMap) {
            if self.bounds.len() < other.bounds.len() {
                self.bounds.resize(other.bounds.len(), NO_BOUND);
            }
            for (mine, theirs) in self.bounds.iter_mut().zip(&other.bounds) {
                *mine = (*mine).max(*theirs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Tid {
        Tid(i)
    }

    #[test]
    fn vecclock_join_is_pointwise_max() {
        let mut a = VecClock::new();
        a.set(t(0), 3);
        a.set(t(2), 1);
        let mut b = VecClock::new();
        b.set(t(0), 1);
        b.set(t(1), 5);
        a.join(&b);
        assert_eq!(a.get(t(0)), 3);
        assert_eq!(a.get(t(1)), 5);
        assert_eq!(a.get(t(2)), 1);
        assert_eq!(a.get(t(9)), 0);
    }

    #[test]
    fn vecclock_includes_and_knows() {
        let mut a = VecClock::new();
        a.set(t(0), 2);
        let mut b = VecClock::new();
        b.set(t(0), 1);
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        assert!(a.includes(&a));
        assert!(a.knows(t(0), 2));
        assert!(!a.knows(t(0), 3));
        assert!(!a.knows(t(5), 1));
        // empty clock is included in everything
        assert!(b.includes(&VecClock::new()));
    }

    #[test]
    fn coherence_map_raise_and_join() {
        let l0 = LocId(0);
        let l3 = LocId(3);
        let mut m = CoherenceMap::new();
        assert_eq!(m.get(l0), None);
        m.raise(l3, 2);
        m.raise(l3, 1); // lower raise is a no-op
        assert_eq!(m.get(l3), Some(2));
        assert_eq!(m.get(l0), None);

        let mut n = CoherenceMap::new();
        n.raise(l0, 0);
        n.join(&m);
        assert_eq!(n.get(l0), Some(0));
        assert_eq!(n.get(l3), Some(2));
    }

    #[test]
    fn coherence_index_zero_is_a_real_bound() {
        // Regression guard: mo index 0 must be distinguishable from "no
        // bound" — reading the very first store must still be floor-checked.
        let mut m = CoherenceMap::new();
        m.raise(LocId(1), 0);
        assert_eq!(m.get(LocId(1)), Some(0));
    }

    #[test]
    fn clock_read_floor_combines_tables() {
        let l = LocId(0);
        let mut c = Clock::new();
        assert_eq!(c.read_floor(l), None);
        c.wmax.raise(l, 1);
        assert_eq!(c.read_floor(l), Some(1));
        c.rmax.raise(l, 4);
        assert_eq!(c.read_floor(l), Some(4));
        c.wmax.raise(l, 9);
        assert_eq!(c.read_floor(l), Some(9));
    }

    #[test]
    fn clock_join_joins_all_components() {
        let l = LocId(2);
        let mut a = Clock::new();
        a.vc.set(t(1), 7);
        a.rmax.raise(l, 3);
        let mut b = Clock::new();
        b.wmax.raise(l, 5);
        a.join(&b);
        assert_eq!(a.vc.get(t(1)), 7);
        assert_eq!(a.read_floor(l), Some(5));
    }

    #[test]
    fn clock_includes_guards_the_join_fast_path() {
        let l = LocId(1);
        let mut a = Clock::new();
        a.vc.set(t(0), 5);
        a.wmax.raise(l, 3);
        let mut b = Clock::new();
        b.vc.set(t(0), 2);
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        // wmax ahead but rmax behind: neither side dominates.
        b.rmax.raise(l, 1);
        assert!(!a.includes(&b));
        let before = a.clone();
        let mut joined = a.clone();
        joined.join(&b);
        assert!(joined.includes(&before));
        assert!(joined.includes(&b));
    }

    #[test]
    fn equality_is_observational() {
        // A clock that grew and a clock that never saw the high tids
        // compare equal once the tail is all defaults.
        let mut grown = VecClock::new();
        grown.set(t(5), 1);
        grown.set(t(5), 0); // back to default — buffer still sized 6
        assert_eq!(grown, VecClock::new());
        let mut m = CoherenceMap::new();
        m.join(&CoherenceMap::new());
        assert_eq!(m, CoherenceMap::new());
    }

    #[test]
    fn shared_buffers_survive_observational_noops() {
        // set-to-same and low raises must not unshare (the whole point of
        // the copy-on-write representation).
        let mut a = VecClock::new();
        a.set(t(0), 4);
        let b = a.clone();
        let mut c = a.clone();
        c.set(t(0), 4); // no-op
        c.join(&b); // identical: no-op
        assert_eq!(a, c);
        let mut m = CoherenceMap::new();
        m.raise(LocId(0), 9);
        let mut n = m.clone();
        n.raise(LocId(0), 3); // below current bound: no-op
        assert_eq!(m, n);
    }
}
