//! Vector clocks extended with per-location coherence indices.
//!
//! The model checker derives modification order (`mo`) from per-location
//! store execution order. Under that choice the C/C++11 coherence axioms
//! reduce to *lower bounds on the mo index a load may read from*:
//!
//! * **CoWR** ("no hidden store"): a load `R` may not read store `W` if some
//!   store `W'` to the same location with `mo(W) < mo(W')` happens-before
//!   `R`. We track, per location, the maximal mo index of a store that
//!   happens-before the current point: [`Clock::wmax`].
//! * **CoRR** (read coherence): a load `R` may not read `W` if a load `R'`
//!   with `R' hb R` read a store `W'` with `mo(W) < mo(W')`. We track the
//!   maximal mo index *read* so far: [`Clock::rmax`].
//!
//! Both tables are joined pointwise whenever clocks join (program order,
//! synchronizes-with, thread create/join), so the bounds flow along exactly
//! the happens-before edges.
//!
//! # Copy-on-write representation
//!
//! Clocks are the allocation hot spot of the checker: every event snapshots
//! its thread's clock, every acquire joins a store's release payload, and a
//! figure-7 exploration takes millions of both. Both [`VecClock`] and
//! [`CoherenceMap`] therefore store their table as `Option<Arc<Vec<_>>>`:
//!
//! * `None` encodes the empty table, so fresh clocks never allocate;
//! * `clone()` is an `Arc` refcount bump — event snapshots and release
//!   payloads share one buffer until someone writes;
//! * mutation goes through [`std::sync::Arc::make_mut`], which copies only
//!   when the buffer is shared (and is a plain in-place write when not);
//! * `join` short-circuits without touching memory when one side already
//!   covers the other: joining with an empty/identical/dominated clock is a
//!   no-op, and joining *into* a dominated clock is a pointer copy.
//!
//! **Invariants.** The representation is observational: a trailing run of
//! default entries (`0` counts, absent bounds) is indistinguishable from a
//! shorter buffer, and `PartialEq` is defined accordingly. No operation may
//! branch on buffer length or capacity, and no caller can observe whether a
//! fast path or the slow pointwise walk produced a result — the
//! `cow_equivalence` proptest suite checks exactly this against the
//! [`naive`] reference implementation. Observational no-ops ([`VecClock::set`]
//! to the current value, [`CoherenceMap::raise`] to a not-higher bound) must
//! not unshare the buffer.

use std::sync::Arc;

use crate::event::Tid;
use crate::loc::LocId;

/// `b ⊑ a` on raw slices, absent entries reading as `default`.
fn dominates<T: Copy + Ord>(a: &[T], b: &[T], default: T) -> bool {
    b.iter()
        .enumerate()
        .all(|(i, &x)| x <= a.get(i).copied().unwrap_or(default))
}

/// Observational equality on raw slices, absent entries reading as
/// `default` (so `[3]` equals `[3, 0, 0]` for clocks).
fn slices_eq<T: Copy + PartialEq>(a: &[T], b: &[T], default: T) -> bool {
    let n = a.len().max(b.len());
    (0..n).all(|i| a.get(i).copied().unwrap_or(default) == b.get(i).copied().unwrap_or(default))
}

/// A plain vector clock: `vc[t]` = number of events of thread `t` known to
/// happen-before (or equal) the current point.
///
/// Copy-on-write: see the module docs. Cloning is O(1); mutation copies
/// the underlying buffer only while it is shared.
#[derive(Clone, Debug, Default)]
pub struct VecClock {
    /// Shared counts buffer; `None` is the empty clock.
    counts: Option<Arc<Vec<u32>>>,
}

impl VecClock {
    /// The empty clock (knows nothing). Does not allocate.
    pub fn new() -> Self {
        VecClock { counts: None }
    }

    /// The raw counts, absent entries implicit.
    #[inline]
    fn slice(&self) -> &[u32] {
        self.counts.as_deref().map_or(&[], Vec::as_slice)
    }

    /// Number of events of `tid` known at this clock.
    #[inline]
    pub fn get(&self, tid: Tid) -> u32 {
        self.slice().get(tid.idx()).copied().unwrap_or(0)
    }

    /// Record that `tid` has performed `count` events. A `set` to the
    /// value already held is a no-op and keeps the buffer shared.
    pub fn set(&mut self, tid: Tid, count: u32) {
        if self.get(tid) == count {
            return;
        }
        let v = Arc::make_mut(self.counts.get_or_insert_with(Default::default));
        if v.len() <= tid.idx() {
            v.resize(tid.idx() + 1, 0);
        }
        v[tid.idx()] = count;
    }

    /// Raise `tid`'s count to at least `seq`. A raise at or below the
    /// current count is a no-op and keeps the buffer shared. This is the
    /// stamping primitive for release payloads and thread-lifecycle
    /// clocks, where the thread's own (implicit) component must be made
    /// explicit before the clock is handed to another thread.
    pub fn raise(&mut self, tid: Tid, seq: u32) {
        if self.get(tid) >= seq {
            return;
        }
        let v = Arc::make_mut(self.counts.get_or_insert_with(Default::default));
        if v.len() <= tid.idx() {
            v.resize(tid.idx() + 1, 0);
        }
        v[tid.idx()] = seq;
    }

    /// Pointwise maximum with `other`. Joins where one side already covers
    /// the other do not copy: they are a no-op or an `Arc` pointer copy.
    pub fn join(&mut self, other: &VecClock) {
        let Some(theirs_arc) = &other.counts else {
            return;
        };
        let take_theirs = match &mut self.counts {
            None => true,
            Some(mine) => {
                if Arc::ptr_eq(mine, theirs_arc) {
                    return;
                }
                let theirs = theirs_arc.as_slice();
                if dominates(mine, theirs, 0) {
                    return;
                }
                if dominates(theirs, mine, 0) {
                    true
                } else {
                    let v = Arc::make_mut(mine);
                    if v.len() < theirs.len() {
                        v.resize(theirs.len(), 0);
                    }
                    for (m, &t) in v.iter_mut().zip(theirs) {
                        *m = (*m).max(t);
                    }
                    false
                }
            }
        };
        if take_theirs {
            self.counts = Some(Arc::clone(theirs_arc));
        }
    }

    /// Does this clock dominate `other` pointwise (`other ⊑ self`)?
    pub fn includes(&self, other: &VecClock) -> bool {
        match (&self.counts, &other.counts) {
            (_, None) => true,
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => true,
            _ => dominates(self.slice(), other.slice(), 0),
        }
    }

    /// Does this clock know about event number `seq` (1-based) of `tid`?
    #[inline]
    pub fn knows(&self, tid: Tid, seq: u32) -> bool {
        self.get(tid) >= seq
    }
}

impl PartialEq for VecClock {
    fn eq(&self, other: &Self) -> bool {
        slices_eq(self.slice(), other.slice(), 0)
    }
}
impl Eq for VecClock {}

/// A per-location table of mo-index lower bounds. Index `loc.idx()`;
/// `None` is encoded as `i64::MIN` so joins are a plain `max`.
///
/// Copy-on-write: see the module docs. Cloning is O(1); mutation copies
/// the underlying buffer only while it is shared.
#[derive(Clone, Debug, Default)]
pub struct CoherenceMap {
    /// Shared bounds buffer; `None` is the unconstrained table.
    bounds: Option<Arc<Vec<i64>>>,
}

const NO_BOUND: i64 = i64::MIN;

impl CoherenceMap {
    /// Empty table: no location constrained. Does not allocate.
    pub fn new() -> Self {
        CoherenceMap { bounds: None }
    }

    /// The raw bounds, absent entries implicit.
    #[inline]
    fn slice(&self) -> &[i64] {
        self.bounds.as_deref().map_or(&[], Vec::as_slice)
    }

    /// Current bound for `loc`, or `None` if unconstrained.
    #[inline]
    pub fn get(&self, loc: LocId) -> Option<u32> {
        match self.slice().get(loc.idx()).copied().unwrap_or(NO_BOUND) {
            NO_BOUND => None,
            b => Some(b as u32),
        }
    }

    /// Raise the bound for `loc` to at least `idx`. A raise at or below
    /// the current bound is a no-op and keeps the buffer shared.
    pub fn raise(&mut self, loc: LocId, idx: u32) {
        let current = self.slice().get(loc.idx()).copied().unwrap_or(NO_BOUND);
        if current >= idx as i64 {
            return;
        }
        let v = Arc::make_mut(self.bounds.get_or_insert_with(Default::default));
        if v.len() <= loc.idx() {
            v.resize(loc.idx() + 1, NO_BOUND);
        }
        v[loc.idx()] = idx as i64;
    }

    /// Pointwise maximum with `other`. Joins where one side already covers
    /// the other do not copy: they are a no-op or an `Arc` pointer copy.
    pub fn join(&mut self, other: &CoherenceMap) {
        let Some(theirs_arc) = &other.bounds else {
            return;
        };
        let take_theirs = match &mut self.bounds {
            None => true,
            Some(mine) => {
                if Arc::ptr_eq(mine, theirs_arc) {
                    return;
                }
                let theirs = theirs_arc.as_slice();
                if dominates(mine, theirs, NO_BOUND) {
                    return;
                }
                if dominates(theirs, mine, NO_BOUND) {
                    true
                } else {
                    let v = Arc::make_mut(mine);
                    if v.len() < theirs.len() {
                        v.resize(theirs.len(), NO_BOUND);
                    }
                    for (m, &t) in v.iter_mut().zip(theirs) {
                        *m = (*m).max(t);
                    }
                    false
                }
            }
        };
        if take_theirs {
            self.bounds = Some(Arc::clone(theirs_arc));
        }
    }

    /// Does this table bound at least as tightly as `other` everywhere?
    pub fn includes(&self, other: &CoherenceMap) -> bool {
        match (&self.bounds, &other.bounds) {
            (_, None) => true,
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => true,
            _ => dominates(self.slice(), other.slice(), NO_BOUND),
        }
    }
}

impl PartialEq for CoherenceMap {
    fn eq(&self, other: &Self) -> bool {
        slices_eq(self.slice(), other.slice(), NO_BOUND)
    }
}
impl Eq for CoherenceMap {}

/// The full clock carried by threads and attached to synchronizing stores:
/// a vector clock plus the two coherence tables described in the module
/// docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    /// Happens-before knowledge.
    pub vc: VecClock,
    /// Per-location max mo index of stores that happen-before here (CoWR).
    pub wmax: CoherenceMap,
    /// Per-location max mo index read by loads that happen-before here
    /// (CoRR).
    pub rmax: CoherenceMap,
}

impl Clock {
    /// The empty clock. Does not allocate.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Join every component pointwise. Each component short-circuits
    /// independently (an acquire that learns nothing new touches no
    /// memory).
    pub fn join(&mut self, other: &Clock) {
        self.vc.join(&other.vc);
        self.wmax.join(&other.wmax);
        self.rmax.join(&other.rmax);
    }

    /// Does this clock dominate `other` in every component? When true,
    /// `self.join(other)` is a guaranteed no-op.
    pub fn includes(&self, other: &Clock) -> bool {
        self.vc.includes(&other.vc)
            && self.wmax.includes(&other.wmax)
            && self.rmax.includes(&other.rmax)
    }

    /// The least mo index a load of `loc` holding this clock may read from
    /// (`max(wmax, rmax)`), or `None` if unconstrained.
    pub fn read_floor(&self, loc: LocId) -> Option<u32> {
        match (self.wmax.get(loc), self.rmax.get(loc)) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0).max(b.unwrap_or(0))),
        }
    }
}

/// The pre-copy-on-write reference implementation: plain `Vec`-backed
/// tables with the textbook pointwise loops and no sharing, no fast
/// paths, no observational no-ops.
///
/// Retained **only** as the oracle for the `cow_equivalence` proptest
/// suite, which drives random operation sequences through both
/// implementations and requires observationally identical answers. Not
/// used by the checker.
pub mod naive {
    use super::{Tid, NO_BOUND};
    use crate::loc::LocId;

    /// Reference [`super::VecClock`]: an owned, eagerly-resized `Vec`.
    #[derive(Clone, Debug, Default)]
    pub struct VecClock {
        /// Owned counts, one per thread index.
        pub counts: Vec<u32>,
    }

    impl VecClock {
        /// See [`super::VecClock::get`].
        pub fn get(&self, tid: Tid) -> u32 {
            self.counts.get(tid.idx()).copied().unwrap_or(0)
        }

        /// See [`super::VecClock::set`].
        pub fn set(&mut self, tid: Tid, count: u32) {
            if self.counts.len() <= tid.idx() {
                self.counts.resize(tid.idx() + 1, 0);
            }
            self.counts[tid.idx()] = count;
        }

        /// See [`super::VecClock::raise`].
        pub fn raise(&mut self, tid: Tid, seq: u32) {
            if self.counts.len() <= tid.idx() {
                self.counts.resize(tid.idx() + 1, 0);
            }
            let slot = &mut self.counts[tid.idx()];
            *slot = (*slot).max(seq);
        }

        /// See [`super::VecClock::join`].
        pub fn join(&mut self, other: &VecClock) {
            if self.counts.len() < other.counts.len() {
                self.counts.resize(other.counts.len(), 0);
            }
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine = (*mine).max(*theirs);
            }
        }

        /// See [`super::VecClock::includes`].
        pub fn includes(&self, other: &VecClock) -> bool {
            (0..other.counts.len())
                .all(|i| other.counts[i] <= self.counts.get(i).copied().unwrap_or(0))
        }

        /// See [`super::VecClock::knows`].
        pub fn knows(&self, tid: Tid, seq: u32) -> bool {
            self.get(tid) >= seq
        }
    }

    /// Reference [`super::CoherenceMap`]: an owned, eagerly-resized `Vec`.
    #[derive(Clone, Debug, Default)]
    pub struct CoherenceMap {
        /// Owned bounds, `NO_BOUND` = unconstrained.
        pub bounds: Vec<i64>,
    }

    impl CoherenceMap {
        /// See [`super::CoherenceMap::get`].
        pub fn get(&self, loc: LocId) -> Option<u32> {
            match self.bounds.get(loc.idx()).copied().unwrap_or(NO_BOUND) {
                NO_BOUND => None,
                b => Some(b as u32),
            }
        }

        /// See [`super::CoherenceMap::raise`].
        pub fn raise(&mut self, loc: LocId, idx: u32) {
            if self.bounds.len() <= loc.idx() {
                self.bounds.resize(loc.idx() + 1, NO_BOUND);
            }
            let slot = &mut self.bounds[loc.idx()];
            *slot = (*slot).max(idx as i64);
        }

        /// See [`super::CoherenceMap::join`].
        pub fn join(&mut self, other: &CoherenceMap) {
            if self.bounds.len() < other.bounds.len() {
                self.bounds.resize(other.bounds.len(), NO_BOUND);
            }
            for (mine, theirs) in self.bounds.iter_mut().zip(&other.bounds) {
                *mine = (*mine).max(*theirs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Tid {
        Tid(i)
    }

    #[test]
    fn vecclock_join_is_pointwise_max() {
        let mut a = VecClock::new();
        a.set(t(0), 3);
        a.set(t(2), 1);
        let mut b = VecClock::new();
        b.set(t(0), 1);
        b.set(t(1), 5);
        a.join(&b);
        assert_eq!(a.get(t(0)), 3);
        assert_eq!(a.get(t(1)), 5);
        assert_eq!(a.get(t(2)), 1);
        assert_eq!(a.get(t(9)), 0);
    }

    #[test]
    fn vecclock_includes_and_knows() {
        let mut a = VecClock::new();
        a.set(t(0), 2);
        let mut b = VecClock::new();
        b.set(t(0), 1);
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        assert!(a.includes(&a));
        assert!(a.knows(t(0), 2));
        assert!(!a.knows(t(0), 3));
        assert!(!a.knows(t(5), 1));
        // empty clock is included in everything
        assert!(b.includes(&VecClock::new()));
    }

    #[test]
    fn coherence_map_raise_and_join() {
        let l0 = LocId(0);
        let l3 = LocId(3);
        let mut m = CoherenceMap::new();
        assert_eq!(m.get(l0), None);
        m.raise(l3, 2);
        m.raise(l3, 1); // lower raise is a no-op
        assert_eq!(m.get(l3), Some(2));
        assert_eq!(m.get(l0), None);

        let mut n = CoherenceMap::new();
        n.raise(l0, 0);
        n.join(&m);
        assert_eq!(n.get(l0), Some(0));
        assert_eq!(n.get(l3), Some(2));
    }

    #[test]
    fn coherence_index_zero_is_a_real_bound() {
        // Regression guard: mo index 0 must be distinguishable from "no
        // bound" — reading the very first store must still be floor-checked.
        let mut m = CoherenceMap::new();
        m.raise(LocId(1), 0);
        assert_eq!(m.get(LocId(1)), Some(0));
    }

    #[test]
    fn clock_read_floor_combines_tables() {
        let l = LocId(0);
        let mut c = Clock::new();
        assert_eq!(c.read_floor(l), None);
        c.wmax.raise(l, 1);
        assert_eq!(c.read_floor(l), Some(1));
        c.rmax.raise(l, 4);
        assert_eq!(c.read_floor(l), Some(4));
        c.wmax.raise(l, 9);
        assert_eq!(c.read_floor(l), Some(9));
    }

    #[test]
    fn clock_join_joins_all_components() {
        let l = LocId(2);
        let mut a = Clock::new();
        a.vc.set(t(1), 7);
        a.rmax.raise(l, 3);
        let mut b = Clock::new();
        b.wmax.raise(l, 5);
        a.join(&b);
        assert_eq!(a.vc.get(t(1)), 7);
        assert_eq!(a.read_floor(l), Some(5));
    }

    #[test]
    fn clock_includes_guards_the_join_fast_path() {
        let l = LocId(1);
        let mut a = Clock::new();
        a.vc.set(t(0), 5);
        a.wmax.raise(l, 3);
        let mut b = Clock::new();
        b.vc.set(t(0), 2);
        assert!(a.includes(&b));
        assert!(!b.includes(&a));
        // wmax ahead but rmax behind: neither side dominates.
        b.rmax.raise(l, 1);
        assert!(!a.includes(&b));
        let before = a.clone();
        let mut joined = a.clone();
        joined.join(&b);
        assert!(joined.includes(&before));
        assert!(joined.includes(&b));
    }

    #[test]
    fn equality_is_observational() {
        // A clock that grew and a clock that never saw the high tids
        // compare equal once the tail is all defaults.
        let mut grown = VecClock::new();
        grown.set(t(5), 1);
        grown.set(t(5), 0); // back to default — buffer still sized 6
        assert_eq!(grown, VecClock::new());
        let mut m = CoherenceMap::new();
        m.join(&CoherenceMap::new());
        assert_eq!(m, CoherenceMap::new());
    }

    #[test]
    fn shared_buffers_survive_observational_noops() {
        // set-to-same and low raises must not unshare (the whole point of
        // the copy-on-write representation).
        let mut a = VecClock::new();
        a.set(t(0), 4);
        let b = a.clone();
        let mut c = a.clone();
        c.set(t(0), 4); // no-op
        c.join(&b); // identical: no-op
        assert_eq!(a, c);
        let mut m = CoherenceMap::new();
        m.raise(LocId(0), 9);
        let mut n = m.clone();
        n.raise(LocId(0), 3); // below current bound: no-op
        assert_eq!(m, n);
    }
}
