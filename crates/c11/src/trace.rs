//! Completed-execution traces, stored struct-of-arrays.
//!
//! A [`Trace`] is what the model checker hands to plugins (notably the
//! CDSSpec checker in `cdsspec-core`) after each feasible execution: the
//! committed events with their happens-before clocks, the per-location
//! modification orders, the SC total order *S*, and the stream of
//! *specification annotations* recorded by instrumented data-structure code
//! (method boundaries, arguments/return values, and ordering-point
//! markers — the run-time counterpart of the paper's `@OPDefine`,
//! `@PotentialOP`, `@OPCheck`, `@OPClear` and `@OPClearDefine`).
//!
//! # Struct-of-arrays layout
//!
//! There is no per-event struct. An event is a *row* across dense parallel
//! columns — `tids`/`seqs`/`tags`/`locs`/`rfs`/`mo_indices`/`sc_indices`
//! for the hot fields the candidate scans and relation queries touch,
//! copy-on-write clock snapshots in `clocks`, and the cold payloads
//! (orderings and values) in a side `PayloadArena`. All columns keep
//! their capacity across executions: `cdsspec-mc`'s `runtime::Reuse`
//! machinery recycles the whole `Trace` through [`Trace::clear`], so a
//! warm harness commits events without allocating. Sentinel `u32::MAX`
//! (`NONE`) encodes "no rf" / "not a write" / "not SC" in the dense
//! columns; a failed compare-exchange is a `Rmw` tag whose `mo_indices`
//! entry is the sentinel.
//!
//! # Incremental relation maintenance
//!
//! [`Trace::push`] is the single commit point, and it maintains the
//! derived relations *as events are committed* instead of leaving them to
//! per-execution re-walks at the leaf:
//!
//! * **per-thread event ranges** (`thread_events`) — commit order per
//!   thread is program order, so these double as the sb chains;
//! * **per-location reader chains** (`readers`) — the rf side of the
//!   per-location rf/mo structure (`mo` itself is already per-location);
//! * **the canonical-signature state** (`SigState`) — thread spawn-path
//!   names, per-event canonical ids, and per-location minima, folded
//!   exactly as `relations::rf_signature` historically derived them
//!   post-hoc (the retained reference is
//!   `relations::posthoc::rf_signature`), so the finalize step is a
//!   single O(n) fold instead of three full re-walks;
//! * **the sb∪sw adjacency delta** (`sw_edges`, behind [`Trace::record_sw`])
//!   — every synchronizes-with edge (rf release/acquire, release
//!   sequences through RMW chains, fence rules, create/join) recorded at
//!   the commit that created it, giving the offline validator's edge set
//!   without the O(n²) post-hoc scan.
//!
//! The maintenance rule for every index is the same: *only* `push` writes
//! it, appending data derivable from the event being committed plus state
//! already indexed — nothing is recomputed from earlier events except by
//! O(chain) walks over already-dense columns. `relations::audit`,
//! `rf_signature`, race detection, and `cdsspec-core`'s `build_call_order`
//! query these indexes (plus the O(1) clock test [`Trace::happens_before`])
//! in O(answer).

use crate::clock::VecClock;
use crate::event::{EventId, EventKind, EventTag, Tid};
use crate::loc::{DataId, LocId};
use crate::ordering::MemOrd;
use crate::value::Val;

/// Column sentinel: "no rf" / "not a successful write" / "not SC".
pub(crate) const NONE: u32 = u32::MAX;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the little-endian bytes of `v`, chained from `h`.
pub(crate) fn fnv(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A dynamic value crossing the concurrent/sequential boundary (method
/// arguments and return values).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecVal {
    /// No value (e.g. a `void` method).
    Unit,
    /// Signed integer (the common case; the paper's examples use `int`).
    I64(i64),
    /// Unsigned integer / pointer bits.
    U64(u64),
    /// Boolean (e.g. `trylock` results).
    Bool(bool),
}

impl SpecVal {
    /// Interpret as `i64`, panicking on `Unit` (spec-writer error).
    pub fn as_i64(self) -> i64 {
        match self {
            SpecVal::I64(v) => v,
            SpecVal::U64(v) => v as i64,
            SpecVal::Bool(b) => b as i64,
            SpecVal::Unit => panic!("SpecVal::Unit interpreted as integer"),
        }
    }

    /// Interpret as `u64`.
    pub fn as_u64(self) -> u64 {
        match self {
            SpecVal::I64(v) => v as u64,
            SpecVal::U64(v) => v,
            SpecVal::Bool(b) => b as u64,
            SpecVal::Unit => panic!("SpecVal::Unit interpreted as integer"),
        }
    }

    /// Interpret as `bool` (nonzero integers are `true`).
    pub fn as_bool(self) -> bool {
        match self {
            SpecVal::Bool(b) => b,
            SpecVal::I64(v) => v != 0,
            SpecVal::U64(v) => v != 0,
            SpecVal::Unit => panic!("SpecVal::Unit interpreted as bool"),
        }
    }
}

impl From<i64> for SpecVal {
    fn from(v: i64) -> Self {
        SpecVal::I64(v)
    }
}
impl From<i32> for SpecVal {
    fn from(v: i32) -> Self {
        SpecVal::I64(v as i64)
    }
}
impl From<u64> for SpecVal {
    fn from(v: u64) -> Self {
        SpecVal::U64(v)
    }
}
impl From<usize> for SpecVal {
    fn from(v: usize) -> Self {
        SpecVal::U64(v as u64)
    }
}
impl From<bool> for SpecVal {
    fn from(v: bool) -> Self {
        SpecVal::Bool(v)
    }
}
impl From<()> for SpecVal {
    fn from(_: ()) -> Self {
        SpecVal::Unit
    }
}

/// One specification annotation recorded by instrumented code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecNote {
    /// Start of an API method call (paper: method *invocation* event).
    /// `obj` identifies the data-structure instance, enabling the
    /// composition of specifications (paper §3.2): each object is checked
    /// against its own sequential state.
    MethodBegin {
        /// Data-structure instance identity.
        obj: u64,
        /// Method name (e.g. `"enq"`).
        name: &'static str,
    },
    /// An argument value of the current method call.
    MethodArg {
        /// The argument.
        val: SpecVal,
    },
    /// End of an API method call with its return value (paper: *response*).
    MethodEnd {
        /// The return value (`SpecVal::Unit` for `void`).
        ret: SpecVal,
    },
    /// `@OPDefine`: the thread's immediately-preceding atomic operation is
    /// an ordering point of the current method call.
    OpDefine,
    /// `@OPClear`: discard all ordering points (confirmed and potential)
    /// observed so far in the current method call.
    OpClear,
    /// `@PotentialOP(label)`: the preceding atomic operation *may* be an
    /// ordering point; a later `OpCheck` with the same label confirms it.
    PotentialOp {
        /// Label matched by a later `OpCheck`.
        label: &'static str,
    },
    /// `@OPCheck(label)`: confirm all pending potential ordering points
    /// with `label`.
    OpCheck {
        /// Label of the potential ordering points to confirm.
        label: &'static str,
    },
}

/// An annotation bound to its position in the execution: the recording
/// thread and the thread's last committed event at recording time (the
/// operation "immediately preceding the annotation" in the paper's prose).
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Recording thread.
    pub tid: Tid,
    /// The thread's most recent event when the annotation was recorded
    /// (`None` if the thread had not yet performed any visible operation).
    pub after: Option<EventId>,
    /// Payload.
    pub note: SpecNote,
}

/// Cold per-event payloads: the ordering parameter and the value fields.
/// Split out of the hot columns so candidate scans and relation queries
/// never pull value bytes through the cache; recycled with the rest of
/// the trace across executions.
#[derive(Clone, Debug, Default)]
struct PayloadArena {
    /// Ordering parameter (`None` for thread-lifecycle and data events).
    ords: Vec<Option<MemOrd>>,
    /// Load: value observed. Store: value written. RMW: value read.
    vals: Vec<Val>,
    /// Successful RMW: value written (unused otherwise).
    writtens: Vec<Val>,
}

impl PayloadArena {
    fn push(&mut self, ord: Option<MemOrd>, val: Val, written: Val) {
        self.ords.push(ord);
        self.vals.push(val);
        self.writtens.push(written);
    }

    fn clear(&mut self) {
        self.ords.clear();
        self.vals.clear();
        self.writtens.clear();
    }
}

/// Incrementally-maintained state of the canonical rf signature: thread
/// spawn-path names, per-event canonical ids, and per-location minima.
/// Every value is written exactly once, at commit time, and is final from
/// the trace's perspective except the running minima (whose final value
/// equals the post-hoc minimum because `min` is order-independent).
#[derive(Clone, Debug, Default)]
pub(crate) struct SigState {
    /// Canonical thread names from the spawn tree. `canon[0]` is fixed;
    /// `canon[child]` is written when the child's `ThreadCreate` commits —
    /// necessarily before any event of the child, so every `ceids` entry
    /// is computed from a final name.
    pub(crate) canon: Vec<u64>,
    /// Children spawned so far per thread (names siblings apart).
    pub(crate) spawn_count: Vec<u64>,
    /// Canonical event id per event: hash of (thread name, per-thread seq).
    pub(crate) ceids: Vec<u64>,
    /// Per-atomic-location minimum canonical id of any touching event.
    pub(crate) loc_min: Vec<u64>,
    /// Per-data-location minimum canonical id of any touching event.
    pub(crate) data_min: Vec<u64>,
}

impl SigState {
    fn reset(&mut self) {
        for c in &mut self.canon {
            *c = 0;
        }
        if self.canon.is_empty() {
            self.canon.push(0);
        }
        self.canon[0] = fnv(FNV_OFFSET, 0);
        for s in &mut self.spawn_count {
            *s = 0;
        }
        self.ceids.clear();
        self.loc_min.clear();
        self.data_min.clear();
    }

    fn note_min(slot: &mut Vec<u64>, idx: usize, c: u64) {
        if slot.len() <= idx {
            slot.resize(idx + 1, u64::MAX);
        }
        slot[idx] = slot[idx].min(c);
    }
}

/// A completed execution, stored struct-of-arrays (see the module docs).
#[derive(Clone, Debug)]
pub struct Trace {
    // ---- hot columns -------------------------------------------------
    /// Executing thread per event.
    tids: Vec<u32>,
    /// 1-based per-thread sequence number per event.
    seqs: Vec<u32>,
    /// One-byte kind discriminant per event.
    tags: Vec<EventTag>,
    /// Location operand: atomic loc for loads/stores/RMWs, data loc for
    /// data accesses, child/target tid for create/join, `0` otherwise.
    locs: Vec<u32>,
    /// Store read from ([`NONE`] = uninitialized / not a read).
    rfs: Vec<u32>,
    /// mo position of the write ([`NONE`] = not a successful write; in
    /// particular a failed compare-exchange).
    mo_indices: Vec<u32>,
    /// Position in *S* ([`NONE`] = not `seq_cst`).
    sc_indices: Vec<u32>,
    /// Happens-before knowledge of *other* threads' events at commit.
    /// The executing thread's own component is implicit — its first `seq`
    /// events happen-before (or are) this event — which lets the buffer
    /// stay shared with the thread's live clock (see [`crate::clock`]).
    clocks: Vec<VecClock>,
    /// Cold payloads (orderings, values).
    arena: PayloadArena,

    // ---- derived relations (public, as before the SoA rework) -------
    /// Per-location modification order: `mo[loc.idx()]` lists the writes to
    /// `loc` in mo order (equal to their commit order).
    pub mo: Vec<Vec<EventId>>,
    /// The SC total order *S* (ids of `seq_cst` events in commit order).
    pub sc_order: Vec<EventId>,
    /// Number of threads that participated.
    pub num_threads: u32,
    /// Specification annotations in global recording order (per-thread
    /// subsequences are each thread's program order).
    pub annotations: Vec<Annotation>,

    // ---- incremental indexes -----------------------------------------
    /// Events of each thread in commit (= program) order. Slots may
    /// outlive `num_threads` across [`Trace::clear`] (kept for capacity);
    /// stale slots are empty.
    thread_events: Vec<Vec<EventId>>,
    /// Reads (loads and RMWs, successful or not) of each atomic location
    /// in commit order.
    readers: Vec<Vec<EventId>>,
    /// Incremental rf-signature state.
    pub(crate) sig: SigState,

    // ---- sb∪sw delta recording (validation support) ------------------
    /// Record synchronizes-with edges at commit time. Off by default: the
    /// edges are consumed only by the axiom validator's cross-checks, and
    /// the release-chain walk is per-read hot-path work. The runtime turns
    /// it on when the exploration validates axioms.
    pub record_sw: bool,
    /// The recorded sw edges (create/join edges included), commit order.
    sw_edges: Vec<(EventId, EventId)>,
    /// Per-thread release-fence events (sw sources for later stores).
    rel_fences: Vec<Vec<EventId>>,
    /// Per-thread sw sources of earlier reads (targets of later acquire
    /// fences, C++11 29.8p3-4).
    read_srcs: Vec<Vec<EventId>>,
    /// Per-thread pending `ThreadCreate` event, consumed by the thread's
    /// first own event ([`NONE`] = none pending).
    pending_create: Vec<u32>,
    /// Scratch for release-chain source collection (capacity reused).
    src_scratch: Vec<EventId>,
}

impl Default for Trace {
    fn default() -> Self {
        let mut t = Trace {
            tids: Vec::new(),
            seqs: Vec::new(),
            tags: Vec::new(),
            locs: Vec::new(),
            rfs: Vec::new(),
            mo_indices: Vec::new(),
            sc_indices: Vec::new(),
            clocks: Vec::new(),
            arena: PayloadArena::default(),
            mo: Vec::new(),
            sc_order: Vec::new(),
            num_threads: 0,
            annotations: Vec::new(),
            thread_events: Vec::new(),
            readers: Vec::new(),
            sig: SigState::default(),
            record_sw: false,
            sw_edges: Vec::new(),
            rel_fences: Vec::new(),
            read_srcs: Vec::new(),
            pending_create: Vec::new(),
            src_scratch: Vec::new(),
        };
        t.sig.reset();
        t
    }
}

impl Trace {
    /// Number of committed events.
    #[inline]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when no event has been committed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Reset to the empty trace, keeping every column's and index's
    /// capacity — the arena-reuse half of the `runtime::Reuse` contract.
    /// (`mo` is *not* drained here: the runtime parks its inner vectors in
    /// its own pool first, then clears the rest through this.)
    pub fn clear(&mut self) {
        self.tids.clear();
        self.seqs.clear();
        self.tags.clear();
        self.locs.clear();
        self.rfs.clear();
        self.mo_indices.clear();
        self.sc_indices.clear();
        self.clocks.clear();
        self.arena.clear();
        self.mo.clear();
        self.sc_order.clear();
        self.num_threads = 1;
        self.annotations.clear();
        for v in &mut self.thread_events {
            v.clear();
        }
        for v in &mut self.readers {
            v.clear();
        }
        self.sig.reset();
        self.sw_edges.clear();
        for v in &mut self.rel_fences {
            v.clear();
        }
        for v in &mut self.read_srcs {
            v.clear();
        }
        for p in &mut self.pending_create {
            *p = NONE;
        }
    }

    /// Make the per-thread tables cover `tid`.
    fn ensure_thread(&mut self, tid: Tid) {
        let need = tid.idx() + 1;
        if self.thread_events.len() < need {
            self.thread_events.resize_with(need, Vec::new);
            self.rel_fences.resize_with(need, Vec::new);
            self.read_srcs.resize_with(need, Vec::new);
            self.pending_create.resize(need, NONE);
        }
        if self.sig.canon.len() < need {
            self.sig.canon.resize(need, 0);
            self.sig.spawn_count.resize(need, 0);
        } else if self.sig.spawn_count.len() < need {
            self.sig.spawn_count.resize(need, 0);
        }
    }

    /// Commit one event: append the row and maintain every incremental
    /// index (see the module docs for the maintenance rule). `seq` is the
    /// thread's 1-based sequence number for this event; `clock` is the
    /// thread's happens-before snapshot (own component implicit). Returns
    /// the new event's id.
    ///
    /// Invariants assumed (guaranteed by the runtime, required from test
    /// builders): a child's `ThreadCreate` commits before any event of the
    /// child, and a `ThreadJoin` commits after the target's `ThreadFinish`.
    pub fn push(&mut self, tid: Tid, seq: u32, kind: EventKind, clock: VecClock) -> EventId {
        let id = EventId(self.len() as u32);
        self.ensure_thread(tid);

        if let EventKind::ThreadCreate { child } = kind {
            self.ensure_thread(child);
            let p = tid.idx();
            self.sig.canon[child.idx()] = fnv(fnv(self.sig.canon[p], 1), self.sig.spawn_count[p]);
            self.sig.spawn_count[p] += 1;
            self.pending_create[child.idx()] = id.0;
        }

        // Canonical event id: canon[tid] is final before any event of tid.
        let ceid = fnv(fnv(FNV_OFFSET, self.sig.canon[tid.idx()]), seq as u64);
        self.sig.ceids.push(ceid);

        // Decompose the kind into columns.
        let (loc, rf, mo_index, ord, val, written) = match kind {
            EventKind::AtomicLoad { loc, ord, rf, val } => {
                (loc.0, rf.map_or(NONE, |w| w.0), NONE, Some(ord), val, 0)
            }
            EventKind::AtomicStore {
                loc,
                ord,
                val,
                mo_index,
            } => (loc.0, NONE, mo_index, Some(ord), val, 0),
            EventKind::Rmw {
                loc,
                ord,
                rf,
                read_val,
                written,
                mo_index,
            } => (
                loc.0,
                rf.map_or(NONE, |w| w.0),
                if written.is_some() { mo_index } else { NONE },
                Some(ord),
                read_val,
                written.unwrap_or(0),
            ),
            EventKind::Fence { ord } => (0, NONE, NONE, Some(ord), 0, 0),
            EventKind::ThreadCreate { child } => (child.0, NONE, NONE, None, 0, 0),
            EventKind::ThreadJoin { target } => (target.0, NONE, NONE, None, 0, 0),
            EventKind::ThreadFinish => (0, NONE, NONE, None, 0, 0),
            EventKind::DataWrite { loc } => (loc.0, NONE, NONE, None, 0, 0),
            EventKind::DataRead { loc } => (loc.0, NONE, NONE, None, 0, 0),
        };

        let sc_index = match ord {
            Some(o) if o.is_seq_cst() => {
                self.sc_order.push(id);
                self.sc_order.len() as u32 - 1
            }
            _ => NONE,
        };

        // Per-location canonical minima and reader chains.
        match kind.tag() {
            EventTag::Load | EventTag::Store | EventTag::Rmw => {
                SigState::note_min(&mut self.sig.loc_min, loc as usize, ceid);
                if kind.tag() != EventTag::Store {
                    let li = loc as usize;
                    if self.readers.len() <= li {
                        self.readers.resize_with(li + 1, Vec::new);
                    }
                    self.readers[li].push(id);
                }
            }
            EventTag::DataWrite | EventTag::DataRead => {
                SigState::note_min(&mut self.sig.data_min, loc as usize, ceid);
            }
            _ => {}
        }

        if self.record_sw {
            self.record_sw_delta(tid, id, kind);
        }

        self.tids.push(tid.0);
        self.seqs.push(seq);
        self.tags.push(kind.tag());
        self.locs.push(loc);
        self.rfs.push(rf);
        self.mo_indices.push(mo_index);
        self.sc_indices.push(sc_index);
        self.clocks.push(clock);
        self.arena.push(ord, val, written);
        self.thread_events[tid.idx()].push(id);
        id
    }

    /// Record the sw edges this commit creates (C++11 release/acquire via
    /// rf, release sequences through RMW chains, the fence rules 29.8,
    /// create/join edges). Called before the event's own row is appended;
    /// every edge source is an already-committed event.
    fn record_sw_delta(&mut self, tid: Tid, id: EventId, kind: EventKind) {
        // create → first event of the child.
        if self.thread_events[tid.idx()].is_empty() {
            let c = self.pending_create[tid.idx()];
            if c != NONE {
                self.sw_edges.push((EventId(c), id));
            }
        }
        match kind {
            EventKind::ThreadJoin { target } => {
                // finish(target) → join. The runtime guarantees the target
                // finished; scan backwards for robustness against
                // hand-built traces.
                let fin = self
                    .thread_events
                    .get(target.idx())
                    .and_then(|evs| {
                        evs.iter()
                            .rev()
                            .find(|e| self.tags[e.idx()] == EventTag::Finish)
                    })
                    .copied();
                if let Some(f) = fin {
                    self.sw_edges.push((f, id));
                }
            }
            EventKind::Fence { ord } => {
                if ord.is_acquire() {
                    // 29.8p3-4: the fence synchronizes with every source
                    // whose store an earlier read of this thread read.
                    for i in 0..self.read_srcs[tid.idx()].len() {
                        let s = self.read_srcs[tid.idx()][i];
                        self.sw_edges.push((s, id));
                    }
                }
                if ord.is_release() {
                    self.rel_fences[tid.idx()].push(id);
                }
            }
            EventKind::AtomicLoad {
                ord, rf: Some(w), ..
            }
            | EventKind::Rmw {
                ord, rf: Some(w), ..
            } => {
                // Sources: release stores on the release chain of `w`
                // (the chain of RMWs back to the first plain store), plus
                // release fences sequenced before each chain element.
                let mut srcs = std::mem::take(&mut self.src_scratch);
                srcs.clear();
                let mut cur = w;
                loop {
                    let ci = cur.idx();
                    if self.arena.ords[ci].is_some_and(|o| o.is_release()) {
                        srcs.push(cur);
                    }
                    let ct = self.tids[ci] as usize;
                    let cseq = self.seqs[ci];
                    for &f in &self.rel_fences[ct] {
                        if self.seqs[f.idx()] < cseq {
                            srcs.push(f);
                        }
                    }
                    if self.tags[ci] == EventTag::Rmw && self.rfs[ci] != NONE {
                        cur = EventId(self.rfs[ci]);
                    } else {
                        break;
                    }
                }
                if ord.is_acquire() {
                    for &s in &srcs {
                        self.sw_edges.push((s, id));
                    }
                }
                self.read_srcs[tid.idx()].extend_from_slice(&srcs);
                self.src_scratch = srcs;
            }
            _ => {}
        }
    }

    // ---- row accessors -----------------------------------------------

    /// Executing thread of `id`.
    #[inline]
    pub fn tid(&self, id: EventId) -> Tid {
        Tid(self.tids[id.idx()])
    }

    /// 1-based per-thread sequence number of `id`.
    #[inline]
    pub fn seq(&self, id: EventId) -> u32 {
        self.seqs[id.idx()]
    }

    /// Kind discriminant of `id` (one byte; no payload materialization).
    #[inline]
    pub fn tag(&self, id: EventId) -> EventTag {
        self.tags[id.idx()]
    }

    /// Happens-before snapshot of `id` (own thread component implicit —
    /// query through [`Trace::happens_before`]).
    #[inline]
    pub fn clock(&self, id: EventId) -> &VecClock {
        &self.clocks[id.idx()]
    }

    /// Position of `id` in *S*, when it is `seq_cst`.
    #[inline]
    pub fn sc_index(&self, id: EventId) -> Option<u32> {
        match self.sc_indices[id.idx()] {
            NONE => None,
            s => Some(s),
        }
    }

    /// The store `id` read from, if it reads (`None` also for reads of the
    /// uninitialized pseudo-store).
    #[inline]
    pub fn rf(&self, id: EventId) -> Option<EventId> {
        match self.rfs[id.idx()] {
            NONE => None,
            w => Some(EventId(w)),
        }
    }

    /// mo index of the write, if `id` writes (a failed compare-exchange
    /// does not).
    #[inline]
    pub fn mo_index(&self, id: EventId) -> Option<u32> {
        match self.mo_indices[id.idx()] {
            NONE => None,
            m => Some(m),
        }
    }

    /// Is `id` a store or successful RMW (i.e. in some mo chain)?
    #[inline]
    pub fn is_write(&self, id: EventId) -> bool {
        self.mo_indices[id.idx()] != NONE
    }

    /// Is `id` a load or RMW (successful or not)?
    #[inline]
    pub fn is_read(&self, id: EventId) -> bool {
        matches!(self.tags[id.idx()], EventTag::Load | EventTag::Rmw)
    }

    /// Is `id` a `seq_cst` event?
    #[inline]
    pub fn is_sc(&self, id: EventId) -> bool {
        self.sc_indices[id.idx()] != NONE
    }

    /// Ordering parameter of `id`, if it has one.
    #[inline]
    pub fn ord(&self, id: EventId) -> Option<MemOrd> {
        self.arena.ords[id.idx()]
    }

    /// Atomic location touched by `id`, if any.
    #[inline]
    pub fn atomic_loc(&self, id: EventId) -> Option<LocId> {
        match self.tags[id.idx()] {
            EventTag::Load | EventTag::Store | EventTag::Rmw => Some(LocId(self.locs[id.idx()])),
            _ => None,
        }
    }

    /// Value written to the location by `id`, if any.
    #[inline]
    pub fn written_val(&self, id: EventId) -> Option<Val> {
        let i = id.idx();
        match self.tags[i] {
            EventTag::Store => Some(self.arena.vals[i]),
            EventTag::Rmw if self.mo_indices[i] != NONE => Some(self.arena.writtens[i]),
            _ => None,
        }
    }

    /// Materialize the logical [`EventKind`] of `id` from the columns
    /// (allocation-free; `EventKind` is `Copy`).
    pub fn kind(&self, id: EventId) -> EventKind {
        let i = id.idx();
        match self.tags[i] {
            EventTag::Load => EventKind::AtomicLoad {
                loc: LocId(self.locs[i]),
                ord: self.arena.ords[i].expect("load has an ordering"),
                rf: self.rf(id),
                val: self.arena.vals[i],
            },
            EventTag::Store => EventKind::AtomicStore {
                loc: LocId(self.locs[i]),
                ord: self.arena.ords[i].expect("store has an ordering"),
                val: self.arena.vals[i],
                mo_index: self.mo_indices[i],
            },
            EventTag::Rmw => {
                let success = self.mo_indices[i] != NONE;
                EventKind::Rmw {
                    loc: LocId(self.locs[i]),
                    ord: self.arena.ords[i].expect("rmw has an ordering"),
                    rf: self.rf(id),
                    read_val: self.arena.vals[i],
                    written: if success {
                        Some(self.arena.writtens[i])
                    } else {
                        None
                    },
                    mo_index: if success { self.mo_indices[i] } else { 0 },
                }
            }
            EventTag::Fence => EventKind::Fence {
                ord: self.arena.ords[i].expect("fence has an ordering"),
            },
            EventTag::Create => EventKind::ThreadCreate {
                child: Tid(self.locs[i]),
            },
            EventTag::Join => EventKind::ThreadJoin {
                target: Tid(self.locs[i]),
            },
            EventTag::Finish => EventKind::ThreadFinish,
            EventTag::DataWrite => EventKind::DataWrite {
                loc: DataId(self.locs[i]),
            },
            EventTag::DataRead => EventKind::DataRead {
                loc: DataId(self.locs[i]),
            },
        }
    }

    // ---- relation queries ----------------------------------------------

    /// Does `a` happen-before `b`? (`hb = (sb ∪ sw)⁺`, irreflexive.)
    /// O(1): program order within a thread, the committed clock snapshot
    /// across threads.
    #[inline]
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        if a == b {
            return false;
        }
        let (ai, bi) = (a.idx(), b.idx());
        if self.tids[ai] == self.tids[bi] {
            // Program order; `b`'s clock does not carry its own thread.
            return self.seqs[ai] < self.seqs[bi];
        }
        self.clocks[bi].knows(Tid(self.tids[ai]), self.seqs[ai])
    }

    /// Alias of [`Trace::happens_before`] (historical name).
    #[inline]
    pub fn hb(&self, a: EventId, b: EventId) -> bool {
        self.happens_before(a, b)
    }

    /// Are `a` and `b` both SC and is `a` before `b` in *S*?
    #[inline]
    pub fn sc_before(&self, a: EventId, b: EventId) -> bool {
        let (x, y) = (self.sc_indices[a.idx()], self.sc_indices[b.idx()]);
        x != NONE && y != NONE && x < y
    }

    /// The paper's ordering test for ordering points: `a` is ordered before
    /// `b` when `a` happens-before `b` **or** `a` precedes `b` in *S*.
    #[inline]
    pub fn ordered_before(&self, a: EventId, b: EventId) -> bool {
        self.hb(a, b) || self.sc_before(a, b)
    }

    /// All writes to `loc` in modification order.
    pub fn mo_of(&self, loc: LocId) -> &[EventId] {
        self.mo.get(loc.idx()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Exclusive upper bound on atomic location ids with any indexed
    /// activity — bounds loops over [`Trace::mo_of`] / [`Trace::readers_of`].
    /// (May over-approximate after [`Trace::clear`]: stale slots are empty.)
    pub fn loc_bound(&self) -> usize {
        self.readers.len().max(self.mo.len())
    }

    /// All reads (loads and RMWs) of `loc` in commit order — the rf side
    /// of the per-location index, maintained by [`Trace::push`].
    pub fn readers_of(&self, loc: LocId) -> &[EventId] {
        self.readers
            .get(loc.idx())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Events of `tid` in commit (= program) order, maintained by
    /// [`Trace::push`].
    pub fn events_of_thread(&self, tid: Tid) -> &[EventId] {
        self.thread_events
            .get(tid.idx())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The recorded sb∪sw adjacency delta: every synchronizes-with edge
    /// (create/join edges included) in commit order. Empty unless
    /// [`Trace::record_sw`] was set while the events were pushed.
    pub fn sw_edges(&self) -> &[(EventId, EventId)] {
        &self.sw_edges
    }

    /// Number of atomic operations (loads, stores, RMWs, fences).
    pub fn atomic_op_count(&self) -> usize {
        self.tags
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    EventTag::Load | EventTag::Store | EventTag::Rmw | EventTag::Fence
                )
            })
            .count()
    }

    /// Overwrite the stored clock snapshot of `id` — test-builder support
    /// (`relations`' builder computes clocks post-hoc from the offline hb).
    #[cfg(test)]
    pub(crate) fn set_clock(&mut self, id: EventId, clock: VecClock) {
        self.clocks[id.idx()] = clock;
    }

    /// A compact multi-line rendering for diagnostics.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for i in 0..self.len() {
            let id = EventId(i as u32);
            let _ = write!(s, "{:>4} {} #{:<3} ", id, self.tid(id), self.seq(id));
            match self.kind(id) {
                EventKind::AtomicLoad { loc, ord, rf, val } => {
                    let _ = write!(s, "load  {loc} {ord} = {val}");
                    match rf {
                        Some(w) => {
                            let _ = write!(s, " (rf {w})");
                        }
                        None => {
                            let _ = write!(s, " (UNINITIALIZED)");
                        }
                    }
                }
                EventKind::AtomicStore {
                    loc,
                    ord,
                    val,
                    mo_index,
                } => {
                    let _ = write!(s, "store {loc} {ord} := {val} (mo {mo_index})");
                }
                EventKind::Rmw {
                    loc,
                    ord,
                    rf,
                    read_val,
                    written,
                    mo_index,
                } => {
                    match written {
                        Some(w) => {
                            let _ =
                                write!(s, "rmw   {loc} {ord} {read_val} -> {w} (mo {mo_index})");
                        }
                        None => {
                            let _ = write!(s, "rmw   {loc} {ord} read {read_val} (failed)");
                        }
                    }
                    if let Some(r) = rf {
                        let _ = write!(s, " (rf {r})");
                    }
                }
                EventKind::Fence { ord } => {
                    let _ = write!(s, "fence {ord}");
                }
                EventKind::ThreadCreate { child } => {
                    let _ = write!(s, "create {child}");
                }
                EventKind::ThreadJoin { target } => {
                    let _ = write!(s, "join   {target}");
                }
                EventKind::ThreadFinish => {
                    let _ = write!(s, "finish");
                }
                EventKind::DataWrite { loc } => {
                    let _ = write!(s, "write {loc}");
                }
                EventKind::DataRead { loc } => {
                    let _ = write!(s, "read  {loc}");
                }
            }
            if let Some(sc) = self.sc_index(id) {
                let _ = write!(s, "  [S{sc}]");
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_event_trace() -> Trace {
        let mut t = Trace {
            num_threads: 2,
            mo: vec![Vec::new()],
            ..Trace::default()
        };
        let w = t.push(
            Tid(0),
            1,
            EventKind::AtomicStore {
                loc: LocId(0),
                ord: MemOrd::SeqCst,
                val: 1,
                mo_index: 0,
            },
            VecClock::new(),
        );
        t.mo[0].push(w);
        let mut clock = VecClock::new();
        clock.set(Tid(0), 1);
        t.push(
            Tid(1),
            1,
            EventKind::AtomicLoad {
                loc: LocId(0),
                ord: MemOrd::SeqCst,
                rf: Some(w),
                val: 1,
            },
            clock,
        );
        t
    }

    #[test]
    fn hb_and_sc_queries() {
        let t = two_event_trace();
        assert!(t.hb(EventId(0), EventId(1)));
        assert!(!t.hb(EventId(1), EventId(0)));
        assert!(t.sc_before(EventId(0), EventId(1)));
        assert!(!t.sc_before(EventId(1), EventId(0)));
        assert!(t.ordered_before(EventId(0), EventId(1)));
    }

    #[test]
    fn happens_before_is_irreflexive() {
        let t = two_event_trace();
        assert!(!t.happens_before(EventId(0), EventId(0)));
        assert!(!t.happens_before(EventId(1), EventId(1)));
    }

    #[test]
    fn happens_before_same_thread_is_program_order() {
        let mut t = Trace {
            num_threads: 3,
            ..Trace::default()
        };
        t.push(Tid(2), 1, EventKind::ThreadFinish, VecClock::new());
        t.push(Tid(2), 2, EventKind::ThreadFinish, VecClock::new());
        // Neither clock mentions thread 2 — the own component is implicit.
        assert!(t.happens_before(EventId(0), EventId(1)));
        assert!(!t.happens_before(EventId(1), EventId(0)));
    }

    #[test]
    fn mo_lookup_handles_untouched_locations() {
        let t = two_event_trace();
        assert_eq!(t.mo_of(LocId(0)), &[EventId(0)]);
        assert!(t.mo_of(LocId(17)).is_empty());
    }

    #[test]
    fn row_accessors_match_materialized_kind() {
        let t = two_event_trace();
        let (w, r) = (EventId(0), EventId(1));
        assert_eq!(t.tag(w), EventTag::Store);
        assert_eq!(t.tag(r), EventTag::Load);
        assert!(t.is_write(w) && !t.is_write(r));
        assert!(t.is_read(r) && !t.is_read(w));
        assert!(t.is_sc(w) && t.is_sc(r));
        assert_eq!(t.mo_index(w), Some(0));
        assert_eq!(t.mo_index(r), None);
        assert_eq!(t.rf(r), Some(w));
        assert_eq!(t.written_val(w), Some(1));
        assert_eq!(t.written_val(r), None);
        assert_eq!(t.atomic_loc(r), Some(LocId(0)));
        assert_eq!(t.ord(w), Some(MemOrd::SeqCst));
        for id in [w, r] {
            let k = t.kind(id);
            assert_eq!(k.tag(), t.tag(id));
            assert_eq!(k.rf(), t.rf(id));
            assert_eq!(k.mo_index(), t.mo_index(id));
            assert_eq!(k.written_val(), t.written_val(id));
            assert_eq!(k.ord(), t.ord(id));
            assert_eq!(k.atomic_loc(), t.atomic_loc(id));
        }
    }

    #[test]
    fn failed_cas_materializes_with_written_none() {
        let mut t = Trace {
            num_threads: 1,
            ..Trace::default()
        };
        t.push(
            Tid(0),
            1,
            EventKind::Rmw {
                loc: LocId(3),
                ord: MemOrd::Acquire,
                rf: Some(EventId(7)),
                read_val: 9,
                written: None,
                mo_index: 0,
            },
            VecClock::new(),
        );
        assert_eq!(
            t.kind(EventId(0)),
            EventKind::Rmw {
                loc: LocId(3),
                ord: MemOrd::Acquire,
                rf: Some(EventId(7)),
                read_val: 9,
                written: None,
                mo_index: 0,
            }
        );
        assert!(!t.is_write(EventId(0)));
        assert!(t.is_read(EventId(0)));
    }

    #[test]
    fn specval_conversions() {
        assert_eq!(SpecVal::from(-1i32).as_i64(), -1);
        assert_eq!(SpecVal::from(7u64).as_u64(), 7);
        assert!(SpecVal::from(true).as_bool());
        assert!(SpecVal::from(3i64).as_bool());
        assert_eq!(SpecVal::from(()).to_owned(), SpecVal::Unit);
    }

    #[test]
    #[should_panic]
    fn specval_unit_as_int_panics() {
        SpecVal::Unit.as_i64();
    }

    #[test]
    fn render_mentions_all_events() {
        let t = two_event_trace();
        let r = t.render();
        assert!(r.contains("store"));
        assert!(r.contains("load"));
        assert!(r.contains("[S0]") && r.contains("[S1]"));
    }

    #[test]
    fn atomic_op_count_ignores_thread_events() {
        let mut t = two_event_trace();
        t.push(Tid(0), 2, EventKind::ThreadFinish, VecClock::new());
        assert_eq!(t.atomic_op_count(), 2);
    }

    #[test]
    fn incremental_indexes_track_pushes() {
        let t = two_event_trace();
        assert_eq!(t.events_of_thread(Tid(0)), &[EventId(0)]);
        assert_eq!(t.events_of_thread(Tid(1)), &[EventId(1)]);
        assert!(t.events_of_thread(Tid(9)).is_empty());
        assert_eq!(t.readers_of(LocId(0)), &[EventId(1)]);
        assert!(t.readers_of(LocId(5)).is_empty());
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut t = two_event_trace();
        let cap = t.tags.capacity();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.num_threads, 1);
        assert!(t.sc_order.is_empty());
        assert!(t.events_of_thread(Tid(0)).is_empty());
        assert!(t.readers_of(LocId(0)).is_empty());
        assert_eq!(t.tags.capacity(), cap);
        assert_eq!(t.sig.canon[0], fnv(FNV_OFFSET, 0));
        // Reusable: pushing after clear starts from id 0 again.
        let id = t.push(Tid(0), 1, EventKind::ThreadFinish, VecClock::new());
        assert_eq!(id, EventId(0));
    }
}
