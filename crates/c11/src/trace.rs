//! Completed-execution traces.
//!
//! A [`Trace`] is what the model checker hands to plugins (notably the
//! CDSSpec checker in `cdsspec-core`) after each feasible execution: the
//! committed events with their happens-before clocks, the per-location
//! modification orders, the SC total order *S*, and the stream of
//! *specification annotations* recorded by instrumented data-structure code
//! (method boundaries, arguments/return values, and ordering-point
//! markers — the run-time counterpart of the paper's `@OPDefine`,
//! `@PotentialOP`, `@OPCheck`, `@OPClear` and `@OPClearDefine`).

use crate::event::{Event, EventId, EventKind, Tid};
use crate::loc::LocId;

/// A dynamic value crossing the concurrent/sequential boundary (method
/// arguments and return values).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecVal {
    /// No value (e.g. a `void` method).
    Unit,
    /// Signed integer (the common case; the paper's examples use `int`).
    I64(i64),
    /// Unsigned integer / pointer bits.
    U64(u64),
    /// Boolean (e.g. `trylock` results).
    Bool(bool),
}

impl SpecVal {
    /// Interpret as `i64`, panicking on `Unit` (spec-writer error).
    pub fn as_i64(self) -> i64 {
        match self {
            SpecVal::I64(v) => v,
            SpecVal::U64(v) => v as i64,
            SpecVal::Bool(b) => b as i64,
            SpecVal::Unit => panic!("SpecVal::Unit interpreted as integer"),
        }
    }

    /// Interpret as `u64`.
    pub fn as_u64(self) -> u64 {
        match self {
            SpecVal::I64(v) => v as u64,
            SpecVal::U64(v) => v,
            SpecVal::Bool(b) => b as u64,
            SpecVal::Unit => panic!("SpecVal::Unit interpreted as integer"),
        }
    }

    /// Interpret as `bool` (nonzero integers are `true`).
    pub fn as_bool(self) -> bool {
        match self {
            SpecVal::Bool(b) => b,
            SpecVal::I64(v) => v != 0,
            SpecVal::U64(v) => v != 0,
            SpecVal::Unit => panic!("SpecVal::Unit interpreted as bool"),
        }
    }
}

impl From<i64> for SpecVal {
    fn from(v: i64) -> Self {
        SpecVal::I64(v)
    }
}
impl From<i32> for SpecVal {
    fn from(v: i32) -> Self {
        SpecVal::I64(v as i64)
    }
}
impl From<u64> for SpecVal {
    fn from(v: u64) -> Self {
        SpecVal::U64(v)
    }
}
impl From<usize> for SpecVal {
    fn from(v: usize) -> Self {
        SpecVal::U64(v as u64)
    }
}
impl From<bool> for SpecVal {
    fn from(v: bool) -> Self {
        SpecVal::Bool(v)
    }
}
impl From<()> for SpecVal {
    fn from(_: ()) -> Self {
        SpecVal::Unit
    }
}

/// One specification annotation recorded by instrumented code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecNote {
    /// Start of an API method call (paper: method *invocation* event).
    /// `obj` identifies the data-structure instance, enabling the
    /// composition of specifications (paper §3.2): each object is checked
    /// against its own sequential state.
    MethodBegin {
        /// Data-structure instance identity.
        obj: u64,
        /// Method name (e.g. `"enq"`).
        name: &'static str,
    },
    /// An argument value of the current method call.
    MethodArg {
        /// The argument.
        val: SpecVal,
    },
    /// End of an API method call with its return value (paper: *response*).
    MethodEnd {
        /// The return value (`SpecVal::Unit` for `void`).
        ret: SpecVal,
    },
    /// `@OPDefine`: the thread's immediately-preceding atomic operation is
    /// an ordering point of the current method call.
    OpDefine,
    /// `@OPClear`: discard all ordering points (confirmed and potential)
    /// observed so far in the current method call.
    OpClear,
    /// `@PotentialOP(label)`: the preceding atomic operation *may* be an
    /// ordering point; a later `OpCheck` with the same label confirms it.
    PotentialOp {
        /// Label matched by a later `OpCheck`.
        label: &'static str,
    },
    /// `@OPCheck(label)`: confirm all pending potential ordering points
    /// with `label`.
    OpCheck {
        /// Label of the potential ordering points to confirm.
        label: &'static str,
    },
}

/// An annotation bound to its position in the execution: the recording
/// thread and the thread's last committed event at recording time (the
/// operation "immediately preceding the annotation" in the paper's prose).
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Recording thread.
    pub tid: Tid,
    /// The thread's most recent event when the annotation was recorded
    /// (`None` if the thread had not yet performed any visible operation).
    pub after: Option<EventId>,
    /// Payload.
    pub note: SpecNote,
}

/// A completed execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in global execution (commit) order.
    pub events: Vec<Event>,
    /// Per-location modification order: `mo[loc.idx()]` lists the writes to
    /// `loc` in mo order (equal to their commit order).
    pub mo: Vec<Vec<EventId>>,
    /// The SC total order *S* (ids of `seq_cst` events in commit order).
    pub sc_order: Vec<EventId>,
    /// Number of threads that participated.
    pub num_threads: u32,
    /// Specification annotations in global recording order (per-thread
    /// subsequences are each thread's program order).
    pub annotations: Vec<Annotation>,
}

impl Trace {
    /// Event lookup.
    #[inline]
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.idx()]
    }

    /// Does `a` happen-before `b`? (`hb = (sb ∪ sw)⁺`, irreflexive.)
    pub fn hb(&self, a: EventId, b: EventId) -> bool {
        self.event(a).happens_before(self.event(b))
    }

    /// Are `a` and `b` both SC and is `a` before `b` in *S*?
    pub fn sc_before(&self, a: EventId, b: EventId) -> bool {
        match (self.event(a).sc_index, self.event(b).sc_index) {
            (Some(x), Some(y)) => x < y,
            _ => false,
        }
    }

    /// The paper's ordering test for ordering points: `a` is ordered before
    /// `b` when `a` happens-before `b` **or** `a` precedes `b` in *S*.
    pub fn ordered_before(&self, a: EventId, b: EventId) -> bool {
        self.hb(a, b) || self.sc_before(a, b)
    }

    /// All writes to `loc` in modification order.
    pub fn mo_of(&self, loc: LocId) -> &[EventId] {
        self.mo.get(loc.idx()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of atomic operations (loads, stores, RMWs, fences).
    pub fn atomic_op_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::AtomicLoad { .. }
                        | EventKind::AtomicStore { .. }
                        | EventKind::Rmw { .. }
                        | EventKind::Fence { .. }
                )
            })
            .count()
    }

    /// A compact multi-line rendering for diagnostics.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = write!(s, "{:>4} {} #{:<3} ", e.id, e.tid, e.seq);
            match &e.kind {
                EventKind::AtomicLoad { loc, ord, rf, val } => {
                    let _ = write!(s, "load  {loc} {ord} = {val}");
                    match rf {
                        Some(w) => {
                            let _ = write!(s, " (rf {w})");
                        }
                        None => {
                            let _ = write!(s, " (UNINITIALIZED)");
                        }
                    }
                }
                EventKind::AtomicStore {
                    loc,
                    ord,
                    val,
                    mo_index,
                } => {
                    let _ = write!(s, "store {loc} {ord} := {val} (mo {mo_index})");
                }
                EventKind::Rmw {
                    loc,
                    ord,
                    rf,
                    read_val,
                    written,
                    mo_index,
                } => {
                    match written {
                        Some(w) => {
                            let _ =
                                write!(s, "rmw   {loc} {ord} {read_val} -> {w} (mo {mo_index})");
                        }
                        None => {
                            let _ = write!(s, "rmw   {loc} {ord} read {read_val} (failed)");
                        }
                    }
                    if let Some(r) = rf {
                        let _ = write!(s, " (rf {r})");
                    }
                }
                EventKind::Fence { ord } => {
                    let _ = write!(s, "fence {ord}");
                }
                EventKind::ThreadCreate { child } => {
                    let _ = write!(s, "create {child}");
                }
                EventKind::ThreadJoin { target } => {
                    let _ = write!(s, "join   {target}");
                }
                EventKind::ThreadFinish => {
                    let _ = write!(s, "finish");
                }
                EventKind::DataWrite { loc } => {
                    let _ = write!(s, "write {loc}");
                }
                EventKind::DataRead { loc } => {
                    let _ = write!(s, "read  {loc}");
                }
            }
            if let Some(sc) = e.sc_index {
                let _ = write!(s, "  [S{sc}]");
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VecClock;
    use crate::ordering::MemOrd;

    fn mk_event(id: u32, tid: u32, seq: u32, kind: EventKind, sc: Option<u32>) -> Event {
        Event {
            id: EventId(id),
            tid: Tid(tid),
            seq,
            kind,
            clock: VecClock::new(),
            sc_index: sc,
        }
    }

    fn two_event_trace() -> Trace {
        let store = mk_event(
            0,
            0,
            1,
            EventKind::AtomicStore {
                loc: LocId(0),
                ord: MemOrd::SeqCst,
                val: 1,
                mo_index: 0,
            },
            Some(0),
        );
        let mut load = mk_event(
            1,
            1,
            1,
            EventKind::AtomicLoad {
                loc: LocId(0),
                ord: MemOrd::SeqCst,
                rf: Some(EventId(0)),
                val: 1,
            },
            Some(1),
        );
        load.clock.set(Tid(0), 1);
        Trace {
            events: vec![store, load],
            mo: vec![vec![EventId(0)]],
            sc_order: vec![EventId(0), EventId(1)],
            num_threads: 2,
            annotations: vec![],
        }
    }

    #[test]
    fn hb_and_sc_queries() {
        let t = two_event_trace();
        assert!(t.hb(EventId(0), EventId(1)));
        assert!(!t.hb(EventId(1), EventId(0)));
        assert!(t.sc_before(EventId(0), EventId(1)));
        assert!(!t.sc_before(EventId(1), EventId(0)));
        assert!(t.ordered_before(EventId(0), EventId(1)));
    }

    #[test]
    fn mo_lookup_handles_untouched_locations() {
        let t = two_event_trace();
        assert_eq!(t.mo_of(LocId(0)), &[EventId(0)]);
        assert!(t.mo_of(LocId(17)).is_empty());
    }

    #[test]
    fn specval_conversions() {
        assert_eq!(SpecVal::from(-1i32).as_i64(), -1);
        assert_eq!(SpecVal::from(7u64).as_u64(), 7);
        assert!(SpecVal::from(true).as_bool());
        assert!(SpecVal::from(3i64).as_bool());
        assert_eq!(SpecVal::from(()).to_owned(), SpecVal::Unit);
    }

    #[test]
    #[should_panic]
    fn specval_unit_as_int_panics() {
        SpecVal::Unit.as_i64();
    }

    #[test]
    fn render_mentions_all_events() {
        let t = two_event_trace();
        let r = t.render();
        assert!(r.contains("store"));
        assert!(r.contains("load"));
        assert!(r.contains("[S0]") && r.contains("[S1]"));
    }

    #[test]
    fn atomic_op_count_ignores_thread_events() {
        let mut t = two_event_trace();
        t.events
            .push(mk_event(2, 0, 2, EventKind::ThreadFinish, None));
        assert_eq!(t.atomic_op_count(), 2);
    }
}
