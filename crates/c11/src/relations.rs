//! Derived relations: a fast commit-time-index auditor, an independent
//! post-hoc axiom oracle, and the canonical rf signature.
//!
//! The model checker computes happens-before *online* with vector clocks
//! and maintains per-location/per-thread indexes incrementally as events
//! commit (see [`crate::trace`]). This module offers two checkers over a
//! finished trace:
//!
//! * [`audit`] — the production-path checker. It trusts the trace's
//!   incremental indexes (clocks for hb, `mo`, reader chains) and checks
//!   the coherence, RMW-atomicity, and SC axioms with O(1) hb queries —
//!   no O(n²) matrix, no transitive closure.
//! * [`validate`] — the differential oracle (kept compiled in, like
//!   `clock::naive`). It recomputes everything from first principles —
//!   sb, thread create/join edges, synchronizes-with from reads-from
//!   (including release sequences continued through RMWs and the C11
//!   fence rules) — closes the relation with Floyd–Warshall, and checks
//!   the same axioms, optionally cross-checking the stored clocks
//!   pairwise against the recomputed hb.
//!
//! Property tests in `cdsspec-mc` run every explored execution of random
//! programs through both and require agreement, so a divergence between
//! the online clocks/indexes and the oracle is caught immediately.
//! [`check_sw_delta`] additionally replays the commit-time sb∪sw
//! adjacency delta (recorded when `Trace::record_sw` is set) and requires
//! its closure to equal the oracle's hb.
//!
//! The SC-fence strengthening rules (C++11 29.3 p4–p6) are derived from
//! first principles (S = the trace's SC order, sb = per-thread sequence)
//! and checked as mo lower bounds on every read; the walk is linear and
//! shared by both checkers.

use crate::event::{EventId, EventKind, EventTag, Tid};
use crate::ordering::MemOrd;
use crate::trace::{fnv, Trace, FNV_OFFSET};

/// A violation of the C/C++11 axioms found by [`validate`] or [`audit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AxiomError {
    /// `hb` contradicts execution order (would imply a cycle).
    HbCycle {
        /// Earlier event (in execution order).
        a: EventId,
        /// Later event claimed to happen-before `a`.
        b: EventId,
    },
    /// The stored vector clocks disagree with the recomputed `hb`.
    ClockMismatch {
        /// First event of the disagreeing pair.
        a: EventId,
        /// Second event of the disagreeing pair.
        b: EventId,
        /// `hb(a, b)` according to the online clocks.
        online: bool,
        /// `hb(a, b)` according to the offline recomputation.
        offline: bool,
    },
    /// A read's `rf` edge is malformed (wrong location, wrong value, or
    /// points forward in execution order).
    BadRf {
        /// The offending read.
        read: EventId,
        /// Human-readable description of the malformation.
        detail: String,
    },
    /// Write-read coherence: a newer store to the location happens-before
    /// the read, hiding the store it read from.
    CoWr {
        /// The offending read.
        read: EventId,
        /// The newer store that hides the read's `rf` target.
        hidden_by: EventId,
    },
    /// Read-read coherence: an hb-earlier read observed a newer store.
    CoRr {
        /// The hb-earlier read.
        first: EventId,
        /// The hb-later read that observed an older store.
        second: EventId,
    },
    /// Write-write coherence: hb contradicts mo.
    CoWw {
        /// The mo-earlier store.
        first: EventId,
        /// The mo-later store that happens-before `first`.
        second: EventId,
    },
    /// Read-write coherence: a read observed a store mo-after a write it
    /// happens-before.
    CoRw {
        /// The offending read.
        read: EventId,
        /// The write the read happens-before.
        write: EventId,
    },
    /// A successful RMW did not read its immediate mo predecessor.
    RmwAtomicity {
        /// The offending RMW.
        rmw: EventId,
    },
    /// An SC read violated C++11 29.3p3 (read an SC store other than the
    /// last preceding one in *S*, or a store hidden behind it).
    ScRead {
        /// The offending SC read.
        read: EventId,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A read violated one of the SC-fence rules (C++11 29.3 p4–p6): it
    /// observed a store older than the fence-published floor.
    ScFence {
        /// The offending read.
        read: EventId,
        /// Which of p4/p5/p6 fired.
        rule: &'static str,
    },
}

impl std::fmt::Display for AxiomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiomError::HbCycle { a, b } => write!(f, "hb cycle between {a} and {b}"),
            AxiomError::ClockMismatch {
                a,
                b,
                online,
                offline,
            } => write!(
                f,
                "clock mismatch for ({a},{b}): online hb={online}, offline hb={offline}"
            ),
            AxiomError::BadRf { read, detail } => write!(f, "bad rf at {read}: {detail}"),
            AxiomError::CoWr { read, hidden_by } => {
                write!(f, "CoWR: {read} reads a store hidden by {hidden_by}")
            }
            AxiomError::CoRr { first, second } => {
                write!(f, "CoRR: {first} hb {second} but read a newer store")
            }
            AxiomError::CoWw { first, second } => {
                write!(f, "CoWW: {first} hb {second} but mo disagrees")
            }
            AxiomError::CoRw { read, write } => {
                write!(f, "CoRW: {read} hb {write} but read an mo-later store")
            }
            AxiomError::RmwAtomicity { rmw } => {
                write!(f, "RMW {rmw} did not read its immediate mo predecessor")
            }
            AxiomError::ScRead { read, detail } => write!(f, "SC read {read}: {detail}"),
            AxiomError::ScFence { read, rule } => {
                write!(f, "SC-fence rule {rule} violated by read {read}")
            }
        }
    }
}

/// Dense reachability matrix over events (oracle-internal).
struct HbMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl HbMatrix {
    fn new(n: usize) -> Self {
        HbMatrix {
            n,
            bits: vec![false; n * n],
        }
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> bool {
        self.bits[a * self.n + b]
    }

    #[inline]
    fn set(&mut self, a: usize, b: usize) {
        self.bits[a * self.n + b] = true;
    }

    /// Transitive closure (Floyd–Warshall; traces are small).
    fn close(&mut self) {
        for k in 0..self.n {
            for i in 0..self.n {
                if self.get(i, k) {
                    for j in 0..self.n {
                        if self.get(k, j) {
                            self.set(i, j);
                        }
                    }
                }
            }
        }
    }
}

/// The release-sequence elements a read of `w` may synchronize through:
/// `w` itself plus the chain of RMWs it (transitively) read from, ending at
/// the first non-RMW store. Returned from `w` backwards.
fn release_chain(trace: &Trace, w: EventId) -> Vec<EventId> {
    let mut chain = vec![w];
    let mut cur = w;
    while trace.tag(cur) == EventTag::Rmw {
        match trace.rf(cur) {
            Some(prev) => {
                cur = prev;
                chain.push(cur);
            }
            None => break,
        }
    }
    chain
}

/// Recompute `hb` offline, from the columns alone — never from the
/// incremental indexes it is meant to check. Returns the closed matrix.
fn compute_hb(trace: &Trace) -> HbMatrix {
    let n = trace.len();
    let mut hb = HbMatrix::new(n);

    // sb: consecutive events of the same thread.
    let mut last_of_thread: Vec<Option<usize>> = vec![None; trace.num_threads as usize];
    // First event of each thread (for create edges).
    let mut first_of_thread: Vec<Option<usize>> = vec![None; trace.num_threads as usize];
    // Finish event of each thread (for join edges).
    let mut finish_of_thread: Vec<Option<usize>> = vec![None; trace.num_threads as usize];

    for i in 0..n {
        let id = EventId(i as u32);
        let t = trace.tid(id).idx();
        if let Some(prev) = last_of_thread[t] {
            hb.set(prev, i);
        }
        if first_of_thread[t].is_none() {
            first_of_thread[t] = Some(i);
        }
        if trace.tag(id) == EventTag::Finish {
            finish_of_thread[t] = Some(i);
        }
        last_of_thread[t] = Some(i);
    }

    // create / join edges.
    for i in 0..n {
        match trace.kind(EventId(i as u32)) {
            EventKind::ThreadCreate { child } => {
                if let Some(Some(first)) = first_of_thread.get(child.idx()) {
                    hb.set(i, *first);
                }
            }
            EventKind::ThreadJoin { target } => {
                if let Some(Some(fin)) = finish_of_thread.get(target.idx()) {
                    hb.set(*fin, i);
                }
            }
            _ => {}
        }
    }

    // sw from rf (+ release sequences + fences).
    let release_fences_before = |tid: Tid, seq: u32| -> Vec<usize> {
        (0..n)
            .filter(|&i| {
                let f = EventId(i as u32);
                trace.tid(f) == tid
                    && trace.seq(f) < seq
                    && trace.tag(f) == EventTag::Fence
                    && trace.ord(f).is_some_and(|o| o.is_release())
            })
            .collect()
    };
    let acquire_fences_after = |tid: Tid, seq: u32| -> Vec<usize> {
        (0..n)
            .filter(|&i| {
                let f = EventId(i as u32);
                trace.tid(f) == tid
                    && trace.seq(f) > seq
                    && trace.tag(f) == EventTag::Fence
                    && trace.ord(f).is_some_and(|o| o.is_acquire())
            })
            .collect()
    };

    for ri in 0..n {
        let r = EventId(ri as u32);
        let (r_ord, rf) = match trace.kind(r) {
            EventKind::AtomicLoad { ord, rf, .. } => (ord, rf),
            EventKind::Rmw { ord, rf, .. } => (ord, rf),
            _ => continue,
        };
        let Some(w) = rf else { continue };

        // Collect sync sources.
        let mut sources: Vec<usize> = Vec::new();
        for elem in release_chain(trace, w) {
            let w_ord = trace.ord(elem).unwrap_or(MemOrd::Relaxed);
            if w_ord.is_release() {
                sources.push(elem.idx());
            }
            // A release fence sequenced before a store in the (hypothetical)
            // release sequence synchronizes too.
            for f in release_fences_before(trace.tid(elem), trace.seq(elem)) {
                sources.push(f);
            }
        }
        if sources.is_empty() {
            continue;
        }

        // Collect sync destinations.
        let mut dests: Vec<usize> = Vec::new();
        if r_ord.is_acquire() {
            dests.push(ri);
        }
        for f in acquire_fences_after(trace.tid(r), trace.seq(r)) {
            dests.push(f);
        }

        for &s in &sources {
            for &d in &dests {
                if s != d {
                    hb.set(s, d);
                }
            }
        }
    }

    hb.close();
    hb
}

/// The SC-fence rules (29.3 p4–p6), checked by a single commit-order walk
/// maintaining (a) the mo index of the last SC store per location, (b)
/// per-thread "own stores" tables, and (c) the global fence-published
/// floor; per-thread floors are snapshotted at each SC fence. Linear and
/// matrix-free, so [`validate`] and [`audit`] share it verbatim.
fn sc_fence_check(trace: &Trace, errors: &mut Vec<AxiomError>) {
    use crate::clock::CoherenceMap;
    let nthreads = trace.num_threads as usize;
    let mut sc_last_store = CoherenceMap::new();
    let mut published = CoherenceMap::new();
    let mut own_stores: Vec<CoherenceMap> = (0..nthreads).map(|_| CoherenceMap::new()).collect();
    let mut fence_floor: Vec<CoherenceMap> = (0..nthreads).map(|_| CoherenceMap::new()).collect();

    for i in 0..trace.len() {
        let id = EventId(i as u32);
        let tid = trace.tid(id);
        match trace.kind(id) {
            EventKind::AtomicStore {
                loc, ord, mo_index, ..
            } => {
                own_stores[tid.idx()].raise(loc, mo_index);
                if ord.is_seq_cst() {
                    sc_last_store.raise(loc, mo_index);
                }
            }
            EventKind::Rmw {
                loc,
                ord,
                written: Some(_),
                mo_index,
                ..
            } => {
                own_stores[tid.idx()].raise(loc, mo_index);
                if ord.is_seq_cst() {
                    sc_last_store.raise(loc, mo_index);
                }
            }
            EventKind::Fence { ord } if ord.is_seq_cst() => {
                let t = tid.idx();
                fence_floor[t].join(&sc_last_store); // p4
                fence_floor[t].join(&published); // p6
                let own = own_stores[t].clone();
                published.join(&own); // p5 (and later p6)
            }
            EventKind::AtomicLoad {
                loc,
                ord,
                rf: Some(w),
                ..
            }
            | EventKind::Rmw {
                loc,
                ord,
                rf: Some(w),
                ..
            } => {
                let got = trace.mo_index(w).unwrap_or(0);
                if let Some(fl) = fence_floor[tid.idx()].get(loc) {
                    if got < fl {
                        errors.push(AxiomError::ScFence {
                            read: id,
                            rule: "p4/p6",
                        });
                    }
                }
                if ord.is_seq_cst() {
                    if let Some(fl) = published.get(loc) {
                        if got < fl {
                            errors.push(AxiomError::ScFence {
                                read: id,
                                rule: "p5",
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Validate a finished trace against the memory-model axioms, recomputing
/// every relation from first principles (the differential oracle). Returns
/// every violation found (empty = consistent).
///
/// When `check_clocks` is set, the trace's stored vector clocks are compared
/// pairwise against the recomputed `hb` — the strongest cross-check of the
/// online implementation.
pub fn validate(trace: &Trace, check_clocks: bool) -> Vec<AxiomError> {
    let mut errors = Vec::new();
    let n = trace.len();
    let hb = compute_hb(trace);

    // Acyclicity: hb must embed into execution order.
    for a in 0..n {
        for b in 0..n {
            if hb.get(a, b) && b <= a {
                errors.push(AxiomError::HbCycle {
                    a: EventId(a as u32),
                    b: EventId(b as u32),
                });
            }
        }
    }

    if check_clocks {
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let online = trace.hb(EventId(a as u32), EventId(b as u32));
                let offline = hb.get(a, b);
                if online != offline {
                    errors.push(AxiomError::ClockMismatch {
                        a: EventId(a as u32),
                        b: EventId(b as u32),
                        online,
                        offline,
                    });
                }
            }
        }
    }

    // rf well-formedness + coherence.
    for ri in 0..n {
        let r = EventId(ri as u32);
        let (loc, rf, read_val) = match trace.kind(r) {
            EventKind::AtomicLoad { loc, rf, val, .. } => (loc, rf, val),
            EventKind::Rmw {
                loc, rf, read_val, ..
            } => (loc, rf, read_val),
            _ => continue,
        };
        let Some(w) = rf else { continue };
        if trace.atomic_loc(w) != Some(loc) {
            errors.push(AxiomError::BadRf {
                read: r,
                detail: format!("rf {w} is to a different location"),
            });
            continue;
        }
        match trace.written_val(w) {
            Some(v) if v == read_val => {}
            other => errors.push(AxiomError::BadRf {
                read: r,
                detail: format!("value mismatch: read {read_val}, store wrote {other:?}"),
            }),
        }
        if w.idx() >= ri {
            errors.push(AxiomError::BadRf {
                read: r,
                detail: "reads from a later event (load buffering is out of scope)".into(),
            });
        }

        let w_mo = trace.mo_index(w).unwrap_or(0);

        // CoWR: no store to loc with larger mo index hb-before the read.
        for &w2 in trace.mo_of(loc) {
            if trace.mo_index(w2).unwrap_or(0) > w_mo && hb.get(w2.idx(), ri) {
                errors.push(AxiomError::CoWr {
                    read: r,
                    hidden_by: w2,
                });
            }
        }

        // CoRW: read hb-before a same-loc write with smaller-or-equal mo.
        for &w2 in trace.mo_of(loc) {
            if hb.get(ri, w2.idx()) && trace.mo_index(w2).unwrap_or(0) <= w_mo && w2 != w {
                errors.push(AxiomError::CoRw { read: r, write: w2 });
            }
        }
    }

    // CoRR: pairwise over reads of the same location.
    for i in 0..n {
        let a = EventId(i as u32);
        let (la, rfa) = match trace.kind(a) {
            EventKind::AtomicLoad { loc, rf, .. } | EventKind::Rmw { loc, rf, .. } => (loc, rf),
            _ => continue,
        };
        let Some(wa) = rfa else { continue };
        for j in 0..n {
            if i == j || !hb.get(i, j) {
                continue;
            }
            let b = EventId(j as u32);
            let (lb, rfb) = match trace.kind(b) {
                EventKind::AtomicLoad { loc, rf, .. } | EventKind::Rmw { loc, rf, .. } => (loc, rf),
                _ => continue,
            };
            if la != lb {
                continue;
            }
            let Some(wb) = rfb else { continue };
            let ma = trace.mo_index(wa).unwrap_or(0);
            let mb = trace.mo_index(wb).unwrap_or(0);
            if ma > mb {
                errors.push(AxiomError::CoRr {
                    first: a,
                    second: b,
                });
            }
        }
    }

    // CoWW: hb over same-loc writes must agree with mo.
    for locs in &trace.mo {
        for (x, &w1) in locs.iter().enumerate() {
            for &w2 in &locs[x + 1..] {
                if hb.get(w2.idx(), w1.idx()) {
                    errors.push(AxiomError::CoWw {
                        first: w2,
                        second: w1,
                    });
                }
            }
        }
    }

    // RMW atomicity.
    for i in 0..n {
        let id = EventId(i as u32);
        if let EventKind::Rmw {
            rf,
            written: Some(_),
            mo_index,
            ..
        } = trace.kind(id)
        {
            let expected_prev = match rf {
                Some(w) => trace.mo_index(w).map(|m| m + 1),
                None => Some(0),
            };
            if expected_prev != Some(mo_index) {
                errors.push(AxiomError::RmwAtomicity { rmw: id });
            }
        }
    }

    // SC reads (29.3p3).
    sc_read_check(trace, &mut errors, |a, b| hb.get(a.idx(), b.idx()));

    // SC-fence rules (29.3 p4–p6).
    sc_fence_check(trace, &mut errors);

    errors
}

/// The SC-read rule (29.3p3), parameterized over the hb test so the oracle
/// can pass the closed matrix and the auditor the O(1) clock query.
fn sc_read_check(
    trace: &Trace,
    errors: &mut Vec<AxiomError>,
    hb: impl Fn(EventId, EventId) -> bool,
) {
    for i in 0..trace.len() {
        let id = EventId(i as u32);
        let (loc, rf, ord) = match trace.kind(id) {
            EventKind::AtomicLoad { loc, rf, ord, .. } => (loc, rf, ord),
            EventKind::Rmw { loc, rf, ord, .. } => (loc, rf, ord),
            _ => continue,
        };
        if !ord.is_seq_cst() {
            continue;
        }
        let Some(w) = rf else { continue };
        let r_sc = trace.sc_index(id).expect("SC event must have an S index");
        // B = last SC write to loc preceding the read in S.
        let b = trace
            .mo_of(loc)
            .iter()
            .filter(|&&x| trace.is_sc(x) && trace.sc_index(x).is_some_and(|s| s < r_sc))
            .copied()
            .last();
        let Some(b) = b else { continue };
        if w == b {
            continue;
        }
        let w_is_sc = trace.ord(w).map(|o| o.is_seq_cst()).unwrap_or(false);
        if w_is_sc {
            errors.push(AxiomError::ScRead {
                read: id,
                detail: format!("read SC store {w} but the last preceding SC store in S is {b}"),
            });
        } else if hb(w, b) {
            errors.push(AxiomError::ScRead {
                read: id,
                detail: format!("read non-SC store {w} that happens-before the last SC store {b}"),
            });
        }
    }
}

/// Check a finished trace against the memory-model axioms using the
/// trace's *incrementally maintained* state: O(1) clock queries for hb,
/// the per-location mo and reader chains for coherence, and the shared
/// linear SC-fence walk. No reachability matrix is built and no closure
/// is computed, so the per-execution cost is O(answer) in the indexes
/// rather than O(n²)/O(n³) — this is what the explorer runs on every
/// feasible execution when `Config::debug_audit` is on.
///
/// `audit` performs every [`validate`] check *except* the two that exist
/// to distrust the online state itself ([`AxiomError::HbCycle`] and
/// [`AxiomError::ClockMismatch`]): trusting the clocks is its premise,
/// and that trust is discharged separately by the lockstep property tests
/// that compare `audit` with `validate` on random programs.
pub fn audit(trace: &Trace) -> Vec<AxiomError> {
    let mut errors = Vec::new();
    let n = trace.len();

    // rf well-formedness + CoWR/CoRW, per read.
    for ri in 0..n {
        let r = EventId(ri as u32);
        if !trace.is_read(r) {
            continue;
        }
        let loc = trace.atomic_loc(r).expect("reads have a location");
        let Some(w) = trace.rf(r) else { continue };
        if trace.atomic_loc(w) != Some(loc) {
            errors.push(AxiomError::BadRf {
                read: r,
                detail: format!("rf {w} is to a different location"),
            });
            continue;
        }
        let read_val = match trace.kind(r) {
            EventKind::AtomicLoad { val, .. } => val,
            EventKind::Rmw { read_val, .. } => read_val,
            _ => unreachable!("is_read"),
        };
        match trace.written_val(w) {
            Some(v) if v == read_val => {}
            other => errors.push(AxiomError::BadRf {
                read: r,
                detail: format!("value mismatch: read {read_val}, store wrote {other:?}"),
            }),
        }
        if w.idx() >= ri {
            errors.push(AxiomError::BadRf {
                read: r,
                detail: "reads from a later event (load buffering is out of scope)".into(),
            });
        }

        let w_mo = trace.mo_index(w).unwrap_or(0);
        for &w2 in trace.mo_of(loc) {
            if trace.mo_index(w2).unwrap_or(0) > w_mo && trace.happens_before(w2, r) {
                errors.push(AxiomError::CoWr {
                    read: r,
                    hidden_by: w2,
                });
            }
        }
        for &w2 in trace.mo_of(loc) {
            if trace.happens_before(r, w2) && trace.mo_index(w2).unwrap_or(0) <= w_mo && w2 != w {
                errors.push(AxiomError::CoRw { read: r, write: w2 });
            }
        }
    }

    // CoRR: per-location reader chains instead of all event pairs.
    for li in 0..trace.loc_bound() {
        let readers = trace.readers_of(crate::loc::LocId(li as u32));
        for &a in readers {
            let Some(wa) = trace.rf(a) else { continue };
            if trace.atomic_loc(wa) != trace.atomic_loc(a) {
                continue; // malformed rf already reported above
            }
            let ma = trace.mo_index(wa).unwrap_or(0);
            for &b in readers {
                if a == b || !trace.happens_before(a, b) {
                    continue;
                }
                let Some(wb) = trace.rf(b) else { continue };
                if trace.atomic_loc(wb) != trace.atomic_loc(b) {
                    continue;
                }
                let mb = trace.mo_index(wb).unwrap_or(0);
                if ma > mb {
                    errors.push(AxiomError::CoRr {
                        first: a,
                        second: b,
                    });
                }
            }
        }
    }

    // CoWW: hb over same-loc writes must agree with mo.
    for locs in &trace.mo {
        for (x, &w1) in locs.iter().enumerate() {
            for &w2 in &locs[x + 1..] {
                if trace.happens_before(w2, w1) {
                    errors.push(AxiomError::CoWw {
                        first: w2,
                        second: w1,
                    });
                }
            }
        }
    }

    // RMW atomicity.
    for i in 0..n {
        let id = EventId(i as u32);
        if trace.tag(id) == EventTag::Rmw && trace.is_write(id) {
            let expected_prev = match trace.rf(id) {
                Some(w) => trace.mo_index(w).map(|m| m + 1),
                None => Some(0),
            };
            if expected_prev != trace.mo_index(id) {
                errors.push(AxiomError::RmwAtomicity { rmw: id });
            }
        }
    }

    // SC reads (29.3p3), hb answered by the clocks.
    sc_read_check(trace, &mut errors, |a, b| trace.happens_before(a, b));

    // SC-fence rules (29.3 p4–p6).
    sc_fence_check(trace, &mut errors);

    errors
}

/// Cross-check the commit-time sb∪sw adjacency delta against the post-hoc
/// oracle: closing the recorded edges (plus sb from the per-thread event
/// ranges) must reproduce the oracle's hb matrix exactly. Only meaningful
/// on traces recorded with `Trace::record_sw` set. Returns the first
/// disagreeing ordered pair `(a, b)` on failure.
pub fn check_sw_delta(trace: &Trace) -> Result<(), (EventId, EventId)> {
    let n = trace.len();
    let mut m = HbMatrix::new(n);
    for t in 0..trace.num_threads {
        let evs = trace.events_of_thread(Tid(t));
        for w in evs.windows(2) {
            m.set(w[0].idx(), w[1].idx());
        }
    }
    for &(a, b) in trace.sw_edges() {
        if a != b {
            m.set(a.idx(), b.idx());
        }
    }
    m.close();
    let hb = compute_hb(trace);
    for a in 0..n {
        for b in 0..n {
            if a != b && m.get(a, b) != hb.get(a, b) {
                return Err((EventId(a as u32), EventId(b as u32)));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// rf-signature canonicalization (exploration identity)
// ---------------------------------------------------------------------

/// Sentinel mixed in for "reads the initial (uninitialized) value".
const NO_RF: u64 = 0x5eed_0000_0000_0001;

/// A schedule-independent identity for a completed execution: a hash of
/// the abstract execution graph — per-thread operation sequences, the
/// reads-from assignment, per-location modification orders, and the SC
/// order — with every schedule-dependent artifact canonicalized away.
///
/// Two completed executions that differ only in how the scheduler
/// interleaved their threads hash identically; executions that differ in
/// any rf edge, mo position, or SC position hash differently (modulo
/// 64-bit collisions). Concretely:
///
/// * **Threads** are named by their spawn path (parent's name plus the
///   parent's spawn count at creation), not by their interleaving-
///   dependent [`Tid`]; events are identified as (thread name, per-thread
///   sequence number), never by their global commit index.
/// * **Locations** are named by the smallest canonical event id that
///   touches them, because `LocId`/`DataId` allocation order tracks the
///   schedule.
/// * **Values are excluded**: the test closure is deterministic, so given
///   the per-thread operation sequences and the rf assignment the values
///   are redundant — and pointer-valued cells would otherwise leak
///   allocation addresses into the hash.
/// * Per-thread and per-location chains are combined commutatively, so
///   the fold order (which tracks the schedule) cannot leak in.
///
/// Signatures are comparable within one test closure's exploration —
/// that is their only use: counting rf classes and checking that pruned
/// and unpruned explorations cover the same classes. The values are also
/// persisted in campaign checkpoints, so the hash must stay bit-for-bit
/// stable across engine changes; [`posthoc::rf_signature`] keeps the
/// original full-re-walk derivation compiled in as the reference, and
/// lockstep tests pin this incremental finalize to it.
///
/// This finalize is a single allocation-free O(n) fold over state the
/// trace maintained at commit time (`SigState`: spawn-path thread names,
/// per-event canonical ids, per-location minima) — the canonicalization
/// itself costs nothing extra at the leaf.
pub fn rf_signature(trace: &Trace) -> u64 {
    let nthreads = trace.num_threads as usize;
    let st = &trace.sig;
    let canon = |t: usize| st.canon.get(t).copied().unwrap_or(0);
    let ceid = |id: EventId| st.ceids[id.idx()];

    // Per-thread operation chains (sequential fold per thread = program
    // order, which is exactly the per-thread event range; commutative sum
    // across threads).
    let mut sig = 0u64;
    for t in 0..nthreads {
        let mut h = fnv(FNV_OFFSET, canon(t));
        for &id in trace.events_of_thread(Tid(t as u32)) {
            h = match trace.kind(id) {
                EventKind::AtomicLoad { loc, ord, rf, .. } => {
                    let rf = rf.map(&ceid).unwrap_or(NO_RF);
                    fnv(fnv(fnv(fnv(h, 1), st.loc_min[loc.idx()]), ord as u64), rf)
                }
                EventKind::AtomicStore { loc, ord, .. } => {
                    fnv(fnv(fnv(h, 2), st.loc_min[loc.idx()]), ord as u64)
                }
                EventKind::Rmw {
                    loc,
                    ord,
                    rf,
                    written,
                    ..
                } => {
                    let rf = rf.map(&ceid).unwrap_or(NO_RF);
                    let wrote = written.is_some() as u64;
                    fnv(
                        fnv(fnv(fnv(fnv(h, 3), st.loc_min[loc.idx()]), ord as u64), rf),
                        wrote,
                    )
                }
                EventKind::Fence { ord } => fnv(fnv(h, 4), ord as u64),
                EventKind::ThreadCreate { child } => fnv(fnv(h, 5), canon(child.idx())),
                EventKind::ThreadJoin { target } => fnv(fnv(h, 6), canon(target.idx())),
                EventKind::ThreadFinish => fnv(h, 7),
                EventKind::DataWrite { loc } => fnv(fnv(h, 8), st.data_min[loc.idx()]),
                EventKind::DataRead { loc } => fnv(fnv(h, 9), st.data_min[loc.idx()]),
            };
        }
        sig = sig.wrapping_add(fnv(FNV_OFFSET, h));
    }

    // Per-location modification orders (commutative across locations).
    for (li, chain) in trace.mo.iter().enumerate() {
        if chain.is_empty() {
            continue;
        }
        let mut h = fnv(fnv(FNV_OFFSET, 10), st.loc_min[li]);
        for &w in chain {
            h = fnv(h, ceid(w));
        }
        sig = sig.wrapping_add(h);
    }

    // The SC order (one global chain).
    let mut h = fnv(FNV_OFFSET, 11);
    for &s in &trace.sc_order {
        h = fnv(h, ceid(s));
    }
    sig = sig.wrapping_add(h);

    fnv(sig, trace.num_threads as u64)
}

/// The original post-hoc derivations, kept compiled in as the
/// differential reference for the incremental engine (the same role
/// `clock::naive` plays for the COW clocks). Nothing on the production
/// path calls in here; lockstep tests pin the incremental results to
/// these.
pub mod posthoc {
    use super::*;

    /// [`super::rf_signature`] derived the original way: three full
    /// re-walks of the trace (spawn-tree canonicalization, per-location
    /// minima, then the chain folds), recomputing every canonical event
    /// id on demand. Bit-for-bit equal to the incremental finalize by
    /// construction — the lockstep tests enforce it.
    pub fn rf_signature(trace: &Trace) -> u64 {
        let nthreads = trace.num_threads as usize;
        let n = trace.len();

        // Canonical thread names from the spawn tree.
        let mut canon = vec![0u64; nthreads];
        let mut spawn_count = vec![0u64; nthreads];
        canon[0] = fnv(FNV_OFFSET, 0);
        for i in 0..n {
            let id = EventId(i as u32);
            if let EventKind::ThreadCreate { child } = trace.kind(id) {
                let p = trace.tid(id).idx();
                canon[child.idx()] = fnv(fnv(canon[p], 1), spawn_count[p]);
                spawn_count[p] += 1;
            }
        }

        // Canonical event id: (thread name, per-thread sequence number).
        let ceid = |id: EventId| -> u64 {
            fnv(
                fnv(FNV_OFFSET, canon[trace.tid(id).idx()]),
                trace.seq(id) as u64,
            )
        };

        // Canonical location names: the smallest canonical id of any event
        // touching the location (the touching-event *set* is schedule-
        // independent, so its minimum is too).
        let mut loc_min: Vec<u64> = Vec::new();
        let mut data_min: Vec<u64> = Vec::new();
        let note = |slot: &mut Vec<u64>, idx: usize, c: u64| {
            if slot.len() <= idx {
                slot.resize(idx + 1, u64::MAX);
            }
            slot[idx] = slot[idx].min(c);
        };
        for i in 0..n {
            let id = EventId(i as u32);
            let c = ceid(id);
            match trace.kind(id) {
                EventKind::AtomicLoad { loc, .. }
                | EventKind::AtomicStore { loc, .. }
                | EventKind::Rmw { loc, .. } => note(&mut loc_min, loc.idx(), c),
                EventKind::DataWrite { loc } | EventKind::DataRead { loc } => {
                    note(&mut data_min, loc.idx(), c)
                }
                _ => {}
            }
        }

        // Per-thread operation chains.
        let mut thread_hash: Vec<u64> = canon.iter().map(|&c| fnv(FNV_OFFSET, c)).collect();
        for i in 0..n {
            let id = EventId(i as u32);
            let h = &mut thread_hash[trace.tid(id).idx()];
            *h = match trace.kind(id) {
                EventKind::AtomicLoad { loc, ord, rf, .. } => {
                    let rf = rf.map(ceid).unwrap_or(NO_RF);
                    fnv(fnv(fnv(fnv(*h, 1), loc_min[loc.idx()]), ord as u64), rf)
                }
                EventKind::AtomicStore { loc, ord, .. } => {
                    fnv(fnv(fnv(*h, 2), loc_min[loc.idx()]), ord as u64)
                }
                EventKind::Rmw {
                    loc,
                    ord,
                    rf,
                    written,
                    ..
                } => {
                    let rf = rf.map(ceid).unwrap_or(NO_RF);
                    let wrote = written.is_some() as u64;
                    fnv(
                        fnv(fnv(fnv(fnv(*h, 3), loc_min[loc.idx()]), ord as u64), rf),
                        wrote,
                    )
                }
                EventKind::Fence { ord } => fnv(fnv(*h, 4), ord as u64),
                EventKind::ThreadCreate { child } => fnv(fnv(*h, 5), canon[child.idx()]),
                EventKind::ThreadJoin { target } => fnv(fnv(*h, 6), canon[target.idx()]),
                EventKind::ThreadFinish => fnv(*h, 7),
                EventKind::DataWrite { loc } => fnv(fnv(*h, 8), data_min[loc.idx()]),
                EventKind::DataRead { loc } => fnv(fnv(*h, 9), data_min[loc.idx()]),
            };
        }
        let mut sig = 0u64;
        for h in thread_hash {
            sig = sig.wrapping_add(fnv(FNV_OFFSET, h));
        }

        // Per-location modification orders (commutative across locations).
        for (li, chain) in trace.mo.iter().enumerate() {
            if chain.is_empty() {
                continue;
            }
            let mut h = fnv(fnv(FNV_OFFSET, 10), loc_min[li]);
            for &w in chain {
                h = fnv(h, ceid(w));
            }
            sig = sig.wrapping_add(h);
        }

        // The SC order (one global chain).
        let mut h = fnv(FNV_OFFSET, 11);
        for &s in &trace.sc_order {
            h = fnv(h, ceid(s));
        }
        sig = sig.wrapping_add(h);

        fnv(sig, trace.num_threads as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VecClock;
    use crate::loc::{DataId, LocId};
    use crate::trace::Trace;
    use crate::value::Val;

    /// Tiny hand-rolled trace builder for validator tests, routed through
    /// the real [`Trace::push`] commit point (so the incremental indexes
    /// are exercised too). Clocks are computed post-hoc with the same
    /// sb/create/join/sw rules (but a simpler, obviously-correct
    /// algorithm: rebuild from compute_hb) and written back.
    struct Builder {
        t: Trace,
        seqs: Vec<u32>,
    }

    impl Builder {
        fn new(threads: usize) -> Self {
            let mut t = Trace::default();
            t.num_threads = threads as u32;
            t.record_sw = true;
            Builder {
                t,
                seqs: vec![0; threads],
            }
        }

        fn push(&mut self, tid: u32, kind: EventKind) -> EventId {
            self.seqs[tid as usize] += 1;
            let id = self
                .t
                .push(Tid(tid), self.seqs[tid as usize], kind, VecClock::new());
            if kind.is_write() {
                let loc = kind.atomic_loc().expect("writes have a location");
                while self.t.mo.len() <= loc.idx() {
                    self.t.mo.push(Vec::new());
                }
                self.t.mo[loc.idx()].push(id);
            }
            id
        }

        fn store(&mut self, tid: u32, loc: u32, ord: MemOrd, val: Val) -> EventId {
            let mo_index = self
                .t
                .mo
                .get(loc as usize)
                .map(|v| v.len() as u32)
                .unwrap_or(0);
            self.push(
                tid,
                EventKind::AtomicStore {
                    loc: LocId(loc),
                    ord,
                    val,
                    mo_index,
                },
            )
        }

        fn load(&mut self, tid: u32, loc: u32, ord: MemOrd, rf: Option<EventId>) -> EventId {
            let val = rf.map(|w| self.t.written_val(w).unwrap()).unwrap_or(0);
            self.push(
                tid,
                EventKind::AtomicLoad {
                    loc: LocId(loc),
                    ord,
                    rf,
                    val,
                },
            )
        }

        fn finish(mut self) -> Trace {
            // Populate clocks from the offline hb so trace.hb works in
            // validator tests that don't exercise clock checking.
            let n = self.t.len();
            let hb = compute_hb(&self.t);
            for i in 0..n {
                let mut clock = VecClock::new();
                for j in 0..n {
                    if hb.get(j, i) {
                        let je = EventId(j as u32);
                        clock.raise(self.t.tid(je), self.t.seq(je));
                    }
                }
                self.t.set_clock(EventId(i as u32), clock);
            }
            self.t
        }
    }

    use MemOrd::*;

    #[test]
    fn consistent_message_passing_validates() {
        // T0: store d=1 rlx; store f=1 rel.  T1: load f=1 acq; load d=1 rlx.
        let mut b = Builder::new(2);
        let d = b.store(0, 0, Relaxed, 1);
        let f = b.store(0, 1, Release, 1);
        b.load(1, 1, Acquire, Some(f));
        b.load(1, 0, Relaxed, Some(d));
        let t = b.finish();
        assert!(validate(&t, true).is_empty(), "{:?}", validate(&t, true));
        assert!(audit(&t).is_empty(), "{:?}", audit(&t));
    }

    #[test]
    fn hidden_store_is_a_cowr_violation() {
        // T0: store x=1; store x=2 rel. T1: load x acq reads 2 (sync), then
        // loads x=1 again — reads a store hidden behind one it has seen.
        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let w2 = b.store(0, 0, Release, 2);
        b.load(1, 0, Acquire, Some(w2));
        b.load(1, 0, Relaxed, Some(w1));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::CoWr { .. } | AxiomError::CoRr { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn corr_violation_detected_without_sync() {
        // Same thread reads x=2 then x=1 with no synchronization at all:
        // still a CoRR violation via sb.
        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let w2 = b.store(0, 0, Relaxed, 2);
        b.load(1, 0, Relaxed, Some(w2));
        b.load(1, 0, Relaxed, Some(w1));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter().any(|e| matches!(e, AxiomError::CoRr { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn stale_read_without_sync_is_legal() {
        // Relaxed MP: reading the flag does NOT make the data store
        // hb-visible, so reading stale data is consistent.
        let mut b = Builder::new(2);
        let _d = b.store(0, 0, Relaxed, 1);
        let f = b.store(0, 1, Relaxed, 1);
        b.load(1, 1, Relaxed, Some(f));
        b.load(1, 0, Relaxed, None); // uninitialized read: rf = None
        let t = b.finish();
        // validate ignores rf=None (uninit is the *checker's* built-in bug,
        // not an axiom violation).
        assert!(validate(&t, false).is_empty());
        assert!(audit(&t).is_empty());
    }

    #[test]
    fn sc_read_must_see_last_sc_store() {
        // T0: store x=1 sc. T1: store x=2 sc. T2: load x sc reading 1 while
        // the last SC store in S is 2 → violation.
        let mut b = Builder::new(3);
        let w1 = b.store(0, 0, SeqCst, 1);
        let _w2 = b.store(1, 0, SeqCst, 2);
        b.load(2, 0, SeqCst, Some(w1));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter().any(|e| matches!(e, AxiomError::ScRead { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn release_sequence_through_rmw_synchronizes() {
        // T0: store x=1 rel. T1: rmw x 1->2 rlx. T2: load x acq reads the
        // RMW → synchronizes with the release head, so a CoWR check on data
        // would hold. Here we just confirm hb(T0 store, T2 load).
        let mut b = Builder::new(3);
        let h = b.store(0, 0, Release, 1);
        let rmw = b.push(
            1,
            EventKind::Rmw {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(h),
                read_val: 1,
                written: Some(2),
                mo_index: 1,
            },
        );
        let r = b.load(2, 0, Acquire, Some(rmw));
        let t = b.finish();
        assert!(validate(&t, true).is_empty());
        assert!(
            t.hb(h, r),
            "release sequence must give hb(head, acquire reader)"
        );
    }

    #[test]
    fn fence_synchronization_gives_hb() {
        // T0: store d rlx; release fence; store f rlx.
        // T1: load f rlx (reads f); acquire fence; load d.
        let mut b = Builder::new(2);
        let d = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: Release });
        let f = b.store(0, 1, Relaxed, 1);
        b.load(1, 1, Relaxed, Some(f));
        b.push(1, EventKind::Fence { ord: Acquire });
        let r = b.load(1, 0, Relaxed, Some(d));
        let t = b.finish();
        assert!(validate(&t, true).is_empty());
        assert!(
            t.hb(d, r),
            "fence-fence synchronization must order the data accesses"
        );
    }

    #[test]
    fn rmw_atomicity_enforced() {
        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let _w2 = b.store(0, 0, Relaxed, 2);
        // RMW claims to read w1 but its write is appended at mo index 2
        // (not adjacent) → atomicity violation.
        b.push(
            1,
            EventKind::Rmw {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(w1),
                read_val: 1,
                written: Some(5),
                mo_index: 2,
            },
        );
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::RmwAtomicity { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn sc_fence_p5_violation_detected() {
        // T0: store x=1 rlx; SC fence (publishes x=1).
        // T1: SC load of x reading the stale init — p5 forbids it.
        let mut b = Builder::new(2);
        let w0 = b.store(0, 0, Relaxed, 0); // init
        let _w1 = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, SeqCst, Some(w0));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::ScFence { rule: "p5", .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn sc_fence_p4_violation_detected() {
        // T0: SC store x=1. T1: SC fence; then a relaxed load of x reading
        // the init — p4 forbids reading anything older than the last SC
        // store preceding the fence in S.
        let mut b = Builder::new(2);
        let w0 = b.store(0, 0, Relaxed, 0); // init
        let _w1 = b.store(0, 0, SeqCst, 1);
        b.push(1, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, Relaxed, Some(w0));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::ScFence { rule: "p4/p6", .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn sc_fences_clean_trace_passes() {
        // The compliant version of the p5 scenario: the SC load reads the
        // published store.
        let mut b = Builder::new(2);
        let _w0 = b.store(0, 0, Relaxed, 0);
        let w1 = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, SeqCst, Some(w1));
        let t = b.finish();
        assert!(validate(&t, false).is_empty());
        assert!(audit(&t).is_empty());
    }

    #[test]
    fn bad_rf_value_mismatch_detected() {
        let mut b = Builder::new(1);
        let w = b.store(0, 0, Relaxed, 1);
        b.push(
            0,
            EventKind::AtomicLoad {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(w),
                val: 99,
            },
        );
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter().any(|e| matches!(e, AxiomError::BadRf { .. })),
            "{errs:?}"
        );
    }

    /// All the violating Builder scenarios above, rebuilt for reuse by the
    /// audit-vs-validate lockstep test.
    fn violating_traces() -> Vec<(&'static str, Trace)> {
        let mut out = Vec::new();

        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let w2 = b.store(0, 0, Release, 2);
        b.load(1, 0, Acquire, Some(w2));
        b.load(1, 0, Relaxed, Some(w1));
        out.push(("hidden_store", b.finish()));

        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let w2 = b.store(0, 0, Relaxed, 2);
        b.load(1, 0, Relaxed, Some(w2));
        b.load(1, 0, Relaxed, Some(w1));
        out.push(("corr", b.finish()));

        let mut b = Builder::new(3);
        let w1 = b.store(0, 0, SeqCst, 1);
        let _ = b.store(1, 0, SeqCst, 2);
        b.load(2, 0, SeqCst, Some(w1));
        out.push(("sc_read", b.finish()));

        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let _ = b.store(0, 0, Relaxed, 2);
        b.push(
            1,
            EventKind::Rmw {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(w1),
                read_val: 1,
                written: Some(5),
                mo_index: 2,
            },
        );
        out.push(("rmw_atomicity", b.finish()));

        let mut b = Builder::new(2);
        let w0 = b.store(0, 0, Relaxed, 0);
        let _ = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, SeqCst, Some(w0));
        out.push(("sc_fence_p5", b.finish()));

        let mut b = Builder::new(2);
        let w0 = b.store(0, 0, Relaxed, 0);
        let _ = b.store(0, 0, SeqCst, 1);
        b.push(1, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, Relaxed, Some(w0));
        out.push(("sc_fence_p4", b.finish()));

        let mut b = Builder::new(1);
        let w = b.store(0, 0, Relaxed, 1);
        b.push(
            0,
            EventKind::AtomicLoad {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(w),
                val: 99,
            },
        );
        out.push(("bad_rf", b.finish()));

        out
    }

    #[test]
    fn audit_agrees_with_validate_on_violations() {
        // The fast index-trusting auditor must report exactly the oracle's
        // findings (as sets; intra-check iteration order may differ) on
        // every violating scenario. HbCycle/ClockMismatch can't occur:
        // builder clocks are derived from the offline hb.
        for (name, t) in violating_traces() {
            let mut oracle: Vec<String> =
                validate(&t, false).iter().map(|e| e.to_string()).collect();
            let mut fast: Vec<String> = audit(&t).iter().map(|e| e.to_string()).collect();
            oracle.sort();
            fast.sort();
            assert_eq!(oracle, fast, "audit/validate disagree on {name}");
            assert!(!oracle.is_empty(), "{name} scenario found nothing");
        }
    }

    #[test]
    fn sw_delta_closure_matches_posthoc_hb() {
        // The commit-time sb∪sw adjacency delta, closed, must equal the
        // oracle's hb on scenarios covering rf sync, release sequences
        // through RMWs, fence-fence sync, and SC fences.
        let mut b = Builder::new(3);
        let h = b.store(0, 0, Release, 1);
        let rmw = b.push(
            1,
            EventKind::Rmw {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(h),
                read_val: 1,
                written: Some(2),
                mo_index: 1,
            },
        );
        b.load(2, 0, Acquire, Some(rmw));
        assert_eq!(check_sw_delta(&b.finish()), Ok(()));

        let mut b = Builder::new(2);
        let d = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: Release });
        let f = b.store(0, 1, Relaxed, 1);
        b.load(1, 1, Relaxed, Some(f));
        b.push(1, EventKind::Fence { ord: Acquire });
        b.load(1, 0, Relaxed, Some(d));
        assert_eq!(check_sw_delta(&b.finish()), Ok(()));

        let mut b = Builder::new(2);
        let _ = b.store(0, 0, Relaxed, 0);
        let w1 = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, SeqCst, Some(w1));
        assert_eq!(check_sw_delta(&b.finish()), Ok(()));
    }

    #[test]
    fn incremental_signature_matches_posthoc() {
        // Spawn-tree canonicalization, per-location minima, rf/mo/SC
        // chains, and data events all flow through both derivations.
        let mut b = Builder::new(3);
        b.push(0, EventKind::ThreadCreate { child: Tid(1) });
        b.push(0, EventKind::ThreadCreate { child: Tid(2) });
        let w = b.store(1, 0, Release, 1);
        b.push(1, EventKind::DataWrite { loc: DataId(0) });
        b.push(1, EventKind::ThreadFinish);
        b.load(2, 0, Acquire, Some(w));
        let rmw = b.push(
            2,
            EventKind::Rmw {
                loc: LocId(0),
                ord: SeqCst,
                rf: Some(w),
                read_val: 1,
                written: Some(2),
                mo_index: 1,
            },
        );
        b.load(2, 0, SeqCst, Some(rmw));
        b.push(2, EventKind::DataRead { loc: DataId(0) });
        b.push(2, EventKind::ThreadFinish);
        b.push(0, EventKind::ThreadJoin { target: Tid(1) });
        b.push(0, EventKind::ThreadJoin { target: Tid(2) });
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.push(0, EventKind::ThreadFinish);
        let t = b.finish();
        assert_eq!(rf_signature(&t), posthoc::rf_signature(&t));
        assert_eq!(check_sw_delta(&t), Ok(()));
        assert!(validate(&t, true).is_empty(), "{:?}", validate(&t, true));
    }

    #[test]
    fn signature_survives_trace_reuse() {
        // Reusing a cleared trace must not leak prior sig state in.
        let build = |t: &mut Trace| {
            t.num_threads = 2;
            t.push(
                Tid(0),
                1,
                EventKind::ThreadCreate { child: Tid(1) },
                VecClock::new(),
            );
            let w = t.push(
                Tid(1),
                1,
                EventKind::AtomicStore {
                    loc: LocId(0),
                    ord: MemOrd::Release,
                    val: 7,
                    mo_index: 0,
                },
                VecClock::new(),
            );
            t.mo.push(vec![w]);
            t.push(Tid(1), 2, EventKind::ThreadFinish, VecClock::new());
            t.push(
                Tid(0),
                2,
                EventKind::ThreadJoin { target: Tid(1) },
                VecClock::new(),
            );
        };
        let mut fresh = Trace::default();
        build(&mut fresh);
        let expect = rf_signature(&fresh);
        assert_eq!(expect, posthoc::rf_signature(&fresh));

        // Dirty the same trace with a different program, clear, rebuild.
        let mut reused = Trace::default();
        reused.num_threads = 2;
        reused.push(
            Tid(0),
            1,
            EventKind::ThreadCreate { child: Tid(1) },
            VecClock::new(),
        );
        reused.push(
            Tid(1),
            1,
            EventKind::Fence {
                ord: MemOrd::SeqCst,
            },
            VecClock::new(),
        );
        reused.push(
            Tid(1),
            2,
            EventKind::DataWrite { loc: DataId(3) },
            VecClock::new(),
        );
        reused.clear();
        build(&mut reused);
        assert_eq!(rf_signature(&reused), expect);
        assert_eq!(posthoc::rf_signature(&reused), expect);
    }
}
