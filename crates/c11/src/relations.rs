//! Derived relations and an independent memory-model axiom validator.
//!
//! The model checker computes happens-before *online* with vector clocks.
//! This module recomputes everything *offline* from first principles — sb,
//! thread create/join edges, synchronizes-with from reads-from (including
//! release sequences continued through RMWs and the C11 fence rules) — and
//! checks the coherence, RMW-atomicity, and SC axioms on a finished trace.
//!
//! Property tests in `cdsspec-mc` run every explored execution of random
//! programs through [`validate`], so a divergence between the online clocks
//! and this oracle is caught immediately.
//!
//! The SC-fence strengthening rules (C++11 29.3 p4–p6) are re-derived
//! here from first principles (S = the trace's SC order, sb = per-thread
//! sequence) and checked as mo lower bounds on every read.

use crate::event::{EventId, EventKind, Tid};
use crate::ordering::MemOrd;
use crate::trace::Trace;

/// A violation of the C/C++11 axioms found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AxiomError {
    /// `hb` contradicts execution order (would imply a cycle).
    HbCycle {
        /// Earlier event (in execution order).
        a: EventId,
        /// Later event claimed to happen-before `a`.
        b: EventId,
    },
    /// The stored vector clocks disagree with the recomputed `hb`.
    ClockMismatch {
        /// First event of the disagreeing pair.
        a: EventId,
        /// Second event of the disagreeing pair.
        b: EventId,
        /// `hb(a, b)` according to the online clocks.
        online: bool,
        /// `hb(a, b)` according to the offline recomputation.
        offline: bool,
    },
    /// A read's `rf` edge is malformed (wrong location, wrong value, or
    /// points forward in execution order).
    BadRf {
        /// The offending read.
        read: EventId,
        /// Human-readable description of the malformation.
        detail: String,
    },
    /// Write-read coherence: a newer store to the location happens-before
    /// the read, hiding the store it read from.
    CoWr {
        /// The offending read.
        read: EventId,
        /// The newer store that hides the read's `rf` target.
        hidden_by: EventId,
    },
    /// Read-read coherence: an hb-earlier read observed a newer store.
    CoRr {
        /// The hb-earlier read.
        first: EventId,
        /// The hb-later read that observed an older store.
        second: EventId,
    },
    /// Write-write coherence: hb contradicts mo.
    CoWw {
        /// The mo-earlier store.
        first: EventId,
        /// The mo-later store that happens-before `first`.
        second: EventId,
    },
    /// Read-write coherence: a read observed a store mo-after a write it
    /// happens-before.
    CoRw {
        /// The offending read.
        read: EventId,
        /// The write the read happens-before.
        write: EventId,
    },
    /// A successful RMW did not read its immediate mo predecessor.
    RmwAtomicity {
        /// The offending RMW.
        rmw: EventId,
    },
    /// An SC read violated C++11 29.3p3 (read an SC store other than the
    /// last preceding one in *S*, or a store hidden behind it).
    ScRead {
        /// The offending SC read.
        read: EventId,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A read violated one of the SC-fence rules (C++11 29.3 p4–p6): it
    /// observed a store older than the fence-published floor.
    ScFence {
        /// The offending read.
        read: EventId,
        /// Which of p4/p5/p6 fired.
        rule: &'static str,
    },
}

impl std::fmt::Display for AxiomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiomError::HbCycle { a, b } => write!(f, "hb cycle between {a} and {b}"),
            AxiomError::ClockMismatch {
                a,
                b,
                online,
                offline,
            } => write!(
                f,
                "clock mismatch for ({a},{b}): online hb={online}, offline hb={offline}"
            ),
            AxiomError::BadRf { read, detail } => write!(f, "bad rf at {read}: {detail}"),
            AxiomError::CoWr { read, hidden_by } => {
                write!(f, "CoWR: {read} reads a store hidden by {hidden_by}")
            }
            AxiomError::CoRr { first, second } => {
                write!(f, "CoRR: {first} hb {second} but read a newer store")
            }
            AxiomError::CoWw { first, second } => {
                write!(f, "CoWW: {first} hb {second} but mo disagrees")
            }
            AxiomError::CoRw { read, write } => {
                write!(f, "CoRW: {read} hb {write} but read an mo-later store")
            }
            AxiomError::RmwAtomicity { rmw } => {
                write!(f, "RMW {rmw} did not read its immediate mo predecessor")
            }
            AxiomError::ScRead { read, detail } => write!(f, "SC read {read}: {detail}"),
            AxiomError::ScFence { read, rule } => {
                write!(f, "SC-fence rule {rule} violated by read {read}")
            }
        }
    }
}

/// Dense reachability matrix over events.
struct HbMatrix {
    n: usize,
    bits: Vec<bool>,
}

impl HbMatrix {
    fn new(n: usize) -> Self {
        HbMatrix {
            n,
            bits: vec![false; n * n],
        }
    }

    #[inline]
    fn get(&self, a: usize, b: usize) -> bool {
        self.bits[a * self.n + b]
    }

    #[inline]
    fn set(&mut self, a: usize, b: usize) {
        self.bits[a * self.n + b] = true;
    }

    /// Transitive closure (Floyd–Warshall; traces are small).
    fn close(&mut self) {
        for k in 0..self.n {
            for i in 0..self.n {
                if self.get(i, k) {
                    for j in 0..self.n {
                        if self.get(k, j) {
                            self.set(i, j);
                        }
                    }
                }
            }
        }
    }
}

/// The release-sequence elements a read of `w` may synchronize through:
/// `w` itself plus the chain of RMWs it (transitively) read from, ending at
/// the first non-RMW store. Returned from `w` backwards.
fn release_chain(trace: &Trace, w: EventId) -> Vec<EventId> {
    let mut chain = vec![w];
    let mut cur = w;
    while let EventKind::Rmw { rf: Some(prev), .. } = &trace.event(cur).kind {
        cur = *prev;
        chain.push(cur);
    }
    chain
}

/// Recompute `hb` offline. Returns the closed matrix.
fn compute_hb(trace: &Trace) -> HbMatrix {
    let n = trace.events.len();
    let mut hb = HbMatrix::new(n);

    // sb: consecutive events of the same thread.
    let mut last_of_thread: Vec<Option<usize>> = vec![None; trace.num_threads as usize];
    // First event of each thread (for create edges).
    let mut first_of_thread: Vec<Option<usize>> = vec![None; trace.num_threads as usize];
    // Finish event of each thread (for join edges).
    let mut finish_of_thread: Vec<Option<usize>> = vec![None; trace.num_threads as usize];

    for (i, e) in trace.events.iter().enumerate() {
        let t = e.tid.idx();
        if let Some(prev) = last_of_thread[t] {
            hb.set(prev, i);
        }
        if first_of_thread[t].is_none() {
            first_of_thread[t] = Some(i);
        }
        if matches!(e.kind, EventKind::ThreadFinish) {
            finish_of_thread[t] = Some(i);
        }
        last_of_thread[t] = Some(i);
    }

    // create / join edges.
    for (i, e) in trace.events.iter().enumerate() {
        match e.kind {
            EventKind::ThreadCreate { child } => {
                if let Some(Some(first)) = first_of_thread.get(child.idx()) {
                    hb.set(i, *first);
                }
            }
            EventKind::ThreadJoin { target } => {
                if let Some(Some(fin)) = finish_of_thread.get(target.idx()) {
                    hb.set(*fin, i);
                }
            }
            _ => {}
        }
    }

    // sw from rf (+ release sequences + fences).
    // Pre-index fences per thread.
    let release_fences_before = |tid: Tid, seq: u32| -> Vec<usize> {
        trace
            .events
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.tid == tid
                    && f.seq < seq
                    && matches!(f.kind, EventKind::Fence { ord } if ord.is_release())
            })
            .map(|(i, _)| i)
            .collect()
    };
    let acquire_fences_after = |tid: Tid, seq: u32| -> Vec<usize> {
        trace
            .events
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.tid == tid
                    && f.seq > seq
                    && matches!(f.kind, EventKind::Fence { ord } if ord.is_acquire())
            })
            .map(|(i, _)| i)
            .collect()
    };

    for (ri, r) in trace.events.iter().enumerate() {
        let (r_ord, rf) = match &r.kind {
            EventKind::AtomicLoad { ord, rf, .. } => (*ord, *rf),
            EventKind::Rmw { ord, rf, .. } => (*ord, *rf),
            _ => continue,
        };
        let Some(w) = rf else { continue };

        // Collect sync sources.
        let mut sources: Vec<usize> = Vec::new();
        for elem in release_chain(trace, w) {
            let we = trace.event(elem);
            let w_ord = we.kind.ord().unwrap_or(MemOrd::Relaxed);
            if w_ord.is_release() {
                sources.push(elem.idx());
            }
            // A release fence sequenced before a store in the (hypothetical)
            // release sequence synchronizes too.
            for f in release_fences_before(we.tid, we.seq) {
                sources.push(f);
            }
        }
        if sources.is_empty() {
            continue;
        }

        // Collect sync destinations.
        let mut dests: Vec<usize> = Vec::new();
        if r_ord.is_acquire() {
            dests.push(ri);
        }
        for f in acquire_fences_after(r.tid, r.seq) {
            dests.push(f);
        }

        for &s in &sources {
            for &d in &dests {
                if s != d {
                    hb.set(s, d);
                }
            }
        }
    }

    hb.close();
    hb
}

/// Validate a finished trace against the memory-model axioms. Returns every
/// violation found (empty = consistent).
///
/// When `check_clocks` is set, the trace's stored vector clocks are compared
/// pairwise against the recomputed `hb` — the strongest cross-check of the
/// online implementation.
pub fn validate(trace: &Trace, check_clocks: bool) -> Vec<AxiomError> {
    let mut errors = Vec::new();
    let n = trace.events.len();
    let hb = compute_hb(trace);

    // Acyclicity: hb must embed into execution order.
    for a in 0..n {
        for b in 0..n {
            if hb.get(a, b) && b <= a {
                errors.push(AxiomError::HbCycle {
                    a: EventId(a as u32),
                    b: EventId(b as u32),
                });
            }
        }
    }

    if check_clocks {
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let online = trace.hb(EventId(a as u32), EventId(b as u32));
                let offline = hb.get(a, b);
                if online != offline {
                    errors.push(AxiomError::ClockMismatch {
                        a: EventId(a as u32),
                        b: EventId(b as u32),
                        online,
                        offline,
                    });
                }
            }
        }
    }

    // rf well-formedness + coherence.
    for (ri, r) in trace.events.iter().enumerate() {
        let (loc, rf, read_val) = match &r.kind {
            EventKind::AtomicLoad { loc, rf, val, .. } => (*loc, *rf, *val),
            EventKind::Rmw {
                loc, rf, read_val, ..
            } => (*loc, *rf, *read_val),
            _ => continue,
        };
        let Some(w) = rf else { continue };
        let we = trace.event(w);
        if we.kind.atomic_loc() != Some(loc) {
            errors.push(AxiomError::BadRf {
                read: EventId(ri as u32),
                detail: format!("rf {w} is to a different location"),
            });
            continue;
        }
        match we.kind.written_val() {
            Some(v) if v == read_val => {}
            other => errors.push(AxiomError::BadRf {
                read: EventId(ri as u32),
                detail: format!("value mismatch: read {read_val}, store wrote {other:?}"),
            }),
        }
        if w.idx() >= ri {
            errors.push(AxiomError::BadRf {
                read: EventId(ri as u32),
                detail: "reads from a later event (load buffering is out of scope)".into(),
            });
        }

        let w_mo = we.kind.mo_index().unwrap_or(0);

        // CoWR: no store to loc with larger mo index hb-before the read.
        for &w2 in trace.mo_of(loc) {
            let w2e = trace.event(w2);
            if w2e.kind.mo_index().unwrap_or(0) > w_mo && hb.get(w2.idx(), ri) {
                errors.push(AxiomError::CoWr {
                    read: EventId(ri as u32),
                    hidden_by: w2,
                });
            }
        }

        // CoRW: read hb-before a same-loc write with smaller-or-equal mo.
        for &w2 in trace.mo_of(loc) {
            let w2e = trace.event(w2);
            if hb.get(ri, w2.idx()) && w2e.kind.mo_index().unwrap_or(0) <= w_mo && w2 != w {
                errors.push(AxiomError::CoRw {
                    read: EventId(ri as u32),
                    write: w2,
                });
            }
        }
    }

    // CoRR: pairwise over reads of the same location.
    for (i, a) in trace.events.iter().enumerate() {
        let (la, rfa) = match &a.kind {
            EventKind::AtomicLoad { loc, rf, .. } | EventKind::Rmw { loc, rf, .. } => (*loc, *rf),
            _ => continue,
        };
        let Some(wa) = rfa else { continue };
        for (j, b) in trace.events.iter().enumerate() {
            if i == j || !hb.get(i, j) {
                continue;
            }
            let (lb, rfb) = match &b.kind {
                EventKind::AtomicLoad { loc, rf, .. } | EventKind::Rmw { loc, rf, .. } => {
                    (*loc, *rf)
                }
                _ => continue,
            };
            if la != lb {
                continue;
            }
            let Some(wb) = rfb else { continue };
            let ma = trace.event(wa).kind.mo_index().unwrap_or(0);
            let mb = trace.event(wb).kind.mo_index().unwrap_or(0);
            if ma > mb {
                errors.push(AxiomError::CoRr {
                    first: EventId(i as u32),
                    second: EventId(j as u32),
                });
            }
        }
    }

    // CoWW: hb over same-loc writes must agree with mo.
    for locs in &trace.mo {
        for (x, &w1) in locs.iter().enumerate() {
            for &w2 in &locs[x + 1..] {
                if hb.get(w2.idx(), w1.idx()) {
                    errors.push(AxiomError::CoWw {
                        first: w2,
                        second: w1,
                    });
                }
            }
        }
    }

    // RMW atomicity.
    for (i, e) in trace.events.iter().enumerate() {
        if let EventKind::Rmw {
            rf,
            written: Some(_),
            mo_index,
            ..
        } = &e.kind
        {
            let expected_prev = match rf {
                Some(w) => trace.event(*w).kind.mo_index().map(|m| m + 1),
                None => Some(0),
            };
            if expected_prev != Some(*mo_index) {
                errors.push(AxiomError::RmwAtomicity {
                    rmw: EventId(i as u32),
                });
            }
        }
    }

    // SC reads (29.3p3).
    for (i, e) in trace.events.iter().enumerate() {
        let (loc, rf, ord) = match &e.kind {
            EventKind::AtomicLoad { loc, rf, ord, .. } => (*loc, *rf, *ord),
            EventKind::Rmw { loc, rf, ord, .. } => (*loc, *rf, *ord),
            _ => continue,
        };
        if !ord.is_seq_cst() {
            continue;
        }
        let Some(w) = rf else { continue };
        let r_sc = e.sc_index.expect("SC event must have an S index");
        // B = last SC write to loc preceding the read in S.
        let b = trace
            .mo_of(loc)
            .iter()
            .filter(|&&x| {
                let xe = trace.event(x);
                xe.kind.ord().map(|o| o.is_seq_cst()).unwrap_or(false)
                    && xe.sc_index.map(|s| s < r_sc).unwrap_or(false)
            })
            .copied()
            .last();
        let Some(b) = b else { continue };
        if w == b {
            continue;
        }
        let we = trace.event(w);
        let w_is_sc = we.kind.ord().map(|o| o.is_seq_cst()).unwrap_or(false);
        if w_is_sc {
            errors.push(AxiomError::ScRead {
                read: EventId(i as u32),
                detail: format!("read SC store {w} but the last preceding SC store in S is {b}"),
            });
        } else if hb.get(w.idx(), b.idx()) {
            errors.push(AxiomError::ScRead {
                read: EventId(i as u32),
                detail: format!("read non-SC store {w} that happens-before the last SC store {b}"),
            });
        }
    }

    // SC-fence rules (29.3 p4–p6), recomputed from scratch: walk the trace
    // in commit order maintaining (a) the mo index of the last SC store
    // per location, (b) per-thread "own stores" tables, and (c) the global
    // fence-published floor; snapshot per-thread floors at each SC fence.
    {
        use crate::clock::CoherenceMap;
        let nthreads = trace.num_threads as usize;
        let mut sc_last_store = CoherenceMap::new();
        let mut published = CoherenceMap::new();
        let mut own_stores: Vec<CoherenceMap> =
            (0..nthreads).map(|_| CoherenceMap::new()).collect();
        let mut fence_floor: Vec<CoherenceMap> =
            (0..nthreads).map(|_| CoherenceMap::new()).collect();

        for e in &trace.events {
            match &e.kind {
                EventKind::AtomicStore {
                    loc, ord, mo_index, ..
                } => {
                    own_stores[e.tid.idx()].raise(*loc, *mo_index);
                    if ord.is_seq_cst() {
                        sc_last_store.raise(*loc, *mo_index);
                    }
                }
                EventKind::Rmw {
                    loc,
                    ord,
                    written: Some(_),
                    mo_index,
                    ..
                } => {
                    own_stores[e.tid.idx()].raise(*loc, *mo_index);
                    if ord.is_seq_cst() {
                        sc_last_store.raise(*loc, *mo_index);
                    }
                }
                EventKind::Fence { ord } if ord.is_seq_cst() => {
                    let t = e.tid.idx();
                    fence_floor[t].join(&sc_last_store); // p4
                    fence_floor[t].join(&published); // p6
                    let own = own_stores[t].clone();
                    published.join(&own); // p5 (and later p6)
                }
                EventKind::AtomicLoad {
                    loc,
                    ord,
                    rf: Some(w),
                    ..
                }
                | EventKind::Rmw {
                    loc,
                    ord,
                    rf: Some(w),
                    ..
                } => {
                    let got = trace.event(*w).kind.mo_index().unwrap_or(0);
                    if let Some(fl) = fence_floor[e.tid.idx()].get(*loc) {
                        if got < fl {
                            errors.push(AxiomError::ScFence {
                                read: e.id,
                                rule: "p4/p6",
                            });
                        }
                    }
                    if ord.is_seq_cst() {
                        if let Some(fl) = published.get(*loc) {
                            if got < fl {
                                errors.push(AxiomError::ScFence {
                                    read: e.id,
                                    rule: "p5",
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    errors
}

// ---------------------------------------------------------------------
// rf-signature canonicalization (exploration identity)
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Sentinel mixed in for "reads the initial (uninitialized) value".
const NO_RF: u64 = 0x5eed_0000_0000_0001;

/// FNV-1a over the little-endian bytes of `v`, chained from `h`.
fn fnv(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A schedule-independent identity for a completed execution: a hash of
/// the abstract execution graph — per-thread operation sequences, the
/// reads-from assignment, per-location modification orders, and the SC
/// order — with every schedule-dependent artifact canonicalized away.
///
/// Two completed executions that differ only in how the scheduler
/// interleaved their threads hash identically; executions that differ in
/// any rf edge, mo position, or SC position hash differently (modulo
/// 64-bit collisions). Concretely:
///
/// * **Threads** are named by their spawn path (parent's name plus the
///   parent's spawn count at creation), not by their interleaving-
///   dependent [`Tid`]; events are identified as (thread name, per-thread
///   sequence number), never by their global commit index.
/// * **Locations** are named by the smallest canonical event id that
///   touches them, because `LocId`/`DataId` allocation order tracks the
///   schedule.
/// * **Values are excluded**: the test closure is deterministic, so given
///   the per-thread operation sequences and the rf assignment the values
///   are redundant — and pointer-valued cells would otherwise leak
///   allocation addresses into the hash.
/// * Per-thread and per-location chains are combined commutatively, so
///   the fold order (which tracks the schedule) cannot leak in.
///
/// Signatures are comparable within one test closure's exploration —
/// that is their only use: counting rf classes and checking that pruned
/// and unpruned explorations cover the same classes.
pub fn rf_signature(trace: &Trace) -> u64 {
    let nthreads = trace.num_threads as usize;

    // Canonical thread names from the spawn tree.
    let mut canon = vec![0u64; nthreads];
    let mut spawn_count = vec![0u64; nthreads];
    canon[0] = fnv(FNV_OFFSET, 0);
    for e in &trace.events {
        if let EventKind::ThreadCreate { child } = e.kind {
            let p = e.tid.idx();
            canon[child.idx()] = fnv(fnv(canon[p], 1), spawn_count[p]);
            spawn_count[p] += 1;
        }
    }

    // Canonical event id: (thread name, per-thread sequence number).
    let ceid = |id: EventId| -> u64 {
        let e = trace.event(id);
        fnv(fnv(FNV_OFFSET, canon[e.tid.idx()]), e.seq as u64)
    };

    // Canonical location names: the smallest canonical id of any event
    // touching the location (the touching-event *set* is schedule-
    // independent, so its minimum is too).
    let mut loc_min: Vec<u64> = Vec::new();
    let mut data_min: Vec<u64> = Vec::new();
    let note = |slot: &mut Vec<u64>, idx: usize, c: u64| {
        if slot.len() <= idx {
            slot.resize(idx + 1, u64::MAX);
        }
        slot[idx] = slot[idx].min(c);
    };
    for e in &trace.events {
        let c = ceid(e.id);
        match e.kind {
            EventKind::AtomicLoad { loc, .. }
            | EventKind::AtomicStore { loc, .. }
            | EventKind::Rmw { loc, .. } => note(&mut loc_min, loc.idx(), c),
            EventKind::DataWrite { loc } | EventKind::DataRead { loc } => {
                note(&mut data_min, loc.idx(), c)
            }
            _ => {}
        }
    }

    // Per-thread operation chains (sequential fold per thread = program
    // order; commutative sum across threads).
    let mut thread_hash: Vec<u64> = canon.iter().map(|&c| fnv(FNV_OFFSET, c)).collect();
    for e in &trace.events {
        let h = &mut thread_hash[e.tid.idx()];
        *h = match e.kind {
            EventKind::AtomicLoad { loc, ord, rf, .. } => {
                let rf = rf.map(&ceid).unwrap_or(NO_RF);
                fnv(fnv(fnv(fnv(*h, 1), loc_min[loc.idx()]), ord as u64), rf)
            }
            EventKind::AtomicStore { loc, ord, .. } => {
                fnv(fnv(fnv(*h, 2), loc_min[loc.idx()]), ord as u64)
            }
            EventKind::Rmw {
                loc,
                ord,
                rf,
                written,
                ..
            } => {
                let rf = rf.map(&ceid).unwrap_or(NO_RF);
                let wrote = written.is_some() as u64;
                fnv(
                    fnv(fnv(fnv(fnv(*h, 3), loc_min[loc.idx()]), ord as u64), rf),
                    wrote,
                )
            }
            EventKind::Fence { ord } => fnv(fnv(*h, 4), ord as u64),
            EventKind::ThreadCreate { child } => fnv(fnv(*h, 5), canon[child.idx()]),
            EventKind::ThreadJoin { target } => fnv(fnv(*h, 6), canon[target.idx()]),
            EventKind::ThreadFinish => fnv(*h, 7),
            EventKind::DataWrite { loc } => fnv(fnv(*h, 8), data_min[loc.idx()]),
            EventKind::DataRead { loc } => fnv(fnv(*h, 9), data_min[loc.idx()]),
        };
    }
    let mut sig = 0u64;
    for h in thread_hash {
        sig = sig.wrapping_add(fnv(FNV_OFFSET, h));
    }

    // Per-location modification orders (commutative across locations).
    for (li, chain) in trace.mo.iter().enumerate() {
        if chain.is_empty() {
            continue;
        }
        let mut h = fnv(fnv(FNV_OFFSET, 10), loc_min[li]);
        for &w in chain {
            h = fnv(h, ceid(w));
        }
        sig = sig.wrapping_add(h);
    }

    // The SC order (one global chain).
    let mut h = fnv(FNV_OFFSET, 11);
    for &s in &trace.sc_order {
        h = fnv(h, ceid(s));
    }
    sig = sig.wrapping_add(h);

    fnv(sig, trace.num_threads as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VecClock;
    use crate::event::Event;
    use crate::loc::LocId;
    use crate::value::Val;

    /// Tiny hand-rolled trace builder for validator tests. Clocks are
    /// computed with the same sb/create/join/sw rules (but a simpler,
    /// obviously-correct algorithm: rebuild from compute_hb).
    struct Builder {
        events: Vec<Event>,
        mo: Vec<Vec<EventId>>,
        sc: Vec<EventId>,
        seqs: Vec<u32>,
    }

    impl Builder {
        fn new(threads: usize) -> Self {
            Builder {
                events: Vec::new(),
                mo: Vec::new(),
                sc: Vec::new(),
                seqs: vec![0; threads],
            }
        }

        fn push(&mut self, tid: u32, kind: EventKind) -> EventId {
            let id = EventId(self.events.len() as u32);
            self.seqs[tid as usize] += 1;
            let sc_index = match kind.ord() {
                Some(o) if o.is_seq_cst() => {
                    self.sc.push(id);
                    Some(self.sc.len() as u32 - 1)
                }
                _ => None,
            };
            if let Some(loc) = kind.atomic_loc() {
                if kind.is_write() {
                    while self.mo.len() <= loc.idx() {
                        self.mo.push(Vec::new());
                    }
                    self.mo[loc.idx()].push(id);
                }
            }
            self.events.push(Event {
                id,
                tid: Tid(tid),
                seq: self.seqs[tid as usize],
                kind,
                clock: VecClock::new(),
                sc_index,
            });
            id
        }

        fn store(&mut self, tid: u32, loc: u32, ord: MemOrd, val: Val) -> EventId {
            let mo_index = self
                .mo
                .get(loc as usize)
                .map(|v| v.len() as u32)
                .unwrap_or(0);
            self.push(
                tid,
                EventKind::AtomicStore {
                    loc: LocId(loc),
                    ord,
                    val,
                    mo_index,
                },
            )
        }

        fn load(&mut self, tid: u32, loc: u32, ord: MemOrd, rf: Option<EventId>) -> EventId {
            let val = rf
                .map(|w| self.events[w.idx()].kind.written_val().unwrap())
                .unwrap_or(0);
            self.push(
                tid,
                EventKind::AtomicLoad {
                    loc: LocId(loc),
                    ord,
                    rf,
                    val,
                },
            )
        }

        fn finish(mut self) -> Trace {
            // Populate clocks from the offline hb so trace.hb works in
            // validator tests that don't exercise clock checking.
            let n = self.events.len();
            let mut t = Trace {
                events: self.events.clone(),
                mo: self.mo.clone(),
                sc_order: self.sc.clone(),
                num_threads: self.seqs.len() as u32,
                annotations: vec![],
            };
            let hb = compute_hb(&t);
            for i in 0..n {
                for j in 0..n {
                    if hb.get(j, i) {
                        let je = &t.events[j];
                        self.events[i].clock.raise(je.tid, je.seq);
                    }
                }
            }
            t.events = self.events;
            t
        }
    }

    use MemOrd::*;

    #[test]
    fn consistent_message_passing_validates() {
        // T0: store d=1 rlx; store f=1 rel.  T1: load f=1 acq; load d=1 rlx.
        let mut b = Builder::new(2);
        let d = b.store(0, 0, Relaxed, 1);
        let f = b.store(0, 1, Release, 1);
        b.load(1, 1, Acquire, Some(f));
        b.load(1, 0, Relaxed, Some(d));
        let t = b.finish();
        assert!(validate(&t, true).is_empty(), "{:?}", validate(&t, true));
    }

    #[test]
    fn hidden_store_is_a_cowr_violation() {
        // T0: store x=1; store x=2 rel. T1: load x acq reads 2 (sync), then
        // loads x=1 again — reads a store hidden behind one it has seen.
        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let w2 = b.store(0, 0, Release, 2);
        b.load(1, 0, Acquire, Some(w2));
        b.load(1, 0, Relaxed, Some(w1));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::CoWr { .. } | AxiomError::CoRr { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn corr_violation_detected_without_sync() {
        // Same thread reads x=2 then x=1 with no synchronization at all:
        // still a CoRR violation via sb.
        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let w2 = b.store(0, 0, Relaxed, 2);
        b.load(1, 0, Relaxed, Some(w2));
        b.load(1, 0, Relaxed, Some(w1));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter().any(|e| matches!(e, AxiomError::CoRr { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn stale_read_without_sync_is_legal() {
        // Relaxed MP: reading the flag does NOT make the data store
        // hb-visible, so reading stale data is consistent.
        let mut b = Builder::new(2);
        let _d = b.store(0, 0, Relaxed, 1);
        let f = b.store(0, 1, Relaxed, 1);
        b.load(1, 1, Relaxed, Some(f));
        b.load(1, 0, Relaxed, None); // uninitialized read: rf = None
        let t = b.finish();
        // validate ignores rf=None (uninit is the *checker's* built-in bug,
        // not an axiom violation).
        assert!(validate(&t, false).is_empty());
    }

    #[test]
    fn sc_read_must_see_last_sc_store() {
        // T0: store x=1 sc. T1: store x=2 sc. T2: load x sc reading 1 while
        // the last SC store in S is 2 → violation.
        let mut b = Builder::new(3);
        let w1 = b.store(0, 0, SeqCst, 1);
        let _w2 = b.store(1, 0, SeqCst, 2);
        b.load(2, 0, SeqCst, Some(w1));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter().any(|e| matches!(e, AxiomError::ScRead { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn release_sequence_through_rmw_synchronizes() {
        // T0: store x=1 rel. T1: rmw x 1->2 rlx. T2: load x acq reads the
        // RMW → synchronizes with the release head, so a CoWR check on data
        // would hold. Here we just confirm hb(T0 store, T2 load).
        let mut b = Builder::new(3);
        let h = b.store(0, 0, Release, 1);
        let rmw = b.push(
            1,
            EventKind::Rmw {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(h),
                read_val: 1,
                written: Some(2),
                mo_index: 1,
            },
        );
        let r = b.load(2, 0, Acquire, Some(rmw));
        let t = b.finish();
        assert!(validate(&t, true).is_empty());
        assert!(
            t.hb(h, r),
            "release sequence must give hb(head, acquire reader)"
        );
    }

    #[test]
    fn fence_synchronization_gives_hb() {
        // T0: store d rlx; release fence; store f rlx.
        // T1: load f rlx (reads f); acquire fence; load d.
        let mut b = Builder::new(2);
        let d = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: Release });
        let f = b.store(0, 1, Relaxed, 1);
        b.load(1, 1, Relaxed, Some(f));
        b.push(1, EventKind::Fence { ord: Acquire });
        let r = b.load(1, 0, Relaxed, Some(d));
        let t = b.finish();
        assert!(validate(&t, true).is_empty());
        assert!(
            t.hb(d, r),
            "fence-fence synchronization must order the data accesses"
        );
    }

    #[test]
    fn rmw_atomicity_enforced() {
        let mut b = Builder::new(2);
        let w1 = b.store(0, 0, Relaxed, 1);
        let _w2 = b.store(0, 0, Relaxed, 2);
        // RMW claims to read w1 but its write is appended at mo index 2
        // (not adjacent) → atomicity violation.
        b.push(
            1,
            EventKind::Rmw {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(w1),
                read_val: 1,
                written: Some(5),
                mo_index: 2,
            },
        );
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::RmwAtomicity { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn sc_fence_p5_violation_detected() {
        // T0: store x=1 rlx; SC fence (publishes x=1).
        // T1: SC load of x reading the stale init — p5 forbids it.
        let mut b = Builder::new(2);
        let w0 = b.store(0, 0, Relaxed, 0); // init
        let _w1 = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, SeqCst, Some(w0));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::ScFence { rule: "p5", .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn sc_fence_p4_violation_detected() {
        // T0: SC store x=1. T1: SC fence; then a relaxed load of x reading
        // the init — p4 forbids reading anything older than the last SC
        // store preceding the fence in S.
        let mut b = Builder::new(2);
        let w0 = b.store(0, 0, Relaxed, 0); // init
        let _w1 = b.store(0, 0, SeqCst, 1);
        b.push(1, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, Relaxed, Some(w0));
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter()
                .any(|e| matches!(e, AxiomError::ScFence { rule: "p4/p6", .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn sc_fences_clean_trace_passes() {
        // The compliant version of the p5 scenario: the SC load reads the
        // published store.
        let mut b = Builder::new(2);
        let _w0 = b.store(0, 0, Relaxed, 0);
        let w1 = b.store(0, 0, Relaxed, 1);
        b.push(0, EventKind::Fence { ord: SeqCst });
        b.load(1, 0, SeqCst, Some(w1));
        let t = b.finish();
        assert!(validate(&t, false).is_empty());
    }

    #[test]
    fn bad_rf_value_mismatch_detected() {
        let mut b = Builder::new(1);
        let w = b.store(0, 0, Relaxed, 1);
        b.push(
            0,
            EventKind::AtomicLoad {
                loc: LocId(0),
                ord: Relaxed,
                rf: Some(w),
                val: 99,
            },
        );
        let t = b.finish();
        let errs = validate(&t, false);
        assert!(
            errs.iter().any(|e| matches!(e, AxiomError::BadRf { .. })),
            "{errs:?}"
        );
    }
}
