//! Location identifiers.
//!
//! Locations are allocated in deterministic program order by the model
//! checker, which makes them stable across the replay of an execution
//! prefix — the property the DFS explorer relies on.

/// Identifier of a modeled *atomic* memory location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u32);

/// Identifier of a modeled *non-atomic* memory location (subject to
/// data-race detection rather than coherence).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u32);

impl LocId {
    /// Index form for dense per-location tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl DataId {
    /// Index form for dense per-location tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl std::fmt::Display for DataId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(LocId(3).to_string(), "a3");
        assert_eq!(DataId(0).to_string(), "d0");
        assert_eq!(LocId(7).idx(), 7);
    }
}
