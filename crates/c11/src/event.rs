//! Execution-trace events.

use crate::clock::VecClock;
use crate::loc::{DataId, LocId};
use crate::ordering::MemOrd;
use crate::value::Val;

/// Thread identifier. Thread 0 is the modeled "main" thread (the body of
/// the `model(..)` closure), matching CDSChecker's convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl Tid {
    /// The modeled main thread.
    pub const MAIN: Tid = Tid(0);

    /// Index form for dense per-thread tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Index of an event in [`crate::trace::Trace::events`] (global execution
/// order, which is also the order the scheduler committed operations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// Index form.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What an event did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An atomic load. `rf` is the store read from (`None` = the location
    /// was uninitialized — always reported as a built-in bug). `val` is the
    /// value observed.
    AtomicLoad {
        /// Location read.
        loc: LocId,
        /// Memory ordering of the load.
        ord: MemOrd,
        /// The store read from (`None` = uninitialized).
        rf: Option<EventId>,
        /// Value observed.
        val: Val,
    },
    /// An atomic store. `mo_index` is its position in the location's
    /// modification order.
    AtomicStore {
        /// Location written.
        loc: LocId,
        /// Memory ordering of the store.
        ord: MemOrd,
        /// Value written.
        val: Val,
        /// Position in the location's modification order.
        mo_index: u32,
    },
    /// An atomic read-modify-write (fetch_add/fetch_sub/swap/CAS…).
    /// `written = None` means a failed compare-exchange (pure load).
    Rmw {
        /// Location read and (on success) written.
        loc: LocId,
        /// Memory ordering of the RMW.
        ord: MemOrd,
        /// The store read from (`None` = uninitialized).
        rf: Option<EventId>,
        /// Value read.
        read_val: Val,
        /// Value written (`None` = failed compare-exchange).
        written: Option<Val>,
        /// mo position of the written store (meaningless when `written`
        /// is `None`).
        mo_index: u32,
    },
    /// A memory fence.
    Fence {
        /// Memory ordering of the fence.
        ord: MemOrd,
    },
    /// Creation of a child thread (the `sw` edge to its first event is
    /// implicit in the clocks).
    ThreadCreate {
        /// The spawned thread.
        child: Tid,
    },
    /// Join on `target` (synchronizes with its finish).
    ThreadJoin {
        /// The joined thread.
        target: Tid,
    },
    /// Thread ran to completion.
    ThreadFinish,
    /// A non-atomic write (participates in race detection only).
    DataWrite {
        /// Non-atomic location written.
        loc: DataId,
    },
    /// A non-atomic read.
    DataRead {
        /// Non-atomic location read.
        loc: DataId,
    },
}

impl EventKind {
    /// Atomic location touched, if any.
    pub fn atomic_loc(&self) -> Option<LocId> {
        match self {
            EventKind::AtomicLoad { loc, .. }
            | EventKind::AtomicStore { loc, .. }
            | EventKind::Rmw { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Is this a store or successful RMW (i.e. does it add to mo)?
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            EventKind::AtomicStore { .. }
                | EventKind::Rmw {
                    written: Some(_),
                    ..
                }
        )
    }

    /// Is this a load or RMW (i.e. does it read)?
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::AtomicLoad { .. } | EventKind::Rmw { .. })
    }

    /// The store this event read from, if it reads.
    pub fn rf(&self) -> Option<EventId> {
        match self {
            EventKind::AtomicLoad { rf, .. } | EventKind::Rmw { rf, .. } => *rf,
            _ => None,
        }
    }

    /// The ordering parameter, if the event has one.
    pub fn ord(&self) -> Option<MemOrd> {
        match self {
            EventKind::AtomicLoad { ord, .. }
            | EventKind::AtomicStore { ord, .. }
            | EventKind::Rmw { ord, .. }
            | EventKind::Fence { ord } => Some(*ord),
            _ => None,
        }
    }

    /// Value written to the location, if any.
    pub fn written_val(&self) -> Option<Val> {
        match self {
            EventKind::AtomicStore { val, .. } => Some(*val),
            EventKind::Rmw { written, .. } => *written,
            _ => None,
        }
    }

    /// mo index of the write, if this event writes.
    pub fn mo_index(&self) -> Option<u32> {
        match self {
            EventKind::AtomicStore { mo_index, .. } => Some(*mo_index),
            EventKind::Rmw {
                written: Some(_),
                mo_index,
                ..
            } => Some(*mo_index),
            _ => None,
        }
    }
}

/// One committed operation of an execution.
#[derive(Clone, Debug)]
pub struct Event {
    /// Position in global execution order.
    pub id: EventId,
    /// Executing thread.
    pub tid: Tid,
    /// 1-based per-thread sequence number.
    pub seq: u32,
    /// The operation.
    pub kind: EventKind,
    /// Happens-before knowledge of *other* threads' events at this point.
    /// The executing thread's own component is implicit — `tid`'s first
    /// `seq` events happen-before (or are) this event — which lets the
    /// buffer stay shared with the thread's live clock instead of being
    /// copied per event (see the copy-on-write notes in [`crate::clock`]).
    /// Query through [`Event::happens_before`], which accounts for the
    /// implicit component; the per-event coherence tables that used to
    /// ride along here were never read back and are not stored.
    pub clock: VecClock,
    /// Position in the SC total order *S*, when `ord` is `seq_cst`.
    pub sc_index: Option<u32>,
}

impl Event {
    /// Does this event happen-before `other`? (Irreflexive: an event does
    /// not happen-before itself.)
    pub fn happens_before(&self, other: &Event) -> bool {
        if self.id == other.id {
            return false;
        }
        if self.tid == other.tid {
            // Program order; `other.clock` does not carry its own thread.
            return self.seq < other.seq;
        }
        other.clock.knows(self.tid, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u32, tid: u32, seq: u32) -> Event {
        Event {
            id: EventId(id),
            tid: Tid(tid),
            seq,
            kind: EventKind::Fence {
                ord: MemOrd::SeqCst,
            },
            clock: VecClock::new(),
            sc_index: None,
        }
    }

    #[test]
    fn happens_before_is_irreflexive() {
        let e = ev(0, 0, 1);
        assert!(!e.happens_before(&e));
    }

    #[test]
    fn happens_before_follows_clock_knowledge() {
        let e1 = ev(0, 0, 1);
        let mut e2 = ev(1, 1, 1);
        assert!(!e1.happens_before(&e2));
        e2.clock.set(Tid(0), 1);
        assert!(e1.happens_before(&e2));
        assert!(!e2.happens_before(&e1));
    }

    #[test]
    fn happens_before_same_thread_is_program_order() {
        let e1 = ev(0, 2, 1);
        let e2 = ev(5, 2, 2);
        // Neither clock mentions thread 2 — the own component is implicit.
        assert!(e1.happens_before(&e2));
        assert!(!e2.happens_before(&e1));
    }

    #[test]
    fn kind_accessors() {
        let store = EventKind::AtomicStore {
            loc: LocId(0),
            ord: MemOrd::Release,
            val: 7,
            mo_index: 2,
        };
        assert!(store.is_write() && !store.is_read());
        assert_eq!(store.atomic_loc(), Some(LocId(0)));
        assert_eq!(store.written_val(), Some(7));
        assert_eq!(store.mo_index(), Some(2));

        let failed_cas = EventKind::Rmw {
            loc: LocId(1),
            ord: MemOrd::SeqCst,
            rf: Some(EventId(0)),
            read_val: 3,
            written: None,
            mo_index: 0,
        };
        assert!(!failed_cas.is_write() && failed_cas.is_read());
        assert_eq!(failed_cas.rf(), Some(EventId(0)));
        assert_eq!(failed_cas.written_val(), None);
        assert_eq!(failed_cas.mo_index(), None);

        let fence = EventKind::Fence {
            ord: MemOrd::AcqRel,
        };
        assert_eq!(fence.atomic_loc(), None);
        assert_eq!(fence.ord(), Some(MemOrd::AcqRel));
    }
}
