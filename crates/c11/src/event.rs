//! Execution-trace events.
//!
//! Since the struct-of-arrays [`crate::trace::Trace`] rework there is no
//! per-event struct: an event is a row across the trace's parallel
//! columns, addressed by [`EventId`]. [`EventKind`] remains the *logical*
//! description of one operation — it is what callers pass to
//! [`crate::trace::Trace::push`] and what [`crate::trace::Trace::kind`]
//! materializes back from the columns — and [`EventTag`] is the dense
//! one-byte discriminant stored in the hot column.

use crate::loc::{DataId, LocId};
use crate::ordering::MemOrd;
use crate::value::Val;

/// Thread identifier. Thread 0 is the modeled "main" thread (the body of
/// the `model(..)` closure), matching CDSChecker's convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl Tid {
    /// The modeled main thread.
    pub const MAIN: Tid = Tid(0);

    /// Index form for dense per-thread tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Index of an event in the trace's columns (global execution order, which
/// is also the order the scheduler committed operations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// Index form.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Dense one-byte discriminant of an event — the hot-column form of
/// [`EventKind`], stored once per event in the trace's `tags` column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventTag {
    /// An atomic load ([`EventKind::AtomicLoad`]).
    Load,
    /// An atomic store ([`EventKind::AtomicStore`]).
    Store,
    /// An RMW, successful or failed ([`EventKind::Rmw`]; a failed
    /// compare-exchange is distinguished by the absence of an mo index).
    Rmw,
    /// A fence ([`EventKind::Fence`]).
    Fence,
    /// Thread creation ([`EventKind::ThreadCreate`]).
    Create,
    /// Thread join ([`EventKind::ThreadJoin`]).
    Join,
    /// Thread completion ([`EventKind::ThreadFinish`]).
    Finish,
    /// Non-atomic write ([`EventKind::DataWrite`]).
    DataWrite,
    /// Non-atomic read ([`EventKind::DataRead`]).
    DataRead,
}

/// What an event did. The logical, self-contained description of one
/// operation: the input to [`crate::trace::Trace::push`] and the
/// materialized output of [`crate::trace::Trace::kind`]. `Copy`, so
/// materializing one never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An atomic load. `rf` is the store read from (`None` = the location
    /// was uninitialized — always reported as a built-in bug). `val` is the
    /// value observed.
    AtomicLoad {
        /// Location read.
        loc: LocId,
        /// Memory ordering of the load.
        ord: MemOrd,
        /// The store read from (`None` = uninitialized).
        rf: Option<EventId>,
        /// Value observed.
        val: Val,
    },
    /// An atomic store. `mo_index` is its position in the location's
    /// modification order.
    AtomicStore {
        /// Location written.
        loc: LocId,
        /// Memory ordering of the store.
        ord: MemOrd,
        /// Value written.
        val: Val,
        /// Position in the location's modification order.
        mo_index: u32,
    },
    /// An atomic read-modify-write (fetch_add/fetch_sub/swap/CAS…).
    /// `written = None` means a failed compare-exchange (pure load).
    Rmw {
        /// Location read and (on success) written.
        loc: LocId,
        /// Memory ordering of the RMW.
        ord: MemOrd,
        /// The store read from (`None` = uninitialized).
        rf: Option<EventId>,
        /// Value read.
        read_val: Val,
        /// Value written (`None` = failed compare-exchange).
        written: Option<Val>,
        /// mo position of the written store (meaningless when `written`
        /// is `None`).
        mo_index: u32,
    },
    /// A memory fence.
    Fence {
        /// Memory ordering of the fence.
        ord: MemOrd,
    },
    /// Creation of a child thread (the `sw` edge to its first event is
    /// implicit in the clocks).
    ThreadCreate {
        /// The spawned thread.
        child: Tid,
    },
    /// Join on `target` (synchronizes with its finish).
    ThreadJoin {
        /// The joined thread.
        target: Tid,
    },
    /// Thread ran to completion.
    ThreadFinish,
    /// A non-atomic write (participates in race detection only).
    DataWrite {
        /// Non-atomic location written.
        loc: DataId,
    },
    /// A non-atomic read.
    DataRead {
        /// Non-atomic location read.
        loc: DataId,
    },
}

impl EventKind {
    /// The dense one-byte discriminant stored in the trace's hot column.
    pub fn tag(&self) -> EventTag {
        match self {
            EventKind::AtomicLoad { .. } => EventTag::Load,
            EventKind::AtomicStore { .. } => EventTag::Store,
            EventKind::Rmw { .. } => EventTag::Rmw,
            EventKind::Fence { .. } => EventTag::Fence,
            EventKind::ThreadCreate { .. } => EventTag::Create,
            EventKind::ThreadJoin { .. } => EventTag::Join,
            EventKind::ThreadFinish => EventTag::Finish,
            EventKind::DataWrite { .. } => EventTag::DataWrite,
            EventKind::DataRead { .. } => EventTag::DataRead,
        }
    }

    /// Atomic location touched, if any.
    pub fn atomic_loc(&self) -> Option<LocId> {
        match self {
            EventKind::AtomicLoad { loc, .. }
            | EventKind::AtomicStore { loc, .. }
            | EventKind::Rmw { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Is this a store or successful RMW (i.e. does it add to mo)?
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            EventKind::AtomicStore { .. }
                | EventKind::Rmw {
                    written: Some(_),
                    ..
                }
        )
    }

    /// Is this a load or RMW (i.e. does it read)?
    pub fn is_read(&self) -> bool {
        matches!(self, EventKind::AtomicLoad { .. } | EventKind::Rmw { .. })
    }

    /// The store this event read from, if it reads.
    pub fn rf(&self) -> Option<EventId> {
        match self {
            EventKind::AtomicLoad { rf, .. } | EventKind::Rmw { rf, .. } => *rf,
            _ => None,
        }
    }

    /// The ordering parameter, if the event has one.
    pub fn ord(&self) -> Option<MemOrd> {
        match self {
            EventKind::AtomicLoad { ord, .. }
            | EventKind::AtomicStore { ord, .. }
            | EventKind::Rmw { ord, .. }
            | EventKind::Fence { ord } => Some(*ord),
            _ => None,
        }
    }

    /// Value written to the location, if any.
    pub fn written_val(&self) -> Option<Val> {
        match self {
            EventKind::AtomicStore { val, .. } => Some(*val),
            EventKind::Rmw { written, .. } => *written,
            _ => None,
        }
    }

    /// mo index of the write, if this event writes.
    pub fn mo_index(&self) -> Option<u32> {
        match self {
            EventKind::AtomicStore { mo_index, .. } => Some(*mo_index),
            EventKind::Rmw {
                written: Some(_),
                mo_index,
                ..
            } => Some(*mo_index),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        let store = EventKind::AtomicStore {
            loc: LocId(0),
            ord: MemOrd::Release,
            val: 7,
            mo_index: 2,
        };
        assert!(store.is_write() && !store.is_read());
        assert_eq!(store.atomic_loc(), Some(LocId(0)));
        assert_eq!(store.written_val(), Some(7));
        assert_eq!(store.mo_index(), Some(2));
        assert_eq!(store.tag(), EventTag::Store);

        let failed_cas = EventKind::Rmw {
            loc: LocId(1),
            ord: MemOrd::SeqCst,
            rf: Some(EventId(0)),
            read_val: 3,
            written: None,
            mo_index: 0,
        };
        assert!(!failed_cas.is_write() && failed_cas.is_read());
        assert_eq!(failed_cas.rf(), Some(EventId(0)));
        assert_eq!(failed_cas.written_val(), None);
        assert_eq!(failed_cas.mo_index(), None);
        assert_eq!(failed_cas.tag(), EventTag::Rmw);

        let fence = EventKind::Fence {
            ord: MemOrd::AcqRel,
        };
        assert_eq!(fence.atomic_loc(), None);
        assert_eq!(fence.ord(), Some(MemOrd::AcqRel));
        assert_eq!(fence.tag(), EventTag::Fence);
    }

    #[test]
    fn every_kind_has_a_distinct_tag() {
        use EventTag::*;
        let tags = [
            Load, Store, Rmw, Fence, Create, Join, Finish, DataWrite, DataRead,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(EventKind::ThreadFinish.tag(), Finish);
        assert_eq!(EventKind::ThreadCreate { child: Tid(1) }.tag(), Create);
        assert_eq!(EventKind::DataRead { loc: DataId(0) }.tag(), DataRead);
    }
}
