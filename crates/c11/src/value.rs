//! The bit-level value model.
//!
//! Every modeled atomic or non-atomic cell holds a [`Val`] (`u64`). Typed
//! front-ends (`Atomic<T>`, `Data<T>` in `cdsspec-mc`) convert through the
//! [`PrimVal`] trait. Pointers are carried as their address bits, which is
//! how CDSChecker models them too.

/// The raw value stored in a modeled memory cell.
pub type Val = u64;

/// Types that can live in a modeled atomic/non-atomic cell.
///
/// Implementations must round-trip: `from_bits(to_bits(x)) == x`.
pub trait PrimVal: Copy {
    /// Encode into the 64-bit cell representation.
    fn to_bits(self) -> Val;
    /// Decode from the 64-bit cell representation.
    fn from_bits(bits: Val) -> Self;
}

macro_rules! prim_unsigned {
    ($($t:ty),*) => {$(
        impl PrimVal for $t {
            #[inline]
            fn to_bits(self) -> Val { self as Val }
            #[inline]
            fn from_bits(bits: Val) -> Self { bits as $t }
        }
    )*};
}

macro_rules! prim_signed {
    ($($t:ty),*) => {$(
        impl PrimVal for $t {
            // Sign-extend through i64 so negative values round-trip.
            #[inline]
            fn to_bits(self) -> Val { self as i64 as Val }
            #[inline]
            fn from_bits(bits: Val) -> Self { bits as i64 as $t }
        }
    )*};
}

prim_unsigned!(u8, u16, u32, u64, usize);
prim_signed!(i8, i16, i32, i64, isize);

impl PrimVal for bool {
    #[inline]
    fn to_bits(self) -> Val {
        self as Val
    }
    #[inline]
    fn from_bits(bits: Val) -> Self {
        bits != 0
    }
}

impl<T> PrimVal for *mut T {
    #[inline]
    fn to_bits(self) -> Val {
        self as usize as Val
    }
    #[inline]
    fn from_bits(bits: Val) -> Self {
        bits as usize as *mut T
    }
}

impl<T> PrimVal for *const T {
    #[inline]
    fn to_bits(self) -> Val {
        self as usize as Val
    }
    #[inline]
    fn from_bits(bits: Val) -> Self {
        bits as usize as *const T
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: PrimVal + PartialEq + std::fmt::Debug>(x: T) {
        assert_eq!(T::from_bits(x.to_bits()), x);
    }

    #[test]
    fn unsigned_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42u32);
        roundtrip(u32::MAX);
        roundtrip(usize::MAX);
        roundtrip(255u8);
    }

    #[test]
    fn signed_roundtrip_preserves_sign() {
        roundtrip(-1i32);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(-1isize);
        roundtrip(-128i8);
        // The canonical CDSSpec "empty" sentinel must survive the cell.
        assert_eq!(i32::from_bits((-1i32).to_bits()), -1);
    }

    #[test]
    fn bool_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        assert!(bool::from_bits(7)); // any nonzero is true
    }

    #[test]
    fn pointer_roundtrip() {
        let x = Box::into_raw(Box::new(7i32));
        roundtrip(x);
        roundtrip(std::ptr::null_mut::<i32>());
        unsafe { drop(Box::from_raw(x)) };
    }
}
