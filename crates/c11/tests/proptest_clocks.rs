//! Property tests for the clock lattice: `VecClock` and `CoherenceMap`
//! joins must form a join-semilattice (associative, commutative,
//! idempotent, monotone), and `Clock::read_floor` must be monotone under
//! join — the properties the coherence machinery silently relies on.

use cdsspec_c11::clock::CoherenceMap;
use cdsspec_c11::{Clock, LocId, Tid, VecClock};
use proptest::prelude::*;

fn vecclock_strategy() -> impl Strategy<Value = VecClock> {
    prop::collection::vec(0u32..20, 0..6).prop_map(|counts| {
        let mut c = VecClock::new();
        for (i, v) in counts.into_iter().enumerate() {
            c.set(Tid(i as u32), v);
        }
        c
    })
}

fn cohmap_strategy() -> impl Strategy<Value = CoherenceMap> {
    prop::collection::vec(prop::option::of(0u32..10), 0..5).prop_map(|bounds| {
        let mut m = CoherenceMap::new();
        for (i, b) in bounds.into_iter().enumerate() {
            if let Some(b) = b {
                m.raise(LocId(i as u32), b);
            }
        }
        m
    })
}

fn joined(a: &VecClock, b: &VecClock) -> VecClock {
    let mut x = a.clone();
    x.join(b);
    x
}

fn mjoined(a: &CoherenceMap, b: &CoherenceMap) -> CoherenceMap {
    let mut x = a.clone();
    x.join(b);
    x
}

proptest! {
    #[test]
    fn vecclock_join_commutative(a in vecclock_strategy(), b in vecclock_strategy()) {
        let ab = joined(&a, &b);
        let ba = joined(&b, &a);
        // Compare observationally (vectors may differ in trailing zeros).
        for i in 0..8u32 {
            prop_assert_eq!(ab.get(Tid(i)), ba.get(Tid(i)));
        }
    }

    #[test]
    fn vecclock_join_associative(
        a in vecclock_strategy(),
        b in vecclock_strategy(),
        c in vecclock_strategy()
    ) {
        let left = joined(&joined(&a, &b), &c);
        let right = joined(&a, &joined(&b, &c));
        for i in 0..8u32 {
            prop_assert_eq!(left.get(Tid(i)), right.get(Tid(i)));
        }
    }

    #[test]
    fn vecclock_join_idempotent_and_upper_bound(a in vecclock_strategy(), b in vecclock_strategy()) {
        let aa = joined(&a, &a);
        for i in 0..8u32 {
            prop_assert_eq!(aa.get(Tid(i)), a.get(Tid(i)));
        }
        let ab = joined(&a, &b);
        prop_assert!(ab.includes(&a));
        prop_assert!(ab.includes(&b));
    }

    #[test]
    fn vecclock_includes_is_a_partial_order(
        a in vecclock_strategy(),
        b in vecclock_strategy(),
        c in vecclock_strategy()
    ) {
        prop_assert!(a.includes(&a));
        if a.includes(&b) && b.includes(&c) {
            prop_assert!(a.includes(&c), "transitivity");
        }
        if a.includes(&b) && b.includes(&a) {
            for i in 0..8u32 {
                prop_assert_eq!(a.get(Tid(i)), b.get(Tid(i)), "antisymmetry");
            }
        }
    }

    #[test]
    fn cohmap_join_laws(a in cohmap_strategy(), b in cohmap_strategy()) {
        let ab = mjoined(&a, &b);
        let ba = mjoined(&b, &a);
        for i in 0..6u32 {
            prop_assert_eq!(ab.get(LocId(i)), ba.get(LocId(i)), "commutative");
            // join is an upper bound
            let lo = a.get(LocId(i)).max(b.get(LocId(i)));
            prop_assert_eq!(ab.get(LocId(i)), lo, "pointwise max");
        }
    }

    #[test]
    fn read_floor_monotone_under_join(
        w1 in cohmap_strategy(),
        r1 in cohmap_strategy(),
        w2 in cohmap_strategy(),
        r2 in cohmap_strategy()
    ) {
        let a = Clock { vc: VecClock::new(), wmax: w1, rmax: r1 };
        let b = Clock { vc: VecClock::new(), wmax: w2, rmax: r2 };
        let mut ab = a.clone();
        ab.join(&b);
        for i in 0..6u32 {
            let loc = LocId(i);
            // The joined floor can never be lower than either input's.
            let fa = a.read_floor(loc).unwrap_or(0);
            let fb = b.read_floor(loc).unwrap_or(0);
            if a.read_floor(loc).is_some() || b.read_floor(loc).is_some() {
                let fab = ab.read_floor(loc).expect("join keeps constraints");
                prop_assert!(fab >= fa.max(fb));
            } else {
                prop_assert!(ab.read_floor(loc).is_none());
            }
        }
    }

    /// `raise` never lowers a bound.
    #[test]
    fn cohmap_raise_monotone(m in cohmap_strategy(), loc in 0u32..6, v in 0u32..10) {
        let before = m.get(LocId(loc));
        let mut m2 = m.clone();
        m2.raise(LocId(loc), v);
        let after = m2.get(LocId(loc)).expect("raised");
        prop_assert!(after >= v);
        if let Some(b) = before {
            prop_assert!(after >= b);
        }
    }
}

// ---------------------------------------------------------------------
// COW vs. naive reference: random operation sequences.
//
// The copy-on-write `VecClock`/`CoherenceMap` must be observationally
// identical to the retained eager implementations in
// `cdsspec_c11::clock::naive` under *every* interleaving of mutations —
// including the aliasing the COW representation introduces (clones that
// share buffers, later diverging on write). Each case drives both
// implementations, plus a shared-ancestor clone of the COW value, through
// the same operation sequence and compares all observations after every
// step.
// ---------------------------------------------------------------------

use cdsspec_c11::clock::naive;

/// One mutation of a vector-clock pair (applied to COW and naive alike).
#[derive(Clone, Debug)]
enum VcOp {
    Set {
        tid: u32,
        count: u32,
    },
    Raise {
        tid: u32,
        seq: u32,
    },
    /// Join with a clock built from these counts.
    Join {
        counts: Vec<u32>,
    },
    /// Clone the COW value (sharing its buffers), then keep mutating the
    /// original — exercises make-mut unsharing.
    CloneAndContinue,
}

fn vc_op_strategy() -> impl Strategy<Value = VcOp> {
    prop_oneof![
        (0u32..6, 0u32..20).prop_map(|(tid, count)| VcOp::Set { tid, count }),
        (0u32..6, 0u32..20).prop_map(|(tid, seq)| VcOp::Raise { tid, seq }),
        prop::collection::vec(0u32..20, 0..6).prop_map(|counts| VcOp::Join { counts }),
        Just(VcOp::CloneAndContinue),
    ]
}

/// One mutation of a coherence-map pair.
#[derive(Clone, Debug)]
enum CmOp {
    Raise { loc: u32, idx: u32 },
    Join { bounds: Vec<Option<u32>> },
    CloneAndContinue,
}

fn cm_op_strategy() -> impl Strategy<Value = CmOp> {
    prop_oneof![
        (0u32..6, 0u32..10).prop_map(|(loc, idx)| CmOp::Raise { loc, idx }),
        prop::collection::vec(prop::option::of(0u32..10), 0..5)
            .prop_map(|bounds| CmOp::Join { bounds }),
        Just(CmOp::CloneAndContinue),
    ]
}

fn naive_vc(counts: &[u32]) -> naive::VecClock {
    let mut c = naive::VecClock::default();
    for (i, &v) in counts.iter().enumerate() {
        c.set(Tid(i as u32), v);
    }
    c
}

fn cow_vc(counts: &[u32]) -> VecClock {
    let mut c = VecClock::new();
    for (i, &v) in counts.iter().enumerate() {
        c.set(Tid(i as u32), v);
    }
    c
}

proptest! {
    /// COW `VecClock` vs. the naive reference over random op sequences:
    /// `get`, `includes`, and `knows` must agree after every mutation, and
    /// clones sharing buffers mid-sequence must not be disturbed by later
    /// writes to the original.
    #[test]
    fn cow_vecclock_matches_naive_on_op_sequences(
        ops in prop::collection::vec(vc_op_strategy(), 0..24)
    ) {
        let mut cow = VecClock::new();
        let mut reference = naive::VecClock::default();
        // (frozen COW clone, naive snapshot at freeze time)
        let mut frozen: Vec<(VecClock, naive::VecClock)> = Vec::new();

        for op in &ops {
            match op {
                VcOp::Set { tid, count } => {
                    cow.set(Tid(*tid), *count);
                    reference.set(Tid(*tid), *count);
                }
                VcOp::Raise { tid, seq } => {
                    cow.raise(Tid(*tid), *seq);
                    reference.raise(Tid(*tid), *seq);
                }
                VcOp::Join { counts } => {
                    cow.join(&cow_vc(counts));
                    reference.join(&naive_vc(counts));
                }
                VcOp::CloneAndContinue => {
                    frozen.push((cow.clone(), reference.clone()));
                }
            }
            for i in 0..8u32 {
                prop_assert_eq!(cow.get(Tid(i)), reference.get(Tid(i)));
                prop_assert_eq!(
                    cow.knows(Tid(i), 3),
                    reference.knows(Tid(i), 3)
                );
            }
            prop_assert_eq!(
                cow.includes(&cow_vc(&[2, 2, 2])),
                reference.includes(&naive_vc(&[2, 2, 2]))
            );
        }
        // Writes to the original must never leak into earlier clones.
        for (cow_snap, ref_snap) in &frozen {
            for i in 0..8u32 {
                prop_assert_eq!(cow_snap.get(Tid(i)), ref_snap.get(Tid(i)));
            }
        }
    }

    /// COW `CoherenceMap` vs. the naive reference over random op
    /// sequences, with the same shared-clone discipline.
    #[test]
    fn cow_cohmap_matches_naive_on_op_sequences(
        ops in prop::collection::vec(cm_op_strategy(), 0..24)
    ) {
        let mut cow = CoherenceMap::new();
        let mut reference = naive::CoherenceMap::default();
        let mut frozen: Vec<(CoherenceMap, naive::CoherenceMap)> = Vec::new();

        for op in &ops {
            match op {
                CmOp::Raise { loc, idx } => {
                    cow.raise(LocId(*loc), *idx);
                    reference.raise(LocId(*loc), *idx);
                }
                CmOp::Join { bounds } => {
                    let mut cj = CoherenceMap::new();
                    let mut nj = naive::CoherenceMap::default();
                    for (i, b) in bounds.iter().enumerate() {
                        if let Some(b) = b {
                            cj.raise(LocId(i as u32), *b);
                            nj.raise(LocId(i as u32), *b);
                        }
                    }
                    cow.join(&cj);
                    reference.join(&nj);
                }
                CmOp::CloneAndContinue => {
                    frozen.push((cow.clone(), reference.clone()));
                }
            }
            for i in 0..7u32 {
                prop_assert_eq!(cow.get(LocId(i)), reference.get(LocId(i)));
            }
        }
        for (cow_snap, ref_snap) in &frozen {
            for i in 0..7u32 {
                prop_assert_eq!(cow_snap.get(LocId(i)), ref_snap.get(LocId(i)));
            }
        }
    }

    /// `Clock::read_floor` must agree with recomputing the floor from the
    /// naive tables (pointwise max of the write and read coherence maps).
    #[test]
    fn read_floor_matches_naive_tables(
        w_ops in prop::collection::vec((0u32..6, 0u32..10), 0..12),
        r_ops in prop::collection::vec((0u32..6, 0u32..10), 0..12)
    ) {
        let mut clock = Clock::new();
        let mut w_ref = naive::CoherenceMap::default();
        let mut r_ref = naive::CoherenceMap::default();
        for &(loc, idx) in &w_ops {
            clock.wmax.raise(LocId(loc), idx);
            w_ref.raise(LocId(loc), idx);
        }
        for &(loc, idx) in &r_ops {
            clock.rmax.raise(LocId(loc), idx);
            r_ref.raise(LocId(loc), idx);
        }
        for i in 0..7u32 {
            let loc = LocId(i);
            let expect = match (w_ref.get(loc), r_ref.get(loc)) {
                (None, None) => None,
                (w, r) => Some(w.unwrap_or(0).max(r.unwrap_or(0))),
            };
            prop_assert_eq!(clock.read_floor(loc), expect);
        }
    }
}
