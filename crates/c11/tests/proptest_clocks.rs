//! Property tests for the clock lattice: `VecClock` and `CoherenceMap`
//! joins must form a join-semilattice (associative, commutative,
//! idempotent, monotone), and `Clock::read_floor` must be monotone under
//! join — the properties the coherence machinery silently relies on.

use cdsspec_c11::clock::CoherenceMap;
use cdsspec_c11::{Clock, LocId, Tid, VecClock};
use proptest::prelude::*;

fn vecclock_strategy() -> impl Strategy<Value = VecClock> {
    prop::collection::vec(0u32..20, 0..6).prop_map(|counts| {
        let mut c = VecClock::new();
        for (i, v) in counts.into_iter().enumerate() {
            c.set(Tid(i as u32), v);
        }
        c
    })
}

fn cohmap_strategy() -> impl Strategy<Value = CoherenceMap> {
    prop::collection::vec(prop::option::of(0u32..10), 0..5).prop_map(|bounds| {
        let mut m = CoherenceMap::new();
        for (i, b) in bounds.into_iter().enumerate() {
            if let Some(b) = b {
                m.raise(LocId(i as u32), b);
            }
        }
        m
    })
}

fn joined(a: &VecClock, b: &VecClock) -> VecClock {
    let mut x = a.clone();
    x.join(b);
    x
}

fn mjoined(a: &CoherenceMap, b: &CoherenceMap) -> CoherenceMap {
    let mut x = a.clone();
    x.join(b);
    x
}

proptest! {
    #[test]
    fn vecclock_join_commutative(a in vecclock_strategy(), b in vecclock_strategy()) {
        let ab = joined(&a, &b);
        let ba = joined(&b, &a);
        // Compare observationally (vectors may differ in trailing zeros).
        for i in 0..8u32 {
            prop_assert_eq!(ab.get(Tid(i)), ba.get(Tid(i)));
        }
    }

    #[test]
    fn vecclock_join_associative(
        a in vecclock_strategy(),
        b in vecclock_strategy(),
        c in vecclock_strategy()
    ) {
        let left = joined(&joined(&a, &b), &c);
        let right = joined(&a, &joined(&b, &c));
        for i in 0..8u32 {
            prop_assert_eq!(left.get(Tid(i)), right.get(Tid(i)));
        }
    }

    #[test]
    fn vecclock_join_idempotent_and_upper_bound(a in vecclock_strategy(), b in vecclock_strategy()) {
        let aa = joined(&a, &a);
        for i in 0..8u32 {
            prop_assert_eq!(aa.get(Tid(i)), a.get(Tid(i)));
        }
        let ab = joined(&a, &b);
        prop_assert!(ab.includes(&a));
        prop_assert!(ab.includes(&b));
    }

    #[test]
    fn vecclock_includes_is_a_partial_order(
        a in vecclock_strategy(),
        b in vecclock_strategy(),
        c in vecclock_strategy()
    ) {
        prop_assert!(a.includes(&a));
        if a.includes(&b) && b.includes(&c) {
            prop_assert!(a.includes(&c), "transitivity");
        }
        if a.includes(&b) && b.includes(&a) {
            for i in 0..8u32 {
                prop_assert_eq!(a.get(Tid(i)), b.get(Tid(i)), "antisymmetry");
            }
        }
    }

    #[test]
    fn cohmap_join_laws(a in cohmap_strategy(), b in cohmap_strategy()) {
        let ab = mjoined(&a, &b);
        let ba = mjoined(&b, &a);
        for i in 0..6u32 {
            prop_assert_eq!(ab.get(LocId(i)), ba.get(LocId(i)), "commutative");
            // join is an upper bound
            let lo = a.get(LocId(i)).max(b.get(LocId(i)));
            prop_assert_eq!(ab.get(LocId(i)), lo, "pointwise max");
        }
    }

    #[test]
    fn read_floor_monotone_under_join(
        w1 in cohmap_strategy(),
        r1 in cohmap_strategy(),
        w2 in cohmap_strategy(),
        r2 in cohmap_strategy()
    ) {
        let a = Clock { vc: VecClock::new(), wmax: w1, rmax: r1 };
        let b = Clock { vc: VecClock::new(), wmax: w2, rmax: r2 };
        let mut ab = a.clone();
        ab.join(&b);
        for i in 0..6u32 {
            let loc = LocId(i);
            // The joined floor can never be lower than either input's.
            let fa = a.read_floor(loc).unwrap_or(0);
            let fb = b.read_floor(loc).unwrap_or(0);
            if a.read_floor(loc).is_some() || b.read_floor(loc).is_some() {
                let fab = ab.read_floor(loc).expect("join keeps constraints");
                prop_assert!(fab >= fa.max(fb));
            } else {
                prop_assert!(ab.read_floor(loc).is_none());
            }
        }
    }

    /// `raise` never lowers a bound.
    #[test]
    fn cohmap_raise_monotone(m in cohmap_strategy(), loc in 0u32..6, v in 0u32..10) {
        let before = m.get(LocId(loc));
        let mut m2 = m.clone();
        m2.raise(LocId(loc), v);
        let after = m2.get(LocId(loc)).expect("raised");
        prop_assert!(after >= v);
        if let Some(b) = before {
            prop_assert!(after >= b);
        }
    }
}
