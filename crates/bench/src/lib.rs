//! Shared harness plumbing for the evaluation binaries in `src/bin`:
//! CLI flags for wall-clock budgets and checkpoint/resume, plus the
//! figure-specific checkpoint file formats.
//!
//! The long-running harnesses (`figure7`, `figure8`) accept
//!
//! * `--time-budget <secs>` — a wall-clock budget for the whole run;
//! * `--checkpoint <path>` — where to write a checkpoint if the budget
//!   expires (exit status [`EXIT_INTERRUPTED`]);
//! * `--resume <path>` — pick up a previous run's checkpoint (also the
//!   default checkpoint destination, so repeated interruptions keep
//!   updating one file);
//! * `--workers <n>` — explorer threads per exploration (default:
//!   auto-detect available parallelism; `--workers 1` forces the
//!   sequential engine);
//! * `--stable` — mask wall-clock columns so two runs at different
//!   worker counts diff byte-for-byte;
//! * `--no-rf-prune` — disable reads-from equivalence pruning
//!   ([`mc::Config::rf_prune`]); used by the differential tests that
//!   prove pruning preserves the bug set (see `ARCHITECTURE.md`,
//!   *Exploration identity and rf-equivalence pruning*).
//!
//! `figure7` checkpoints at *exploration* granularity — completed rows
//! plus a mid-tree [`mc::Checkpoint`] for the interrupted benchmark — so
//! an interrupted-and-resumed run reports exactly the counts of a
//! straight-through one. `figure8` checkpoints at *benchmark*
//! granularity: completed Figure 8 rows are saved verbatim and the
//! interrupted benchmark's trials restart, which preserves the same
//! guarantee (a row is only ever reported from a complete trial set).

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cdsspec_mc as mc;

/// Exit status when a run stops on its time budget with a checkpoint
/// written: distinguishable from both success and failure so wrappers
/// can loop `until exit != 3`.
pub const EXIT_INTERRUPTED: i32 = 3;

/// Parsed harness flags shared by the evaluation binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Wall-clock budget for the whole run.
    pub time_budget: Option<Duration>,
    /// Explicit checkpoint destination.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint to resume from.
    pub resume: Option<PathBuf>,
    /// Per-trial detail (figure8).
    pub verbose: bool,
    /// Explorer workers (`--workers N`; `None` = auto-detect, `Some(1)` =
    /// sequential engine). Threaded into [`mc::Config::workers`].
    pub workers: Option<usize>,
    /// Suppress wall-clock columns so output is byte-comparable across
    /// runs (`diff <(figure7 --stable) <(figure7 --stable --workers 4)`).
    pub stable: bool,
    /// Reads-from equivalence pruning (`--no-rf-prune` clears it).
    /// Threaded into [`mc::Config::rf_prune`]; on by default, like the
    /// checker's.
    pub rf_prune: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            time_budget: None,
            checkpoint: None,
            resume: None,
            verbose: false,
            workers: None,
            stable: false,
            rf_prune: true,
        }
    }
}

impl HarnessArgs {
    /// Parse command-line flags (pass `std::env::args().skip(1)`).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--time-budget" => {
                    let secs = args
                        .next()
                        .ok_or("--time-budget needs a value in seconds")?
                        .parse::<f64>()
                        .map_err(|e| format!("--time-budget: {e}"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(format!("--time-budget: bad value {secs}"));
                    }
                    out.time_budget = Some(Duration::from_secs_f64(secs));
                }
                "--checkpoint" => {
                    out.checkpoint = Some(PathBuf::from(
                        args.next().ok_or("--checkpoint needs a path")?,
                    ));
                }
                "--resume" => {
                    out.resume = Some(PathBuf::from(args.next().ok_or("--resume needs a path")?));
                }
                "--verbose" => out.verbose = true,
                "--workers" => {
                    let n = args
                        .next()
                        .ok_or("--workers needs a count")?
                        .parse::<usize>()
                        .map_err(|e| format!("--workers: {e}"))?;
                    if n == 0 {
                        return Err("--workers: must be at least 1 (omit the flag to \
                                    auto-detect)"
                            .into());
                    }
                    out.workers = Some(n);
                }
                "--stable" => out.stable = true,
                "--no-rf-prune" => out.rf_prune = false,
                other => {
                    return Err(format!(
                        "unknown flag {other} (expected --time-budget <secs>, \
                         --resume <path>, --checkpoint <path>, --workers <n>, \
                         --stable, --verbose, --no-rf-prune)"
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Where to write a checkpoint on interruption: `--checkpoint` if
    /// given, else the `--resume` path.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        self.checkpoint.as_deref().or(self.resume.as_deref())
    }

    /// The wall-clock deadline implied by `--time-budget`, fixed at call
    /// time.
    pub fn deadline(&self) -> Option<Instant> {
        self.time_budget.map(|b| Instant::now() + b)
    }

    /// The value for [`mc::Config::workers`]: the `--workers` count, or
    /// `0` (auto-detect available parallelism) when the flag is absent.
    pub fn mc_workers(&self) -> usize {
        self.workers.unwrap_or(0)
    }
}

/// Budget remaining until `deadline` (zero once passed; `None` when
/// unbudgeted).
pub fn remaining(deadline: Option<Instant>) -> Option<Duration> {
    deadline.map(|d| d.saturating_duration_since(Instant::now()))
}

/// One completed Figure 7 row, preserved verbatim across interruptions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedRow7 {
    /// Benchmark name.
    pub name: String,
    /// Executions explored.
    pub executions: u64,
    /// Feasible executions.
    pub feasible: u64,
    /// Exploration wall-clock, in nanoseconds.
    pub elapsed_ns: u128,
    /// Stop-reason label (see [`mc::StopReason`]).
    pub stop: String,
    /// Whether the run found a bug.
    pub buggy: bool,
    /// Deepest DFS frontier reached (see [`mc::Stats::peak_depth`]).
    pub peak_depth: u64,
    /// Branches suppressed by rf-equivalence pruning (see
    /// [`mc::Stats::executions_pruned`]).
    pub executions_pruned: u64,
    /// Distinct reads-from equivalence classes among the benchmark's
    /// completed executions (`mc::Stats::rf_classes.len()`).
    pub rf_classes: u64,
}

impl SavedRow7 {
    /// Executions per second implied by the stored counters (`0.0` when
    /// no time was recorded).
    pub fn exec_per_sec(&self) -> f64 {
        exec_per_sec(self.executions, self.elapsed_ns)
    }
}

/// `executions / elapsed` in Hz, `0.0` on a zero denominator.
pub fn exec_per_sec(executions: u64, elapsed_ns: u128) -> f64 {
    if elapsed_ns == 0 {
        0.0
    } else {
        executions as f64 / (elapsed_ns as f64 / 1e9)
    }
}

/// Figure 7 checkpoint: completed rows plus the interrupted benchmark's
/// mid-tree exploration checkpoint.
#[derive(Clone, Debug, Default)]
pub struct Figure7Checkpoint {
    /// Rows already computed.
    pub done: Vec<SavedRow7>,
    /// `(benchmark name, exploration checkpoint)` of the benchmark the
    /// deadline interrupted, if it struck mid-benchmark.
    pub current: Option<(String, mc::Checkpoint)>,
}

impl Figure7Checkpoint {
    /// Serialize. Benchmark names must not contain `|` or newlines (the
    /// registry's never do).
    pub fn to_text(&self) -> String {
        let mut out = String::from("figure7-checkpoint v1\n");
        for r in &self.done {
            out.push_str(&format!(
                "row {}|{}|{}|{}|{}|{}|{}|{}|{}\n",
                r.name,
                r.executions,
                r.feasible,
                r.elapsed_ns,
                r.stop,
                r.buggy as u8,
                r.peak_depth,
                r.executions_pruned,
                r.rf_classes
            ));
        }
        if let Some((name, ckpt)) = &self.current {
            out.push_str(&format!("current {name}\n"));
            out.push_str(&ckpt.to_text());
        }
        out.push_str("end\n");
        out
    }

    /// Parse a [`Figure7Checkpoint::to_text`] serialization.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("figure7-checkpoint v1") {
            return Err("not a figure7 checkpoint (bad header)".into());
        }
        let mut out = Figure7Checkpoint::default();
        let mut closed = false;
        while let Some(line) = lines.next() {
            if line == "end" {
                closed = true;
                break;
            } else if let Some(rest) = line.strip_prefix("row ") {
                let f: Vec<&str> = rest.split('|').collect();
                // 6 fields = pre-peak-depth checkpoints, 7 = pre-rf-prune
                // (both still accepted, missing counters read back as 0);
                // 9 = current format.
                if f.len() != 6 && f.len() != 7 && f.len() != 9 {
                    return Err(format!("bad row line: {line}"));
                }
                let num = |s: &str| s.parse::<u64>().map_err(|e| format!("bad row field: {e}"));
                let opt = |s: Option<&&str>| s.map_or(Ok(0), |d| num(d));
                out.done.push(SavedRow7 {
                    name: f[0].to_string(),
                    executions: num(f[1])?,
                    feasible: num(f[2])?,
                    elapsed_ns: f[3].parse().map_err(|e| format!("bad row field: {e}"))?,
                    stop: f[4].to_string(),
                    buggy: f[5] == "1",
                    peak_depth: opt(f.get(6))?,
                    executions_pruned: opt(f.get(7))?,
                    rf_classes: opt(f.get(8))?,
                });
            } else if let Some(name) = line.strip_prefix("current ") {
                // The embedded exploration checkpoint runs to its own
                // `end` terminator.
                let mut inner = String::new();
                for l in lines.by_ref() {
                    inner.push_str(l);
                    inner.push('\n');
                    if l == "end" {
                        break;
                    }
                }
                let ckpt = mc::Checkpoint::from_text(&inner)?;
                out.current = Some((name.to_string(), ckpt));
            } else {
                return Err(format!("unrecognized checkpoint line: {line}"));
            }
        }
        if !closed {
            return Err("truncated figure7 checkpoint (missing end)".into());
        }
        Ok(out)
    }
}

/// One completed Figure 8 row, preserved verbatim across interruptions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedRow8 {
    /// Benchmark name.
    pub name: String,
    /// Injections performed.
    pub injections: usize,
    /// Built-in detections.
    pub builtin: usize,
    /// Admissibility detections.
    pub admissibility: usize,
    /// Assertion detections.
    pub assertion: usize,
    /// Errored trials.
    pub errored: usize,
    /// Executions explored across all of the benchmark's trials.
    pub executions: u64,
    /// Exploration wall-clock summed across trials, in nanoseconds.
    pub elapsed_ns: u128,
    /// Deepest DFS frontier reached by any trial.
    pub peak_depth: u64,
    /// Branches suppressed by rf-equivalence pruning, summed across the
    /// benchmark's trials.
    pub executions_pruned: u64,
    /// Reads-from equivalence classes, summed across trials (each trial
    /// explores an independently weakened structure, so the per-trial
    /// class counts are independent and their sum is the meaningful
    /// campaign total).
    pub rf_classes: u64,
}

/// Figure 8 checkpoint: benchmark-granularity — completed rows only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Figure8Checkpoint {
    /// Rows already computed.
    pub done: Vec<SavedRow8>,
}

impl Figure8Checkpoint {
    /// Serialize (same `|`-separated convention as Figure 7).
    pub fn to_text(&self) -> String {
        let mut out = String::from("figure8-checkpoint v1\n");
        for r in &self.done {
            out.push_str(&format!(
                "row {}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}\n",
                r.name,
                r.injections,
                r.builtin,
                r.admissibility,
                r.assertion,
                r.errored,
                r.executions,
                r.elapsed_ns,
                r.peak_depth,
                r.executions_pruned,
                r.rf_classes
            ));
        }
        out.push_str("end\n");
        out
    }

    /// Parse a [`Figure8Checkpoint::to_text`] serialization.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("figure8-checkpoint v1") {
            return Err("not a figure8 checkpoint (bad header)".into());
        }
        let mut out = Figure8Checkpoint::default();
        let mut closed = false;
        for line in lines {
            if line == "end" {
                closed = true;
                break;
            }
            let rest = line
                .strip_prefix("row ")
                .ok_or_else(|| format!("bad line: {line}"))?;
            let f: Vec<&str> = rest.split('|').collect();
            // 6 fields = pre-throughput checkpoints, 9 = pre-rf-prune
            // (both still accepted, the extra counters read back as 0);
            // 11 = current format.
            if f.len() != 6 && f.len() != 9 && f.len() != 11 {
                return Err(format!("bad row line: {line}"));
            }
            let num = |s: &str| {
                s.parse::<usize>()
                    .map_err(|e| format!("bad row field: {e}"))
            };
            fn opt<T>(s: Option<&&str>) -> Result<T, String>
            where
                T: std::str::FromStr + Default,
                T::Err: std::fmt::Display,
            {
                s.map_or(Ok(T::default()), |v| {
                    v.parse().map_err(|e| format!("bad row field: {e}"))
                })
            }
            out.done.push(SavedRow8 {
                name: f[0].to_string(),
                injections: num(f[1])?,
                builtin: num(f[2])?,
                admissibility: num(f[3])?,
                assertion: num(f[4])?,
                errored: num(f[5])?,
                executions: opt(f.get(6))?,
                elapsed_ns: opt(f.get(7))?,
                peak_depth: opt(f.get(8))?,
                executions_pruned: opt(f.get(9))?,
                rf_classes: opt(f.get(10))?,
            });
        }
        if !closed {
            return Err("truncated figure8 checkpoint (missing end)".into());
        }
        Ok(out)
    }
}

/// Why loading or storing a checkpoint file failed. Every variant's
/// `Display` names the file and says what to do about it, so the harness
/// binaries can print it verbatim and exit.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// What the filesystem said.
        error: std::io::Error,
    },
    /// The file was read but its contents did not parse — a truncated
    /// write from a crashed run, manual editing, or a file that is not a
    /// checkpoint at all.
    Malformed {
        /// The checkpoint path.
        path: PathBuf,
        /// The parser's diagnostic (includes version/header mismatches).
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, error } => {
                write!(f, "checkpoint {}: {error}", path.display())
            }
            CheckpointError::Malformed { path, detail } => write!(
                f,
                "checkpoint {} is not usable: {detail} — it may be a truncated or \
                 corrupted write from an interrupted run; delete it to start fresh, \
                 or point --resume at a valid checkpoint",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Load and parse a checkpoint file through `parse`.
pub fn load_checkpoint<T>(
    path: &Path,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Result<T, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|error| CheckpointError::Io {
        path: path.to_path_buf(),
        error,
    })?;
    parse(&text).map_err(|detail| CheckpointError::Malformed {
        path: path.to_path_buf(),
        detail,
    })
}

/// Write a checkpoint file (best effort is not enough here — an
/// unwritable checkpoint is a hard error, the run's work would be lost).
///
/// The write is atomic-on-crash: the text goes to a temporary file in the
/// same directory, is fsync'd, and is then `rename`d over the final path.
/// A crash at any point leaves either the old checkpoint or the new one —
/// never a half-written file — because POSIX `rename` within one
/// filesystem replaces the destination atomically.
pub fn store_checkpoint(path: &Path, text: &str) -> Result<(), CheckpointError> {
    let io_err = |error: std::io::Error| CheckpointError::Io {
        path: path.to_path_buf(),
        error,
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io_err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "checkpoint path has no file name",
            ))
        })?
        .to_os_string();
    // Unique per process so concurrent harnesses sharing a directory
    // cannot clobber each other's in-flight temp file.
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(&file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            // Data must be durable *before* the rename publishes it:
            // rename-then-crash must not expose an empty or partial file.
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself is durable; not
        // all filesystems/platforms support opening a directory, and the
        // crash-consistency of the *data* no longer depends on it.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(io_err)
}

// ---------------------------------------------------------------------
// Machine-readable performance rows (`BENCH_hotpath.json`).
// ---------------------------------------------------------------------

/// Schema tag written into every hotpath benchmark file.
pub const BENCH_SCHEMA: &str = "cdsspec-bench-hotpath-v1";

/// One machine-readable performance measurement — a row of
/// `BENCH_hotpath.json`, written by the `hotpath` binary so successive
/// PRs can regress against a recorded trajectory.
///
/// The same schema covers end-to-end probes (`probe` =
/// `"figure7:<benchmark>"`, where `executions`/`feasible`/`peak_depth`
/// come from [`mc::Stats`]) and microbenches (`probe` = `"micro:<op>"`,
/// where `executions` counts iterations and the exploration-only fields
/// are zero).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Probe name: `figure7:<benchmark>` or `micro:<op>`.
    pub probe: String,
    /// Build variant the row was measured on (`"seed"` or `"optimized"`).
    pub variant: String,
    /// Explorer worker count (1 for microbenches).
    pub workers: usize,
    /// Executions explored (microbenches: iterations run).
    pub executions: u64,
    /// Feasible executions (microbenches: 0).
    pub feasible: u64,
    /// Wall-clock of the probe, in nanoseconds.
    pub elapsed_ns: u128,
    /// Executions (iterations) per second.
    pub exec_per_sec: f64,
    /// Peak frontier depth (microbenches: 0).
    pub peak_depth: u64,
    /// Heap allocations performed during the probe (counting allocator).
    pub allocations: u64,
    /// Allocations per execution (iteration).
    pub allocs_per_exec: f64,
}

impl BenchRow {
    /// Render as a single JSON object line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"probe\":{},\"variant\":{},\"workers\":{},\"executions\":{},\
             \"feasible\":{},\"elapsed_ns\":{},\"exec_per_sec\":{:.1},\
             \"peak_depth\":{},\"allocations\":{},\"allocs_per_exec\":{:.2}}}",
            json_string(&self.probe),
            json_string(&self.variant),
            self.workers,
            self.executions,
            self.feasible,
            self.elapsed_ns,
            self.exec_per_sec,
            self.peak_depth,
            self.allocations,
            self.allocs_per_exec,
        )
    }

    /// Parse a line written by [`BenchRow::to_json_line`]. Returns `None`
    /// for lines that are not row objects (or miss a required field).
    /// This is a scanner for the fixed schema above, not a general JSON
    /// parser — exactly what merging a baseline file needs.
    pub fn from_json_line(line: &str) -> Option<BenchRow> {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            return None;
        }
        Some(BenchRow {
            probe: json_field(line, "probe")?.trim_matches('"').to_string(),
            variant: json_field(line, "variant")?.trim_matches('"').to_string(),
            workers: json_field(line, "workers")?.parse().ok()?,
            executions: json_field(line, "executions")?.parse().ok()?,
            feasible: json_field(line, "feasible")?.parse().ok()?,
            elapsed_ns: json_field(line, "elapsed_ns")?.parse().ok()?,
            exec_per_sec: json_field(line, "exec_per_sec")?.parse().ok()?,
            peak_depth: json_field(line, "peak_depth")?.parse().ok()?,
            allocations: json_field(line, "allocations")?.parse().ok()?,
            allocs_per_exec: json_field(line, "allocs_per_exec")?.parse().ok()?,
        })
    }
}

/// Escape a string for embedding in JSON. Probe and variant names are
/// ASCII identifiers-with-spaces; only quotes and backslashes need care.
fn json_string(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Extract the raw value of `"key":` from a single-line JSON object.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"')? + 2
    } else {
        rest.find([',', '}'])?
    };
    Some(&rest[..end])
}

/// Render the full `BENCH_hotpath.json` document: a schema tag plus one
/// row object per line (line-oriented on purpose, so a baseline file's
/// rows can be carried over by line filtering — see
/// [`extract_bench_rows`]).
pub fn render_bench_json(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str("\"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&r.to_json_line());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Recover every [`BenchRow`] from a rendered `BENCH_hotpath.json`.
pub fn extract_bench_rows(text: &str) -> Vec<BenchRow> {
    text.lines().filter_map(BenchRow::from_json_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_all_flags() {
        let a = HarnessArgs::parse(strings(&[
            "--time-budget",
            "1.5",
            "--resume",
            "ck.txt",
            "--verbose",
            "--workers",
            "4",
            "--stable",
            "--no-rf-prune",
        ]))
        .unwrap();
        assert_eq!(a.time_budget, Some(Duration::from_millis(1500)));
        assert_eq!(a.checkpoint_path(), Some(Path::new("ck.txt")));
        assert!(a.verbose);
        assert_eq!(a.workers, Some(4));
        assert_eq!(a.mc_workers(), 4);
        assert!(a.stable);
        assert!(!a.rf_prune);
        assert!(HarnessArgs::parse(strings(&["--bogus"])).is_err());
        assert!(HarnessArgs::parse(strings(&["--time-budget", "-1"])).is_err());
        assert!(HarnessArgs::parse(strings(&["--time-budget"])).is_err());
        assert!(HarnessArgs::parse(strings(&["--workers", "0"])).is_err());
        assert!(HarnessArgs::parse(strings(&["--workers"])).is_err());
    }

    #[test]
    fn workers_default_to_auto_detect() {
        let a = HarnessArgs::parse(strings(&[])).unwrap();
        assert_eq!(a.workers, None);
        assert_eq!(a.mc_workers(), 0);
        assert!(!a.stable);
        assert!(a.rf_prune, "pruning is on unless --no-rf-prune");
    }

    #[test]
    fn explicit_checkpoint_beats_resume_path() {
        let a = HarnessArgs::parse(strings(&["--resume", "a", "--checkpoint", "b"])).unwrap();
        assert_eq!(a.checkpoint_path(), Some(Path::new("b")));
    }

    #[test]
    fn figure7_checkpoint_round_trips() {
        let mut inner = mc::Checkpoint::root();
        inner.script = vec![0, 3, 1];
        inner.stats.executions = 17;
        inner.stats.stop = mc::StopReason::Deadline;
        inner.stats.elapsed = Duration::from_millis(4321);
        let ck = Figure7Checkpoint {
            done: vec![SavedRow7 {
                name: "SPSC Queue".into(),
                executions: 42,
                feasible: 30,
                elapsed_ns: 1_000_000,
                stop: "exhausted".into(),
                buggy: false,
                peak_depth: 7,
                executions_pruned: 12,
                rf_classes: 9,
            }],
            current: Some(("RCU".into(), inner)),
        };
        let back = Figure7Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(back.done, ck.done);
        let (name, ckpt) = back.current.unwrap();
        assert_eq!(name, "RCU");
        assert_eq!(ckpt.script, vec![0, 3, 1]);
        assert_eq!(ckpt.stats.executions, 17);
        // The interrupted benchmark's *active* exploration time rides
        // along: figure7 resumes accumulate onto it, so the summary's
        // exec/s never includes the suspension gap between runs.
        assert_eq!(ckpt.stats.elapsed, Duration::from_millis(4321));
    }

    #[test]
    fn figure8_checkpoint_round_trips() {
        let ck = Figure8Checkpoint {
            done: vec![SavedRow8 {
                name: "Ticket Lock".into(),
                injections: 2,
                builtin: 0,
                admissibility: 0,
                assertion: 2,
                errored: 0,
                executions: 61_000,
                elapsed_ns: 2_500_000,
                peak_depth: 11,
                executions_pruned: 300,
                rf_classes: 41,
            }],
        };
        assert_eq!(Figure8Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
        assert!(Figure8Checkpoint::from_text("garbage").is_err());
        assert!(Figure8Checkpoint::from_text("figure8-checkpoint v1\nrow x|1\nend").is_err());
        assert!(Figure8Checkpoint::from_text("figure8-checkpoint v1\n").is_err());
    }

    #[test]
    fn bench_rows_round_trip_through_json() {
        let rows = vec![
            BenchRow {
                probe: "figure7:MPMC Queue".into(),
                variant: "seed".into(),
                workers: 1,
                executions: 10_992,
                feasible: 4_540,
                elapsed_ns: 900_000_000,
                exec_per_sec: 12_213.3,
                peak_depth: 23,
                allocations: 4_000_000,
                allocs_per_exec: 363.93,
            },
            BenchRow {
                probe: "micro:clock_join".into(),
                variant: "optimized".into(),
                workers: 1,
                executions: 100_000,
                feasible: 0,
                elapsed_ns: 5_000_000,
                exec_per_sec: 20_000_000.0,
                peak_depth: 0,
                allocations: 12,
                allocs_per_exec: 0.0,
            },
        ];
        let doc = render_bench_json(&rows);
        assert!(doc.contains(BENCH_SCHEMA));
        let back = extract_bench_rows(&doc);
        assert_eq!(back, rows);
        // Non-row lines (schema header, brackets) parse to nothing.
        assert!(BenchRow::from_json_line("\"rows\": [").is_none());
        assert!(BenchRow::from_json_line("{\"probe\":\"x\"}").is_none());
    }

    #[test]
    fn store_checkpoint_is_atomic_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("cdsspec-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.txt");
        store_checkpoint(&path, "first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        // Overwrite: the rename replaces the old content in one step.
        store_checkpoint(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        // No temp debris in the directory.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_checkpoint_errors_are_typed_and_actionable() {
        let dir = std::env::temp_dir().join(format!("cdsspec-ckpt-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file: Io variant naming the path.
        let missing = dir.join("nope.txt");
        let err = load_checkpoint(&missing, Figure7Checkpoint::from_text).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err:?}");
        assert!(err.to_string().contains("nope.txt"));

        // Corrupted fixture: a checkpoint truncated mid-write (no `end`
        // terminator), as a crash before the atomic-write fix could leave.
        let corrupt = dir.join("corrupt.txt");
        std::fs::write(&corrupt, "figure7-checkpoint v1\nrow SPSC Queue|42|30").unwrap();
        let err = load_checkpoint(&corrupt, Figure7Checkpoint::from_text).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("corrupt.txt"), "{msg}");
        assert!(msg.contains("delete it to start fresh"), "{msg}");

        // Wrong version/header: also Malformed, with the parser's detail.
        let wrong = dir.join("wrong.txt");
        std::fs::write(&wrong, "figure9-checkpoint v9\nend\n").unwrap();
        let err = load_checkpoint(&wrong, Figure7Checkpoint::from_text).unwrap_err();
        assert!(err.to_string().contains("bad header"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_six_field_rows_still_parse() {
        // Pre-throughput checkpoints lack the appended fields; they must
        // load with zero defaults, not fail.
        let f7 = "figure7-checkpoint v1\nrow SPSC Queue|42|30|1000000|exhausted|0\nend\n";
        let ck7 = Figure7Checkpoint::from_text(f7).unwrap();
        assert_eq!(ck7.done[0].executions, 42);
        assert_eq!(ck7.done[0].peak_depth, 0);
        assert_eq!(ck7.done[0].executions_pruned, 0);
        assert_eq!(ck7.done[0].rf_classes, 0);
        let f8 = "figure8-checkpoint v1\nrow Ticket Lock|2|0|0|2|0\nend\n";
        let ck8 = Figure8Checkpoint::from_text(f8).unwrap();
        assert_eq!(ck8.done[0].assertion, 2);
        assert_eq!(ck8.done[0].executions, 0);
        assert_eq!(ck8.done[0].peak_depth, 0);
        assert_eq!(ck8.done[0].executions_pruned, 0);
    }

    #[test]
    fn pre_rf_prune_rows_still_parse() {
        // The immediately preceding formats (7-field figure7 rows,
        // 9-field figure8 rows) also load, with the rf counters zero.
        let f7 = "figure7-checkpoint v1\nrow SPSC Queue|42|30|1000000|exhausted|0|7\nend\n";
        let ck7 = Figure7Checkpoint::from_text(f7).unwrap();
        assert_eq!(ck7.done[0].peak_depth, 7);
        assert_eq!(ck7.done[0].executions_pruned, 0);
        assert_eq!(ck7.done[0].rf_classes, 0);
        let f8 = "figure8-checkpoint v1\nrow Ticket Lock|2|0|0|2|0|61000|2500000|11\nend\n";
        let ck8 = Figure8Checkpoint::from_text(f8).unwrap();
        assert_eq!(ck8.done[0].executions, 61_000);
        assert_eq!(ck8.done[0].peak_depth, 11);
        assert_eq!(ck8.done[0].executions_pruned, 0);
        assert_eq!(ck8.done[0].rf_classes, 0);
    }
}
