//! Evaluation harness crate; see the binaries in `src/bin`.
