//! Networked-campaign performance probe: records warm-cache re-check
//! latency and daemon dispatch throughput into a machine-readable
//! `BENCH_campaign.json`, the campaign-layer sibling of the hotpath
//! probe's `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin campaign_probe -- \
//!     [--variant <name>] [--out <path>] [--smoke]
//! ```
//!
//! The probe hosts the whole networked stack inside one process, over
//! real loopback TCP:
//!
//! 1. bind `127.0.0.1:0` and serve a `cdsspec-netd` daemon
//!    ([`cdsspec_campaign::run_daemon_on`]) on a thread, backed by a
//!    fresh result-cache directory;
//! 2. attach two TCP workers ([`cdsspec_campaign::net::attach_worker`])
//!    on threads of their own;
//! 3. run one **cold** figure7 campaign through
//!    [`cdsspec_campaign::net::remote_campaign`] — every row computes
//!    live, so its elapsed time prices the dispatch path end to end
//!    (frame, ship, explore, frame back, cache store);
//! 4. run the byte-identical campaign again **warm** — the daemon must
//!    answer every row from the cache with *zero* shard dispatches, so
//!    its elapsed time is the pure served-cache re-check latency.
//!
//! The probe asserts the serving contract while measuring it: the warm
//! report must be byte-identical to the cold one, the warm summary must
//! show `dispatches=0`, `live=0`, and `cache_hits=<benches>`. A probe
//! run that violates any of those fails loudly — CI runs this binary in
//! `--smoke` mode, so the invariant is re-proved on every push, not
//! just recorded once.

use std::io::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

use cdsspec_campaign::net::{attach_worker, remote_campaign, request_status, AttachOpts};
use cdsspec_campaign::{
    run_daemon_on, CampaignRequest, DaemonOpts, SupervisorOpts, WorkerOpts, EXIT_CLEAN,
};

/// Schema tag written into every campaign benchmark file.
const SCHEMA: &str = "cdsspec-bench-campaign-v1";

/// Figure 7 benchmarks the full probe campaigns over: the same weight
/// spread the hotpath probe uses, so the two files price the same
/// workload at different layers (bare engine vs networked campaign).
const PROBE_BENCHES: &[&str] = &[
    "MPMC Queue",
    "Linux RW Lock",
    "Seqlock",
    "M&S Queue",
    "MCS Lock",
];

/// Smoke-mode subset: the cheapest probes only (CI re-proves the
/// serving contract; the committed file carries the full figures).
const SMOKE_BENCHES: &[&str] = &["Seqlock", "M&S Queue"];

/// Attached TCP workers serving the daemon's dispatches.
const WORKERS: usize = 2;

/// One measured campaign row of `BENCH_campaign.json`.
struct CampaignProbeRow {
    /// `campaign:cold` (all rows computed live through the worker pool)
    /// or `campaign:warm` (all rows served from the result cache).
    probe: String,
    /// Build variant the row was measured on.
    variant: String,
    /// Attached TCP workers during the run.
    workers: usize,
    /// Benchmark rows in the served report.
    benches: u64,
    /// Rows computed live (cold: all; warm: must be 0).
    live: u64,
    /// Rows answered from the result cache (warm: all).
    cache_hits: u64,
    /// Shard tasks dispatched to workers (warm: must be 0).
    dispatches: u64,
    /// Tasks requeued after worker trouble.
    requeues: u64,
    /// Client-observed wall-clock for the whole request, request frame
    /// to report frame, in nanoseconds.
    elapsed_ns: u128,
    /// Dispatches per second of client-observed time (0.0 for warm
    /// runs: nothing is dispatched).
    dispatch_per_sec: f64,
}

impl CampaignProbeRow {
    fn to_json_line(&self) -> String {
        format!(
            "{{\"probe\":\"{}\",\"variant\":\"{}\",\"workers\":{},\"benches\":{},\
             \"live\":{},\"cache_hits\":{},\"dispatches\":{},\"requeues\":{},\
             \"elapsed_ns\":{},\"dispatch_per_sec\":{:.1}}}",
            self.probe,
            self.variant,
            self.workers,
            self.benches,
            self.live,
            self.cache_hits,
            self.dispatches,
            self.requeues,
            self.elapsed_ns,
            self.dispatch_per_sec,
        )
    }
}

fn render_json(rows: &[CampaignProbeRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"schema\": \"{SCHEMA}\",\n"));
    out.push_str("\"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&r.to_json_line());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Pull one `key=value` counter out of a `campaign-summary:` line.
fn summary_field(summary: &str, key: &str) -> u64 {
    let tag = format!("{key}=");
    summary
        .lines()
        .find(|l| l.starts_with("campaign-summary:"))
        .and_then(|l| {
            l.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&tag))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| panic!("summary lacks {key}= counter:\n{summary}"))
}

struct Args {
    variant: String,
    out: PathBuf,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        variant: "dev".into(),
        out: PathBuf::from("BENCH_campaign.json"),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--variant" => args.variant = val("--variant")?,
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("campaign_probe: {e}");
            exit(2);
        }
    };
    let benches = if args.smoke {
        SMOKE_BENCHES
    } else {
        PROBE_BENCHES
    };

    // Fresh cache directory: the cold run must actually be cold.
    let cache = std::env::temp_dir().join(format!("cdsspec-campaign-probe-{}", std::process::id()));
    std::fs::create_dir_all(&cache).expect("create probe cache dir");

    // The daemon, on a thread, with the listener pre-bound so the port
    // is known before the accept loop starts.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let daemon = {
        let opts = DaemonOpts {
            listen: addr.clone(),
            cache_dir: Some(cache.clone()),
            sup: SupervisorOpts {
                workers: WORKERS,
                ..SupervisorOpts::default()
            },
            // Exactly the probe's two campaigns, then a clean exit so
            // the thread can be joined.
            max_campaigns: Some(2),
        };
        std::thread::spawn(move || run_daemon_on(listener, opts))
    };

    // Two TCP workers. Their threads end on their own once the daemon
    // exits and the reconnect budget runs dry.
    for _ in 0..WORKERS {
        let addr = addr.clone();
        std::thread::spawn(move || {
            attach_worker(&AttachOpts {
                addr,
                worker: WorkerOpts {
                    heartbeat: Duration::from_millis(500),
                    worker_threads: 1,
                    poison: None,
                },
                reconnect_budget: Duration::from_secs(2),
            })
        });
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match request_status(&addr) {
            Ok(s) if s.workers.len() >= WORKERS => break,
            _ if Instant::now() > deadline => panic!("workers never attached"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    let req = CampaignRequest {
        bench_filter: Some(benches.iter().map(|s| s.to_string()).collect()),
        split: 0,
        max_executions: 1_000_000,
        // Masked wall-clock, so cold and warm reports can be compared
        // byte for byte.
        stable: true,
        weaken: Vec::new(),
    };
    let run = |probe: &str| -> (Vec<u8>, CampaignProbeRow) {
        let mut report = Vec::new();
        let t0 = Instant::now();
        let (code, summary) =
            remote_campaign(&addr, &req, &mut report).expect("remote campaign failed");
        let elapsed_ns = t0.elapsed().as_nanos();
        assert_eq!(code, EXIT_CLEAN, "probe campaign must finish clean");
        let dispatches = summary_field(&summary, "dispatches");
        let row = CampaignProbeRow {
            probe: probe.to_string(),
            variant: args.variant.clone(),
            workers: WORKERS,
            benches: summary_field(&summary, "benches"),
            live: summary_field(&summary, "live"),
            cache_hits: summary_field(&summary, "cache_hits"),
            dispatches,
            requeues: summary_field(&summary, "requeues"),
            elapsed_ns,
            dispatch_per_sec: cdsspec_bench::exec_per_sec(dispatches, elapsed_ns),
        };
        eprintln!(
            "{:<14} benches={} dispatches={} cache_hits={} {:>12} ns  {:>8.1} dispatch/s",
            row.probe,
            row.benches,
            row.dispatches,
            row.cache_hits,
            row.elapsed_ns,
            row.dispatch_per_sec
        );
        (report, row)
    };

    let (cold_report, cold) = run("campaign:cold");
    let (warm_report, warm) = run("campaign:warm");

    // The serving contract, asserted while measured (see module docs).
    assert_eq!(
        cold_report, warm_report,
        "cache-served report differs from the live one"
    );
    assert!(cold.dispatches > 0, "cold campaign dispatched nothing");
    assert_eq!(cold.live, cold.benches, "cold campaign was not cold");
    assert_eq!(warm.dispatches, 0, "warm campaign dispatched shards");
    assert_eq!(warm.live, 0, "warm campaign computed rows live");
    assert_eq!(
        warm.cache_hits, warm.benches,
        "warm campaign missed the cache"
    );

    let rows = [cold, warm];
    if let Err(e) = std::fs::write(&args.out, render_json(&rows)) {
        eprintln!("campaign_probe: cannot write {}: {e}", args.out.display());
        exit(1);
    }
    eprintln!("wrote {} row(s) to {}", rows.len(), args.out.display());
    let _ = std::io::stderr().flush();
    let _ = daemon.join();
    let _ = std::fs::remove_dir_all(&cache);
}
