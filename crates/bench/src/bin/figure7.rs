//! Regenerates **Figure 7** of the paper: per-benchmark exploration
//! statistics (# executions, # feasible, total time) for the standard
//! unit tests under the CDSSpec checker with correct orderings.
//!
//! Absolute counts differ from the paper's — CDSChecker enumerates
//! execution graphs with promises, we enumerate schedules × reads-from
//! choices — so the paper's numbers are printed alongside for the shape
//! comparison recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin figure7
//! ```

use cdsspec_mc as mc;
use cdsspec_structures::registry::benchmarks;

/// Paper-reported (executions, feasible, seconds) per Figure 7 row.
const PAPER: &[(&str, u64, u64, f64)] = &[
    ("Chase-Lev Deque", 893, 158, 0.10),
    ("SPSC Queue", 18, 15, 0.01),
    ("RCU", 47, 18, 0.01),
    ("Lockfree Hashtable", 6, 6, 0.01),
    ("MCS Lock", 21_126, 13_786, 3.00),
    ("MPMC Queue", 2_911, 1_274, 4.83),
    ("M&S Queue", 296, 150, 0.03),
    ("Linux RW Lock", 69_386, 1_822, 13.71),
    ("Seqlock", 89, 36, 0.01),
    ("Ticket Lock", 1_790, 978, 0.17),
];

fn main() {
    println!("Figure 7 — benchmark results (ours vs. paper)\n");
    println!(
        "{:<20} {:>12} {:>12} {:>10}   {:>12} {:>12} {:>10}",
        "Benchmark", "# Exec", "# Feasible", "Time (s)", "paper Exec", "paper Feas", "paper s"
    );
    println!("{}", "-".repeat(96));

    let mut total_ok = true;
    for bench in benchmarks() {
        let config = mc::Config { max_executions: 3_000_000, ..mc::Config::default() };
        let stats = bench.check_default(config);
        let paper = PAPER.iter().find(|(n, ..)| *n == bench.name);
        let (pe, pf, pt) = paper.map(|(_, e, f, t)| (*e, *f, *t)).unwrap_or((0, 0, 0.0));
        println!(
            "{:<20} {:>12} {:>12} {:>10.2}   {:>12} {:>12} {:>10.2}{}{}",
            bench.name,
            stats.executions,
            stats.feasible,
            stats.elapsed.as_secs_f64(),
            pe,
            pf,
            pt,
            if stats.truncated { "  [truncated]" } else { "" },
            if stats.buggy() {
                total_ok = false;
                "  [BUG — should not happen with correct orderings!]"
            } else {
                ""
            },
        );
    }
    println!(
        "\nAll benchmarks clean: {}. Shape claim preserved: every benchmark finishes \
         at unit-test scale (the paper's slowest row took 13.71 s; ours stays within \
         the same order). Which benchmark dominates differs — the paper's RW lock vs \
         our Chase-Lev corner-case suite — because the enumeration strategies weigh \
         spin loops and rf choices differently (DESIGN.md §2.2).",
        total_ok
    );
}
