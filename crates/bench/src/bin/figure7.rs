//! Regenerates **Figure 7** of the paper: per-benchmark exploration
//! statistics (# executions, # feasible, total time) for the standard
//! unit tests under the CDSSpec checker with correct orderings.
//!
//! Absolute counts differ from the paper's — CDSChecker enumerates
//! execution graphs with promises, we enumerate schedules × reads-from
//! choices — so the paper's numbers are printed alongside for the shape
//! comparison recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin figure7 -- \
//!     [--time-budget <secs>] [--resume <path>] [--checkpoint <path>] \
//!     [--workers <n>] [--stable] [--no-rf-prune]
//! ```
//!
//! With `--time-budget`, an expiring run writes a checkpoint (completed
//! rows plus a mid-tree exploration checkpoint of the interrupted
//! benchmark) and exits with status 3; `--resume` continues it. Resumed
//! runs report exactly the execution/feasible counts of a
//! straight-through run — including parallel runs, whose checkpoints
//! carry one frontier shard per abandoned subtree.
//!
//! `--workers <n>` sets the explorer thread count (default: available
//! parallelism). All benchmarks here explore exhaustively, so the
//! execution/feasible counts are identical at every worker count;
//! `--stable` masks the time column so the identity can be checked with
//! `diff <(figure7 --stable --workers 1) <(figure7 --stable --workers 4)`.
//!
//! `--no-rf-prune` disables reads-from equivalence pruning. Execution
//! counts rise several-fold but the bug verdicts and rf-class counts are
//! identical — the differential the pruning soundness tests pin down
//! (see `ARCHITECTURE.md`, *Exploration identity and rf-equivalence
//! pruning*).

use std::process::exit;

use cdsspec_bench::{
    exec_per_sec, load_checkpoint, remaining, store_checkpoint, Figure7Checkpoint, HarnessArgs,
    SavedRow7, EXIT_INTERRUPTED,
};
use cdsspec_mc as mc;
use cdsspec_structures::registry::benchmarks;

/// Paper-reported (executions, feasible, seconds) per Figure 7 row.
const PAPER: &[(&str, u64, u64, f64)] = &[
    ("Chase-Lev Deque", 893, 158, 0.10),
    ("SPSC Queue", 18, 15, 0.01),
    ("RCU", 47, 18, 0.01),
    ("Lockfree Hashtable", 6, 6, 0.01),
    ("MCS Lock", 21_126, 13_786, 3.00),
    ("MPMC Queue", 2_911, 1_274, 4.83),
    ("M&S Queue", 296, 150, 0.03),
    ("Linux RW Lock", 69_386, 1_822, 13.71),
    ("Seqlock", 89, 36, 0.01),
    ("Ticket Lock", 1_790, 978, 0.17),
];

fn print_row(row: &SavedRow7, resumed: bool, stable: bool) {
    let paper = PAPER.iter().find(|(n, ..)| *n == row.name);
    let (pe, pf, pt) = paper
        .map(|(_, e, f, t)| (*e, *f, *t))
        .unwrap_or((0, 0, 0.0));
    let truncated = !matches!(row.stop.as_str(), "exhausted" | "first-bug");
    // `--stable` masks the wall-clock column — the only timing-dependent
    // field — so worker counts can be compared with a plain `diff`.
    let ours_t = if stable {
        format!("{:>10}", "-")
    } else {
        format!("{:>10.2}", row.elapsed_ns as f64 / 1e9)
    };
    println!(
        "{:<20} {:>12} {:>12} {}   {:>12} {:>12} {:>10.2}{}{}{}",
        row.name,
        row.executions,
        row.feasible,
        ours_t,
        pe,
        pf,
        pt,
        if truncated { "  [truncated]" } else { "" },
        if resumed { "  [from checkpoint]" } else { "" },
        if row.buggy {
            "  [BUG — should not happen with correct orderings!]"
        } else {
            ""
        },
    );
}

fn save_and_exit(args: &HarnessArgs, ckpt: &Figure7Checkpoint) -> ! {
    let Some(path) = args.checkpoint_path() else {
        eprintln!(
            "\ntime budget exhausted and no --checkpoint/--resume path given; \
             partial results are lost"
        );
        exit(EXIT_INTERRUPTED);
    };
    if let Err(e) = store_checkpoint(path, &ckpt.to_text()) {
        eprintln!("\n{e}");
        exit(1);
    }
    eprintln!(
        "\ntime budget exhausted after {} completed row(s); checkpoint written to {}; \
         rerun with --resume {2} to continue",
        ckpt.done.len(),
        path.display(),
        path.display()
    );
    exit(EXIT_INTERRUPTED);
}

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("figure7: {e}");
            exit(2);
        }
    };
    let mut state = Figure7Checkpoint::default();
    // A missing resume file is a fresh start, not an error: the binary
    // deletes its checkpoint on completion, so `until figure7 --resume
    // ck; do :; done` works from the first invocation.
    if let Some(path) = args.resume.as_ref().filter(|p| p.exists()) {
        match load_checkpoint(path, Figure7Checkpoint::from_text) {
            Ok(ck) => state = ck,
            Err(e) => {
                eprintln!("figure7: {e}");
                exit(2);
            }
        }
    }
    let deadline = args.deadline();

    println!("Figure 7 — benchmark results (ours vs. paper)\n");
    println!(
        "{:<20} {:>12} {:>12} {:>10}   {:>12} {:>12} {:>10}",
        "Benchmark", "# Exec", "# Feasible", "Time (s)", "paper Exec", "paper Feas", "paper s"
    );
    println!("{}", "-".repeat(96));

    let mut total_ok = true;
    for bench in benchmarks() {
        if let Some(saved) = state.done.iter().find(|r| r.name == bench.name) {
            total_ok &= !saved.buggy;
            print_row(saved, true, args.stable);
            continue;
        }

        let budget = remaining(deadline);
        if budget.is_some_and(|b| b.is_zero()) {
            save_and_exit(&args, &state);
        }
        let mut config = mc::Config {
            max_executions: 3_000_000,
            time_budget: budget,
            workers: args.mc_workers(),
            rf_prune: args.rf_prune,
            ..mc::Config::default()
        };
        // Pick up mid-tree if a previous run was interrupted inside this
        // benchmark's exploration. A parallel run leaves several frontier
        // shards; resuming through `resume_shards` replays exactly the
        // unexplored remainder, regardless of the worker count now.
        let prior = match state.current.take() {
            Some((name, ckpt)) if name == bench.name => {
                let shards = ckpt.stats.frontier_shards();
                if shards.len() > 1 || shards.iter().any(|s| s.floor != 0) {
                    config.resume_shards = Some(shards);
                } else {
                    config.resume_script = Some(ckpt.script.clone());
                }
                Some(ckpt.stats)
            }
            other => {
                state.current = other;
                None
            }
        };
        let fresh = bench.check_default(config);
        let stats = match prior {
            Some(mut p) => {
                p.continue_with(fresh);
                p
            }
            None => fresh,
        };

        if stats.stop == mc::StopReason::Deadline {
            let ckpt = stats
                .checkpoint()
                .expect("a deadline stop leaves a frontier");
            state.current = Some((bench.name.to_string(), ckpt));
            save_and_exit(&args, &state);
        }

        let row = SavedRow7 {
            name: bench.name.to_string(),
            executions: stats.executions,
            feasible: stats.feasible,
            elapsed_ns: stats.elapsed.as_nanos(),
            peak_depth: stats.peak_depth,
            stop: stats.stop.to_string(),
            buggy: stats.buggy(),
            executions_pruned: stats.executions_pruned,
            rf_classes: stats.rf_classes.len() as u64,
        };
        total_ok &= !row.buggy;
        print_row(&row, false, args.stable);
        state.done.push(row);
    }

    // A completed run leaves no checkpoint behind.
    if let Some(path) = args.checkpoint_path() {
        let _ = std::fs::remove_file(path);
    }
    // Throughput summary. Executions, pruned branches, rf classes and
    // peak depth are deterministic across worker counts; only the rate is
    // timing-dependent, so only the rate is masked under `--stable`.
    let total_exec: u64 = state.done.iter().map(|r| r.executions).sum();
    let total_ns: u128 = state.done.iter().map(|r| r.elapsed_ns).sum();
    let depth = state.done.iter().map(|r| r.peak_depth).max().unwrap_or(0);
    let pruned: u64 = state.done.iter().map(|r| r.executions_pruned).sum();
    let classes: u64 = state.done.iter().map(|r| r.rf_classes).sum();
    let rate = if args.stable {
        "-".to_string()
    } else {
        format!("{:.0}", exec_per_sec(total_exec, total_ns))
    };
    println!(
        "\nThroughput: {total_exec} executions at {rate} exec/s, {pruned} rf-pruned \
         branches, {classes} rf classes, peak frontier depth {depth}."
    );
    println!(
        "\nAll benchmarks clean: {}. Shape claim preserved: every benchmark finishes \
         at unit-test scale (the paper's slowest row took 13.71 s; ours stays within \
         the same order). Which benchmark dominates differs — the paper's RW lock vs \
         our Chase-Lev corner-case suite — because the enumeration strategies weigh \
         spin loops and rf choices differently (DESIGN.md §2.2).",
        total_ok
    );
}
