//! Regenerates the paper's §6.4.3 *overly strong parameters* finding:
//! dropping one of the `seq_cst` CAS operations on the Chase-Lev `top`
//! variable to `relaxed` triggers no specification violation — the
//! parameter is stronger than the unit test can justify (the paper's
//! authors confirmed it is unnecessary).
//!
//! The harness weakens each non-relaxed site of each benchmark all the way
//! to `relaxed` and lists the survivors.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin overly_strong -- [--time-budget <secs>]
//! ```
//!
//! `--time-budget` bounds each site's exploration wall-clock. As with
//! the execution cap, a truncated clean trial still lists as a survivor
//! — a *candidate*, weaker evidence than an exhaustive clean run.

use cdsspec_bench::HarnessArgs;
use cdsspec_inject::find_overly_strong;
use cdsspec_mc as mc;
use cdsspec_structures::registry::benchmarks;

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("overly_strong: {e}");
            std::process::exit(2);
        }
    };
    let config = mc::Config {
        max_executions: 300_000,
        time_budget: args.time_budget,
        ..mc::Config::default()
    };
    println!("§6.4.3 — overly-strong memory-order candidates\n");
    println!("(sites whose full drop to `relaxed` triggers no violation on the unit test)\n");

    let mut chase_lev_top_cas_survives = false;
    for bench in benchmarks() {
        let survivors = find_overly_strong(&bench, &config);
        if survivors.is_empty() {
            println!(
                "{:<20} — every non-relaxed parameter is load-bearing",
                bench.name
            );
        } else {
            for t in &survivors {
                println!(
                    "{:<20} {:<28} {} -> relaxed   [no violation in {} executions]",
                    bench.name,
                    t.site,
                    t.from.name(),
                    t.executions
                );
                if bench.name == "Chase-Lev Deque" && t.site.contains("top_cas") {
                    chase_lev_top_cas_survives = true;
                }
            }
        }
    }

    println!(
        "\nPaper's §6.4.3 claim {}: a seq_cst CAS on the Chase-Lev `top` variable can be \
         weakened with no specification violation.",
        if chase_lev_top_cas_survives {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "Note: a survivor is a candidate, not a proof — as in the paper, the finding\n\
         was confirmed by manual review (and by the original authors)."
    );
}
