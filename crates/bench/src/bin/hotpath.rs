//! Hot-path performance probe: records executions/sec and
//! allocations/execution for a fixed probe set into a machine-readable
//! `BENCH_hotpath.json`, so successive optimization PRs regress against a
//! recorded trajectory instead of folklore.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin hotpath -- \
//!     [--variant <name>] [--out <path>] [--baseline <path>] [--smoke] \
//!     [--guard <path>]
//! ```
//!
//! `--guard <path>` switches to regression-guard mode: instead of writing
//! a new file, re-measure allocations/execution for the figure7 probes
//! and exit nonzero when any exceeds the best committed value in `<path>`
//! by more than 10% (the CI bench job runs this against the committed
//! `BENCH_hotpath.json`).
//!
//! Two probe families share one row schema ([`BenchRow`]):
//!
//! * `figure7:<benchmark>` — a full exhaustive exploration of one
//!   Figure 7 benchmark at a fixed worker count; `executions`,
//!   `feasible`, and `peak_depth` come from the explorer's [`mc::Stats`].
//! * `micro:<op>` — a tight loop over one hot operation (clock join,
//!   clock includes, rf-candidate enumeration, event append);
//!   `executions` counts loop iterations.
//!
//! Allocations are counted by a `#[global_allocator]` wrapper around the
//! system allocator (`alloc` + `realloc` calls, process-wide), so the
//! figure7 numbers include the explorer's worker threads — exactly the
//! allocation pressure a user's run pays.
//!
//! `--baseline <path>` carries rows of a previous file forward: rows
//! whose `(probe, variant, workers)` key is not re-measured by this run
//! are copied into the new output. That is how seed-variant rows survive
//! into the post-optimization file without a JSON parser dependency.
//!
//! `--smoke` shrinks the probe set for CI: the cheapest figure7 probe at
//! one worker plus shortened micro loops. Smoke rows are written with
//! the same schema; CI treats the run as pass/fail on panic, never on
//! variance.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cdsspec_bench::{exec_per_sec, extract_bench_rows, render_bench_json, BenchRow};
use cdsspec_c11::clock::Clock;
use cdsspec_c11::{LocId, MemOrd, Tid};
use cdsspec_mc as mc;
use cdsspec_mc::memstate::MemState;
use cdsspec_structures::registry::benchmarks;

/// System allocator wrapper counting every `alloc`/`realloc` call.
struct CountingAlloc;

/// Process-wide allocation counter (all threads, including explorer
/// workers).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Figure 7 benchmarks probed end-to-end. Chosen to cover the weight
/// range without the one monster row (Chase-Lev, ~50 s alone at one
/// worker on the reference box): together these run in roughly a second
/// per repetition at one worker.
const PROBE_BENCHES: &[&str] = &[
    "MPMC Queue",
    "Linux RW Lock",
    "Seqlock",
    "M&S Queue",
    "MCS Lock",
];

/// Smoke-mode subset: the cheapest probes only.
const SMOKE_BENCHES: &[&str] = &["Seqlock", "M&S Queue"];

/// Measure `f`, returning its result plus (elapsed_ns, allocations).
fn measured<T>(f: impl FnOnce() -> T) -> (T, u128, u64) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let out = f();
    let dt = t0.elapsed().as_nanos();
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    (out, dt, da)
}

/// Ratio helper for the per-execution allocation column.
fn per(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Explore one registered benchmark exhaustively and record the row.
fn figure7_probe(name: &str, workers: usize, variant: &str, watchdog: bool) -> BenchRow {
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown probe benchmark {name:?}"));
    let config = mc::Config {
        max_executions: 3_000_000,
        workers,
        // Probes measure the bare engine; the per-execution axiom audit
        // is a debugging aid, priced separately by micro:relations_finalize.
        debug_audit: false,
        // Fiber hosting engages either way (a configured watchdog now
        // rides fibers via the monitor thread). `watchdog` keeps
        // `Config::default`'s hang_timeout so the row prices the monitor
        // thread + per-execution registry against the watchdog-free
        // fast path; these closures are known-terminating in both modes.
        hang_timeout: if watchdog {
            mc::Config::default().hang_timeout
        } else {
            None
        },
        ..mc::Config::default()
    };
    let (stats, elapsed_ns, allocations) = measured(|| bench.check_default(config));
    assert!(
        !stats.buggy(),
        "probe {name:?} reported a bug under correct orderings"
    );
    assert_eq!(
        stats.stop,
        mc::StopReason::Exhausted,
        "probe {name:?} did not explore exhaustively"
    );
    BenchRow {
        probe: format!("figure7:{name}"),
        variant: variant.to_string(),
        workers,
        executions: stats.executions,
        feasible: stats.feasible,
        elapsed_ns,
        exec_per_sec: exec_per_sec(stats.executions, elapsed_ns),
        peak_depth: stats.peak_depth,
        allocations,
        allocs_per_exec: per(allocations, stats.executions),
    }
}

/// Build a clock pair shaped like real exploration state: a handful of
/// threads and locations with staggered knowledge.
fn sample_clocks() -> (Clock, Clock) {
    let mut a = Clock::new();
    let mut b = Clock::new();
    for t in 0..4u32 {
        a.vc.set(Tid(t), 10 + t);
        b.vc.set(Tid(t), 13 - t);
    }
    for l in 0..6u32 {
        a.wmax.raise(LocId(l), l);
        a.rmax.raise(LocId(l), l / 2);
        b.wmax.raise(LocId(l), 5 - l.min(5));
        b.rmax.raise(LocId(l), l);
    }
    (a, b)
}

/// A memory state mid-execution: two threads, one contended location
/// with a short store history — the shape `load_candidates` sees on
/// every load of the figure-7 suite.
fn sample_memstate() -> (MemState, Tid, LocId) {
    let mut st = MemState::new();
    let main = Tid::MAIN;
    let child = st.spawn_thread(main);
    let loc = st.alloc_atomic(main, Some(0));
    for i in 0..4u64 {
        st.apply_store(main, loc, MemOrd::Release, i);
        st.apply_store(child, loc, MemOrd::Relaxed, 100 + i);
    }
    let rf = st.load_candidates(child, loc, MemOrd::Acquire)[0];
    st.apply_load(child, loc, MemOrd::Acquire, rf);
    (st, child, loc)
}

/// A canned annotated trace shaped like one feasible MPMC-queue
/// execution: two producers and two consumers over two slots plus
/// tail/head counters, with release/acquire synchronization, an SC
/// spine, and full method-call annotations. This is the input the
/// per-execution finalize path (axiom check + rf signature + call
/// order) sees after every feasible exploration step.
fn canned_mpmc_trace() -> cdsspec_c11::Trace {
    use cdsspec_c11::{SpecNote, SpecVal};
    let mut st = MemState::new();
    let main = Tid::MAIN;
    let producers = [st.spawn_thread(main), st.spawn_thread(main)];
    let consumers = [st.spawn_thread(main), st.spawn_thread(main)];
    let tail = st.alloc_atomic(main, Some(0));
    let head = st.alloc_atomic(main, Some(0));
    let slots = [
        st.alloc_atomic(main, Some(0)),
        st.alloc_atomic(main, Some(0)),
    ];

    for (i, &p) in producers.iter().enumerate() {
        st.annotate(
            p,
            SpecNote::MethodBegin {
                obj: 1,
                name: "enq",
            },
        );
        st.annotate(
            p,
            SpecNote::MethodArg {
                val: SpecVal::I64(10 + i as i64),
            },
        );
        st.apply_store(p, slots[i], MemOrd::Release, 10 + i as u64);
        st.apply_store(p, tail, MemOrd::SeqCst, i as u64 + 1);
        st.annotate(p, SpecNote::OpDefine);
        st.annotate(p, SpecNote::MethodEnd { ret: SpecVal::Unit });
        st.apply_finish(p);
    }
    for (i, &c) in consumers.iter().enumerate() {
        st.annotate(
            c,
            SpecNote::MethodBegin {
                obj: 1,
                name: "deq",
            },
        );
        let tail_rf = *st
            .load_candidates(c, tail, MemOrd::SeqCst)
            .last()
            .expect("tail has candidates");
        st.apply_load(c, tail, MemOrd::SeqCst, tail_rf);
        st.annotate(c, SpecNote::OpDefine);
        let slot_rf = *st
            .load_candidates(c, slots[i], MemOrd::Acquire)
            .last()
            .expect("slot has candidates");
        let val = st.apply_load(c, slots[i], MemOrd::Acquire, slot_rf);
        st.apply_store(c, head, MemOrd::SeqCst, i as u64 + 1);
        st.annotate(
            c,
            SpecNote::MethodEnd {
                ret: SpecVal::I64(val as i64),
            },
        );
        st.apply_finish(c);
    }
    for &t in producers.iter().chain(&consumers) {
        st.apply_join(main, t);
    }
    st.apply_finish(main);
    st.trace
}

/// Run every micro probe at `iters` iterations.
fn micro_probes(variant: &str, iters: u64) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    let mut push = |op: &str, iters: u64, elapsed_ns: u128, allocations: u64| {
        rows.push(BenchRow {
            probe: format!("micro:{op}"),
            variant: variant.to_string(),
            workers: 1,
            executions: iters,
            feasible: 0,
            elapsed_ns,
            exec_per_sec: exec_per_sec(iters, elapsed_ns),
            peak_depth: 0,
            allocations,
            allocs_per_exec: per(allocations, iters),
        });
    };

    // clock_join: snapshot-and-merge, the per-event pattern of
    // `push_event` (clone) and `absorb_read` (join).
    let (a, b) = sample_clocks();
    let (_, dt, da) = measured(|| {
        let mut sink = 0u64;
        for _ in 0..iters {
            let mut c = a.clone();
            c.join(&b);
            sink = sink.wrapping_add(u64::from(c.vc.get(Tid(0))));
        }
        sink
    });
    push("clock_join", iters, dt, da);

    // clock_includes: the dominance test guarding the join fast path.
    let (a, b) = sample_clocks();
    let mut joined = a.clone();
    joined.join(&b);
    let (_, dt, da) = measured(|| {
        let mut sink = 0u64;
        for _ in 0..iters {
            sink = sink.wrapping_add(u64::from(joined.vc.includes(&a.vc)));
            sink = sink.wrapping_add(u64::from(a.vc.includes(&joined.vc)));
        }
        sink
    });
    push("clock_includes", iters, dt, da);

    // load_candidates: rf-candidate enumeration against a fixed history.
    let (st, tid, loc) = sample_memstate();
    let (_, dt, da) = measured(|| {
        let mut sink = 0usize;
        for _ in 0..iters {
            sink = sink.wrapping_add(st.load_candidates(tid, loc, MemOrd::Acquire).len());
        }
        sink
    });
    push("load_candidates", iters, dt, da);

    // push_event: event append incl. the per-event clock snapshot
    // (exercised through the public store path).
    let (_, dt, da) = measured(|| {
        let mut st = MemState::new();
        let loc = st.alloc_atomic(Tid::MAIN, Some(0));
        for i in 0..iters {
            st.apply_store(Tid::MAIN, loc, MemOrd::Relaxed, i);
        }
        st.trace.len()
    });
    push("push_event", iters, dt, da);

    // relations_finalize: the per-feasible-execution finalize work —
    // offline axiom validation (the full O(n²) oracle), the rf-class
    // signature, and method-call ordering — over a canned annotated
    // MPMC execution. Iterations are scaled down: validate dominates.
    let trace = canned_mpmc_trace();
    let calls = cdsspec_core::extract_calls(&trace).expect("canned trace annotates cleanly");
    assert!(
        cdsspec_c11::relations::validate(&trace, true).is_empty(),
        "canned MPMC trace must satisfy the axioms"
    );
    let fin_iters = (iters / 10).max(1);
    let (_, dt, da) = measured(|| {
        let mut sink = 0u64;
        for _ in 0..fin_iters {
            sink += cdsspec_c11::relations::validate(&trace, true).len() as u64;
            sink = sink.wrapping_add(cdsspec_c11::relations::rf_signature(&trace));
            sink += u64::from(cdsspec_core::build_call_order(&trace, &calls).cyclic());
        }
        sink
    });
    push("relations_finalize", fin_iters, dt, da);

    rows
}

struct Args {
    variant: String,
    out: PathBuf,
    baseline: Option<PathBuf>,
    smoke: bool,
    guard: Option<PathBuf>,
    watchdog: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        variant: "dev".into(),
        out: PathBuf::from("BENCH_hotpath.json"),
        baseline: None,
        smoke: false,
        guard: None,
        watchdog: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--variant" => args.variant = val("--variant")?,
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--baseline" => args.baseline = Some(PathBuf::from(val("--baseline")?)),
            "--smoke" => args.smoke = true,
            "--guard" => args.guard = Some(PathBuf::from(val("--guard")?)),
            // Measure the figure7 probes with `Config::default`'s hang
            // watchdog armed (micro probes are host-independent and are
            // skipped). Pair with `--variant fiber-watchdog` to record
            // the A/B rows against the watchdog-free variant.
            "--watchdog" => args.watchdog = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hotpath: {e}");
            exit(2);
        }
    };

    let (benches, worker_counts, iters) = if args.smoke {
        (SMOKE_BENCHES, &[1usize][..], 20_000u64)
    } else {
        (PROBE_BENCHES, &[1usize, 2][..], 200_000u64)
    };

    // Regression-guard mode: re-measure allocations/execution for the
    // figure7 probes at one worker (allocation counts there are near
    // deterministic — no stealing noise) and fail when any probe exceeds
    // the best committed value by more than 10%. exec/sec is *not*
    // guarded: wall-clock on shared CI runners is far noisier than the
    // allocation count, which only changes when the code does.
    if let Some(path) = &args.guard {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "hotpath: cannot read guard baseline {}: {e}",
                    path.display()
                );
                exit(1);
            }
        };
        let committed = extract_bench_rows(&text);
        let mut failed = false;
        for name in benches {
            let row = figure7_probe(name, 1, "guard", args.watchdog);
            let best = committed
                .iter()
                .filter(|r| r.probe == row.probe && r.workers == 1 && r.allocations > 0)
                .map(|r| r.allocs_per_exec)
                .fold(f64::INFINITY, f64::min);
            if !best.is_finite() {
                eprintln!(
                    "{:<28} {:>8.1} allocs/exec (no committed baseline)",
                    row.probe, row.allocs_per_exec
                );
                continue;
            }
            let verdict = if row.allocs_per_exec > best * 1.10 {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            eprintln!(
                "{:<28} {:>8.1} allocs/exec vs committed best {:>8.1} ({verdict})",
                row.probe, row.allocs_per_exec, best
            );
        }
        if failed {
            eprintln!(
                "hotpath: allocation regression > 10% against {}",
                path.display()
            );
            exit(1);
        }
        return;
    }

    let mut rows = Vec::new();
    for &w in worker_counts {
        for name in benches {
            let row = figure7_probe(name, w, &args.variant, args.watchdog);
            eprintln!(
                "{:<28} workers={} {:>9} exec {:>10.0} exec/s {:>8.1} allocs/exec",
                row.probe, row.workers, row.executions, row.exec_per_sec, row.allocs_per_exec
            );
            rows.push(row);
        }
    }
    if !args.watchdog {
        for row in micro_probes(&args.variant, iters) {
            eprintln!(
                "{:<28} workers={} {:>9} iter {:>10.0} iter/s {:>8.1} allocs/iter",
                row.probe, row.workers, row.executions, row.exec_per_sec, row.allocs_per_exec
            );
            rows.push(row);
        }
    }

    // Carry forward baseline rows this run did not re-measure.
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hotpath: cannot read baseline {}: {e}", path.display());
                exit(1);
            }
        };
        let fresh: Vec<(String, String, usize)> = rows
            .iter()
            .map(|r| (r.probe.clone(), r.variant.clone(), r.workers))
            .collect();
        let mut kept = 0;
        let mut merged = Vec::new();
        for old in extract_bench_rows(&text) {
            let key = (old.probe.clone(), old.variant.clone(), old.workers);
            if !fresh.contains(&key) {
                merged.push(old);
                kept += 1;
            }
        }
        eprintln!("carried {kept} baseline row(s) from {}", path.display());
        merged.extend(rows);
        rows = merged;
    }

    if let Err(e) = std::fs::write(&args.out, render_bench_json(&rows)) {
        eprintln!("hotpath: cannot write {}: {e}", args.out.display());
        exit(1);
    }
    eprintln!("wrote {} row(s) to {}", rows.len(), args.out.display());
}
