//! Regenerates the paper's §6.2 ease-of-use statistics: methods,
//! ordering-point annotations per method, and admissibility rules across
//! the benchmark suite.
//!
//! Paper: 27 API methods, 33 ordering points (1.22 per method), 7
//! admissibility-rule lines across 1,253 lines of code.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin spec_stats
//! ```

use cdsspec_structures::registry::benchmarks;

fn main() {
    println!("§6.2 — specification statistics\n");
    println!(
        "{:<20} {:>8} {:>10} {:>12} {:>10}",
        "Benchmark", "Methods", "OP annots", "OP/method", "Admit rules"
    );
    println!("{}", "-".repeat(66));

    let (mut methods, mut ops, mut rules) = (0usize, 0usize, 0usize);
    for bench in benchmarks() {
        let m = bench.meta;
        println!(
            "{:<20} {:>8} {:>10} {:>12.2} {:>10}",
            bench.name,
            m.methods,
            m.ordering_point_annotations,
            m.ordering_point_annotations as f64 / m.methods as f64,
            m.admissibility_rules
        );
        methods += m.methods;
        ops += m.ordering_point_annotations;
        rules += m.admissibility_rules;
    }
    println!("{}", "-".repeat(66));
    println!(
        "{:<20} {:>8} {:>10} {:>12.2} {:>10}",
        "Total",
        methods,
        ops,
        ops as f64 / methods as f64,
        rules
    );
    println!(
        "\nPaper reports 27 methods / 33 ordering points (1.22 per method) / 7 rules.\n\
         Shape claims preserved: ~1 ordering point per method on average, a handful of\n\
         admissibility rules across the whole suite, specs of ~a dozen lines each."
    );
}
