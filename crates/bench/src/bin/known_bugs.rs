//! Regenerates the paper's §6.4.1 *known bugs* experiment:
//!
//! * two real memory-ordering bugs in the M&S queue (found by AutoMO) —
//!   both must be exposed as specification violations;
//! * the Chase-Lev deque resize bug (found by CDSChecker) — exposed as an
//!   uninitialized load, and *re-detected by the specification alone*
//!   when the resized buffer is initialized to suppress the built-in
//!   check (the paper's methodology for showing the spec's added value).
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin known_bugs -- \
//!     [--time-budget <secs>] [--workers <n>]
//! ```
//!
//! `--time-budget` bounds each reproduction's exploration wall-clock; a
//! cut-short reproduction reports its stop reason in the summary line.
//! `--workers <n>` sets the explorer thread count (default: available
//! parallelism); each detected defect is attributed to the worker and
//! frontier shard that found it.

use cdsspec_bench::HarnessArgs;
use cdsspec_core as spec;
use cdsspec_mc as mc;
use cdsspec_structures::{chase_lev, ms_queue};

/// Print one reproduction's verdict; `true` when it matched expectations.
fn report(name: &str, stats: &mc::Stats, expect_bug: bool) -> bool {
    let verdict = match (stats.buggy(), expect_bug) {
        (true, true) => "DETECTED (as expected)",
        (false, false) => "clean (as expected)",
        (true, false) => "UNEXPECTED BUG",
        (false, true) => "MISSED — reproduction failure!",
    };
    println!("{name:<55} {verdict}");
    if let Some(b) = stats.bugs.first() {
        // Attribute the find: which explorer worker hit it, and which
        // frontier shard it was draining (the script prefix the shard
        // started from — empty means the root shard).
        let shard = if b.shard.is_empty() {
            "root".to_string()
        } else {
            b.shard
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        println!("    first defect: {}", b.bug);
        println!("    found by worker {} in shard [{shard}]", b.worker);
    }
    println!("    ({})", stats.summary());
    stats.buggy() == expect_bug
}

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("known_bugs: {e}");
            std::process::exit(2);
        }
    };
    let config = mc::Config {
        time_budget: args.time_budget,
        workers: args.mc_workers(),
        ..mc::Config::default()
    };

    println!("§6.4.1 — known bugs\n");

    let mut failures = 0usize;

    // Baseline sanity: correct versions are clean.
    let stats = ms_queue::check(
        config.clone(),
        cdsspec_structures::Ords::defaults(ms_queue::SITES),
    );
    failures += usize::from(!report("M&S queue, correct orderings", &stats, false));

    // AutoMO bug 1: enqueue-side publication too weak.
    let stats = spec::check(config.clone(), ms_queue::make_spec(), || {
        let q = ms_queue::MsQueue::known_bug_enq();
        let q1 = q.clone();
        let t = mc::thread::spawn(move || {
            let _ = q1.deq();
        });
        q.enq(1);
        q.enq(2);
        let _ = q.deq();
        t.join();
    });
    failures += usize::from(!report(
        "M&S queue, known enqueue bug (AutoMO)",
        &stats,
        true,
    ));

    // AutoMO bug 2: dequeue-side acquisition too weak.
    let stats = spec::check(config.clone(), ms_queue::make_spec(), || {
        let q = ms_queue::MsQueue::known_bug_deq();
        let q1 = q.clone();
        let t = mc::thread::spawn(move || {
            let _ = q1.deq();
        });
        q.enq(1);
        q.enq(2);
        let _ = q.deq();
        t.join();
    });
    failures += usize::from(!report(
        "M&S queue, known dequeue bug (AutoMO)",
        &stats,
        true,
    ));

    println!();

    let stats = chase_lev::check(
        config.clone(),
        cdsspec_structures::Ords::defaults(chase_lev::SITES),
    );
    failures += usize::from(!report("Chase-Lev deque, correct orderings", &stats, false));

    // CDSChecker's resize bug: uninitialized load.
    let stats = spec::check(config.clone(), chase_lev::make_spec(), || {
        let d = chase_lev::ChaseLev::known_bug();
        let d1 = d.clone();
        let thief = mc::thread::spawn(move || {
            let _ = d1.steal();
            let _ = d1.steal();
        });
        d.push(1);
        d.push(2);
        d.push(3);
        let _ = d.take();
        let _ = d.take();
        thief.join();
    });
    failures += usize::from(!report(
        "Chase-Lev deque, resize bug (built-in detection)",
        &stats,
        true,
    ));

    // Same bug with initialized buffers: only the spec can catch it.
    let stats = spec::check(config, chase_lev::make_spec(), || {
        let d = chase_lev::ChaseLev::known_bug_initialized();
        let d1 = d.clone();
        let thief = mc::thread::spawn(move || {
            let _ = d1.steal();
            let _ = d1.steal();
        });
        d.push(1);
        d.push(2);
        d.push(3);
        let _ = d.take();
        let _ = d.take();
        thief.join();
    });
    failures += usize::from(!report(
        "Chase-Lev deque, resize bug (spec-only detection)",
        &stats,
        true,
    ));

    if failures == 0 {
        println!(
            "\nAll three known bugs reproduce, including the spec-only re-detection that\n\
             shows CDSSpec finds bugs the built-in checks cannot (paper §6.4.1)."
        );
    } else {
        println!(
            "\n{failures} reproduction(s) did not match expectations. If a summary line\n\
             above says `stop: deadline`, the time budget cut exploration short —\n\
             rerun with a larger --time-budget (or none)."
        );
        std::process::exit(1);
    }
}
