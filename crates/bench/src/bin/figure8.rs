//! Regenerates **Figure 8** of the paper: the bug-injection detection
//! table. Every non-relaxed atomic-op ordering in every benchmark is
//! weakened one step (one site per trial); the first defect classifies
//! the detection as Built-in / Admissibility / Assertion. Trials whose
//! check crashed even after the campaign's bounded retry are reported in
//! an `Err` column instead of silently vanishing.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin figure8 -- [--verbose] \
//!     [--time-budget <secs>] [--resume <path>] [--checkpoint <path>] \
//!     [--workers <n>] [--no-rf-prune]
//! ```
//!
//! `--workers <n>` sets the explorer thread count used by each trial's
//! exploration (default: available parallelism). Trial campaigns
//! themselves dispatch across the same pool (see `cdsspec-inject`).
//!
//! With `--time-budget`, the campaign stops *between benchmarks* when
//! the budget expires, writes the completed rows to a checkpoint, and
//! exits with status 3; `--resume` skips the saved rows and finishes the
//! rest. Rows are only ever reported from complete trial sets, so an
//! interrupted-and-resumed campaign prints exactly the rows of a
//! straight-through one.

use std::process::exit;

use cdsspec_bench::{
    exec_per_sec, load_checkpoint, remaining, store_checkpoint, Figure8Checkpoint, HarnessArgs,
    SavedRow8, EXIT_INTERRUPTED,
};
use cdsspec_inject::inject_benchmark;
use cdsspec_mc as mc;
use cdsspec_structures::registry::benchmarks;

/// Paper-reported (injections, built-in, admissibility, assertion).
const PAPER: &[(&str, usize, usize, usize, usize)] = &[
    ("Chase-Lev Deque", 7, 3, 0, 4),
    ("SPSC Queue", 2, 0, 0, 2),
    ("RCU", 3, 3, 0, 0),
    ("Lockfree Hashtable", 4, 2, 0, 2),
    ("MCS Lock", 8, 4, 0, 4),
    ("MPMC Queue", 8, 0, 4, 0),
    ("M&S Queue", 10, 3, 0, 7),
    ("Linux RW Lock", 8, 0, 0, 8),
    ("Seqlock", 5, 0, 0, 5),
    ("Ticket Lock", 2, 0, 0, 2),
];

fn print_row(row: &SavedRow8, resumed: bool) {
    let paper = PAPER.iter().find(|(n, ..)| *n == row.name);
    let (pi, pb, pa, ps) = paper
        .map(|(_, i, b, a, s)| (*i, *b, *a, *s))
        .unwrap_or((0, 0, 0, 0));
    let prate = if pi == 0 {
        100.0
    } else {
        100.0 * (pb + pa + ps) as f64 / pi as f64
    };
    let detected = row.builtin + row.admissibility + row.assertion;
    let rate = if row.injections == 0 {
        100.0
    } else {
        100.0 * detected as f64 / row.injections as f64
    };
    println!(
        "{:<20} {:>6} {:>9} {:>7} {:>10} {:>4} {:>6.0}%   | {:>6} {:>9} {:>7} {:>10} {:>6.0}%{}",
        row.name,
        row.injections,
        row.builtin,
        row.admissibility,
        row.assertion,
        row.errored,
        rate,
        pi,
        pb,
        pa,
        ps,
        prate,
        if resumed { "  [from checkpoint]" } else { "" },
    );
}

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("figure8: {e}");
            exit(2);
        }
    };
    let mut state = Figure8Checkpoint::default();
    // A missing resume file is a fresh start, not an error: the binary
    // deletes its checkpoint on completion, so `until figure8 --resume
    // ck; do :; done` works from the first invocation.
    if let Some(path) = args.resume.as_ref().filter(|p| p.exists()) {
        match load_checkpoint(path, Figure8Checkpoint::from_text) {
            Ok(ck) => state = ck,
            Err(e) => {
                eprintln!("figure8: {e}");
                exit(2);
            }
        }
    }
    let deadline = args.deadline();
    let config = mc::Config {
        max_executions: 300_000,
        workers: args.mc_workers(),
        rf_prune: args.rf_prune,
        ..mc::Config::default()
    };
    let benches = benchmarks();

    println!("Figure 8 — bug injection detection results (ours | paper)\n");
    println!(
        "{:<20} {:>6} {:>9} {:>7} {:>10} {:>4} {:>6}   | {:>6} {:>9} {:>7} {:>10} {:>7}",
        "Benchmark",
        "#Inj",
        "Built-in",
        "Admiss",
        "Assertion",
        "Err",
        "Rate",
        "#Inj",
        "Built-in",
        "Admiss",
        "Assertion",
        "Rate"
    );
    println!("{}", "-".repeat(124));

    let mut tot = (0usize, 0usize, 0usize, 0usize, 0usize);
    for bench in &benches {
        let (row, resumed) = match state.done.iter().find(|r| r.name == bench.name) {
            Some(saved) => (saved.clone(), true),
            None => {
                if remaining(deadline).is_some_and(|b| b.is_zero()) {
                    let Some(path) = args.checkpoint_path() else {
                        eprintln!(
                            "\ntime budget exhausted and no --checkpoint/--resume path \
                             given; partial results are lost"
                        );
                        exit(EXIT_INTERRUPTED);
                    };
                    if let Err(e) = store_checkpoint(path, &state.to_text()) {
                        eprintln!("\n{e}");
                        exit(1);
                    }
                    eprintln!(
                        "\ntime budget exhausted after {} of {} rows; checkpoint written \
                         to {}; rerun with --resume {2} to continue",
                        state.done.len(),
                        benches.len(),
                        path.display()
                    );
                    exit(EXIT_INTERRUPTED);
                }
                let (row, trials) = inject_benchmark(bench, &config);
                if args.verbose {
                    for t in &trials {
                        println!(
                            "    {:<28} {:>8} -> {:<8} {}",
                            t.site,
                            t.from.name(),
                            t.to.name(),
                            if t.errored {
                                format!("ERRORED: {}", t.message.as_deref().unwrap_or(""))
                            } else {
                                match &t.detected {
                                    Some(cat) => {
                                        format!("{cat:?}: {}", t.message.as_deref().unwrap_or(""))
                                    }
                                    None => "NOT DETECTED".into(),
                                }
                            }
                        );
                    }
                }
                let saved = SavedRow8 {
                    name: row.name.to_string(),
                    injections: row.injections,
                    builtin: row.builtin,
                    admissibility: row.admissibility,
                    assertion: row.assertion,
                    errored: row.errored,
                    executions: trials.iter().map(|t| t.executions).sum(),
                    elapsed_ns: trials.iter().map(|t| t.elapsed_ns).sum(),
                    peak_depth: trials.iter().map(|t| t.peak_depth).max().unwrap_or(0),
                    executions_pruned: trials.iter().map(|t| t.executions_pruned).sum(),
                    rf_classes: trials.iter().map(|t| t.rf_classes).sum(),
                };
                state.done.push(saved.clone());
                (saved, false)
            }
        };
        print_row(&row, resumed);
        tot.0 += row.injections;
        tot.1 += row.builtin;
        tot.2 += row.admissibility;
        tot.3 += row.assertion;
        tot.4 += row.errored;
    }
    println!("{}", "-".repeat(124));
    let rate = if tot.0 == 0 {
        100.0
    } else {
        100.0 * (tot.1 + tot.2 + tot.3) as f64 / tot.0 as f64
    };
    println!(
        "{:<20} {:>6} {:>9} {:>7} {:>10} {:>4} {:>6.0}%   | {:>6} {:>9} {:>7} {:>10} {:>6.0}%",
        "Total", tot.0, tot.1, tot.2, tot.3, tot.4, rate, 57, 15, 4, 34, 93.0
    );
    if let Some(path) = args.checkpoint_path() {
        let _ = std::fs::remove_file(path);
    }
    // Throughput summary across every trial exploration. Executions,
    // pruned branches, rf classes and peak depth are deterministic per
    // trial; the rate is timing-dependent, so it is masked under
    // `--stable`.
    let total_exec: u64 = state.done.iter().map(|r| r.executions).sum();
    let total_ns: u128 = state.done.iter().map(|r| r.elapsed_ns).sum();
    let depth = state.done.iter().map(|r| r.peak_depth).max().unwrap_or(0);
    let pruned: u64 = state.done.iter().map(|r| r.executions_pruned).sum();
    let classes: u64 = state.done.iter().map(|r| r.rf_classes).sum();
    let rate = if args.stable {
        "-".to_string()
    } else {
        format!("{:.0}", exec_per_sec(total_exec, total_ns))
    };
    println!(
        "\nThroughput: {total_exec} trial executions at {rate} exec/s, {pruned} rf-pruned \
         branches, {classes} rf classes, peak frontier depth {depth}."
    );
    println!(
        "\nShape claims preserved: the overwhelming majority of injections are detected;\n\
         spec checking (admissibility + assertions) detects substantially more than the\n\
         built-in checks alone; RCU lands entirely in Built-in; MPMC detections come\n\
         from admissibility; the ticket lock's two injections are both caught."
    );
}
