//! Regenerates **Figure 8** of the paper: the bug-injection detection
//! table. Every non-relaxed atomic-op ordering in every benchmark is
//! weakened one step (one site per trial); the first defect classifies
//! the detection as Built-in / Admissibility / Assertion.
//!
//! ```text
//! cargo run -p cdsspec-bench --release --bin figure8 [--verbose]
//! ```

use cdsspec_inject::run_campaign;
use cdsspec_mc as mc;
use cdsspec_structures::registry::benchmarks;

/// Paper-reported (injections, built-in, admissibility, assertion).
const PAPER: &[(&str, usize, usize, usize, usize)] = &[
    ("Chase-Lev Deque", 7, 3, 0, 4),
    ("SPSC Queue", 2, 0, 0, 2),
    ("RCU", 3, 3, 0, 0),
    ("Lockfree Hashtable", 4, 2, 0, 2),
    ("MCS Lock", 8, 4, 0, 4),
    ("MPMC Queue", 8, 0, 4, 0),
    ("M&S Queue", 10, 3, 0, 7),
    ("Linux RW Lock", 8, 0, 0, 8),
    ("Seqlock", 5, 0, 0, 5),
    ("Ticket Lock", 2, 0, 0, 2),
];

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose");
    let config = mc::Config { max_executions: 300_000, ..mc::Config::default() };
    let benches = benchmarks();

    println!("Figure 8 — bug injection detection results (ours | paper)\n");
    println!(
        "{:<20} {:>6} {:>9} {:>7} {:>10} {:>7}   | {:>6} {:>9} {:>7} {:>10} {:>7}",
        "Benchmark", "#Inj", "Built-in", "Admiss", "Assertion", "Rate",
        "#Inj", "Built-in", "Admiss", "Assertion", "Rate"
    );
    println!("{}", "-".repeat(118));

    let mut tot = (0usize, 0usize, 0usize, 0usize);
    let results = run_campaign(&benches, &config);
    for (row, trials) in &results {
        let paper = PAPER.iter().find(|(n, ..)| *n == row.name);
        let (pi, pb, pa, ps) =
            paper.map(|(_, i, b, a, s)| (*i, *b, *a, *s)).unwrap_or((0, 0, 0, 0));
        let prate = if pi == 0 { 100.0 } else { 100.0 * (pb + pa + ps) as f64 / pi as f64 };
        println!(
            "{:<20} {:>6} {:>9} {:>7} {:>10} {:>6.0}%   | {:>6} {:>9} {:>7} {:>10} {:>6.0}%",
            row.name,
            row.injections,
            row.builtin,
            row.admissibility,
            row.assertion,
            row.rate(),
            pi,
            pb,
            pa,
            ps,
            prate,
        );
        tot.0 += row.injections;
        tot.1 += row.builtin;
        tot.2 += row.admissibility;
        tot.3 += row.assertion;
        if verbose {
            for t in trials {
                println!(
                    "    {:<28} {:>8} -> {:<8} {}",
                    t.site,
                    t.from.name(),
                    t.to.name(),
                    match &t.detected {
                        Some(cat) => format!("{cat:?}: {}", t.message.as_deref().unwrap_or("")),
                        None => "NOT DETECTED".into(),
                    }
                );
            }
        }
    }
    println!("{}", "-".repeat(118));
    let rate = if tot.0 == 0 { 100.0 } else { 100.0 * (tot.1 + tot.2 + tot.3) as f64 / tot.0 as f64 };
    println!(
        "{:<20} {:>6} {:>9} {:>7} {:>10} {:>6.0}%   | {:>6} {:>9} {:>7} {:>10} {:>6.0}%",
        "Total", tot.0, tot.1, tot.2, tot.3, rate, 57, 15, 4, 34, 93.0
    );
    println!(
        "\nShape claims preserved: the overwhelming majority of injections are detected;\n\
         spec checking (admissibility + assertions) detects substantially more than the\n\
         built-in checks alone; RCU lands entirely in Built-in; MPMC detections come\n\
         from admissibility; the ticket lock's two injections are both caught."
    );
}
