//! Criterion benches for sequential-history enumeration (the checker's
//! inner loop), including the DESIGN.md ablation: exhaustive enumeration
//! vs. random sampling as the call graph widens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdsspec_core::{all_histories, CallOrder, HistoryPolicy};

/// `k` chains of length `len` with no cross edges — the worst case for
/// exhaustive enumeration (multinomial growth).
fn parallel_chains(k: usize, len: usize) -> CallOrder {
    let mut o = CallOrder::new(k * len);
    for chain in 0..k {
        for i in 1..len {
            o.add_edge(chain * len + i - 1, chain * len + i);
        }
    }
    o.close();
    o
}

fn bench_history_enum(c: &mut Criterion) {
    let mut group = c.benchmark_group("history-enumeration");

    for &(k, len) in &[(2usize, 3usize), (3, 3), (2, 5)] {
        let order = parallel_chains(k, len);
        group.bench_with_input(
            BenchmarkId::new("exhaustive", format!("{k}x{len}")),
            &order,
            |b, order| {
                b.iter(|| all_histories(order, HistoryPolicy::Exhaustive { cap: 100_000 }).len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sample-64", format!("{k}x{len}")),
            &order,
            |b, order| {
                b.iter(|| all_histories(order, HistoryPolicy::Sample { count: 64, seed: 1 }).len())
            },
        );
    }
    group.finish();

    // Transitive closure cost on a dense order.
    c.bench_function("call-order-close-32", |b| {
        b.iter(|| {
            let mut o = CallOrder::new(32);
            for i in 0..31 {
                o.add_edge(i, i + 1);
            }
            o.close();
            o.ordered(0, 31)
        })
    });
}

criterion_group!(benches, bench_history_enum);
criterion_main!(benches);
