//! Criterion benches for the model checker's exploration engine, including
//! the DESIGN.md ablation: sleep-set partial-order reduction on vs. off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{Atomic, Config};

/// The message-passing litmus: small and synchronization-heavy.
fn mp_workload() -> impl Fn() + Send + Sync + Clone + 'static {
    || {
        let data = Atomic::new(0i64);
        let flag = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            data.store(42, Relaxed);
            flag.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            assert_eq!(data.load(Relaxed), 42);
        }
        t.join();
    }
}

/// Two-thread ticket-lock contention: RMW-heavy, conflict-dense.
fn lock_workload() -> impl Fn() + Send + Sync + Clone + 'static {
    || {
        let l = cdsspec_structures::ticket_lock::TicketLock::new();
        let c = mc::Data::new(0i64);
        let l1 = l.clone();
        let t = mc::thread::spawn(move || {
            l1.lock();
            c.write(c.read() + 1);
            l1.unlock();
        });
        l.lock();
        c.write(c.read() + 1);
        l.unlock();
        t.join();
    }
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);

    for (name, sleep) in [("sleep-sets-on", true), ("sleep-sets-off", false)] {
        group.bench_with_input(BenchmarkId::new("mp", name), &sleep, |b, &sleep| {
            b.iter(|| {
                let config = Config {
                    sleep_sets: sleep,
                    ..Config::default()
                };
                let stats = mc::explore(config, mp_workload());
                assert!(!stats.buggy());
                stats.executions
            })
        });
        group.bench_with_input(
            BenchmarkId::new("ticket-lock", name),
            &sleep,
            |b, &sleep| {
                b.iter(|| {
                    let config = Config {
                        sleep_sets: sleep,
                        ..Config::default()
                    };
                    let stats = mc::explore(config, lock_workload());
                    assert!(!stats.buggy());
                    stats.executions
                })
            },
        );
    }
    group.finish();

    // Per-operation baton-passing cost: a single-threaded, single-execution
    // program with many visible ops isolates the scheduler round-trip.
    c.bench_function("visible-op-roundtrip-x100", |b| {
        b.iter(|| {
            let stats = mc::explore(Config::default(), || {
                let x = Atomic::new(0i64);
                for i in 0..100 {
                    x.store(i, Relaxed);
                }
            });
            assert_eq!(stats.executions, 1);
        })
    });
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
