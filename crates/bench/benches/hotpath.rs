//! Criterion microbenches for the allocation hot paths: clock
//! snapshot-and-join, clock dominance, rf-candidate enumeration, and
//! event append. These are the operations the copy-on-write clock
//! representation and the reusable candidate buffers target; the
//! `hotpath` binary measures the same operations with allocation
//! counting and records them to `BENCH_hotpath.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cdsspec_c11::clock::Clock;
use cdsspec_c11::{LocId, MemOrd, Tid};
use cdsspec_mc::memstate::MemState;

/// A clock pair shaped like mid-exploration state: several threads and
/// locations with staggered knowledge, neither side dominating.
fn sample_clocks() -> (Clock, Clock) {
    let mut a = Clock::new();
    let mut b = Clock::new();
    for t in 0..4u32 {
        a.vc.set(Tid(t), 10 + t);
        b.vc.set(Tid(t), 13 - t);
    }
    for l in 0..6u32 {
        a.wmax.raise(LocId(l), l);
        a.rmax.raise(LocId(l), l / 2);
        b.wmax.raise(LocId(l), 5 - l.min(5));
        b.rmax.raise(LocId(l), l);
    }
    (a, b)
}

/// Two threads, one contended location with a short store history.
fn sample_memstate() -> (MemState, Tid, LocId) {
    let mut st = MemState::new();
    let main = Tid::MAIN;
    let child = st.spawn_thread(main);
    let loc = st.alloc_atomic(main, Some(0));
    for i in 0..4u64 {
        st.apply_store(main, loc, MemOrd::Release, i);
        st.apply_store(child, loc, MemOrd::Relaxed, 100 + i);
    }
    let rf = st.load_candidates(child, loc, MemOrd::Acquire)[0];
    st.apply_load(child, loc, MemOrd::Acquire, rf);
    (st, child, loc)
}

fn bench_hotpath(c: &mut Criterion) {
    let (a, b) = sample_clocks();
    c.bench_function("clock-snapshot-join", |bench| {
        bench.iter(|| {
            let mut snap = a.clone();
            snap.join(black_box(&b));
            snap.vc.get(Tid(0))
        })
    });

    let mut joined = a.clone();
    joined.join(&b);
    c.bench_function("clock-includes", |bench| {
        bench.iter(|| {
            black_box(joined.vc.includes(black_box(&a.vc)))
                ^ black_box(a.vc.includes(black_box(&joined.vc)))
        })
    });

    let (st, tid, loc) = sample_memstate();
    c.bench_function("load-candidates", |bench| {
        bench.iter(|| {
            st.load_candidates(black_box(tid), black_box(loc), MemOrd::Acquire)
                .len()
        })
    });

    c.bench_function("push-event-x100", |bench| {
        bench.iter(|| {
            let mut st = MemState::new();
            let loc = st.alloc_atomic(Tid::MAIN, Some(0));
            for i in 0..100u64 {
                st.apply_store(Tid::MAIN, loc, MemOrd::Relaxed, i);
            }
            st.trace.len()
        })
    });
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
