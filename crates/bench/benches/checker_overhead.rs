//! Criterion bench for the CDSSpec checking overhead: the same unit test
//! explored bare vs. with the specification plugin attached — the paper's
//! implicit performance claim is that spec checking adds tolerable
//! overhead on top of exploration (Figure 7's times include it).

use criterion::{criterion_group, criterion_main, Criterion};

use cdsspec_mc as mc;
use cdsspec_structures::blocking_queue;
use cdsspec_structures::Ords;

fn bench_checker_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec-overhead");
    group.sample_size(10);

    group.bench_function("blocking-queue-bare", |b| {
        b.iter(|| {
            let stats = mc::explore(
                mc::Config::default(),
                blocking_queue::unit_test(Ords::defaults(blocking_queue::SITES)),
            );
            assert!(!stats.buggy());
            stats.executions
        })
    });

    group.bench_function("blocking-queue-with-spec", |b| {
        b.iter(|| {
            let stats =
                blocking_queue::check(mc::Config::default(), Ords::defaults(blocking_queue::SITES));
            assert!(!stats.buggy());
            stats.executions
        })
    });

    group.bench_function("ms-queue-with-spec", |b| {
        b.iter(|| {
            let stats = cdsspec_structures::ms_queue::check(
                mc::Config::default(),
                Ords::defaults(cdsspec_structures::ms_queue::SITES),
            );
            assert!(!stats.buggy());
            stats.executions
        })
    });

    group.finish();
}

criterion_group!(benches, bench_checker_overhead);
criterion_main!(benches);
