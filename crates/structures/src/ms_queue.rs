//! The Michael & Scott non-blocking queue (PODC'96), C11 port following
//! the CDSChecker benchmark suite — the paper's `M&S Queue` row.
//!
//! Differences from the §2 blocking queue: a failed enqueue CAS *helps*
//! swing the tail instead of spinning, and the dequeuer re-checks
//! `head == tail` to distinguish empty from mid-enqueue. Nodes are not
//! recycled (as in the paper's benchmarks), which sidesteps ABA.
//!
//! §6.4.1: AutoMO found two real bugs in the CDSChecker version of this
//! queue — too-weak memory orders that let a dequeue spuriously miss an
//! enqueued node or violate FIFO. [`MsQueue::known_bug_enq`] and
//! [`MsQueue::known_bug_deq`]
//! reproduce that shape: each weakens the corresponding publication /
//! acquisition edge, and the CDSSpec specification catches both.

use cdsspec_core as spec;
use cdsspec_mc as mc;
use std::collections::VecDeque;

use cdsspec_c11::MemOrd::*;

use crate::blocking_queue::queue_spec;
use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Injectable ordering sites. Defaults follow the AutoMO-inferred
/// *minimal* parameter assignment (as the paper's benchmark does): the
/// tail loads/helping CASes are relaxed — the tail is only a hint; all
/// publication and acquisition flows through `next` and `head` — so the
/// four remaining non-relaxed parameters are each load-bearing and every
/// injection is detectable (the paper's 100% M&S row).
pub static SITES: &[SiteSpec] = &[
    site("enq.tail_load", Relaxed, SiteKind::Load),
    site("enq.next_load", Relaxed, SiteKind::Load),
    site("enq.next_cas", Release, SiteKind::Rmw),
    site("enq.tail_swing", Relaxed, SiteKind::Rmw),
    site("enq.tail_help", Relaxed, SiteKind::Rmw),
    site("deq.head_load", Acquire, SiteKind::Load),
    site("deq.tail_load", Relaxed, SiteKind::Load),
    site("deq.next_load", Acquire, SiteKind::Load),
    site("deq.tail_help", Relaxed, SiteKind::Rmw),
    site("deq.head_cas", Release, SiteKind::Rmw),
];

const ENQ_TAIL_LOAD: usize = 0;
const ENQ_NEXT_LOAD: usize = 1;
const ENQ_NEXT_CAS: usize = 2;
const ENQ_TAIL_SWING: usize = 3;
const ENQ_TAIL_HELP: usize = 4;
const DEQ_HEAD_LOAD: usize = 5;
const DEQ_TAIL_LOAD: usize = 6;
const DEQ_NEXT_LOAD: usize = 7;
const DEQ_TAIL_HELP: usize = 8;
const DEQ_HEAD_CAS: usize = 9;

struct Node {
    data: mc::Data<i64>,
    next: mc::Atomic<*mut Node>,
}

impl Node {
    fn new(v: i64) -> Self {
        Node {
            data: mc::Data::new(v),
            next: mc::Atomic::new(std::ptr::null_mut()),
        }
    }
}

/// The Michael & Scott queue.
#[derive(Clone)]
pub struct MsQueue {
    obj: u64,
    head: mc::Atomic<*mut Node>,
    tail: mc::Atomic<*mut Node>,
    ords: Ords,
}

impl MsQueue {
    /// A queue with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A queue with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        let dummy = mc::alloc(Node::new(0));
        MsQueue {
            obj: mc::new_object_id(),
            head: mc::Atomic::new(dummy),
            tail: mc::Atomic::new(dummy),
            ords,
        }
    }

    /// §6.4.1 known bug 1 (enqueue side): the next-CAS publishing the node
    /// is relaxed, so a dequeuer can read the node pointer without
    /// acquiring the node's initialization.
    pub fn known_bug_enq() -> Self {
        let mut ords = Ords::defaults(SITES);
        ords.set(ENQ_NEXT_CAS, Relaxed);
        Self::with_ords(ords)
    }

    /// §6.4.1 known bug 2 (dequeue side): the head load is relaxed, so a
    /// dequeuer can miss the published next pointer and spuriously
    /// misbehave on a stale head.
    pub fn known_bug_deq() -> Self {
        let mut ords = Ords::defaults(SITES);
        ords.set(DEQ_NEXT_LOAD, Relaxed);
        Self::with_ords(ords)
    }

    /// Enqueue `val`.
    pub fn enq(&self, val: i64) {
        spec::method_begin(self.obj, "enq");
        spec::arg(val);
        let n = mc::alloc(Node::new(val));
        loop {
            let t = self.tail.load(self.ords.get(ENQ_TAIL_LOAD));
            let next = unsafe { (*t).next.load(self.ords.get(ENQ_NEXT_LOAD)) };
            if next.is_null() {
                if unsafe { &(*t).next }
                    .compare_exchange(
                        std::ptr::null_mut(),
                        n,
                        self.ords.get(ENQ_NEXT_CAS),
                        Relaxed,
                    )
                    .is_ok()
                {
                    spec::op_define(); // linearization/ordering point
                    let _ =
                        self.tail
                            .compare_exchange(t, n, self.ords.get(ENQ_TAIL_SWING), Relaxed);
                    break;
                }
            } else {
                // Help swing the lagging tail.
                let _ = self
                    .tail
                    .compare_exchange(t, next, self.ords.get(ENQ_TAIL_HELP), Relaxed);
            }
            mc::spin_loop();
        }
        spec::method_end(());
    }

    /// Dequeue; `-1` = empty.
    pub fn deq(&self) -> i64 {
        spec::method_begin(self.obj, "deq");
        let ret = loop {
            let h = self.head.load(self.ords.get(DEQ_HEAD_LOAD));
            let t = self.tail.load(self.ords.get(DEQ_TAIL_LOAD));
            let next = unsafe { (*h).next.load(self.ords.get(DEQ_NEXT_LOAD)) };
            spec::op_clear_define(); // the last next-load orders the call
            if h == t {
                if next.is_null() {
                    break -1;
                }
                // Mid-enqueue: help swing the tail.
                let _ = self
                    .tail
                    .compare_exchange(t, next, self.ords.get(DEQ_TAIL_HELP), Relaxed);
            } else if !next.is_null() {
                let v = unsafe { (*next).data.read() };
                if self
                    .head
                    .compare_exchange(h, next, self.ords.get(DEQ_HEAD_CAS), Relaxed)
                    .is_ok()
                {
                    break v;
                }
            }
            mc::spin_loop();
        };
        spec::method_end(ret);
        ret
    }
}

impl Default for MsQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// Same non-deterministic FIFO spec as the blocking queue — the paper
/// notes the M&S dequeue "has the same justifying condition… as our simple
/// blocking queue" (§6.2).
pub fn make_spec() -> spec::Spec<VecDeque<i64>> {
    queue_spec("ms-queue")
}

/// Standard unit test: one producer (2 items + dequeue), one pure
/// consumer.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let q = MsQueue::with_ords(ords.clone());
        let q1 = q.clone();
        let t = mc::thread::spawn(move || {
            let _ = q1.deq();
        });
        q.enq(1);
        q.enq(2);
        let _ = q.deq();
        t.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_queue_passes_spec() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn fifo_and_helping_work_single_threaded() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = MsQueue::new();
            q.enq(1);
            q.enq(2);
            q.enq(3);
            mc::mc_assert!(q.deq() == 1);
            mc::mc_assert!(q.deq() == 2);
            mc::mc_assert!(q.deq() == 3);
            mc::mc_assert!(q.deq() == -1);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn known_bug_enq_detected() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = MsQueue::known_bug_enq();
            let q1 = q.clone();
            let t = mc::thread::spawn(move || {
                let _ = q1.deq();
            });
            q.enq(1);
            q.enq(2);
            let _ = q.deq();
            t.join();
        });
        assert!(stats.buggy(), "the known enqueue bug must be detected");
    }

    #[test]
    fn known_bug_deq_detected() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = MsQueue::known_bug_deq();
            let q1 = q.clone();
            let t = mc::thread::spawn(move || {
                let _ = q1.deq();
            });
            q.enq(1);
            q.enq(2);
            let _ = q.deq();
            t.join();
        });
        assert!(stats.buggy(), "the known dequeue bug must be detected");
    }

    #[test]
    fn two_consumers_never_duplicate() {
        // Each enqueued value is dequeued at most once; the FIFO spec
        // enforces it across histories.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = MsQueue::new();
            let q1 = q.clone();
            let t = mc::thread::spawn(move || {
                let a = q1.deq();
                mc::mc_assert!(a == -1 || a == 1 || a == 2);
            });
            q.enq(1);
            q.enq(2);
            let b = q.deq();
            mc::mc_assert!(b == 1 || b == 2);
            t.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }
}
