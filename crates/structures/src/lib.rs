//! # cdsspec-structures
//!
//! The paper's benchmark suite: ten concurrent data structures (Figure 7)
//! plus the §2 blocking queue and the §2.2 atomic register, each
//! instrumented with CDSSpec annotations, specified against an equivalent
//! sequential data structure, and parameterized by an ordering table for
//! fault injection.

#![warn(missing_docs)]

pub mod blocking_queue;
pub mod chase_lev;
pub mod hashtable;
pub mod mcs_lock;
pub mod mpmc;
pub mod ms_queue;
pub mod ords;
pub mod rcu;
pub mod register;
pub mod registry;
pub mod rw_lock;
pub mod seqlock;
pub mod spsc;
pub mod ticket_lock;

pub use ords::{site, Ords, SiteKind, SiteSpec};
