//! The paper's running example (§2, Figures 2 and 6): a simple blocking
//! MS-style queue using release/acquire atomics, with the exact
//! CDSSpec specification of Figure 6.
//!
//! Enqueuers compete to CAS a new node onto `tail->next` and then publish
//! the new tail; dequeuers compete to CAS `head` forward. `deq` returns
//! `-1` when it observes an empty queue — which, under release/acquire,
//! can happen *spuriously* (Figure 3), so the specification is
//! non-deterministic with a justifying condition.

use cdsspec_core as spec;
use cdsspec_mc as mc;
use std::collections::VecDeque;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Injectable ordering sites (Figure 2's six atomic operations).
pub static SITES: &[SiteSpec] = &[
    site("enq.tail_load", Acquire, SiteKind::Load),
    site("enq.next_cas", Release, SiteKind::Rmw),
    site("enq.tail_store", Release, SiteKind::Store),
    site("deq.head_load", Acquire, SiteKind::Load),
    site("deq.next_load", Acquire, SiteKind::Load),
    site("deq.head_cas", Release, SiteKind::Rmw),
];

const ENQ_TAIL_LOAD: usize = 0;
const ENQ_NEXT_CAS: usize = 1;
const ENQ_TAIL_STORE: usize = 2;
const DEQ_HEAD_LOAD: usize = 3;
const DEQ_NEXT_LOAD: usize = 4;
const DEQ_HEAD_CAS: usize = 5;

struct Node {
    data: mc::Data<i64>,
    next: mc::Atomic<*mut Node>,
}

impl Node {
    fn new(v: i64) -> Self {
        Node {
            data: mc::Data::new(v),
            next: mc::Atomic::new(std::ptr::null_mut()),
        }
    }
}

/// The blocking queue of Figure 2. `Copy` handle semantics: the cells live
/// in the model checker.
#[derive(Clone)]
pub struct BlockingQueue {
    obj: u64,
    head: mc::Atomic<*mut Node>,
    tail: mc::Atomic<*mut Node>,
    ords: Ords,
}

impl BlockingQueue {
    /// A queue with the correct (paper) orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A queue with a custom ordering table (fault injection).
    pub fn with_ords(ords: Ords) -> Self {
        let dummy = mc::alloc(Node::new(0));
        BlockingQueue {
            obj: mc::new_object_id(),
            head: mc::Atomic::new(dummy),
            tail: mc::Atomic::new(dummy),
            ords,
        }
    }

    /// Enqueue `val` (Figure 2 lines 4–14; Figure 6 annotations).
    pub fn enq(&self, val: i64) {
        spec::method_begin(self.obj, "enq");
        spec::arg(val);
        let n = mc::alloc(Node::new(val));
        loop {
            let t = self.tail.load(self.ords.get(ENQ_TAIL_LOAD));
            let next = unsafe { &(*t).next };
            if next
                .compare_exchange(
                    std::ptr::null_mut(),
                    n,
                    self.ords.get(ENQ_NEXT_CAS),
                    Relaxed,
                )
                .is_ok()
            {
                spec::op_define(); // @OPDefine: true (Figure 6 line 10)
                self.tail.store(n, self.ords.get(ENQ_TAIL_STORE));
                break;
            }
            mc::spin_loop();
        }
        spec::method_end(());
    }

    /// Dequeue; `-1` = empty (Figure 2 lines 15–23; Figure 6 annotations).
    pub fn deq(&self) -> i64 {
        spec::method_begin(self.obj, "deq");
        let ret = loop {
            let h = self.head.load(self.ords.get(DEQ_HEAD_LOAD));
            let n = unsafe { (*h).next.load(self.ords.get(DEQ_NEXT_LOAD)) };
            spec::op_clear_define(); // @OPClearDefine: true (Figure 6 line 27)
            if n.is_null() {
                break -1;
            }
            if self
                .head
                .compare_exchange(h, n, self.ords.get(DEQ_HEAD_CAS), Relaxed)
                .is_ok()
            {
                break unsafe { (*n).data.read() };
            }
            mc::spin_loop();
        };
        spec::method_end(ret);
        ret
    }
}

impl Default for BlockingQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// The Figure 6 specification: a sequential FIFO (`@DeclareState:
/// IntList*q`), `enq` pushes back, `deq` pops front unless it (or the
/// sequential queue) is empty; `deq` may spuriously return `-1` when some
/// justifying subhistory also yields an empty queue.
pub fn queue_spec(name: &'static str) -> spec::Spec<VecDeque<i64>> {
    spec::Spec::new(name, VecDeque::<i64>::new)
        .method("enq", |m| {
            // @SideEffect: STATE(q)->push_back(val)
            m.side_effect(|s, e| s.push_back(e.arg(0).as_i64()))
        })
        .method("deq", |m| {
            m
                // @SideEffect: S_RET = empty ? -1 : front; pop if both agree
                .side_effect(|s, e| {
                    let s_ret = s.front().copied().unwrap_or(-1);
                    e.set_s_ret(s_ret);
                    if s_ret != -1 && e.ret().as_i64() != -1 {
                        s.pop_front();
                    }
                })
                // @PostCondition: C_RET==-1 ? true : C_RET==S_RET
                .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
                // @JustifyingPostcondition: if C_RET==-1 then S_RET==-1
                .justify_post(|_, e| e.ret().as_i64() != -1 || e.s_ret.as_i64() == -1)
        })
}

/// This benchmark's spec.
pub fn make_spec() -> spec::Spec<VecDeque<i64>> {
    queue_spec("blocking-queue")
}

/// The standard unit test (paper §6.4 scale: ≤ 3 threads, ≤ 2 calls each).
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let q = BlockingQueue::with_ords(ords.clone());
        let q1 = q.clone();
        // Pure consumer: it never enqueues, so nothing but the queue's own
        // synchronization orders it with the producer.
        let t = mc::thread::spawn(move || {
            let _ = q1.deq();
        });
        q.enq(1);
        q.enq(2);
        let _ = q.deq();
        t.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_queue_passes_spec() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn figure3_cross_queue_execution_is_accepted() {
        // The §2 motivating example: the r1=r2=-1 outcome is NOT
        // linearizable but IS non-deterministic linearizable; the spec
        // must accept it.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let x = BlockingQueue::new();
            let y = BlockingQueue::new();
            let (x1, y1) = (x.clone(), y.clone());
            let t = mc::thread::spawn(move || {
                x1.enq(1);
                let _ = y1.deq();
            });
            y.enq(1);
            let _ = x.deq();
            t.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn single_thread_spurious_empty_is_rejected() {
        // In a single thread, deq after enq must not return -1: the
        // justifying subhistory contains the enq (hb via sb), so the
        // justification fails. We simulate the faulty behavior by lying at
        // the spec boundary: a deq that claims -1 while the queue holds an
        // item. The easiest honest way to trigger it is weakening the
        // orderings so a real execution misbehaves — covered by the
        // injection tests — so here we check the *positive* property: a
        // single-threaded enq→deq never returns -1.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = BlockingQueue::new();
            q.enq(7);
            let r = q.deq();
            mc::mc_assert!(r == 7);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_next_cas_is_detected() {
        // Weakening the enq next-CAS to relaxed removes the publish edge:
        // deq can read an unpublished node's data → data race (built-in),
        // or FIFO/justification violations.
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(ENQ_NEXT_CAS));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened queue must be detected");
    }

    #[test]
    fn fifo_order_enforced_by_spec() {
        // Two enqueues then two dequeues in one thread: values must come
        // out 1 then 2; the spec postcondition enforces it against the
        // sequential FIFO.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = BlockingQueue::new();
            q.enq(1);
            q.enq(2);
            mc::mc_assert!(q.deq() == 1);
            mc::mc_assert!(q.deq() == 2);
            mc::mc_assert!(q.deq() == -1);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }
}
