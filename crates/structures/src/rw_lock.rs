//! Port of the Linux kernel reader-writer spinlock (the CDSChecker
//! `linuxrwlocks` benchmark; `Linux RW Lock` in Figure 7).
//!
//! A single counter starts at [`RW_LOCK_BIAS`]. Readers subtract 1,
//! writers subtract the whole bias; a failed attempt *compensates* by
//! adding the amount back and spinning — the transient side effect that
//! drove the paper's §6.1 story: `write_trylock` can fail even when the
//! lock is logically free because a racing trylock transiently holds part
//! of the bias. The specification therefore allows trylock to fail
//! spuriously ([`make_spec`]); the stricter variant that does not
//! ([`make_strict_spec`]) is rejected by the checker, reproducing the
//! paper's iterative-refinement anecdote.

use cdsspec_core as spec;
use cdsspec_mc as mc;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// The write bias (small so modeled values stay readable; the kernel uses
/// `0x01000000`).
pub const RW_LOCK_BIAS: i64 = 256;

/// Injectable sites (the compensating adds and spin loads are relaxed in
/// the original and thus not injectable).
pub static SITES: &[SiteSpec] = &[
    site("read_lock.sub", Acquire, SiteKind::Rmw),
    site("read_unlock.add", Release, SiteKind::Rmw),
    site("write_lock.sub", Acquire, SiteKind::Rmw),
    site("write_unlock.add", Release, SiteKind::Rmw),
    site("read_trylock.sub", Acquire, SiteKind::Rmw),
    site("write_trylock.sub", Acquire, SiteKind::Rmw),
    site("lock.spin_load", Relaxed, SiteKind::Load),
    site("lock.compensate_add", Relaxed, SiteKind::Rmw),
];

const READ_LOCK_SUB: usize = 0;
const READ_UNLOCK_ADD: usize = 1;
const WRITE_LOCK_SUB: usize = 2;
const WRITE_UNLOCK_ADD: usize = 3;
const READ_TRYLOCK_SUB: usize = 4;
const WRITE_TRYLOCK_SUB: usize = 5;
const SPIN_LOAD: usize = 6;
const COMPENSATE_ADD: usize = 7;

/// The reader-writer spinlock.
#[derive(Clone)]
pub struct RwLock {
    obj: u64,
    lock: mc::Atomic<i64>,
    ords: Ords,
}

impl RwLock {
    /// A lock with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A lock with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        RwLock {
            obj: mc::new_object_id(),
            lock: mc::Atomic::new(RW_LOCK_BIAS),
            ords,
        }
    }

    /// Shared (reader) acquire.
    pub fn read_lock(&self) {
        spec::method_begin(self.obj, "read_lock");
        let mut prior = self.lock.fetch_sub(1, self.ords.get(READ_LOCK_SUB));
        spec::op_clear_define();
        while prior <= 0 {
            // Back out and spin until the writer leaves.
            self.lock.fetch_add(1, self.ords.get(COMPENSATE_ADD));
            loop {
                if self.lock.load(self.ords.get(SPIN_LOAD)) > 0 {
                    break;
                }
                mc::spin_loop();
            }
            prior = self.lock.fetch_sub(1, self.ords.get(READ_LOCK_SUB));
            spec::op_clear_define();
            mc::spin_loop();
        }
        spec::method_end(());
    }

    /// Shared (reader) release.
    pub fn read_unlock(&self) {
        spec::method_begin(self.obj, "read_unlock");
        self.lock.fetch_add(1, self.ords.get(READ_UNLOCK_ADD));
        spec::op_define();
        spec::method_end(());
    }

    /// Exclusive (writer) acquire.
    pub fn write_lock(&self) {
        spec::method_begin(self.obj, "write_lock");
        let mut prior = self
            .lock
            .fetch_sub(RW_LOCK_BIAS, self.ords.get(WRITE_LOCK_SUB));
        spec::op_clear_define();
        while prior != RW_LOCK_BIAS {
            self.lock
                .fetch_add(RW_LOCK_BIAS, self.ords.get(COMPENSATE_ADD));
            loop {
                if self.lock.load(self.ords.get(SPIN_LOAD)) == RW_LOCK_BIAS {
                    break;
                }
                mc::spin_loop();
            }
            prior = self
                .lock
                .fetch_sub(RW_LOCK_BIAS, self.ords.get(WRITE_LOCK_SUB));
            spec::op_clear_define();
            mc::spin_loop();
        }
        spec::method_end(());
    }

    /// Exclusive (writer) release.
    pub fn write_unlock(&self) {
        spec::method_begin(self.obj, "write_unlock");
        self.lock
            .fetch_add(RW_LOCK_BIAS, self.ords.get(WRITE_UNLOCK_ADD));
        spec::op_define();
        spec::method_end(());
    }

    /// Try to acquire shared; `true` on success. May fail spuriously when
    /// racing trylocks transiently hold bias.
    pub fn read_trylock(&self) -> bool {
        spec::method_begin(self.obj, "read_trylock");
        let prior = self.lock.fetch_sub(1, self.ords.get(READ_TRYLOCK_SUB));
        spec::op_define();
        let ok = prior > 0;
        if !ok {
            self.lock.fetch_add(1, self.ords.get(COMPENSATE_ADD));
        }
        spec::method_end(ok);
        ok
    }

    /// Try to acquire exclusive; `true` on success. May fail spuriously
    /// (the §6.1 transient-side-effect behavior).
    pub fn write_trylock(&self) -> bool {
        spec::method_begin(self.obj, "write_trylock");
        let prior = self
            .lock
            .fetch_sub(RW_LOCK_BIAS, self.ords.get(WRITE_TRYLOCK_SUB));
        spec::op_define();
        let ok = prior == RW_LOCK_BIAS;
        if !ok {
            self.lock
                .fetch_add(RW_LOCK_BIAS, self.ords.get(COMPENSATE_ADD));
        }
        spec::method_end(ok);
        ok
    }
}

impl Default for RwLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Sequential reader-writer state.
#[derive(Clone, Default)]
pub struct RwState {
    /// Number of readers holding the lock.
    pub readers: i64,
    /// Writer holds the lock.
    pub writer: bool,
}

fn base_spec(name: &'static str, spurious_trylock: bool) -> spec::Spec<RwState> {
    spec::Spec::new(name, RwState::default)
        .method("read_lock", |m| {
            m.pre(|s, _| !s.writer).side_effect(|s, _| s.readers += 1)
        })
        .method("read_unlock", |m| {
            m.pre(|s, _| s.readers > 0)
                .side_effect(|s, _| s.readers -= 1)
        })
        .method("write_lock", |m| {
            m.pre(|s, _| !s.writer && s.readers == 0)
                .side_effect(|s, _| s.writer = true)
        })
        .method("write_unlock", |m| {
            m.pre(|s, _| s.writer).side_effect(|s, _| s.writer = false)
        })
        .method("read_trylock", |m| {
            m.side_effect(move |s, e| {
                e.set_s_ret(!s.writer);
                if e.ret().as_bool() {
                    s.readers += 1;
                }
            })
            .post(move |_, e| {
                if spurious_trylock {
                    !e.ret().as_bool() || e.s_ret.as_bool()
                } else {
                    e.ret().as_bool() == e.s_ret.as_bool()
                }
            })
        })
        .method("write_trylock", |m| {
            m.side_effect(move |s, e| {
                e.set_s_ret(!s.writer && s.readers == 0);
                if e.ret().as_bool() {
                    s.writer = true;
                }
            })
            .post(move |_, e| {
                if spurious_trylock {
                    // Success must be legal; failure is always allowed
                    // (spurious, the §6.1 refinement).
                    !e.ret().as_bool() || e.s_ret.as_bool()
                } else {
                    e.ret().as_bool() == e.s_ret.as_bool()
                }
            })
        })
}

/// The refined specification (trylock may fail spuriously) — the one the
/// paper settles on.
pub fn make_spec() -> spec::Spec<RwState> {
    base_spec("linux-rw-lock", true)
}

/// The initial, too-strict specification (trylock must succeed whenever
/// the sequential lock is free); the checker rejects it on the trylock
/// unit test, reproducing §6.1.
pub fn make_strict_spec() -> spec::Spec<RwState> {
    base_spec("linux-rw-lock-strict", false)
}

/// Standard unit test: a writer races the main thread, which reads under
/// `read_trylock` (falling back to `read_lock`) and then attempts
/// `write_trylock` — every lock entry point is exercised.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let l = RwLock::with_ords(ords.clone());
        let shared = mc::Data::new(0i64);
        let l1 = l.clone();
        let w = mc::thread::spawn(move || {
            l1.write_lock();
            shared.write(shared.read() + 1);
            l1.write_unlock();
        });
        if l.read_trylock() {
            let _ = shared.read();
            l.read_unlock();
        } else {
            l.read_lock();
            let _ = shared.read();
            l.read_unlock();
        }
        if l.write_trylock() {
            shared.write(shared.read() + 10);
            l.write_unlock();
        }
        w.join();
    }
}

/// Explore the unit test under `config` with the (refined) spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_lock_passes_refined_spec() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn strict_spec_rejects_transient_trylock_failure() {
        // §6.1: two racing write_trylocks can both fail even though the
        // lock is free — the strict spec flags it, prompting the
        // refinement.
        let stats = spec::check(mc::Config::default(), make_strict_spec(), || {
            let l = RwLock::new();
            let l1 = l.clone();
            let t = mc::thread::spawn(move || {
                let _ = l1.write_trylock();
            });
            let _ = l.write_trylock();
            t.join();
        });
        assert!(
            stats.buggy(),
            "strict spec must reject the transient failure"
        );
        // …and the refined spec accepts exactly the same test.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let l = RwLock::new();
            let l1 = l.clone();
            let t = mc::thread::spawn(move || {
                let _ = l1.write_trylock();
            });
            let _ = l.write_trylock();
            t.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn readers_share_writer_excludes() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let l = RwLock::new();
            let l1 = l.clone();
            let t = mc::thread::spawn(move || {
                l1.read_lock();
                l1.read_unlock();
            });
            l.read_lock();
            l.read_unlock();
            t.join();
            l.write_lock();
            l.write_unlock();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_write_unlock_detected() {
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(WRITE_UNLOCK_ADD));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened write_unlock must be detected");
    }
}
