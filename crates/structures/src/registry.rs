//! The benchmark registry: one row per Figure 7 benchmark, with uniform
//! entry points for the evaluation harnesses (`figure7`, `figure8`,
//! `overly_strong`, `spec_stats`).

use cdsspec_mc as mc;

use crate::ords::{Ords, SiteSpec};

/// Aggregate specification statistics (the paper's §6.2 numbers).
#[derive(Clone, Copy, Debug)]
pub struct SpecMeta {
    /// API methods with specifications.
    pub methods: usize,
    /// Admissibility rules.
    pub admissibility_rules: usize,
    /// Ordering-point annotation call sites in the implementation source
    /// (verified against the source text by a registry test).
    pub ordering_point_annotations: usize,
}

/// One benchmark of the paper's suite.
pub struct Benchmark {
    /// Display name (Figure 7 spelling).
    pub name: &'static str,
    /// Injectable ordering sites.
    pub sites: &'static [SiteSpec],
    /// Run the standard unit test with spec checking under a config and
    /// ordering table.
    pub check: fn(mc::Config, Ords) -> mc::Stats,
    /// Specification statistics.
    pub meta: SpecMeta,
}

impl Benchmark {
    /// Default (correct) ordering table.
    pub fn default_ords(&self) -> Ords {
        Ords::defaults(self.sites)
    }

    /// Run with correct orderings.
    pub fn check_default(&self, config: mc::Config) -> mc::Stats {
        (self.check)(config, self.default_ords())
    }
}

/// The ten benchmarks, in Figure 7 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Chase-Lev Deque",
            sites: crate::chase_lev::SITES,
            check: crate::chase_lev::check,
            meta: SpecMeta {
                methods: 3,
                admissibility_rules: 3,
                ordering_point_annotations: 4,
            },
        },
        Benchmark {
            name: "SPSC Queue",
            sites: crate::spsc::SITES,
            check: crate::spsc::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 2,
                ordering_point_annotations: 3,
            },
        },
        Benchmark {
            name: "RCU",
            sites: crate::rcu::SITES,
            check: crate::rcu::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 0,
                ordering_point_annotations: 2,
            },
        },
        Benchmark {
            name: "Lockfree Hashtable",
            sites: crate::hashtable::SITES,
            check: crate::hashtable::check,
            meta: SpecMeta {
                methods: 3,
                admissibility_rules: 0,
                ordering_point_annotations: 3,
            },
        },
        Benchmark {
            name: "MCS Lock",
            sites: crate::mcs_lock::SITES,
            check: crate::mcs_lock::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 0,
                ordering_point_annotations: 4,
            },
        },
        Benchmark {
            name: "MPMC Queue",
            sites: crate::mpmc::SITES,
            check: crate::mpmc::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 3,
                ordering_point_annotations: 3,
            },
        },
        Benchmark {
            name: "M&S Queue",
            sites: crate::ms_queue::SITES,
            check: crate::ms_queue::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 0,
                ordering_point_annotations: 2,
            },
        },
        Benchmark {
            name: "Linux RW Lock",
            sites: crate::rw_lock::SITES,
            check: crate::rw_lock::check,
            meta: SpecMeta {
                methods: 6,
                admissibility_rules: 0,
                ordering_point_annotations: 8,
            },
        },
        Benchmark {
            name: "Seqlock",
            sites: crate::seqlock::SITES,
            check: crate::seqlock::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 0,
                ordering_point_annotations: 2,
            },
        },
        Benchmark {
            name: "Ticket Lock",
            sites: crate::ticket_lock::SITES,
            check: crate::ticket_lock::check,
            meta: SpecMeta {
                methods: 2,
                admissibility_rules: 0,
                ordering_point_annotations: 2,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_in_figure7_order() {
        let b = benchmarks();
        assert_eq!(b.len(), 10);
        assert_eq!(b[0].name, "Chase-Lev Deque");
        assert_eq!(b[9].name, "Ticket Lock");
        // Every benchmark has injectable sites.
        for bench in &b {
            assert!(
                !bench.default_ords().injectable_sites().is_empty() || bench.name == "Register",
                "{} has no injectable sites",
                bench.name
            );
        }
    }

    /// The `ordering_point_annotations` numbers are verified against the
    /// implementation sources so the §6.2 statistics can't silently rot.
    #[test]
    fn ordering_point_counts_match_sources() {
        let sources: &[(&str, &str)] = &[
            ("Chase-Lev Deque", include_str!("chase_lev.rs")),
            ("SPSC Queue", include_str!("spsc.rs")),
            ("RCU", include_str!("rcu.rs")),
            ("Lockfree Hashtable", include_str!("hashtable.rs")),
            ("MCS Lock", include_str!("mcs_lock.rs")),
            ("MPMC Queue", include_str!("mpmc.rs")),
            ("M&S Queue", include_str!("ms_queue.rs")),
            ("Linux RW Lock", include_str!("rw_lock.rs")),
            ("Seqlock", include_str!("seqlock.rs")),
            ("Ticket Lock", include_str!("ticket_lock.rs")),
        ];
        let benches = benchmarks();
        for (name, src) in sources {
            let bench = benches.iter().find(|b| &b.name == name).unwrap();
            let count = src
                .lines()
                .filter(|l| !l.trim_start().starts_with("//"))
                .map(|l| {
                    [
                        "spec::op_define()",
                        "spec::op_clear_define()",
                        "spec::potential_op(",
                    ]
                    .iter()
                    .filter(|pat| l.contains(*pat))
                    .count()
                })
                .sum::<usize>();
            assert_eq!(
                count, bench.meta.ordering_point_annotations,
                "{name}: registry says {} ordering-point annotations, source has {count}",
                bench.meta.ordering_point_annotations
            );
        }
    }
}
