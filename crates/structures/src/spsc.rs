//! A single-producer single-consumer ring queue (the paper's
//! `SPSC Queue` row).
//!
//! A fixed ring of plain (race-checked) cells indexed by monotone head and
//! tail counters: the producer publishes with a release store of `tail`,
//! the consumer acquires it, and vice versa for `head` — the textbook
//! shape. Single-producer/single-consumer is exactly an **admissibility
//! condition**: concurrent pushes (or concurrent pops) are outside the
//! design, expressed as `@Admit` rules requiring them to be ordered.

use cdsspec_core as spec;
use cdsspec_mc as mc;
use std::collections::VecDeque;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Ring capacity (small: unit tests are tiny and the counters stay
/// readable in traces).
pub const CAPACITY: usize = 2;

/// Injectable sites.
pub static SITES: &[SiteSpec] = &[
    site("push.head_load", Acquire, SiteKind::Load),
    site("push.tail_store", Release, SiteKind::Store),
    site("pop.tail_load", Acquire, SiteKind::Load),
    site("pop.head_store", Release, SiteKind::Store),
];

const PUSH_HEAD_LOAD: usize = 0;
const PUSH_TAIL_STORE: usize = 1;
const POP_TAIL_LOAD: usize = 2;
const POP_HEAD_STORE: usize = 3;

/// The SPSC ring queue.
#[derive(Clone)]
pub struct SpscQueue {
    obj: u64,
    head: mc::Atomic<u64>,
    tail: mc::Atomic<u64>,
    cells: [mc::Data<i64>; CAPACITY],
    ords: Ords,
}

impl SpscQueue {
    /// A queue with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A queue with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        SpscQueue {
            obj: mc::new_object_id(),
            head: mc::Atomic::new(0),
            tail: mc::Atomic::new(0),
            cells: std::array::from_fn(|_| mc::Data::new(0)),
            ords,
        }
    }

    /// Producer: append `v`; `false` when the ring is full.
    pub fn push(&self, v: i64) -> bool {
        spec::method_begin(self.obj, "push");
        spec::arg(v);
        let tail = self.tail.load(Relaxed); // producer-private
        let head = self.head.load(self.ords.get(PUSH_HEAD_LOAD));
        spec::op_clear_define(); // full-detection point
        let ok = (tail - head) < CAPACITY as u64;
        if ok {
            self.cells[(tail as usize) % CAPACITY].write(v);
            self.tail.store(tail + 1, self.ords.get(PUSH_TAIL_STORE));
            spec::op_clear_define(); // the publication point
        }
        spec::method_end(ok);
        ok
    }

    /// Consumer: remove the oldest element; `-1` when empty.
    pub fn pop(&self) -> i64 {
        spec::method_begin(self.obj, "pop");
        let head = self.head.load(Relaxed); // consumer-private
        let tail = self.tail.load(self.ords.get(POP_TAIL_LOAD));
        spec::op_clear_define(); // empty-detection / acquisition point
        let ret = if tail == head {
            -1
        } else {
            let v = self.cells[(head as usize) % CAPACITY].read();
            self.head.store(head + 1, self.ords.get(POP_HEAD_STORE));
            v
        };
        spec::method_end(ret);
        ret
    }
}

impl Default for SpscQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// Bounded-FIFO specification with SPSC admissibility: pushes must be
/// mutually ordered, pops must be mutually ordered.
pub fn make_spec() -> spec::Spec<VecDeque<i64>> {
    spec::Spec::new("spsc-queue", VecDeque::<i64>::new)
        .method("push", |m| {
            m.side_effect(|s, e| {
                let fits = s.len() < CAPACITY;
                e.set_s_ret(fits);
                if fits && e.ret().as_bool() {
                    s.push_back(e.arg(0).as_i64());
                }
            })
            // A push may spuriously report full (stale head), never the
            // converse.
            .post(|_, e| !e.ret().as_bool() || e.s_ret.as_bool())
            .justify_post(|_, e| e.ret().as_bool() || !e.s_ret.as_bool())
        })
        .method("pop", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.front().copied().unwrap_or(-1);
                e.set_s_ret(s_ret);
                if s_ret != -1 && e.ret().as_i64() != -1 {
                    s.pop_front();
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
            .justify_post(|_, e| e.ret().as_i64() != -1 || e.s_ret.as_i64() == -1)
        })
        .admit("push", "push", |_, _| true)
        .admit("pop", "pop", |_, _| true)
}

/// Standard unit test: the producer pushes three into a ring of two (the
/// third push succeeds only after a pop frees its slot — exercising slot
/// *reuse*, where the head release/acquire pair is load-bearing); the
/// consumer pops twice.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let q = SpscQueue::with_ords(ords.clone());
        let q1 = q.clone();
        let t = mc::thread::spawn(move || {
            let a = q1.pop();
            let b = q1.pop();
            // FIFO sanity inside the consumer.
            if a != -1 && b != -1 {
                mc::mc_assert!(a < b);
            }
        });
        mc::mc_assert!(q.push(1));
        mc::mc_assert!(q.push(2));
        let _ = q.push(3); // may be full; succeeds iff a pop freed slot 0
        t.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_queue_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = SpscQueue::new();
            mc::mc_assert!(q.push(1));
            mc::mc_assert!(q.push(2));
            mc::mc_assert!(!q.push(3), "ring of 2 must reject the third push");
            mc::mc_assert!(q.pop() == 1);
            mc::mc_assert!(q.push(3));
            mc::mc_assert!(q.pop() == 2);
            mc::mc_assert!(q.pop() == 3);
            mc::mc_assert!(q.pop() == -1);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_publication_detected() {
        // Relaxing the tail release store lets the consumer read the cell
        // without acquiring the producer's write → data race.
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(PUSH_TAIL_STORE));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened SPSC publication must be detected");
    }

    #[test]
    fn concurrent_pushes_are_inadmissible() {
        // Violating the SPSC contract (two producers) must be flagged as
        // an admissibility failure, not silently accepted. Two producers
        // also race on the data cell; which bug surfaces *first* depends
        // on exploration order, so collect the full bug set and look for
        // the admissibility record in it.
        let config = mc::Config {
            stop_on_first_bug: false,
            ..mc::Config::default()
        };
        let stats = spec::check(config, make_spec(), || {
            let q = SpscQueue::new();
            let q1 = q.clone();
            let t = mc::thread::spawn(move || {
                let _ = q1.push(1);
            });
            let _ = q.push(2);
            t.join();
        });
        assert!(stats.buggy());
        assert!(
            stats.first_of(mc::BugCategory::Admissibility).is_some(),
            "expected an admissibility bug, got: {}",
            stats.bugs[0].bug
        );
    }
}
