//! A user-space RCU-style counter (the AutoMO-ported `RCU` row of
//! Figure 7).
//!
//! Updaters **read-copy-update**: acquire the current immutable snapshot,
//! copy its (two, always-equal) plain fields, add a delta, and publish a
//! fresh snapshot with a release store. Readers acquire the pointer and
//! read the snapshot without locks.
//!
//! Both the copy step and the reader dereference touch plain fields of a
//! node published by another thread, so *every* weakened ordering surfaces
//! as a data race — which is why all of the paper's RCU injections land in
//! the Built-in column of Figure 8.
//!
//! Updaters publish with a CAS loop (as real RCU updaters serialize via a
//! lock or CAS), so updates are never lost and the equivalent sequential
//! data structure is a plain counter.

use cdsspec_core as spec;
use cdsspec_mc as mc;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Injectable sites (3, matching the paper's 3 RCU injections).
pub static SITES: &[SiteSpec] = &[
    site("update.ptr_load", Acquire, SiteKind::Load),
    site("update.ptr_cas", Release, SiteKind::Rmw),
    site("read.ptr_load", Acquire, SiteKind::Load),
];

const UPDATE_PTR_LOAD: usize = 0;
const UPDATE_PTR_CAS: usize = 1;
const READ_PTR_LOAD: usize = 2;

/// An immutable snapshot: both fields hold the same value (readers and
/// copiers check).
struct Snapshot {
    a: mc::Data<i64>,
    b: mc::Data<i64>,
}

/// The RCU cell. Initial snapshot value 0.
#[derive(Clone)]
pub struct Rcu {
    obj: u64,
    ptr: mc::Atomic<*mut Snapshot>,
    ords: Ords,
}

impl Rcu {
    /// An RCU cell with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// An RCU cell with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        let init = mc::alloc(Snapshot {
            a: mc::Data::new(0),
            b: mc::Data::new(0),
        });
        Rcu {
            obj: mc::new_object_id(),
            ptr: mc::Atomic::new(init),
            ords,
        }
    }

    /// Read the current snapshot. Torn snapshots are hard bugs.
    pub fn read(&self) -> i64 {
        spec::method_begin(self.obj, "read");
        let p = self.ptr.load(self.ords.get(READ_PTR_LOAD));
        spec::op_define();
        let a = unsafe { (*p).a.read() };
        let b = unsafe { (*p).b.read() };
        mc::mc_assert!(a == b, "torn RCU snapshot: {} vs {}", a, b);
        spec::method_end(a);
        a
    }

    /// Read-copy-update: add `delta` to the current snapshot and publish
    /// the result; a CAS loop serializes racing updaters.
    pub fn update(&self, delta: i64) {
        spec::method_begin(self.obj, "update");
        spec::arg(delta);
        loop {
            let old = self.ptr.load(self.ords.get(UPDATE_PTR_LOAD));
            let (a, b) = unsafe { ((*old).a.read(), (*old).b.read()) };
            mc::mc_assert!(a == b, "torn RCU snapshot during copy: {} vs {}", a, b);
            let n = mc::alloc(Snapshot {
                a: mc::Data::new(a + delta),
                b: mc::Data::new(b + delta),
            });
            if self
                .ptr
                .compare_exchange(old, n, self.ords.get(UPDATE_PTR_CAS), Relaxed)
                .is_ok()
            {
                spec::op_clear_define(); // the publication orders updates
                break;
            }
            mc::spin_loop();
        }
        spec::method_end(());
    }
}

impl Default for Rcu {
    fn default() -> Self {
        Self::new()
    }
}

/// Sequential state: the counter value. Reads are justified by their
/// prefix (a lost update is *not* in the prefix of anyone who missed it)
/// or by concurrency.
pub fn make_spec() -> spec::Spec<i64> {
    spec::Spec::new("rcu", || 0i64)
        .method("update", |m| m.side_effect(|s, e| *s += e.arg(0).as_i64()))
        .method("read", |m| {
            m.side_effect(|s, e| e.set_s_ret(*s)).justify_post(|_, e| {
                e.ret() == e.s_ret || e.concurrent.iter().any(|c| c.name == "update")
            })
        })
}

/// Standard unit test: two updaters and one read-copy-update-racing
/// reader on the main thread.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let r = Rcu::with_ords(ords.clone());
        let r1 = r.clone();
        let r2 = r.clone();
        let u1 = mc::thread::spawn(move || r1.update(1));
        let u2 = mc::thread::spawn(move || r2.update(2));
        let _ = r.read();
        u1.join();
        u2.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_rcu_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn sequential_updates_accumulate() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let r = Rcu::new();
            r.update(1);
            r.update(2);
            mc::mc_assert!(r.read() == 3);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn reader_sees_initial_or_published_value() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let r = Rcu::new();
            let r1 = r.clone();
            let u = mc::thread::spawn(move || r1.update(9));
            let v = r.read();
            mc::mc_assert!(v == 0 || v == 9);
            u.join();
            mc::mc_assert!(r.read() == 9, "after join only the new snapshot is visible");
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn racing_updates_are_never_lost() {
        // The CAS publication serializes racing updaters: after both
        // join, the counter always holds the full sum.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let r = Rcu::new();
            let r1 = r.clone();
            let r2 = r.clone();
            let u1 = mc::thread::spawn(move || r1.update(1));
            let u2 = mc::thread::spawn(move || r2.update(2));
            u1.join();
            u2.join();
            mc::mc_assert!(r.read() == 3);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_publication_is_a_builtin_bug() {
        // Relaxing the publication store: the reader's snapshot reads race
        // with the writer's initialization — the built-in detector fires
        // (Figure 8's RCU column shape).
        let mut ords = Ords::defaults(SITES);
        ords.set(UPDATE_PTR_CAS, Relaxed);
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy());
        assert!(
            stats.first_of(mc::BugCategory::BuiltIn).is_some(),
            "expected a built-in detection, got {}",
            stats.bugs[0].bug
        );
    }

    #[test]
    fn weakened_copy_acquire_is_a_builtin_bug() {
        // Relaxing the updater's pointer load: the copy step reads another
        // updater's snapshot fields without synchronization → data race.
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(UPDATE_PTR_LOAD));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy());
        assert!(
            stats.first_of(mc::BugCategory::BuiltIn).is_some(),
            "expected a built-in detection, got {}",
            stats.bugs[0].bug
        );
    }
}
