//! An array-based multi-producer multi-consumer bounded queue with
//! read/write counters and per-cell sequence stamps (the paper's
//! `MPMC Queue` row).
//!
//! Each cell carries a stamp: producers claim a slot by CASing the global
//! enqueue counter when the stamp matches it, write the payload, and
//! release-store the stamp as `pos + 1`; consumers do the symmetric dance
//! expecting `pos + 1` and leave `pos + capacity` behind. The counter
//! CASes are relaxed (the stamps carry the synchronization). As the paper
//! notes (§6.4.2), the scheme technically admits a counter-rollover bug
//! that needs far more threads than a unit test ever spawns.

use cdsspec_core as spec;
use cdsspec_mc as mc;
use std::collections::VecDeque;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Ring capacity.
pub const CAPACITY: usize = 2;

/// Injectable sites.
pub static SITES: &[SiteSpec] = &[
    site("enq.stamp_load", SeqCst, SiteKind::Load),
    site("enq.pos_cas", SeqCst, SiteKind::Rmw),
    site("enq.stamp_store", SeqCst, SiteKind::Store),
    site("deq.stamp_load", SeqCst, SiteKind::Load),
    site("deq.pos_cas", SeqCst, SiteKind::Rmw),
    site("deq.stamp_store", SeqCst, SiteKind::Store),
];

const ENQ_STAMP_LOAD: usize = 0;
const ENQ_POS_CAS: usize = 1;
const ENQ_STAMP_STORE: usize = 2;
const DEQ_STAMP_LOAD: usize = 3;
const DEQ_POS_CAS: usize = 4;
const DEQ_STAMP_STORE: usize = 5;

struct Cell {
    stamp: mc::Atomic<u64>,
    value: mc::Data<i64>,
}

/// The bounded MPMC queue.
#[derive(Clone)]
pub struct MpmcQueue {
    obj: u64,
    cells: std::sync::Arc<Vec<Cell>>,
    enqueue_pos: mc::Atomic<u64>,
    dequeue_pos: mc::Atomic<u64>,
    ords: Ords,
}

impl MpmcQueue {
    /// A queue with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A queue with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        let cells = (0..CAPACITY as u64)
            .map(|i| Cell {
                stamp: mc::Atomic::new(i),
                value: mc::Data::new(0),
            })
            .collect();
        MpmcQueue {
            obj: mc::new_object_id(),
            cells: std::sync::Arc::new(cells),
            enqueue_pos: mc::Atomic::new(0),
            dequeue_pos: mc::Atomic::new(0),
            ords,
        }
    }

    /// Append `v`; `false` when full.
    pub fn enq(&self, v: i64) -> bool {
        spec::method_begin(self.obj, "enq");
        spec::arg(v);
        let ok = loop {
            let pos = self.enqueue_pos.load(Relaxed);
            let cell = &self.cells[(pos as usize) % CAPACITY];
            let stamp = cell.stamp.load(self.ords.get(ENQ_STAMP_LOAD));
            spec::op_clear_define(); // full-detection point
            if stamp == pos {
                if self
                    .enqueue_pos
                    .compare_exchange(pos, pos + 1, self.ords.get(ENQ_POS_CAS), Relaxed)
                    .is_ok()
                {
                    cell.value.write(v);
                    cell.stamp.store(pos + 1, self.ords.get(ENQ_STAMP_STORE));
                    spec::op_clear_define(); // the publication orders the enqueue
                    break true;
                }
            } else if stamp < pos {
                break false; // full: the consumer has not freed the slot
            }
            // stamp > pos: another producer advanced; reload and retry.
            mc::spin_loop();
        };
        spec::method_end(ok);
        ok
    }

    /// Remove the oldest element; `-1` when empty.
    pub fn deq(&self) -> i64 {
        spec::method_begin(self.obj, "deq");
        let ret = loop {
            let pos = self.dequeue_pos.load(Relaxed);
            let cell = &self.cells[(pos as usize) % CAPACITY];
            let stamp = cell.stamp.load(self.ords.get(DEQ_STAMP_LOAD));
            spec::op_clear_define(); // empty-detection / acquisition point
            if stamp == pos + 1 {
                if self
                    .dequeue_pos
                    .compare_exchange(pos, pos + 1, self.ords.get(DEQ_POS_CAS), Relaxed)
                    .is_ok()
                {
                    let v = cell.value.read();
                    cell.stamp
                        .store(pos + CAPACITY as u64, self.ords.get(DEQ_STAMP_STORE));
                    break v;
                }
            } else if stamp <= pos {
                break -1; // empty
            }
            mc::spin_loop();
        };
        spec::method_end(ret);
        ret
    }
}

impl Default for MpmcQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// The MPMC specification. The queue linearizes enqueues at their *claim*
/// but publishes at the *stamp store*, so no single ordering point gives
/// deterministic FIFO — the paper resolves this with **admissibility**:
/// the all-SC implementation totally orders the stamp operations, every
/// pair of calls is required ordered, and weakened orderings surface as
/// admissibility failures (exactly the paper's Figure 8 shape, where all
/// MPMC detections land in the admissibility column). The value assertion
/// is *bag* semantics (every dequeued value was enqueued and never
/// duplicated); empty/full returns are unconditionally non-deterministic —
/// a published element can legitimately hide behind another producer's
/// claimed-but-unpublished cell, which no sequential state can express.
/// The paper accepts the same looseness: its MPMC row detects injections
/// through admissibility alone (§6.4.2: "without proper synchronization
/// \[it\] works correctly when only used in a single thread, but this is by
/// no means what such a data structure is designed for").
pub fn make_spec() -> spec::Spec<VecDeque<i64>> {
    spec::Spec::new("mpmc-queue", VecDeque::<i64>::new)
        .method("enq", |m| {
            m.side_effect(|s, e| {
                let fits = s.len() < CAPACITY;
                e.set_s_ret(fits);
                if fits && e.ret().as_bool() {
                    s.push_back(e.arg(0).as_i64());
                }
            })
            .post(|_, e| !e.ret().as_bool() || e.s_ret.as_bool())
        })
        .method("deq", |m| {
            // Bag semantics: S_RET echoes C_RET when the element was
            // present (and removes it); -2 marks a phantom value.
            m.side_effect(|s, e| {
                let c_ret = e.ret().as_i64();
                if c_ret == -1 {
                    e.set_s_ret(s.front().copied().unwrap_or(-1));
                } else {
                    match s.iter().position(|v| *v == c_ret) {
                        Some(i) => {
                            s.remove(i);
                            e.set_s_ret(c_ret);
                        }
                        None => e.set_s_ret(-2i64),
                    }
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.s_ret == e.ret())
        })
        // §6.1-style admissibility: the all-SC design is meant to totally
        // order operations; unordered pairs indicate lost synchronization.
        .admit("enq", "enq", |_, _| true)
        .admit("deq", "deq", |_, _| true)
        .admit("enq", "deq", |_, _| true)
}

/// Standard unit test: a producer and a consumer race the main thread's
/// own enqueue/dequeue pair (multi-producer *and* multi-consumer).
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let q = MpmcQueue::with_ords(ords.clone());
        let q1 = q.clone();
        let p = mc::thread::spawn(move || {
            let _ = q1.enq(1);
            let _ = q1.deq();
        });
        let _ = q.enq(2);
        let _ = q.deq();
        p.join();
    }
}

/// Corner-case unit test 2: ring wrap-around — the third enqueue can only
/// claim its slot after a dequeue republishes it, exercising the dequeue
/// stamp store's release edge.
pub fn unit_test_wrap(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let q = MpmcQueue::with_ords(ords.clone());
        let q1 = q.clone();
        let c = mc::thread::spawn(move || {
            let _ = q1.deq();
        });
        let _ = q.enq(1);
        let _ = q.enq(2);
        let _ = q.enq(3); // full unless the consumer freed slot 0
        c.join();
    }
}

/// Explore the benchmark's unit-test suite under `config`. Runs as a
/// [`spec::check_suite`] so an interrupted exploration can resume in the
/// right part of the suite.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check_suite(
        config,
        vec![
            (make_spec(), Box::new(unit_test(ords.clone()))),
            (make_spec(), Box::new(unit_test_wrap(ords))),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_queue_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn fifo_and_bounds_single_threaded() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let q = MpmcQueue::new();
            mc::mc_assert!(q.enq(1));
            mc::mc_assert!(q.enq(2));
            mc::mc_assert!(!q.enq(3), "capacity 2 must reject the third enqueue");
            mc::mc_assert!(q.deq() == 1);
            mc::mc_assert!(q.enq(3));
            mc::mc_assert!(q.deq() == 2);
            mc::mc_assert!(q.deq() == 3);
            mc::mc_assert!(q.deq() == -1);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_stamp_store_detected() {
        // The enqueue stamp release-store publishes the payload; relaxed →
        // the consumer races on the cell value.
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(ENQ_STAMP_STORE));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened MPMC publication must be detected");
    }
}
