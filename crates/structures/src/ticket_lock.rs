//! The ticket lock (Reed & Kanodia; paper §6.1).
//!
//! `lock` grabs a ticket with a **relaxed** `fetch_add` — so the ticket
//! counter itself establishes no synchronization — and spins until
//! `now_serving` equals the ticket; the release/acquire pair on
//! `now_serving` is where the data structure actually synchronizes, which
//! is why a specification is still possible (the paper's point in §6.1).

use cdsspec_core as spec;
use cdsspec_mc as mc;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Injectable sites. Only the `now_serving` pair is non-relaxed, matching
/// the paper's 2 injections for this benchmark (Figure 8).
pub static SITES: &[SiteSpec] = &[
    site("lock.ticket_fetch_add", Relaxed, SiteKind::Rmw),
    site("lock.serving_load", Acquire, SiteKind::Load),
    site("unlock.serving_load", Relaxed, SiteKind::Load),
    site("unlock.serving_store", Release, SiteKind::Store),
];

const LOCK_TICKET_FA: usize = 0;
const LOCK_SERVE_LOAD: usize = 1;
const UNLOCK_SERVE_LOAD: usize = 2;
const UNLOCK_SERVE_STORE: usize = 3;

/// The ticket lock.
#[derive(Clone)]
pub struct TicketLock {
    obj: u64,
    next_ticket: mc::Atomic<u64>,
    now_serving: mc::Atomic<u64>,
    ords: Ords,
}

/// Sequential lock state shared by the lock benchmarks: acquisition depth.
#[derive(Clone, Default)]
pub struct LockState {
    /// 0 = free, 1 = held.
    pub depth: i64,
}

impl TicketLock {
    /// A lock with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A lock with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        TicketLock {
            obj: mc::new_object_id(),
            next_ticket: mc::Atomic::new(0),
            now_serving: mc::Atomic::new(0),
            ords,
        }
    }

    /// Acquire.
    pub fn lock(&self) {
        spec::method_begin(self.obj, "lock");
        let ticket = self.next_ticket.fetch_add(1, self.ords.get(LOCK_TICKET_FA));
        loop {
            let now = self.now_serving.load(self.ords.get(LOCK_SERVE_LOAD));
            if now == ticket {
                // The acquiring load is the ordering point.
                spec::op_clear_define();
                break;
            }
            mc::spin_loop();
        }
        spec::method_end(());
    }

    /// Release.
    pub fn unlock(&self) {
        spec::method_begin(self.obj, "unlock");
        let now = self.now_serving.load(self.ords.get(UNLOCK_SERVE_LOAD));
        self.now_serving
            .store(now + 1, self.ords.get(UNLOCK_SERVE_STORE));
        spec::op_define();
        spec::method_end(());
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Mutual-exclusion specification reused by the lock benchmarks: `lock`
/// requires the lock free, `unlock` requires it held.
pub fn lock_spec(name: &'static str) -> spec::Spec<LockState> {
    spec::Spec::new(name, LockState::default)
        .method("lock", |m| {
            m.pre(|s, _| s.depth == 0).side_effect(|s, _| s.depth += 1)
        })
        .method("unlock", |m| {
            m.pre(|s, _| s.depth == 1).side_effect(|s, _| s.depth -= 1)
        })
}

/// This benchmark's spec.
pub fn make_spec() -> spec::Spec<LockState> {
    lock_spec("ticket-lock")
}

/// Standard unit test: two threads contend for one critical section each,
/// incrementing a plain (race-checked) counter.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let l = TicketLock::with_ords(ords.clone());
        let counter = mc::Data::new(0i64);
        let l1 = l.clone();
        let t = mc::thread::spawn(move || {
            l1.lock();
            counter.write(counter.read() + 1);
            l1.unlock();
        });
        l.lock();
        counter.write(counter.read() + 1);
        l.unlock();
        t.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_lock_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn weakened_release_store_detected() {
        // unlock's release store is the handoff edge: relaxed → the next
        // holder's critical section races with the previous one.
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(UNLOCK_SERVE_STORE));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened unlock must be detected");
    }

    #[test]
    fn weakened_acquire_load_detected() {
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(LOCK_SERVE_LOAD));
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened lock acquire must be detected");
    }

    #[test]
    fn three_thread_fairness_shape() {
        // Three lock/unlock pairs interleave without violations.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let l = TicketLock::new();
            let l1 = l.clone();
            let l2 = l.clone();
            let a = mc::thread::spawn(move || {
                l1.lock();
                l1.unlock();
            });
            let b = mc::thread::spawn(move || {
                l2.lock();
                l2.unlock();
            });
            l.lock();
            l.unlock();
            a.join();
            b.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }
}
