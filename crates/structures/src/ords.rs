//! Ordering tables: every atomic operation in every benchmark takes its
//! memory ordering from a per-instance table instead of a literal, so the
//! fault-injection campaign (paper §6.4.2) can weaken exactly one site per
//! trial and the §6.4.3 harness can search for overly strong parameters.

use cdsspec_c11::MemOrd;

/// The operation kind at an injection site — selects the weakening ladder
/// (paper §6.4.2: `seq_cst → acq_rel`, `acq_rel → release/acquire`,
/// `acquire/release → relaxed`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// A read-modify-write (CAS, swap, fetch_*).
    Rmw,
    /// A fence.
    Fence,
}

/// One injectable ordering site of a benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SiteSpec {
    /// Human-readable name (`"enq.next_cas"`).
    pub name: &'static str,
    /// Default (correct) ordering.
    pub default: MemOrd,
    /// Operation kind.
    pub kind: SiteKind,
}

/// Convenience constructor used by the benchmark site tables.
pub const fn site(name: &'static str, default: MemOrd, kind: SiteKind) -> SiteSpec {
    SiteSpec {
        name,
        default,
        kind,
    }
}

/// A per-instance ordering table.
#[derive(Clone, Debug)]
pub struct Ords {
    sites: &'static [SiteSpec],
    current: Vec<MemOrd>,
}

impl Ords {
    /// The default (correct) table for a benchmark's sites.
    pub fn defaults(sites: &'static [SiteSpec]) -> Self {
        Ords {
            sites,
            current: sites.iter().map(|s| s.default).collect(),
        }
    }

    /// The ordering at `site` (index into the benchmark's site table).
    #[inline]
    pub fn get(&self, site: usize) -> MemOrd {
        self.current[site]
    }

    /// Site metadata.
    pub fn sites(&self) -> &'static [SiteSpec] {
        self.sites
    }

    /// Weaken `site` one step down its ladder; `false` when already at
    /// `Relaxed` (nothing injectable).
    pub fn weaken(&mut self, site: usize) -> bool {
        let spec = self.sites[site];
        let next = match spec.kind {
            SiteKind::Load => self.current[site].weaken_load(),
            SiteKind::Store => self.current[site].weaken_store(),
            SiteKind::Rmw | SiteKind::Fence => self.current[site].weaken_rmw(),
        };
        match next {
            Some(o) => {
                self.current[site] = o;
                true
            }
            None => false,
        }
    }

    /// Replace the ordering at `site` outright (used by the overly-strong
    /// parameter search, which drops straight to `Relaxed`).
    pub fn set(&mut self, site: usize, ord: MemOrd) {
        self.current[site] = ord;
    }

    /// Indices of sites that are injectable (not already `Relaxed`).
    pub fn injectable_sites(&self) -> Vec<usize> {
        (0..self.current.len())
            .filter(|&i| self.current[i] != MemOrd::Relaxed)
            .collect()
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True when the table has no sites.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MemOrd::*;

    static SITES: &[SiteSpec] = &[
        site("a.load", Acquire, SiteKind::Load),
        site("b.store", Release, SiteKind::Store),
        site("c.cas", SeqCst, SiteKind::Rmw),
        site("d.relaxed", Relaxed, SiteKind::Load),
    ];

    #[test]
    fn defaults_match_table() {
        let o = Ords::defaults(SITES);
        assert_eq!(o.get(0), Acquire);
        assert_eq!(o.get(2), SeqCst);
        assert_eq!(o.len(), 4);
        assert!(!o.is_empty());
    }

    #[test]
    fn weaken_follows_ladders() {
        let mut o = Ords::defaults(SITES);
        assert!(o.weaken(0));
        assert_eq!(o.get(0), Relaxed);
        assert!(!o.weaken(0), "already relaxed");
        assert!(o.weaken(2));
        assert_eq!(o.get(2), AcqRel);
        assert!(o.weaken(2));
        assert_eq!(o.get(2), Release);
    }

    #[test]
    fn injectable_sites_skip_relaxed() {
        let o = Ords::defaults(SITES);
        assert_eq!(o.injectable_sites(), vec![0, 1, 2]);
    }

    #[test]
    fn set_overrides() {
        let mut o = Ords::defaults(SITES);
        o.set(2, Relaxed);
        assert_eq!(o.get(2), Relaxed);
    }
}
