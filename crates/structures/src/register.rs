//! The §2.2 worked example: a C/C++11 atomic register accessed with
//! relaxed operations.
//!
//! The C11 model allows a `read` to return (1) the *most recent* write in
//! one of its justifying prefixes, or (2) any *concurrent* write — but not
//! a write it can no longer observe (coherence) and not an hb-overwritten
//! value. The specification captures exactly that with a justifying
//! postcondition over `S_RET` and `CONCURRENT` — the paper's showcase for
//! constraining non-determinism without forbidding it.

use cdsspec_core as spec;
use cdsspec_mc as mc;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Injectable sites (both relaxed already, so nothing to weaken — the
/// register is a semantics showcase, not an injection target).
pub static SITES: &[SiteSpec] = &[
    site("write.store", Relaxed, SiteKind::Store),
    site("read.load", Relaxed, SiteKind::Load),
];

const WRITE_STORE: usize = 0;
const READ_LOAD: usize = 1;

/// A relaxed atomic register. Initial value 0.
#[derive(Clone)]
pub struct Register {
    obj: u64,
    cell: mc::Atomic<i64>,
    ords: Ords,
}

impl Register {
    /// A register with the default (relaxed) orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A register with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        Register {
            obj: mc::new_object_id(),
            cell: mc::Atomic::new(0),
            ords,
        }
    }

    /// Relaxed write.
    pub fn write(&self, v: i64) {
        spec::method_begin(self.obj, "write");
        spec::arg(v);
        self.cell.store(v, self.ords.get(WRITE_STORE));
        spec::op_define();
        spec::method_end(());
    }

    /// Relaxed read.
    pub fn read(&self) -> i64 {
        spec::method_begin(self.obj, "read");
        let v = self.cell.load(self.ords.get(READ_LOAD));
        spec::op_define();
        spec::method_end(v);
        v
    }
}

impl Default for Register {
    fn default() -> Self {
        Self::new()
    }
}

/// Sequential state: the last written value (`0` initially).
pub fn make_spec() -> spec::Spec<i64> {
    spec::Spec::new("register", || 0i64)
        .method("write", |m| m.side_effect(|s, e| *s = e.arg(0).as_i64()))
        .method("read", |m| {
            m.side_effect(|s, e| e.set_s_ret(*s))
                // §2.2: a read returns the most recent write of some
                // justifying prefix, or the value of a concurrent write.
                .justify_post(|_, e| {
                    e.ret() == e.s_ret
                        || e.concurrent
                            .iter()
                            .any(|c| c.name == "write" && c.arg(0) == e.ret())
                })
        })
}

/// Unit test: one writer racing one reader-writer, plus a post-join read.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let r = Register::with_ords(ords.clone());
        let r1 = r.clone();
        let t = mc::thread::spawn(move || {
            r1.write(1);
            let _ = r1.read();
        });
        r.write(2);
        let _ = r.read();
        t.join();
        // After the join, the reader has a justifying prefix containing
        // both writes; stale values are no longer justified unless written
        // by... nothing is concurrent now, so the read must see the most
        // recent write of SOME prefix — 1 or 2, not 0.
        let _ = r.read();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_register_is_nondeterministic_linearizable() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(
            stats.feasible > 1,
            "relaxed register must expose several behaviors"
        );
    }

    #[test]
    fn single_thread_read_sees_own_write() {
        // §2.2: "the non-deterministic behavior that a read returns the
        // value written by a write that it happens-before is disallowed" —
        // in one thread, read-after-write must return the written value;
        // coherence enforces it and the spec must agree.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let r = Register::new();
            r.write(5);
            mc::mc_assert!(r.read() == 5);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn stale_read_is_justified_only_by_concurrency() {
        // Writer thread writes 1; main reads. The read may see 0 (initial)
        // only while the write is concurrent — all those executions are
        // justified. After a join, a read of 0 would be a violation; the
        // model checker never produces it (coherence), and the spec agrees
        // (no bug reported).
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let r = Register::new();
            let r1 = r.clone();
            let t = mc::thread::spawn(move || r1.write(1));
            let _ = r.read();
            t.join();
            mc::mc_assert!(r.read() == 1);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }
}
