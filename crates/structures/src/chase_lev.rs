//! The Chase-Lev work-stealing deque, following the C11 adaptation of
//! Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13) — the paper's
//! `Chase-Lev Deque` row.
//!
//! The owner pushes/takes at `bottom`; thieves steal at `top`. The C11
//! version relies on:
//! * a release fence between the cell store and the `bottom` publication
//!   (push → steal synchronization),
//! * `seq_cst` fences ordering the owner's `bottom` decrement against the
//!   thief's `top`/`bottom` reads (take ↔ steal races for the last item),
//! * `seq_cst` CASes on `top`.
//!
//! [`ChaseLev::known_bug`] reproduces the bug CDSChecker found in the
//! published implementation (paper §6.4.1): with the resize publication
//! weakened, a concurrent steal can read an **uninitialized** slot of the
//! freshly grown buffer; with `init_resize` the same weakening surfaces as
//! a wrong-value specification violation instead (the paper's methodology
//! for re-detecting the bug through the spec alone).

use cdsspec_core as spec;
use cdsspec_mc as mc;
use std::collections::VecDeque;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Initial buffer capacity (2, so a third push exercises resize).
pub const INITIAL_SIZE: usize = 2;

/// `take`/`steal` result for an empty (or lost-race) deque.
pub const EMPTY: i64 = -1;

/// Injectable sites.
pub static SITES: &[SiteSpec] = &[
    site("push.top_load", Relaxed, SiteKind::Load),
    site("push.publish_fence", Release, SiteKind::Fence),
    site("resize.array_store", Release, SiteKind::Store),
    site("take.fence", SeqCst, SiteKind::Fence),
    site("take.top_cas", SeqCst, SiteKind::Rmw),
    site("steal.top_load", Acquire, SiteKind::Load),
    site("steal.fence", SeqCst, SiteKind::Fence),
    site("steal.bottom_load", Acquire, SiteKind::Load),
    site("steal.array_load", Acquire, SiteKind::Load),
    site("steal.top_cas", SeqCst, SiteKind::Rmw),
];

const PUSH_TOP_LOAD: usize = 0;
const PUSH_PUBLISH_FENCE: usize = 1;
const RESIZE_ARRAY_STORE: usize = 2;
const TAKE_FENCE: usize = 3;
const TAKE_TOP_CAS: usize = 4;
const STEAL_TOP_LOAD: usize = 5;
const STEAL_FENCE: usize = 6;
const STEAL_BOTTOM_LOAD: usize = 7;
const STEAL_ARRAY_LOAD: usize = 8;
/// Public so the §6.4.3 harness can name the site it weakens.
pub const STEAL_TOP_CAS: usize = 9;

struct Buffer {
    size: usize,
    cells: Vec<mc::Atomic<i64>>,
}

impl Buffer {
    fn new_init(size: usize) -> Self {
        Buffer {
            size,
            cells: (0..size).map(|_| mc::Atomic::new(0)).collect(),
        }
    }

    fn new_uninit(size: usize) -> Self {
        Buffer {
            size,
            cells: (0..size).map(|_| mc::Atomic::uninit()).collect(),
        }
    }

    fn store(&self, i: i64, v: i64) {
        self.cells[(i as usize) % self.size].store(v, Relaxed);
    }

    fn load(&self, i: i64) -> i64 {
        self.cells[(i as usize) % self.size].load(Relaxed)
    }
}

/// The work-stealing deque. `push`/`take` are owner-only (an
/// admissibility condition); `steal` may run from any thread.
#[derive(Clone)]
pub struct ChaseLev {
    obj: u64,
    top: mc::Atomic<i64>,
    bottom: mc::Atomic<i64>,
    array: mc::Atomic<*mut Buffer>,
    ords: Ords,
    /// Initialize resized buffers (turns the uninitialized-load bug into a
    /// wrong-value spec violation, as in §6.4.1's second experiment).
    init_resize: bool,
}

impl ChaseLev {
    /// A deque with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A deque with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        Self::build(ords, false)
    }

    /// The §6.4.1 known bug: the resize publication is relaxed, so a
    /// racing steal can observe the new buffer without its contents.
    pub fn known_bug() -> Self {
        let mut ords = Ords::defaults(SITES);
        ords.set(RESIZE_ARRAY_STORE, Relaxed);
        Self::build(ords, false)
    }

    /// The known bug with initialized resize buffers: CDSChecker's
    /// built-in uninitialized-load check stays silent and the *spec*
    /// catches the wrong stolen value instead.
    pub fn known_bug_initialized() -> Self {
        let mut ords = Ords::defaults(SITES);
        ords.set(RESIZE_ARRAY_STORE, Relaxed);
        Self::build(ords, true)
    }

    fn build(ords: Ords, init_resize: bool) -> Self {
        let buf = mc::alloc(Buffer::new_init(INITIAL_SIZE));
        ChaseLev {
            obj: mc::new_object_id(),
            top: mc::Atomic::new(0),
            bottom: mc::Atomic::new(0),
            array: mc::Atomic::new(buf),
            ords,
            init_resize,
        }
    }

    /// Owner: push `v` at the bottom, growing the buffer when full.
    pub fn push(&self, v: i64) {
        spec::method_begin(self.obj, "push");
        spec::arg(v);
        let b = self.bottom.load(Relaxed);
        let t = self.top.load(self.ords.get(PUSH_TOP_LOAD));
        let mut a = self.array.load(Relaxed);
        if b - t >= unsafe { (*a).size } as i64 {
            a = self.resize(a, t, b);
        }
        unsafe { (*a).store(b, v) };
        spec::op_define(); // §6.1: the array store is push's ordering point
        mc::fence(self.ords.get(PUSH_PUBLISH_FENCE));
        self.bottom.store(b + 1, Relaxed);
        spec::method_end(());
    }

    fn resize(&self, old: *mut Buffer, t: i64, b: i64) -> *mut Buffer {
        let new_size = unsafe { (*old).size } * 2;
        let new = mc::alloc(if self.init_resize {
            Buffer::new_init(new_size)
        } else {
            Buffer::new_uninit(new_size)
        });
        let mut i = t;
        while i < b {
            unsafe { (*new).store(i, (*old).load(i)) };
            i += 1;
        }
        self.array.store(new, self.ords.get(RESIZE_ARRAY_STORE));
        new
    }

    /// Owner: pop from the bottom; [`EMPTY`] when empty or the race for
    /// the last element is lost.
    pub fn take(&self) -> i64 {
        spec::method_begin(self.obj, "take");
        let b = self.bottom.load(Relaxed) - 1;
        let a = self.array.load(Relaxed);
        self.bottom.store(b, Relaxed);
        mc::fence(self.ords.get(TAKE_FENCE));
        let t = self.top.load(Relaxed);
        let ret = if t <= b {
            let mut v = unsafe { (*a).load(b) };
            if t == b {
                // The last element: race the thieves on top.
                if self
                    .top
                    .compare_exchange(t, t + 1, self.ords.get(TAKE_TOP_CAS), Relaxed)
                    .is_err()
                {
                    v = EMPTY;
                }
                self.bottom.store(b + 1, Relaxed);
            }
            v
        } else {
            self.bottom.store(b + 1, Relaxed);
            EMPTY
        };
        // §6.1: "the last operation in the take method" is its ordering
        // point (take/push are same-thread, so sb orders them anyway).
        spec::op_clear_define();
        spec::method_end(ret);
        ret
    }

    /// Thief: pop from the top; [`EMPTY`] when empty or the CAS loses.
    pub fn steal(&self) -> i64 {
        spec::method_begin(self.obj, "steal");
        let t = self.top.load(self.ords.get(STEAL_TOP_LOAD));
        mc::fence(self.ords.get(STEAL_FENCE));
        let b = self.bottom.load(self.ords.get(STEAL_BOTTOM_LOAD));
        spec::op_clear_define(); // empty observation point
        let mut ret = EMPTY;
        if t < b {
            let a = self.array.load(self.ords.get(STEAL_ARRAY_LOAD));
            let v = unsafe { (*a).load(t) };
            spec::op_clear_define(); // §6.1: the array load orders steals
            if self
                .top
                .compare_exchange(t, t + 1, self.ords.get(STEAL_TOP_CAS), Relaxed)
                .is_ok()
            {
                ret = v;
            }
        }
        spec::method_end(ret);
        ret
    }
}

impl Default for ChaseLev {
    fn default() -> Self {
        Self::new()
    }
}

/// Specification: an ordered list; `push` appends at the back, `take`
/// pops the back, `steal` pops the front; both pops may spuriously return
/// empty, justified per §6.1 (a failed take with a non-empty prefix list
/// needs concurrent steals covering the remaining elements).
pub fn make_spec() -> spec::Spec<VecDeque<i64>> {
    spec::Spec::new("chase-lev", VecDeque::<i64>::new)
        .method("push", |m| {
            m.side_effect(|s, e| s.push_back(e.arg(0).as_i64()))
        })
        .method("take", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.back().copied().unwrap_or(EMPTY);
                e.set_s_ret(s_ret);
                if s_ret != EMPTY && e.ret().as_i64() != EMPTY {
                    s.pop_back();
                }
            })
            .post(|_, e| e.ret().as_i64() == EMPTY || e.ret() == e.s_ret)
            .justify_post(|s, e| {
                e.ret().as_i64() != EMPTY
                    || s.is_empty()
                    || s.iter().all(|v| {
                        e.concurrent
                            .iter()
                            .any(|c| c.name == "steal" && c.ret.as_i64() == *v)
                    })
            })
        })
        .method("steal", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.front().copied().unwrap_or(EMPTY);
                e.set_s_ret(s_ret);
                if s_ret != EMPTY && e.ret().as_i64() != EMPTY {
                    s.pop_front();
                }
            })
            .post(|_, e| e.ret().as_i64() == EMPTY || e.ret() == e.s_ret)
            .justify_post(|s, e| {
                e.ret().as_i64() != EMPTY
                    || s.is_empty()
                    || s.iter().all(|v| {
                        e.concurrent.iter().any(|c| {
                            (c.name == "steal" || c.name == "take") && c.ret.as_i64() == *v
                        })
                    })
            })
        })
        // Owner-only contract for push/take (§6.1's admissibility).
        .admit("push", "push", |_, _| true)
        .admit("take", "take", |_, _| true)
        .admit("push", "take", |_, _| true)
}

/// Standard unit test: the owner pushes 3 (forcing a resize past the
/// initial capacity of 2) and takes one; a thief steals two concurrently —
/// the §6.4.1 bug shape (steal racing a resizing push) plus the
/// take-vs-steal race for the last element, at the paper's unit-test
/// scale (the paper's own test: "a main thread that pushes 3 items and
/// takes 2, and a worker thread that tries to steal two items").
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    unit_test_opts(ords, false)
}

/// As [`unit_test`] with the `init_resize` switch exposed.
pub fn unit_test_opts(ords: Ords, init_resize: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let d = ChaseLev::build(ords.clone(), init_resize);
        let d1 = d.clone();
        let thief = mc::thread::spawn(move || {
            let _ = d1.steal();
            let _ = d1.steal();
        });
        d.push(1);
        d.push(2);
        d.push(3); // resize: initial capacity is 2
        let _ = d.take(); // can race the thieves for the last element
        thief.join();
    }
}

/// Corner-case unit test 2 (paper §6.4: "racing for the last element"):
/// two pushes, two steals racing one take. This is the scenario the
/// `seq_cst` fences protect — with a weakened fence the owner can read a
/// stale `top`, conclude it is not racing for the last element, skip its
/// CAS, and *duplicate* an item a thief also steals.
pub fn unit_test_last_element(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let d = ChaseLev::with_ords(ords.clone());
        let d1 = d.clone();
        let thief = mc::thread::spawn(move || {
            let _ = d1.steal();
            let _ = d1.steal();
        });
        d.push(1);
        d.push(2);
        let got = d.take();
        mc::mc_assert!(got == EMPTY || got == 1 || got == 2);
        thief.join();
    }
}

/// Explore the benchmark's unit-test suite (the paper's corner cases:
/// resize, and the race for the last element) under `config`. Runs as a
/// [`spec::check_suite`] so an interrupted exploration can resume in the
/// right part of the suite.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check_suite(
        config,
        vec![
            (make_spec(), Box::new(unit_test(ords.clone()))),
            (make_spec(), Box::new(unit_test_last_element(ords))),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> mc::Config {
        mc::Config::default()
    }

    #[test]
    fn owner_only_lifo_semantics() {
        let stats = spec::check(quick(), make_spec(), || {
            let d = ChaseLev::new();
            d.push(1);
            d.push(2);
            mc::mc_assert!(d.take() == 2);
            mc::mc_assert!(d.take() == 1);
            mc::mc_assert!(d.take() == EMPTY);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn resize_preserves_contents() {
        let stats = spec::check(quick(), make_spec(), || {
            let d = ChaseLev::new();
            d.push(1);
            d.push(2);
            d.push(3); // grows 2 → 4
            mc::mc_assert!(d.take() == 3);
            mc::mc_assert!(d.take() == 2);
            mc::mc_assert!(d.take() == 1);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn steal_races_are_clean() {
        let stats = spec::check(quick(), make_spec(), || {
            let d = ChaseLev::new();
            let d1 = d.clone();
            let thief = mc::thread::spawn(move || {
                let _ = d1.steal();
            });
            d.push(1);
            let _ = d.take();
            thief.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn known_bug_uninitialized_load() {
        let stats = spec::check(quick(), make_spec(), || {
            let d = ChaseLev::known_bug();
            let d1 = d.clone();
            let thief = mc::thread::spawn(move || {
                let _ = d1.steal();
                let _ = d1.steal();
            });
            d.push(1);
            d.push(2);
            d.push(3);
            let _ = d.take();
            let _ = d.take();
            thief.join();
        });
        assert!(stats.buggy(), "the resize bug must be detected");
    }

    #[test]
    fn known_bug_caught_by_spec_when_initialized() {
        // §6.4.1: initializing the resized buffer silences the built-in
        // uninit check; the specification still catches the wrong value.
        let stats = spec::check(quick(), make_spec(), || {
            let d = ChaseLev::known_bug_initialized();
            let d1 = d.clone();
            let thief = mc::thread::spawn(move || {
                let _ = d1.steal();
                let _ = d1.steal();
            });
            d.push(1);
            d.push(2);
            d.push(3);
            let _ = d.take();
            let _ = d.take();
            thief.join();
        });
        assert!(stats.buggy(), "the spec must catch the stale steal");
        assert!(
            stats.first_of(mc::BugCategory::Assertion).is_some()
                || stats.first_of(mc::BugCategory::Admissibility).is_some(),
            "expected a spec-level detection, got {}",
            stats.bugs[0].bug
        );
    }
}
