//! The MCS queue lock (Mellor-Crummey & Scott) — the paper's
//! "contention-free lock" benchmark (`MCS Lock` in Figure 7).
//!
//! Each acquirer enqueues its own node by swapping the tail; a waiter
//! spins on its private `locked` flag, so handoff is point-to-point (no
//! global spinning). The swap carries `acq_rel` (it both acquires the
//! previous holder's release and publishes the node), the next-pointer
//! publication is `release`/`acquire`, and the handoff store is `release`.

use cdsspec_core as spec;
use cdsspec_mc as mc;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};
use crate::ticket_lock::{lock_spec, LockState};

/// Injectable sites. The `next` pointer is a pure mailbox (its value, not
/// its ordering, matters: synchronization flows through the `locked` flag
/// and the tail), so its accesses are relaxed — the AutoMO-minimal
/// assignment, leaving four load-bearing parameters.
pub static SITES: &[SiteSpec] = &[
    site("lock.tail_swap", AcqRel, SiteKind::Rmw),
    site("lock.prev_next_store", Relaxed, SiteKind::Store),
    site("lock.locked_load", Acquire, SiteKind::Load),
    site("unlock.next_load", Relaxed, SiteKind::Load),
    site("unlock.tail_cas", Release, SiteKind::Rmw),
    site("unlock.locked_store", Release, SiteKind::Store),
];

const LOCK_TAIL_SWAP: usize = 0;
const LOCK_PREV_NEXT_STORE: usize = 1;
const LOCK_LOCKED_LOAD: usize = 2;
const UNLOCK_NEXT_LOAD: usize = 3;
const UNLOCK_TAIL_CAS: usize = 4;
const UNLOCK_LOCKED_STORE: usize = 5;

/// A per-acquisition queue node.
pub struct QNode {
    locked: mc::Atomic<i64>,
    next: mc::Atomic<*mut QNode>,
}

/// Token returned by [`McsLock::lock`], consumed by [`McsLock::unlock`]
/// (the C API threads the queue node through a parameter the same way).
pub struct McsGuard {
    node: *mut QNode,
}

unsafe impl Send for McsGuard {}

/// The MCS lock.
#[derive(Clone)]
pub struct McsLock {
    obj: u64,
    tail: mc::Atomic<*mut QNode>,
    ords: Ords,
}

impl McsLock {
    /// A lock with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A lock with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        McsLock {
            obj: mc::new_object_id(),
            tail: mc::Atomic::new(std::ptr::null_mut()),
            ords,
        }
    }

    /// Acquire; returns the guard for the matching unlock.
    pub fn lock(&self) -> McsGuard {
        spec::method_begin(self.obj, "lock");
        let n = mc::alloc(QNode {
            locked: mc::Atomic::new(1),
            next: mc::Atomic::new(std::ptr::null_mut()),
        });
        let prev = self.tail.swap(n, self.ords.get(LOCK_TAIL_SWAP));
        spec::op_define(); // uncontended: the swap is the ordering point
        if !prev.is_null() {
            unsafe { (*prev).next.store(n, self.ords.get(LOCK_PREV_NEXT_STORE)) };
            loop {
                let locked = unsafe { (*n).locked.load(self.ords.get(LOCK_LOCKED_LOAD)) };
                if locked == 0 {
                    // Contended: the handoff acquisition REPLACES the swap
                    // as the single ordering point — keeping both would
                    // put lock and the predecessor's unlock on a cycle.
                    spec::op_clear_define();
                    break;
                }
                mc::spin_loop();
            }
        }
        spec::method_end(());
        McsGuard { node: n }
    }

    /// Release the guard returned by [`McsLock::lock`].
    pub fn unlock(&self, g: McsGuard) {
        let n = g.node;
        spec::method_begin(self.obj, "unlock");
        let mut next = unsafe { (*n).next.load(self.ords.get(UNLOCK_NEXT_LOAD)) };
        if next.is_null() {
            if self
                .tail
                .compare_exchange(
                    n,
                    std::ptr::null_mut(),
                    self.ords.get(UNLOCK_TAIL_CAS),
                    Relaxed,
                )
                .is_ok()
            {
                // No successor: the tail CAS is the release point.
                spec::op_define();
                spec::method_end(());
                return;
            }
            // A successor is arriving; wait for its next-pointer.
            loop {
                next = unsafe { (*n).next.load(self.ords.get(UNLOCK_NEXT_LOAD)) };
                if !next.is_null() {
                    break;
                }
                mc::spin_loop();
            }
        }
        unsafe { (*next).locked.store(0, self.ords.get(UNLOCK_LOCKED_STORE)) };
        spec::op_define(); // the handoff release
        spec::method_end(());
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Mutual-exclusion spec (shared with the ticket lock).
pub fn make_spec() -> spec::Spec<LockState> {
    lock_spec("mcs-lock")
}

/// Standard unit test: two contenders incrementing a race-checked counter.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let l = McsLock::with_ords(ords.clone());
        let counter = mc::Data::new(0i64);
        let l1 = l.clone();
        let t = mc::thread::spawn(move || {
            let g = l1.lock();
            counter.write(counter.read() + 1);
            l1.unlock(g);
        });
        let g = l.lock();
        counter.write(counter.read() + 1);
        l.unlock(g);
        t.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_lock_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn sequential_reacquisition_works() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let l = McsLock::new();
            let g1 = l.lock();
            l.unlock(g1);
            let g2 = l.lock();
            l.unlock(g2);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_handoff_detected() {
        // Relaxing the handoff release store lets the successor enter the
        // critical section without acquiring the predecessor's writes →
        // counter race.
        let mut ords = Ords::defaults(SITES);
        ords.set(UNLOCK_LOCKED_STORE, cdsspec_c11::MemOrd::Relaxed);
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened MCS handoff must be detected");
    }

    #[test]
    fn weakened_swap_detected() {
        // Relaxing the tail swap drops the uncontended release/acquire
        // chain through the tail CAS.
        let mut ords = Ords::defaults(SITES);
        ords.set(LOCK_TAIL_SWAP, cdsspec_c11::MemOrd::Relaxed);
        let stats = check(mc::Config::default(), ords);
        assert!(stats.buggy(), "weakened MCS swap must be detected");
    }
}
