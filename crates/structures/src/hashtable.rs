//! A lock-free open-addressing hashtable in the style of Cliff Click's
//! design, ported as in the CDSChecker benchmark suite and the paper's
//! `Lockfree Hashtable` row (itself derived from Doug Lea's
//! `ConcurrentHashMap`).
//!
//! Keys are claimed with a CAS on the key slot; values use `seq_cst`
//! accesses, "establishing strong orderings between the get and put
//! methods on the same key" (paper §6.1) — which is exactly why the
//! equivalent sequential data structure can be a **deterministic** map:
//! the value accesses are the ordering points, and SC makes every
//! get/put pair on a key ordered by `r`.

use cdsspec_core as spec;
use cdsspec_mc as mc;
use std::collections::HashMap;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Table capacity (power of two).
pub const CAPACITY: usize = 4;

/// Injectable sites. The put-side probe load is a pure optimization (the
/// claim CAS revalidates), so it is relaxed; the remaining four `seq_cst`
/// parameters are each load-bearing.
pub static SITES: &[SiteSpec] = &[
    site("put.key_load", Relaxed, SiteKind::Load),
    site("put.key_cas", SeqCst, SiteKind::Rmw),
    site("put.value_store", SeqCst, SiteKind::Store),
    site("get.key_load", SeqCst, SiteKind::Load),
    site("get.value_load", SeqCst, SiteKind::Load),
];

const PUT_KEY_LOAD: usize = 0;
const PUT_KEY_CAS: usize = 1;
const PUT_VALUE_STORE: usize = 2;
const GET_KEY_LOAD: usize = 3;
const GET_VALUE_LOAD: usize = 4;

/// The hashtable. Keys and values are positive `i64`s; 0 means
/// empty/absent.
#[derive(Clone)]
pub struct HashTable {
    obj: u64,
    keys: std::sync::Arc<Vec<mc::Atomic<i64>>>,
    values: std::sync::Arc<Vec<mc::Atomic<i64>>>,
    ords: Ords,
}

impl HashTable {
    /// A table with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A table with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        HashTable {
            obj: mc::new_object_id(),
            keys: std::sync::Arc::new((0..CAPACITY).map(|_| mc::Atomic::new(0)).collect()),
            values: std::sync::Arc::new((0..CAPACITY).map(|_| mc::Atomic::new(0)).collect()),
            ords,
        }
    }

    fn hash(key: i64) -> usize {
        (key as usize) % CAPACITY
    }

    /// Insert or update `key → val` (both positive).
    pub fn put(&self, key: i64, val: i64) {
        assert!(
            key > 0 && val > 0,
            "keys and values are positive by convention"
        );
        spec::method_begin(self.obj, "put");
        spec::arg(key);
        spec::arg(val);
        let mut idx = Self::hash(key);
        loop {
            let k = self.keys[idx].load(self.ords.get(PUT_KEY_LOAD));
            if k == key {
                break;
            }
            if k == 0 {
                match self.keys[idx].compare_exchange(0, key, self.ords.get(PUT_KEY_CAS), Relaxed) {
                    Ok(_) => break,
                    Err(now) if now == key => break,
                    Err(_) => {}
                }
            }
            idx = (idx + 1) % CAPACITY; // linear probe (capacity never exceeded in tests)
        }
        self.values[idx].store(val, self.ords.get(PUT_VALUE_STORE));
        spec::op_define(); // the SC value store orders puts/gets on the key
        spec::method_end(());
    }

    /// Aggregate API method (the paper's §4.2 `putAll` example): inserts
    /// every pair by calling the primitive `put` internally. Only the
    /// outermost call is treated as an API method call — the nested `put`
    /// boundaries fold into it, and its ordering points become the
    /// aggregate's. As §4.2 notes, aggregates can be observed partially
    /// completed by concurrent calls, which surfaces as a cyclic ordering
    /// relation the checker reports rather than mis-checks.
    pub fn put_all(&self, pairs: &[(i64, i64)]) {
        spec::method_begin(self.obj, "put_all");
        for &(k, v) in pairs {
            spec::arg(k);
            spec::arg(v);
            self.put(k, v);
        }
        spec::method_end(());
    }

    /// Look up `key`; 0 = absent.
    pub fn get(&self, key: i64) -> i64 {
        assert!(key > 0);
        spec::method_begin(self.obj, "get");
        spec::arg(key);
        let mut idx = Self::hash(key);
        let mut ret = 0;
        for _ in 0..CAPACITY {
            let k = self.keys[idx].load(self.ords.get(GET_KEY_LOAD));
            spec::op_clear_define(); // a miss is ordered by its last key probe
            if k == key {
                ret = self.values[idx].load(self.ords.get(GET_VALUE_LOAD));
                spec::op_clear_define(); // a hit is ordered by the value load
                break;
            }
            if k == 0 {
                break; // open addressing: an empty slot ends the probe
            }
            idx = (idx + 1) % CAPACITY;
        }
        spec::method_end(ret);
        ret
    }
}

impl Default for HashTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic map specification: SC value accesses order every get/put
/// pair on a key, so `get` must return exactly the sequential map's view.
/// A `get` that misses while racing a `put`'s *key claim* (but SC-before
/// its value store) is a legitimate miss — the history orders it first.
pub fn make_spec() -> spec::Spec<HashMap<i64, i64>> {
    spec::Spec::new("lockfree-hashtable", HashMap::<i64, i64>::new)
        .method("put", |m| {
            m.side_effect(|s, e| {
                s.insert(e.arg(0).as_i64(), e.arg(1).as_i64());
            })
        })
        .method("put_all", |m| {
            m.side_effect(|s, e| {
                for pair in e.call.args.chunks(2) {
                    s.insert(pair[0].as_i64(), pair[1].as_i64());
                }
            })
        })
        .method("get", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.get(&e.arg(0).as_i64()).copied().unwrap_or(0);
                e.set_s_ret(s_ret);
            })
            .post(|_, e| e.ret() == e.s_ret)
        })
}

/// Standard unit test: two writers on distinct keys, one reader
/// (mirrors the paper's tiny Figure 7 run: 6 executions).
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let h = HashTable::with_ords(ords.clone());
        let h1 = h.clone();
        let t = mc::thread::spawn(move || {
            h1.put(1, 10);
            let _ = h1.get(2);
        });
        h.put(2, 20);
        let _ = h.get(1);
        t.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_table_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn sequential_get_after_put() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let h = HashTable::new();
            h.put(1, 10);
            h.put(5, 50); // collides with 1 (capacity 4): probes
            mc::mc_assert!(h.get(1) == 10);
            mc::mc_assert!(h.get(5) == 50);
            mc::mc_assert!(h.get(2) == 0);
            h.put(1, 11); // update in place
            mc::mc_assert!(h.get(1) == 11);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn aggregate_put_all_folds_into_outermost_call() {
        // §4.2: nested API calls are internal; put_all is checked as one
        // call with the inner puts' ordering points.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let h = HashTable::new();
            h.put_all(&[(1, 10), (2, 20)]);
            mc::mc_assert!(h.get(1) == 10);
            mc::mc_assert!(h.get(2) == 20);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn concurrent_aggregates_are_flagged_not_mischecked() {
        // §4.2: "it is possible to observe partially completed aggregate
        // API method calls, which unfortunately breaks the correctness
        // criteria" — two concurrent put_alls interleave their ordering
        // points, producing a cyclic r that the checker reports loudly.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let h = HashTable::new();
            let h1 = h.clone();
            let t = mc::thread::spawn(move || h1.put_all(&[(1, 10), (2, 20)]));
            h.put_all(&[(2, 21), (1, 11)]);
            t.join();
        });
        // Either every interleaving is consistent (fine) or the checker
        // reports the cycle — it must never crash or silently accept a
        // contradictory history.
        if stats.buggy() {
            assert!(
                stats.bugs[0].bug.to_string().contains("cyclic")
                    || stats.bugs[0].bug.to_string().contains("postcondition"),
                "unexpected failure mode: {}",
                stats.bugs[0].bug
            );
        }
    }

    #[test]
    fn same_key_race_stays_deterministic() {
        // A put and get on the same key from different threads: SC value
        // accesses order them; the deterministic spec must hold either way.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let h = HashTable::new();
            let h1 = h.clone();
            let t = mc::thread::spawn(move || h1.put(3, 30));
            let v = h.get(3);
            mc::mc_assert!(v == 0 || v == 30);
            t.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }
}
