//! A sequence lock (the CDSChecker `seqlock` benchmark; `Seqlock` in
//! Figure 7).
//!
//! Writers bump the sequence to odd with a CAS, update the protected
//! value, then bump back to even; readers retry until they observe the
//! same even sequence before and after reading. The data store/load pair
//! carries release/acquire so a reader that sees fresh data also sees the
//! odd sequence and retries — the edge the fault injector breaks.

use cdsspec_core as spec;
use cdsspec_mc as mc;

use cdsspec_c11::MemOrd::*;

use crate::ords::{site, Ords, SiteKind, SiteSpec};

/// Injectable sites. The writer's pre-CAS probe and the sequence CAS need
/// only atomicity (readers are protected by the data-store/data-load
/// release/acquire pair and the final release bump), so they are relaxed;
/// four load-bearing parameters remain.
pub static SITES: &[SiteSpec] = &[
    site("write.seq_load", Relaxed, SiteKind::Load),
    site("write.seq_cas", Relaxed, SiteKind::Rmw),
    site("write.data_store", Release, SiteKind::Store),
    site("write.seq_add", Release, SiteKind::Rmw),
    site("read.seq_load", Acquire, SiteKind::Load),
    site("read.data_load", Acquire, SiteKind::Load),
    site("read.seq_recheck", Relaxed, SiteKind::Load),
];

const WRITE_SEQ_LOAD: usize = 0;
const WRITE_SEQ_CAS: usize = 1;
const WRITE_DATA_STORE: usize = 2;
const WRITE_SEQ_ADD: usize = 3;
const READ_SEQ_LOAD: usize = 4;
const READ_DATA_LOAD: usize = 5;
const READ_SEQ_RECHECK: usize = 6;

/// The sequence lock protecting a two-word snapshot whose halves must
/// always agree (both initially 0). One word could never exhibit a torn
/// read; two words make lost synchronization observable.
#[derive(Clone)]
pub struct SeqLock {
    obj: u64,
    seq: mc::Atomic<u64>,
    data1: mc::Atomic<i64>,
    data2: mc::Atomic<i64>,
    ords: Ords,
}

impl SeqLock {
    /// A seqlock with the correct orderings.
    pub fn new() -> Self {
        Self::with_ords(Ords::defaults(SITES))
    }

    /// A seqlock with a custom ordering table.
    pub fn with_ords(ords: Ords) -> Self {
        SeqLock {
            obj: mc::new_object_id(),
            seq: mc::Atomic::new(0),
            data1: mc::Atomic::new(0),
            data2: mc::Atomic::new(0),
            ords,
        }
    }

    /// Publish a new value.
    pub fn write(&self, v: i64) {
        spec::method_begin(self.obj, "write");
        spec::arg(v);
        loop {
            let s = self.seq.load(self.ords.get(WRITE_SEQ_LOAD));
            if s.is_multiple_of(2)
                && self
                    .seq
                    .compare_exchange(s, s + 1, self.ords.get(WRITE_SEQ_CAS), Relaxed)
                    .is_ok()
            {
                self.data1.store(v, self.ords.get(WRITE_DATA_STORE));
                self.data2.store(v, self.ords.get(WRITE_DATA_STORE));
                spec::op_define(); // the data publication orders writes/reads
                self.seq.fetch_add(1, self.ords.get(WRITE_SEQ_ADD));
                break;
            }
            mc::spin_loop();
        }
        spec::method_end(());
    }

    /// Read a consistent snapshot.
    pub fn read(&self) -> i64 {
        spec::method_begin(self.obj, "read");
        let v = loop {
            let s1 = self.seq.load(self.ords.get(READ_SEQ_LOAD));
            if !s1.is_multiple_of(2) {
                mc::spin_loop();
                continue;
            }
            let v1 = self.data1.load(self.ords.get(READ_DATA_LOAD));
            let v2 = self.data2.load(self.ords.get(READ_DATA_LOAD));
            spec::op_clear_define(); // the data acquisition orders the read
            let s2 = self.seq.load(self.ords.get(READ_SEQ_RECHECK));
            if s1 == s2 {
                mc::mc_assert!(v1 == v2, "torn seqlock snapshot: {} vs {}", v1, v2);
                break v1;
            }
            mc::spin_loop();
        };
        spec::method_end(v);
        v
    }
}

impl Default for SeqLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Register-style specification: sequential state is the current value;
/// reads return the prefix's latest value or a concurrent write's value.
pub fn make_spec() -> spec::Spec<i64> {
    spec::Spec::new("seqlock", || 0i64)
        .method("write", |m| m.side_effect(|s, e| *s = e.arg(0).as_i64()))
        .method("read", |m| {
            // Per Definition 5, a read's value is checked through its
            // non-deterministic specification: some justifying subhistory
            // must make it the latest value, or a concurrent write must
            // have produced it. A per-history postcondition would wrongly
            // reject reads that linearize before r-concurrent writes.
            m.side_effect(|s, e| e.set_s_ret(*s)).justify_post(|_, e| {
                e.ret() == e.s_ret
                    || e.concurrent
                        .iter()
                        .any(|c| c.name == "write" && c.arg(0) == e.ret())
            })
        })
}

/// Standard unit test: two writers and one reader.
pub fn unit_test(ords: Ords) -> impl Fn() + Send + Sync + 'static {
    move || {
        let l = SeqLock::with_ords(ords.clone());
        let l1 = l.clone();
        let w = mc::thread::spawn(move || l1.write(1));
        let _ = l.read();
        l.write(2);
        w.join();
    }
}

/// Explore the unit test under `config` with the spec attached.
pub fn check(config: mc::Config, ords: Ords) -> mc::Stats {
    spec::check(config, make_spec(), unit_test(ords))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_seqlock_passes() {
        let stats = check(mc::Config::default(), Ords::defaults(SITES));
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
        assert!(stats.feasible > 0);
    }

    #[test]
    fn single_thread_reads_latest() {
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let l = SeqLock::new();
            l.write(3);
            mc::mc_assert!(l.read() == 3);
            l.write(4);
            mc::mc_assert!(l.read() == 4);
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn reader_never_sees_torn_state() {
        // A reader overlapping a writer returns either the old or the new
        // value, never anything else.
        let stats = spec::check(mc::Config::default(), make_spec(), || {
            let l = SeqLock::new();
            let l1 = l.clone();
            let w = mc::thread::spawn(move || l1.write(7));
            let v = l.read();
            mc::mc_assert!(v == 0 || v == 7, "torn read: {}", v);
            w.join();
        });
        assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
    }

    #[test]
    fn weakened_data_store_detected() {
        // Dropping the data-store release lets a reader acquire nothing:
        // it can pass the seq check while reading a mid-update value.
        let mut ords = Ords::defaults(SITES);
        assert!(ords.weaken(WRITE_DATA_STORE));
        let stats = check(mc::Config::default(), ords);
        assert!(
            stats.buggy(),
            "weakened seqlock data store must be detected"
        );
    }
}
