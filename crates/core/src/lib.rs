//! # cdsspec-core
//!
//! The paper's primary contribution: **CDSSpec**, a specification checker
//! for concurrent data structures under the C/C++11 memory model
//! (Ou & Demsky, PPoPP 2017), re-implemented in Rust on top of the
//! `cdsspec-mc` stateless model checker.
//!
//! ## The correctness model in one paragraph
//!
//! C/C++11 data structures expose non-SC behaviors, so linearizability
//! cannot relate their executions to sequential ones. CDSSpec instead
//! orders *method calls* by an ordering relation `r` derived from
//! user-annotated **ordering points** (specific atomic operations inside
//! each method) via happens-before/SC edges, demands that every
//! topological sort of `r` — every *valid sequential history* — satisfies
//! the specification on an **equivalent sequential data structure**, and
//! tames non-deterministic specifications (e.g. "dequeue may spuriously
//! return empty") by requiring each non-deterministic behavior to be
//! *justified* by some sequential execution over the call's `r`-prefix or
//! by its concurrent calls. **Admissibility** rules carve out the usage
//! patterns under which the specification applies at all.
//!
//! ## Usage sketch
//!
//! ```
//! use cdsspec_core as spec;
//! use cdsspec_mc as mc;
//! use mc::MemOrd::*;
//! use std::collections::VecDeque;
//!
//! // An instrumented one-cell "queue" (a register pretending, for the
//! // sake of a short doc test, to be a queue of capacity 1).
//! #[derive(Clone, Copy)]
//! struct Cell1 {
//!     obj: u64,
//!     v: mc::Atomic<i64>,
//! }
//! impl Cell1 {
//!     fn new() -> Self {
//!         Cell1 { obj: mc::new_object_id(), v: mc::Atomic::new(-1) }
//!     }
//!     fn enq(&self, x: i64) {
//!         spec::method_begin(self.obj, "enq");
//!         spec::arg(x);
//!         self.v.store(x, Release);
//!         spec::op_define();
//!         spec::method_end(());
//!     }
//!     fn deq(&self) -> i64 {
//!         spec::method_begin(self.obj, "deq");
//!         let r = self.v.swap(-1, AcqRel);
//!         spec::op_define();
//!         spec::method_end(r);
//!         r
//!     }
//! }
//!
//! let s = spec::Spec::new("cell1", VecDeque::<i64>::new)
//!     .method("enq", |m| m.side_effect(|st, e| st.push_back(e.arg(0).as_i64())))
//!     .method("deq", |m| m
//!         .side_effect(|st, e| {
//!             let s_ret = st.pop_front().unwrap_or(-1);
//!             e.set_s_ret(s_ret);
//!         })
//!         .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret));
//!
//! let stats = spec::check(mc::Config::default(), s, || {
//!     let c = Cell1::new();
//!     let t = mc::thread::spawn(move || c.enq(7));
//!     let _ = c.deq();
//!     t.join();
//! });
//! assert!(!stats.buggy());
//! ```

#![warn(missing_docs)]

pub mod annotations;
pub mod call;
pub mod checker;
pub mod history;
pub mod spec;

pub use annotations::{
    arg, method_begin, method_end, op_check, op_check_if, op_clear, op_clear_define,
    op_clear_define_if, op_define, op_define_if, potential_op, potential_op_if,
};
pub use call::{extract_calls, CallId, ExtractError, MethodCall};
pub use checker::{build_call_order, check, check_ok, check_suite, SpecChecker, SuitePart};
pub use history::{all_histories, for_each_history, CallOrder, HistoryPolicy};
pub use spec::{AdmissibilityRule, CallEval, MethodSpec, Spec};

pub use cdsspec_c11::SpecVal;
