//! Method-call records and their extraction from annotated traces.
//!
//! Instrumented data-structure code records [`SpecNote`]s (method
//! boundaries, arguments, return values, ordering-point markers). This
//! module reassembles them into [`MethodCall`]s — the unit the paper's
//! correctness model quantifies over — resolving the ordering-point state
//! machine (`OPDefine` / `OPClear` / `PotentialOP(label)` / `OPCheck`).
//!
//! Nested API calls follow the paper's rule: only the outermost call is an
//! API method call; ordering points recorded inside nested calls attach to
//! the outermost one, and inner boundaries/conditions are ignored.

use cdsspec_c11::{EventId, SpecNote, SpecVal, Tid, Trace};

/// Index of a method call within one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallId(pub u32);

impl CallId {
    /// Index form.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One completed API method call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodCall {
    /// Position in extraction order (per-thread program order preserved).
    pub id: CallId,
    /// Executing thread.
    pub tid: Tid,
    /// Data-structure instance the call was made on (composition, §3.2).
    pub obj: u64,
    /// Method name (as given to `begin`).
    pub name: &'static str,
    /// Argument values in recording order.
    pub args: Vec<SpecVal>,
    /// Concrete return value (the paper's `C_RET`).
    pub ret: SpecVal,
    /// Confirmed ordering points (event ids of atomic operations).
    pub ordering_points: Vec<EventId>,
}

impl MethodCall {
    /// `i`-th argument (panics on out-of-range: a spec-writer error).
    pub fn arg(&self, i: usize) -> SpecVal {
        self.args[i]
    }
}

/// A malformed annotation stream (spec-writer error, reported as a bug so
/// it cannot be silently ignored).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtractError {
    /// `OpDefine`/`PotentialOp` with no preceding atomic operation.
    OpWithoutOperation {
        /// Offending thread.
        tid: Tid,
        /// Method whose annotation misfired.
        method: &'static str,
    },
    /// `MethodEnd` without a matching `MethodBegin`.
    EndWithoutBegin {
        /// Offending thread.
        tid: Tid,
    },
    /// An annotation that only makes sense inside a method call appeared
    /// outside one.
    NoteOutsideMethod {
        /// Offending thread.
        tid: Tid,
    },
    /// Thread finished with an open method call.
    UnclosedMethod {
        /// Offending thread.
        tid: Tid,
        /// The method left open.
        method: &'static str,
    },
    /// A method call ended with no ordering points at all — the `r`
    /// relation cannot order it, which almost always means a missing
    /// `OPDefine` (flagged to help spec debugging; see paper §6.2).
    NoOrderingPoints {
        /// Offending thread.
        tid: Tid,
        /// The unordered method.
        method: &'static str,
    },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::OpWithoutOperation { tid, method } => {
                write!(
                    f,
                    "{tid}: ordering-point annotation in `{method}` precedes any atomic op"
                )
            }
            ExtractError::EndWithoutBegin { tid } => {
                write!(f, "{tid}: method end without begin")
            }
            ExtractError::NoteOutsideMethod { tid } => {
                write!(f, "{tid}: spec annotation outside any method call")
            }
            ExtractError::UnclosedMethod { tid, method } => {
                write!(f, "{tid}: thread finished inside method `{method}`")
            }
            ExtractError::NoOrderingPoints { tid, method } => {
                write!(
                    f,
                    "{tid}: method `{method}` completed without any ordering point"
                )
            }
        }
    }
}

/// Per-thread in-progress call state.
struct OpenCall {
    obj: u64,
    name: &'static str,
    args: Vec<SpecVal>,
    confirmed: Vec<EventId>,
    potential: Vec<(&'static str, EventId)>,
    depth: u32,
}

/// Extract the method calls of an execution from its annotation stream.
pub fn extract_calls(trace: &Trace) -> Result<Vec<MethodCall>, ExtractError> {
    let mut open: Vec<Option<OpenCall>> = (0..trace.num_threads).map(|_| None).collect();
    let mut calls: Vec<MethodCall> = Vec::new();

    for ann in &trace.annotations {
        let slot = &mut open[ann.tid.idx()];
        match &ann.note {
            SpecNote::MethodBegin { obj, name } => match slot {
                Some(oc) => oc.depth += 1, // nested: ignored
                None => {
                    *slot = Some(OpenCall {
                        obj: *obj,
                        name,
                        args: Vec::new(),
                        confirmed: Vec::new(),
                        potential: Vec::new(),
                        depth: 0,
                    })
                }
            },
            SpecNote::MethodArg { val } => {
                let oc = slot
                    .as_mut()
                    .ok_or(ExtractError::NoteOutsideMethod { tid: ann.tid })?;
                if oc.depth == 0 {
                    oc.args.push(*val);
                }
            }
            SpecNote::MethodEnd { ret } => {
                let oc = slot
                    .as_mut()
                    .ok_or(ExtractError::EndWithoutBegin { tid: ann.tid })?;
                if oc.depth > 0 {
                    oc.depth -= 1;
                    continue;
                }
                let oc = slot.take().expect("checked above");
                if oc.confirmed.is_empty() {
                    return Err(ExtractError::NoOrderingPoints {
                        tid: ann.tid,
                        method: oc.name,
                    });
                }
                calls.push(MethodCall {
                    id: CallId(calls.len() as u32),
                    tid: ann.tid,
                    obj: oc.obj,
                    name: oc.name,
                    args: oc.args,
                    ret: *ret,
                    ordering_points: oc.confirmed,
                });
            }
            SpecNote::OpDefine => {
                let oc = slot
                    .as_mut()
                    .ok_or(ExtractError::NoteOutsideMethod { tid: ann.tid })?;
                let ev = ann.after.ok_or(ExtractError::OpWithoutOperation {
                    tid: ann.tid,
                    method: oc.name,
                })?;
                oc.confirmed.push(ev);
            }
            SpecNote::OpClear => {
                let oc = slot
                    .as_mut()
                    .ok_or(ExtractError::NoteOutsideMethod { tid: ann.tid })?;
                oc.confirmed.clear();
                oc.potential.clear();
            }
            SpecNote::PotentialOp { label } => {
                let oc = slot
                    .as_mut()
                    .ok_or(ExtractError::NoteOutsideMethod { tid: ann.tid })?;
                let ev = ann.after.ok_or(ExtractError::OpWithoutOperation {
                    tid: ann.tid,
                    method: oc.name,
                })?;
                oc.potential.push((label, ev));
            }
            SpecNote::OpCheck { label } => {
                let oc = slot
                    .as_mut()
                    .ok_or(ExtractError::NoteOutsideMethod { tid: ann.tid })?;
                let mut kept = Vec::new();
                for (l, ev) in oc.potential.drain(..) {
                    if l == *label {
                        oc.confirmed.push(ev);
                    } else {
                        kept.push((l, ev));
                    }
                }
                oc.potential = kept;
            }
        }
    }

    for (i, slot) in open.iter().enumerate() {
        if let Some(oc) = slot {
            return Err(ExtractError::UnclosedMethod {
                tid: Tid(i as u32),
                method: oc.name,
            });
        }
    }
    Ok(calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsspec_c11::{Annotation, SpecVal};

    fn ann(tid: u32, after: Option<u32>, note: SpecNote) -> Annotation {
        Annotation {
            tid: Tid(tid),
            after: after.map(EventId),
            note,
        }
    }

    fn trace_with(annotations: Vec<Annotation>, threads: u32) -> Trace {
        let mut t = Trace::default();
        t.annotations = annotations;
        t.num_threads = threads;
        t
    }

    #[test]
    fn simple_call_extraction() {
        let t = trace_with(
            vec![
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "enq",
                    },
                ),
                ann(
                    0,
                    None,
                    SpecNote::MethodArg {
                        val: SpecVal::I64(7),
                    },
                ),
                ann(0, Some(3), SpecNote::OpDefine),
                ann(0, Some(4), SpecNote::MethodEnd { ret: SpecVal::Unit }),
            ],
            1,
        );
        let calls = extract_calls(&t).unwrap();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "enq");
        assert_eq!(calls[0].arg(0), SpecVal::I64(7));
        assert_eq!(calls[0].ordering_points, vec![EventId(3)]);
    }

    #[test]
    fn op_clear_discards_previous_points() {
        let t = trace_with(
            vec![
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "deq",
                    },
                ),
                ann(0, Some(1), SpecNote::OpDefine),
                ann(0, Some(2), SpecNote::OpClear),
                ann(0, Some(2), SpecNote::OpDefine), // OPClearDefine expansion
                ann(
                    0,
                    Some(3),
                    SpecNote::MethodEnd {
                        ret: SpecVal::I64(-1),
                    },
                ),
            ],
            1,
        );
        let calls = extract_calls(&t).unwrap();
        assert_eq!(calls[0].ordering_points, vec![EventId(2)]);
        assert_eq!(calls[0].ret, SpecVal::I64(-1));
    }

    #[test]
    fn potential_op_confirmed_by_check() {
        let t = trace_with(
            vec![
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "get",
                    },
                ),
                ann(0, Some(1), SpecNote::PotentialOp { label: "A" }),
                ann(0, Some(2), SpecNote::PotentialOp { label: "B" }),
                ann(0, Some(3), SpecNote::OpCheck { label: "B" }),
                ann(0, Some(4), SpecNote::MethodEnd { ret: SpecVal::Unit }),
            ],
            1,
        );
        let calls = extract_calls(&t).unwrap();
        assert_eq!(
            calls[0].ordering_points,
            vec![EventId(2)],
            "only the checked label"
        );
    }

    #[test]
    fn unchecked_potential_op_is_dropped() {
        let t = trace_with(
            vec![
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "get",
                    },
                ),
                ann(0, Some(1), SpecNote::OpDefine),
                ann(0, Some(2), SpecNote::PotentialOp { label: "A" }),
                ann(0, Some(3), SpecNote::MethodEnd { ret: SpecVal::Unit }),
            ],
            1,
        );
        let calls = extract_calls(&t).unwrap();
        assert_eq!(calls[0].ordering_points, vec![EventId(1)]);
    }

    #[test]
    fn nested_calls_fold_into_outermost() {
        let t = trace_with(
            vec![
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "put_all",
                    },
                ),
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "put",
                    },
                ),
                ann(0, Some(1), SpecNote::OpDefine),
                ann(0, Some(1), SpecNote::MethodEnd { ret: SpecVal::Unit }),
                ann(0, Some(2), SpecNote::MethodEnd { ret: SpecVal::Unit }),
            ],
            1,
        );
        let calls = extract_calls(&t).unwrap();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "put_all");
        assert_eq!(calls[0].ordering_points, vec![EventId(1)]);
    }

    #[test]
    fn interleaved_threads_extract_independently() {
        let t = trace_with(
            vec![
                ann(
                    0,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "enq",
                    },
                ),
                ann(
                    1,
                    None,
                    SpecNote::MethodBegin {
                        obj: 1,
                        name: "deq",
                    },
                ),
                ann(0, Some(1), SpecNote::OpDefine),
                ann(1, Some(2), SpecNote::OpDefine),
                ann(
                    1,
                    Some(2),
                    SpecNote::MethodEnd {
                        ret: SpecVal::I64(5),
                    },
                ),
                ann(0, Some(1), SpecNote::MethodEnd { ret: SpecVal::Unit }),
            ],
            2,
        );
        let calls = extract_calls(&t).unwrap();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].name, "deq"); // ended first
        assert_eq!(calls[1].name, "enq");
        assert_eq!(calls[0].tid, Tid(1));
    }

    #[test]
    fn errors_are_reported() {
        let t = trace_with(
            vec![ann(0, None, SpecNote::MethodEnd { ret: SpecVal::Unit })],
            1,
        );
        assert_eq!(
            extract_calls(&t),
            Err(ExtractError::EndWithoutBegin { tid: Tid(0) })
        );

        let t = trace_with(vec![ann(0, None, SpecNote::OpDefine)], 1);
        assert_eq!(
            extract_calls(&t),
            Err(ExtractError::NoteOutsideMethod { tid: Tid(0) })
        );

        let t = trace_with(
            vec![
                ann(0, None, SpecNote::MethodBegin { obj: 1, name: "m" }),
                ann(0, None, SpecNote::OpDefine),
            ],
            1,
        );
        assert_eq!(
            extract_calls(&t),
            Err(ExtractError::OpWithoutOperation {
                tid: Tid(0),
                method: "m"
            })
        );

        let t = trace_with(
            vec![ann(0, None, SpecNote::MethodBegin { obj: 1, name: "m" })],
            1,
        );
        assert_eq!(
            extract_calls(&t),
            Err(ExtractError::UnclosedMethod {
                tid: Tid(0),
                method: "m"
            })
        );

        let t = trace_with(
            vec![
                ann(0, None, SpecNote::MethodBegin { obj: 1, name: "m" }),
                ann(0, Some(1), SpecNote::MethodEnd { ret: SpecVal::Unit }),
            ],
            1,
        );
        assert_eq!(
            extract_calls(&t),
            Err(ExtractError::NoOrderingPoints {
                tid: Tid(0),
                method: "m"
            })
        );
    }
}
