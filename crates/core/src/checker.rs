//! The CDSSpec checker: a model-checker plugin implementing the paper's
//! correctness model (non-deterministic linearizability, §3 + §5.2).
//!
//! Per feasible execution:
//!
//! 1. extract the method calls and their ordering points from the
//!    annotation stream;
//! 2. build the ordering relation `r` over method calls from the `hb`/SC
//!    ordering of their ordering points, and transitively close it;
//! 3. **admissibility**: every pair required ordered by an `@Admit` guard
//!    must be ordered by `r`, else the execution is inadmissible;
//! 4. **sequential histories**: every topological sort of `r` must satisfy
//!    all pre/postconditions when replayed against the equivalent
//!    sequential data structure (Definitions 2, 5, 6);
//! 5. **justification**: every call with justifying conditions must have
//!    at least one justifying subhistory (topological sort of its
//!    `r`-prefix) whose sequential execution satisfies them, with the
//!    `CONCURRENT` set available (Definitions 3, 4).

use std::sync::Arc;

use cdsspec_c11::Trace;
use cdsspec_mc::{Bug, Plugin};

use crate::call::{extract_calls, MethodCall};
use crate::history::{for_each_history, CallOrder};
use crate::spec::{CallEval, Spec};

/// The plugin. Cheap to construct per exploration; the spec itself is
/// shared via `Arc`.
pub struct SpecChecker<S> {
    spec: Arc<Spec<S>>,
}

impl<S> SpecChecker<S> {
    /// Check executions against `spec`.
    pub fn new(spec: Arc<Spec<S>>) -> Self {
        SpecChecker { spec }
    }

    /// Convenience: build the boxed plugin list for
    /// [`cdsspec_mc::explore_with_plugins`].
    pub fn plugins(spec: Arc<Spec<S>>) -> Vec<Box<dyn Plugin>>
    where
        S: Send + 'static,
    {
        vec![Box::new(SpecChecker::new(spec))]
    }

    /// A [`cdsspec_mc::PluginFactory`] minting one independent checker per
    /// explorer worker. The spec itself is immutable and shared via `Arc`
    /// (its closures are `Send + Sync` by construction), so per-shard
    /// CDSSpec checking in the parallel engine is race-free without any
    /// cross-worker locking.
    pub fn factory(spec: Arc<Spec<S>>) -> cdsspec_mc::PluginFactory
    where
        S: Send + 'static,
    {
        Arc::new(move || SpecChecker::plugins(Arc::clone(&spec)))
    }
}

/// Render a history as `name(args)=ret -> …` for diagnostics.
fn render_history(calls: &[MethodCall], h: &[usize]) -> String {
    h.iter()
        .map(|&i| {
            let c = &calls[i];
            let args = c
                .args
                .iter()
                .map(|a| format!("{a:?}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("{}#{}({args})={:?}", c.name, c.id.0, c.ret)
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Build `r` from ordering points: `m1 → m2` iff some ordering point of
/// `m1` is `hb`- or SC-ordered before one of `m2` (paper §5.2).
pub fn build_call_order(trace: &Trace, calls: &[MethodCall]) -> CallOrder {
    let mut order = CallOrder::new(calls.len());
    for (i, a) in calls.iter().enumerate() {
        for (j, b) in calls.iter().enumerate() {
            if i == j {
                continue;
            }
            let ordered = a.ordering_points.iter().any(|&x| {
                b.ordering_points
                    .iter()
                    .any(|&y| x != y && trace.ordered_before(x, y))
            });
            if ordered {
                order.add_edge(i, j);
            }
        }
    }
    order.close();
    order
}

impl<S: Send + 'static> SpecChecker<S> {
    /// Check one execution: extract calls, then check each data-structure
    /// instance independently against its own sequential state
    /// (specification composition, paper §3.2 / Theorem 1).
    fn check_inner(&self, trace: &Trace) -> Vec<Bug> {
        let plugin_bug = |message: String| Bug::Plugin {
            plugin: "cdsspec",
            message,
        };

        let all_calls = match extract_calls(trace) {
            Ok(c) => c,
            Err(e) => return vec![plugin_bug(format!("annotation error: {e}"))],
        };
        if all_calls.is_empty() {
            return Vec::new();
        }
        let mut objs: Vec<u64> = all_calls.iter().map(|c| c.obj).collect();
        objs.sort_unstable();
        objs.dedup();
        // Single-object executions (the overwhelmingly common case) skip
        // the per-object projection clone entirely.
        if objs.len() == 1 {
            return self.check_object(trace, &all_calls);
        }
        let mut bugs = Vec::new();
        for obj in objs {
            let calls: Vec<MethodCall> =
                all_calls.iter().filter(|c| c.obj == obj).cloned().collect();
            bugs.extend(self.check_object(trace, &calls));
            if !bugs.is_empty() {
                break; // one witness per execution
            }
        }
        bugs
    }

    /// Check the projection of the execution onto one object.
    fn check_object(&self, trace: &Trace, calls: &[MethodCall]) -> Vec<Bug> {
        let plugin_bug = |message: String| Bug::Plugin {
            plugin: "cdsspec",
            message,
        };
        for c in calls {
            if self.spec.lookup(c.name).is_none() {
                return vec![plugin_bug(format!(
                    "no specification for method `{}`",
                    c.name
                ))];
            }
        }

        let order = build_call_order(trace, calls);
        if order.cyclic() {
            return vec![plugin_bug(
                "cyclic ordering relation r — check the ordering-point annotations".into(),
            )];
        }

        // 3. Admissibility (Definition 1). An inadmissible execution is
        // outside the correctness model: report it and skip the rest, as
        // the paper's checker does ("prints a warning").
        for i in 0..calls.len() {
            for j in 0..calls.len() {
                if i >= j || !order.concurrent(i, j) {
                    continue;
                }
                for rule in &self.spec.admissibility {
                    for (a, b) in [(i, j), (j, i)] {
                        if calls[a].name == rule.m1
                            && calls[b].name == rule.m2
                            && (rule.guard)(&calls[a], &calls[b])
                        {
                            return vec![plugin_bug(format!(
                                "admissibility: `{}#{}` and `{}#{}` must be ordered by r \
                                 but are concurrent",
                                calls[a].name, calls[a].id.0, calls[b].name, calls[b].id.0
                            ))];
                        }
                    }
                }
            }
        }

        let mut bugs = Vec::new();

        // 4. Sequential histories (Definitions 2/5/6). One `CallEval` per
        // call, built once and reused across every replayed history — the
        // deep `MethodCall`/`CONCURRENT` clones per history step dominated
        // checking time on history-heavy traces. Only `s_ret` varies
        // between replays; it is re-armed before each use.
        let mut evals: Vec<CallEval> = (0..calls.len())
            .map(|i| CallEval {
                call: calls[i].clone(),
                s_ret: cdsspec_c11::SpecVal::Unit,
                concurrent: (0..calls.len())
                    .filter(|&j| order.concurrent(i, j))
                    .map(|j| calls[j].clone())
                    .collect(),
            })
            .collect();

        for_each_history(&order, self.spec.policy, |h| {
            if let Err(msg) = self.run_history(h, calls, &mut evals) {
                bugs.push(plugin_bug(format!(
                    "{msg}\n  history: {}",
                    render_history(calls, h)
                )));
                return false; // one witness per execution is enough
            }
            true
        });
        if !bugs.is_empty() {
            return bugs;
        }

        // 5. Justification (Definitions 3/4): for each call with justifying
        // conditions, some topological sort of its r-prefix must satisfy
        // them.
        for (i, call) in calls.iter().enumerate() {
            let meth = self.spec.lookup(call.name).expect("checked above");
            if !meth.has_justification() {
                continue;
            }
            let mut scope = order.predecessors_of(i);
            let prefix_len = scope.len();
            scope.push(i);
            let sub = order.restrict(&scope);
            let target_pos = scope.len() - 1; // `i` is last in `scope`

            let mut justified = false;
            for_each_history(&sub, self.spec.policy, |h| {
                // Definition 3 clause 4 guarantees m can always be placed
                // last; skip sortings where it is not (they are permutations
                // of the same prefix with m interleaved earlier, which
                // Definition 3 excludes).
                if h[h.len() - 1] != target_pos {
                    return true;
                }
                if self.justifies(h, &scope, calls, &mut evals) {
                    justified = true;
                    return false;
                }
                true
            });
            if !justified {
                bugs.push(plugin_bug(format!(
                    "justification failed: `{}#{}` returned {:?} but no justifying \
                     subhistory permits it (prefix of {} call(s))",
                    call.name, call.id.0, call.ret, prefix_len
                )));
            }
        }

        bugs
    }

    /// Replay one full sequential history; `Err` = condition violated.
    /// `evals` holds the pre-built per-call evaluation contexts; each is
    /// re-armed (`s_ret` reset) before its pre/effect/post run.
    fn run_history(
        &self,
        h: &[usize],
        calls: &[MethodCall],
        evals: &mut [CallEval],
    ) -> Result<(), String> {
        let mut state = (self.spec.init)();
        for &idx in h {
            let call = &calls[idx];
            let meth = self.spec.lookup(call.name).expect("validated");
            let eval = &mut evals[idx];
            eval.s_ret = cdsspec_c11::SpecVal::Unit;
            if let Some(pre) = &meth.pre {
                if !pre(&state, eval) {
                    return Err(format!(
                        "precondition of `{}#{}` failed",
                        call.name, call.id.0
                    ));
                }
            }
            if let Some(se) = &meth.side_effect {
                se(&mut state, eval);
            }
            if let Some(post) = &meth.post {
                if !post(&state, eval) {
                    return Err(format!(
                        "postcondition of `{}#{}` failed (C_RET={:?}, S_RET={:?})",
                        call.name, call.id.0, call.ret, eval.s_ret
                    ));
                }
            }
        }
        Ok(())
    }

    /// Replay one justifying subhistory; `true` when the justifying
    /// conditions of the last call hold.
    fn justifies(
        &self,
        h: &[usize],
        scope: &[usize],
        calls: &[MethodCall],
        evals: &mut [CallEval],
    ) -> bool {
        let mut state = (self.spec.init)();
        let last = h.len() - 1;
        for (pos, &sub_idx) in h.iter().enumerate() {
            let idx = scope[sub_idx];
            let call = &calls[idx];
            let meth = self.spec.lookup(call.name).expect("validated");
            let eval = &mut evals[idx];
            eval.s_ret = cdsspec_c11::SpecVal::Unit;
            if pos == last {
                if let Some(jpre) = &meth.justify_pre {
                    if !jpre(&state, eval) {
                        return false;
                    }
                }
            }
            if let Some(se) = &meth.side_effect {
                se(&mut state, eval);
            }
            if pos == last {
                if let Some(jpost) = &meth.justify_post {
                    if !jpost(&state, eval) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl<S: Send + 'static> Plugin for SpecChecker<S> {
    fn name(&self) -> &'static str {
        "cdsspec"
    }

    fn check(&mut self, trace: &Trace) -> Vec<Bug> {
        self.check_inner(trace)
    }
}

/// Explore `test` under `config`, checking every feasible execution
/// against `spec` — the main entry point users interact with.
///
/// Checking goes through [`SpecChecker::factory`], so with
/// `Config::workers > 1` every parallel explorer worker gets its own
/// checker instance over the shared immutable spec (race-free per-shard
/// checking; see `ARCHITECTURE.md`).
pub fn check<S, F>(config: cdsspec_mc::Config, spec: Spec<S>, test: F) -> cdsspec_mc::Stats
where
    S: Send + 'static,
    F: Fn() + Send + Sync + 'static,
{
    let spec = Arc::new(spec);
    cdsspec_mc::explore_factory(config, SpecChecker::factory(spec), test)
}

/// One part of a multi-test benchmark suite: a specification plus the
/// unit test to explore under it.
pub type SuitePart<S> = (Spec<S>, Box<dyn Fn() + Send + Sync + 'static>);

/// Explore a *suite* of unit tests in order — the paper's §6.4
/// corner-case suites — stopping at the first buggy part, with exact
/// checkpoint/resume across parts.
///
/// A plain sequence of [`check`] calls merged together cannot resume: a
/// [`cdsspec_mc::Stats::frontier`] replay script does not say which
/// part's choice tree it belongs to. `check_suite` therefore prefixes
/// every frontier it reports with the part index and peels that prefix
/// off [`cdsspec_mc::Config::resume_script`] on the way back in, so the
/// suite as a whole keeps the partition invariant
/// `executions(full) == executions(to checkpoint) + executions(resumed)`.
///
/// A wall-clock [`cdsspec_mc::Config::time_budget`] covers the whole
/// suite, not each part: later parts run on whatever remains.
pub fn check_suite<S>(config: cdsspec_mc::Config, parts: Vec<SuitePart<S>>) -> cdsspec_mc::Stats
where
    S: Send + 'static,
{
    let last = parts.len().saturating_sub(1);
    // Three resume channels, in precedence order: a shard set from an
    // interrupted parallel run (every shard carries the same part-index
    // prefix — shards never span parts), a single prefixed script, or
    // nothing. Peeling the part index off a shard also lowers its floor:
    // the synthetic prefix element sits below every real choice point.
    let (start, inner_script, inner_shards) = match (&config.resume_shards, &config.resume_script) {
        (Some(shards), _) if !shards.is_empty() && !shards[0].script.is_empty() => {
            let idx = shards[0].script[0].min(last);
            let inner: Vec<cdsspec_mc::ShardSpec> = shards
                .iter()
                .filter(|s| !s.script.is_empty())
                .map(|s| cdsspec_mc::ShardSpec {
                    floor: s.floor.saturating_sub(1),
                    script: s.script[1..].to_vec(),
                })
                .collect();
            (idx, None, Some(inner))
        }
        (_, Some(script)) if !script.is_empty() => {
            (script[0].min(last), Some(script[1..].to_vec()), None)
        }
        _ => (0, None, None),
    };
    let deadline = config.time_budget.map(|b| std::time::Instant::now() + b);
    let mut acc = cdsspec_mc::Stats::default();
    for (idx, (spec, test)) in parts.into_iter().enumerate().skip(start) {
        let mut part_config = config.clone();
        (part_config.resume_script, part_config.resume_shards) = if idx == start {
            (inner_script.clone(), inner_shards.clone())
        } else {
            (None, None)
        };
        part_config.time_budget =
            deadline.map(|d| d.saturating_duration_since(std::time::Instant::now()));
        let mut fresh = check(part_config, spec, test);
        if let Some(frontier) = fresh.frontier.take() {
            let mut prefixed = Vec::with_capacity(frontier.len() + 1);
            prefixed.push(idx);
            prefixed.extend(frontier);
            fresh.frontier = Some(prefixed);
        }
        if !fresh.shard_frontiers.is_empty() {
            let shards = std::mem::take(&mut fresh.shard_frontiers);
            fresh.shard_frontiers = shards
                .into_iter()
                .map(|s| {
                    let mut prefixed = Vec::with_capacity(s.script.len() + 1);
                    prefixed.push(idx);
                    prefixed.extend(s.script);
                    cdsspec_mc::ShardSpec {
                        floor: s.floor + 1,
                        script: prefixed,
                    }
                })
                .collect();
        }
        let stop_here = fresh.buggy() || fresh.truncated();
        acc.continue_with(fresh);
        if stop_here {
            break;
        }
    }
    acc
}

/// Like [`check`] but panics with a diagnostic on the first violation —
/// the loom-style assertion form.
pub fn check_ok<S, F>(spec: Spec<S>, test: F) -> cdsspec_mc::Stats
where
    S: Send + 'static,
    F: Fn() + Send + Sync + 'static,
{
    let stats = check(cdsspec_mc::Config::default(), spec, test);
    if stats.buggy() {
        let b = &stats.bugs[0];
        panic!("specification violated: {}\ntrace:\n{}", b.bug, b.trace);
    }
    stats
}
