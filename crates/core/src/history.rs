//! Sequential-history enumeration.
//!
//! The checker topologically sorts the method-call ordering relation `r` to
//! produce the *valid sequential histories* of an execution (Definition 2)
//! and the *justifying subhistories* of a method call (Definition 3). By
//! default all sortings are generated and checked; because the count can be
//! factorial, a cap plus random sampling is available — mirroring the
//! CDSSpec checker's "user-customized number of sequential histories"
//! option (paper §5.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ordering relation `r` over method calls of one execution, as an
/// adjacency structure (edge `a → b` means `a` must precede `b`).
#[derive(Clone, Debug)]
pub struct CallOrder {
    n: usize,
    /// Reachability matrix: direct edges as added, transitively closed by
    /// [`CallOrder::close`]. The sole edge store — the linear extensions
    /// of a relation and of its closure are the same set, so enumeration
    /// can walk closed rows and a per-vertex successor list would only
    /// duplicate this matrix (one heap vector per call, on the hot
    /// per-execution path).
    reach: Vec<bool>,
}

impl CallOrder {
    /// An order over `n` calls with no edges yet.
    pub fn new(n: usize) -> Self {
        CallOrder {
            n,
            reach: vec![false; n * n],
        }
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the relation empty of calls?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add the edge `a → b`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.reach[a * self.n + b] = true;
    }

    /// Successors of `a` in the (possibly closed) relation.
    fn successors(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&b| self.reach[a * self.n + b])
    }

    /// Transitively close the reachability matrix. Call once after all
    /// edges are added; required before [`CallOrder::ordered`] and
    /// [`CallOrder::predecessors_of`] are meaningful.
    pub fn close(&mut self) {
        for k in 0..self.n {
            for i in 0..self.n {
                if self.reach[i * self.n + k] {
                    for j in 0..self.n {
                        if self.reach[k * self.n + j] {
                            self.reach[i * self.n + j] = true;
                        }
                    }
                }
            }
        }
    }

    /// Is `a` (transitively) ordered before `b`?
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        self.reach[a * self.n + b]
    }

    /// Are `a` and `b` unordered (concurrent) under `r`?
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.ordered(a, b) && !self.ordered(b, a)
    }

    /// Does the (closed) relation contain a cycle?
    pub fn cyclic(&self) -> bool {
        (0..self.n).any(|i| self.reach[i * self.n + i])
    }

    /// All calls transitively ordered before `m` (the justifying-prefix
    /// set of Definition 3, without `m` itself).
    pub fn predecessors_of(&self, m: usize) -> Vec<usize> {
        (0..self.n).filter(|&i| self.ordered(i, m)).collect()
    }

    /// The restriction of this order to `keep` (indices into the original
    /// call set; result indices are positions in `keep`).
    pub fn restrict(&self, keep: &[usize]) -> CallOrder {
        let mut sub = CallOrder::new(keep.len());
        for (i, &a) in keep.iter().enumerate() {
            for (j, &b) in keep.iter().enumerate() {
                if i != j && self.ordered(a, b) {
                    sub.add_edge(i, j);
                }
            }
        }
        sub.close();
        sub
    }
}

/// Enumeration policy for topological sorts.
#[derive(Clone, Copy, Debug)]
pub enum HistoryPolicy {
    /// Generate every topological sort, up to a hard safety cap.
    Exhaustive {
        /// Safety cap on generated histories.
        cap: usize,
    },
    /// Generate `count` uniformly random topological sorts (with a fixed
    /// seed for reproducibility).
    Sample {
        /// Number of sampled histories.
        count: usize,
        /// PRNG seed (same seed, same samples).
        seed: u64,
    },
}

impl Default for HistoryPolicy {
    fn default() -> Self {
        HistoryPolicy::Exhaustive { cap: 50_000 }
    }
}

/// Enumerate topological sorts of `order` under `policy`, invoking `f` for
/// each; `f` returning `false` stops enumeration early. Returns the number
/// of histories produced (0 for a cyclic order).
pub fn for_each_history<F: FnMut(&[usize]) -> bool>(
    order: &CallOrder,
    policy: HistoryPolicy,
    mut f: F,
) -> usize {
    if order.cyclic() {
        return 0;
    }
    match policy {
        HistoryPolicy::Exhaustive { cap } => {
            // Executions have a handful of calls; keep the bookkeeping on
            // the stack for them (this runs per feasible execution) and
            // fall back to heap vectors past the inline capacity.
            const INLINE: usize = 16;
            let mut count = 0usize;
            if order.n <= INLINE {
                let mut indegree = [0usize; INLINE];
                let mut used = [false; INLINE];
                let mut prefix = [0usize; INLINE];
                seed_indegrees(order, &mut indegree);
                topo_recurse(
                    order,
                    &mut indegree[..order.n],
                    &mut used[..order.n],
                    &mut prefix[..order.n],
                    0,
                    cap,
                    &mut count,
                    &mut f,
                );
            } else {
                let mut indegree = vec![0usize; order.n];
                let mut used = vec![false; order.n];
                let mut prefix = vec![0usize; order.n];
                seed_indegrees(order, &mut indegree);
                topo_recurse(
                    order,
                    &mut indegree,
                    &mut used,
                    &mut prefix,
                    0,
                    cap,
                    &mut count,
                    &mut f,
                );
            }
            count
        }
        HistoryPolicy::Sample { count, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut produced = 0usize;
            for _ in 0..count {
                let h = random_topo(order, &mut rng);
                produced += 1;
                if !f(&h) {
                    break;
                }
            }
            produced
        }
    }
}

/// Count, for every vertex, the incoming edges of the (closed) relation.
/// Closure edges only shift the counts, never the ready condition: a
/// vertex hits zero exactly when all its predecessors — direct or
/// transitive, the same set once closed — are placed.
fn seed_indegrees(order: &CallOrder, indegree: &mut [usize]) {
    for a in 0..order.n {
        for b in order.successors(a) {
            indegree[b] += 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn topo_recurse<F: FnMut(&[usize]) -> bool>(
    order: &CallOrder,
    indegree: &mut [usize],
    used: &mut [bool],
    prefix: &mut [usize],
    depth: usize,
    cap: usize,
    count: &mut usize,
    f: &mut F,
) -> bool {
    if depth == order.n {
        *count += 1;
        if !f(prefix) || *count >= cap {
            return false;
        }
        return true;
    }
    for v in 0..order.n {
        if used[v] || indegree[v] != 0 {
            continue;
        }
        used[v] = true;
        prefix[depth] = v;
        for b in order.successors(v) {
            indegree[b] -= 1;
        }
        let keep_going = topo_recurse(order, indegree, used, prefix, depth + 1, cap, count, f);
        for b in order.successors(v) {
            indegree[b] += 1;
        }
        used[v] = false;
        if !keep_going {
            return false;
        }
    }
    true
}

fn random_topo(order: &CallOrder, rng: &mut StdRng) -> Vec<usize> {
    let mut indegree = vec![0usize; order.n];
    for a in 0..order.n {
        for b in order.successors(a) {
            indegree[b] += 1;
        }
    }
    let mut used = vec![false; order.n];
    let mut out = Vec::with_capacity(order.n);
    while out.len() < order.n {
        let ready: Vec<usize> = (0..order.n)
            .filter(|&v| !used[v] && indegree[v] == 0)
            .collect();
        let v = ready[rng.gen_range(0..ready.len())];
        used[v] = true;
        out.push(v);
        for b in order.successors(v) {
            indegree[b] -= 1;
        }
    }
    out
}

/// Collect all histories into a vector (testing convenience).
pub fn all_histories(order: &CallOrder, policy: HistoryPolicy) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for_each_history(order, policy, |h| {
        out.push(h.to_vec());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> CallOrder {
        let mut o = CallOrder::new(n);
        for i in 1..n {
            o.add_edge(i - 1, i);
        }
        o.close();
        o
    }

    #[test]
    fn total_order_has_one_history() {
        let o = chain(4);
        let hs = all_histories(&o, HistoryPolicy::default());
        assert_eq!(hs, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn empty_order_enumerates_permutations() {
        let mut o = CallOrder::new(3);
        o.close();
        let hs = all_histories(&o, HistoryPolicy::default());
        assert_eq!(hs.len(), 6);
    }

    #[test]
    fn diamond_order() {
        // 0 → {1,2} → 3: two sortings.
        let mut o = CallOrder::new(4);
        o.add_edge(0, 1);
        o.add_edge(0, 2);
        o.add_edge(1, 3);
        o.add_edge(2, 3);
        o.close();
        let hs = all_histories(&o, HistoryPolicy::default());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_eq!(h[0], 0);
            assert_eq!(h[3], 3);
        }
    }

    #[test]
    fn transitive_closure_and_concurrency() {
        let mut o = CallOrder::new(3);
        o.add_edge(0, 1);
        o.add_edge(1, 2);
        o.close();
        assert!(o.ordered(0, 2));
        assert!(!o.concurrent(0, 2));
        let mut p = CallOrder::new(2);
        p.close();
        assert!(p.concurrent(0, 1));
    }

    #[test]
    fn cycle_detection() {
        let mut o = CallOrder::new(2);
        o.add_edge(0, 1);
        o.add_edge(1, 0);
        o.close();
        assert!(o.cyclic());
        assert_eq!(all_histories(&o, HistoryPolicy::default()).len(), 0);
    }

    #[test]
    fn predecessors_and_restriction() {
        let mut o = CallOrder::new(4);
        o.add_edge(0, 2);
        o.add_edge(1, 2);
        o.close();
        assert_eq!(o.predecessors_of(2), vec![0, 1]);
        assert_eq!(o.predecessors_of(3), Vec::<usize>::new());
        let keep = vec![0, 1, 2];
        let sub = o.restrict(&keep);
        assert_eq!(sub.len(), 3);
        assert!(sub.ordered(0, 2) && sub.ordered(1, 2));
        assert!(sub.concurrent(0, 1));
    }

    #[test]
    fn cap_stops_enumeration() {
        let mut o = CallOrder::new(6); // 720 permutations
        o.close();
        let mut seen = 0;
        let n = for_each_history(&o, HistoryPolicy::Exhaustive { cap: 10 }, |_| {
            seen += 1;
            true
        });
        assert_eq!(n, 10);
        assert_eq!(seen, 10);
    }

    #[test]
    fn early_stop_via_callback() {
        let mut o = CallOrder::new(3);
        o.close();
        let n = for_each_history(&o, HistoryPolicy::default(), |_| false);
        assert_eq!(n, 1);
    }

    #[test]
    fn sampling_respects_edges() {
        let mut o = CallOrder::new(5);
        o.add_edge(0, 4);
        o.add_edge(2, 3);
        o.close();
        let hs = all_histories(&o, HistoryPolicy::Sample { count: 20, seed: 7 });
        assert_eq!(hs.len(), 20);
        for h in hs {
            let pos = |x: usize| h.iter().position(|&v| v == x).unwrap();
            assert!(pos(0) < pos(4));
            assert!(pos(2) < pos(3));
        }
    }

    #[test]
    fn zero_call_order() {
        let mut o = CallOrder::new(0);
        o.close();
        assert!(o.is_empty());
        let hs = all_histories(&o, HistoryPolicy::default());
        assert_eq!(hs, vec![Vec::<usize>::new()]);
    }
}
