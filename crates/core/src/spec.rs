//! The CDSSpec specification DSL.
//!
//! The paper embeds specifications in C comments compiled by a dedicated
//! specification compiler. The Rust-native port expresses the same
//! constructs as first-class values:
//!
//! | paper annotation            | here                                    |
//! |-----------------------------|-----------------------------------------|
//! | `@DeclareState`             | the `S` type parameter + `init` closure |
//! | `@Initial/@Copy/@Clear`     | `Default`/`Clone`/`Drop` of `S`         |
//! | `@SideEffect`               | [`MethodSpec::side_effect`]             |
//! | `@PreCondition`             | [`MethodSpec::pre`]                     |
//! | `@PostCondition`            | [`MethodSpec::post`]                    |
//! | `@JustifyingPrecondition`   | [`MethodSpec::justify_pre`]             |
//! | `@JustifyingPostcondition`  | [`MethodSpec::justify_post`]            |
//! | `@Admit: m1<->m2(guard)`    | [`Spec::admit`]                         |
//! | `S_RET` / `C_RET`           | [`CallEval::s_ret`] / [`CallEval::ret`] |
//! | `CONCURRENT`                | [`CallEval::concurrent`]                |
//!
//! Ordering-point annotations (`@OPDefine` etc.) are *dynamic* and live in
//! [`crate::annotations`]; data-structure methods call them at the same
//! program points the C annotations occupy.

use cdsspec_c11::SpecVal;

use crate::call::MethodCall;
use crate::history::HistoryPolicy;

/// Evaluation context of one method call inside a sequential execution:
/// the concrete call record plus the sequential return value (`S_RET`) and
/// the `CONCURRENT` set.
pub struct CallEval {
    /// The concrete method call (gives `C_RET` and arguments).
    pub call: MethodCall,
    /// The sequential data structure's return value, set by the side
    /// effect (the paper's `S_RET`). Defaults to `Unit`.
    pub s_ret: SpecVal,
    /// Method calls concurrent with this one under `r` (the paper's
    /// `CONCURRENT` primitive; only populated for justifying conditions
    /// and postconditions, where the paper permits consulting it).
    pub concurrent: Vec<MethodCall>,
}

impl CallEval {
    /// `i`-th argument of the concrete call.
    pub fn arg(&self, i: usize) -> SpecVal {
        self.call.arg(i)
    }

    /// The concrete return value (`C_RET`).
    pub fn ret(&self) -> SpecVal {
        self.call.ret
    }

    /// Set `S_RET` (from a side effect).
    pub fn set_s_ret(&mut self, v: impl Into<SpecVal>) {
        self.s_ret = v.into();
    }
}

/// Condition closure: `(sequential state, call context) → holds?`.
pub type Pred<S> = Box<dyn Fn(&S, &CallEval) -> bool + Send + Sync>;
/// Admissibility guard closure over a concrete method-call pair.
pub type AdmitGuard = Box<dyn Fn(&MethodCall, &MethodCall) -> bool + Send + Sync>;
/// Side-effect closure: mutates the sequential state and may set `S_RET`.
pub type Effect<S> = Box<dyn Fn(&mut S, &mut CallEval) + Send + Sync>;

/// Specification of one API method.
pub struct MethodSpec<S> {
    pub(crate) name: &'static str,
    pub(crate) pre: Option<Pred<S>>,
    pub(crate) side_effect: Option<Effect<S>>,
    pub(crate) post: Option<Pred<S>>,
    pub(crate) justify_pre: Option<Pred<S>>,
    pub(crate) justify_post: Option<Pred<S>>,
}

impl<S> MethodSpec<S> {
    /// A method spec with no conditions (side-effect-free, always passes).
    /// Usually constructed through [`Spec::method`], which pins the state
    /// type so closure parameters infer.
    pub fn new(name: &'static str) -> Self {
        MethodSpec {
            name,
            pre: None,
            side_effect: None,
            post: None,
            justify_pre: None,
            justify_post: None,
        }
    }

    /// `@PreCondition`: checked before the call executes in a sequential
    /// history.
    pub fn pre(mut self, f: impl Fn(&S, &CallEval) -> bool + Send + Sync + 'static) -> Self {
        self.pre = Some(Box::new(f));
        self
    }

    /// `@SideEffect`: the call's action on the equivalent sequential data
    /// structure.
    pub fn side_effect(
        mut self,
        f: impl Fn(&mut S, &mut CallEval) + Send + Sync + 'static,
    ) -> Self {
        self.side_effect = Some(Box::new(f));
        self
    }

    /// `@PostCondition`: checked after the call executes in a sequential
    /// history.
    pub fn post(mut self, f: impl Fn(&S, &CallEval) -> bool + Send + Sync + 'static) -> Self {
        self.post = Some(Box::new(f));
        self
    }

    /// `@JustifyingPrecondition`: checked before the call executes in a
    /// sequential execution over one of its justifying subhistories.
    pub fn justify_pre(
        mut self,
        f: impl Fn(&S, &CallEval) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.justify_pre = Some(Box::new(f));
        self
    }

    /// `@JustifyingPostcondition`: checked after the call executes on a
    /// justifying subhistory; at least one subhistory must satisfy it.
    pub fn justify_post(
        mut self,
        f: impl Fn(&S, &CallEval) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.justify_post = Some(Box::new(f));
        self
    }

    /// Does this method constrain non-deterministic behaviors?
    pub(crate) fn has_justification(&self) -> bool {
        self.justify_pre.is_some() || self.justify_post.is_some()
    }
}

/// An admissibility rule (`@Admit: m1<->m2(guard)`): when `guard` holds on
/// a concrete `(m1, m2)` pair, the two calls are **required to be ordered**
/// by `r`; an execution leaving them unordered is inadmissible.
pub struct AdmissibilityRule {
    pub(crate) m1: &'static str,
    pub(crate) m2: &'static str,
    pub(crate) guard: AdmitGuard,
}

/// A full data-structure specification: the equivalent sequential data
/// structure (`S` + `init`), per-method specs, and admissibility rules.
pub struct Spec<S> {
    /// Data-structure name (diagnostics and the §6.2 statistics harness).
    pub name: &'static str,
    pub(crate) init: Box<dyn Fn() -> S + Send + Sync>,
    pub(crate) methods: Vec<MethodSpec<S>>,
    pub(crate) admissibility: Vec<AdmissibilityRule>,
    /// History-enumeration policy (paper §5.2: all sortings by default,
    /// optionally a random sample).
    pub policy: HistoryPolicy,
}

impl<S> Spec<S> {
    /// A specification with sequential state built by `init`.
    pub fn new(name: &'static str, init: impl Fn() -> S + Send + Sync + 'static) -> Self {
        Spec {
            name,
            init: Box::new(init),
            methods: Vec::new(),
            admissibility: Vec::new(),
            policy: HistoryPolicy::default(),
        }
    }

    /// Register a method spec, built by `build` from an empty
    /// [`MethodSpec`] (this shape lets closure parameter types infer from
    /// `Spec<S>`):
    ///
    /// ```ignore
    /// spec.method("enq", |m| m.side_effect(|st, e| st.push_back(e.arg(0).as_i64())))
    /// ```
    pub fn method(
        mut self,
        name: &'static str,
        build: impl FnOnce(MethodSpec<S>) -> MethodSpec<S>,
    ) -> Self {
        let m = build(MethodSpec::new(name));
        assert!(
            self.methods.iter().all(|x| x.name != m.name),
            "duplicate method spec `{}`",
            m.name
        );
        self.methods.push(m);
        self
    }

    /// Add an admissibility rule.
    pub fn admit(
        mut self,
        m1: &'static str,
        m2: &'static str,
        guard: impl Fn(&MethodCall, &MethodCall) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.admissibility.push(AdmissibilityRule {
            m1,
            m2,
            guard: Box::new(guard),
        });
        self
    }

    /// Override the history-enumeration policy.
    pub fn with_policy(mut self, policy: HistoryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Look up a method spec by name.
    pub(crate) fn lookup(&self, name: &str) -> Option<&MethodSpec<S>> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Number of method specs (statistics harness).
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of admissibility rules (statistics harness).
    pub fn admissibility_rule_count(&self) -> usize {
        self.admissibility.len()
    }

    /// Names of specified methods.
    pub fn method_names(&self) -> Vec<&'static str> {
        self.methods.iter().map(|m| m.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::CallId;
    use cdsspec_c11::Tid;
    use std::collections::VecDeque;

    fn call(name: &'static str, args: Vec<SpecVal>, ret: SpecVal) -> MethodCall {
        MethodCall {
            id: CallId(0),
            tid: Tid(0),
            obj: 1,
            name,
            args,
            ret,
            ordering_points: vec![],
        }
    }

    #[test]
    fn builder_assembles_queue_spec() {
        let spec = Spec::new("queue", VecDeque::<i64>::new)
            .method("enq", |m| {
                m.side_effect(|s, e| s.push_back(e.arg(0).as_i64()))
            })
            .method("deq", |m| {
                m.side_effect(|s, e| {
                    let s_ret = s.front().copied().unwrap_or(-1);
                    e.set_s_ret(s_ret);
                    if s_ret != -1 && e.ret().as_i64() != -1 {
                        s.pop_front();
                    }
                })
                .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
                .justify_post(|_, e| e.ret().as_i64() != -1 || e.s_ret.as_i64() == -1)
            })
            .admit("deq", "enq", |d, _| d.ret.as_i64() == -1);
        assert_eq!(spec.method_count(), 2);
        assert_eq!(spec.admissibility_rule_count(), 1);
        assert_eq!(spec.method_names(), vec!["enq", "deq"]);
        assert!(spec.lookup("deq").unwrap().has_justification());
        assert!(!spec.lookup("enq").unwrap().has_justification());
        assert!(spec.lookup("nope").is_none());
    }

    #[test]
    fn side_effect_and_conditions_evaluate() {
        let spec = Spec::new("queue", VecDeque::<i64>::new).method("deq", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.front().copied().unwrap_or(-1);
                e.set_s_ret(s_ret);
                if s_ret != -1 && e.ret().as_i64() != -1 {
                    s.pop_front();
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
        });
        let m = spec.lookup("deq").unwrap();
        let mut state: VecDeque<i64> = VecDeque::from([5]);
        let mut eval = CallEval {
            call: call("deq", vec![], SpecVal::I64(5)),
            s_ret: SpecVal::Unit,
            concurrent: vec![],
        };
        (m.side_effect.as_ref().unwrap())(&mut state, &mut eval);
        assert_eq!(eval.s_ret, SpecVal::I64(5));
        assert!(state.is_empty());
        assert!((m.post.as_ref().unwrap())(&state, &eval));

        // A deq returning the wrong item fails the postcondition.
        let mut state: VecDeque<i64> = VecDeque::from([5]);
        let mut eval = CallEval {
            call: call("deq", vec![], SpecVal::I64(9)),
            s_ret: SpecVal::Unit,
            concurrent: vec![],
        };
        (m.side_effect.as_ref().unwrap())(&mut state, &mut eval);
        assert!(!(m.post.as_ref().unwrap())(&state, &eval));
    }

    #[test]
    #[should_panic(expected = "duplicate method spec")]
    fn duplicate_method_panics() {
        let _: Spec<()> = Spec::new("x", || ()).method("m", |m| m).method("m", |m| m);
    }

    #[test]
    fn admissibility_guard_runs() {
        let spec: Spec<()> = Spec::new("q", || ()).admit("deq", "enq", |d, _| d.ret.as_i64() == -1);
        let rule = &spec.admissibility[0];
        let failed_deq = call("deq", vec![], SpecVal::I64(-1));
        let ok_deq = call("deq", vec![], SpecVal::I64(3));
        let enq = call("enq", vec![SpecVal::I64(3)], SpecVal::Unit);
        assert!((rule.guard)(&failed_deq, &enq));
        assert!(!(rule.guard)(&ok_deq, &enq));
    }
}
