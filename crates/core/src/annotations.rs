//! Dynamic instrumentation API — the run-time counterpart of the paper's
//! ordering-point and method-boundary annotations.
//!
//! Data-structure methods call these free functions at exactly the program
//! points where the C version carries `/** @... */` comments:
//!
//! ```ignore
//! pub fn enq(&self, val: i64) {
//!     method_begin("enq");
//!     arg(val);
//!     loop {
//!         let t = self.tail.load(acquire);
//!         if tail_next.compare_exchange(...).is_ok() {
//!             op_define();            // @OPDefine: true
//!             self.tail.store(...);
//!             break;
//!         }
//!     }
//!     method_end(());
//! }
//! ```
//!
//! Outside a model-checking run (`mc::in_model() == false`) every function
//! is a no-op, so instrumented structures remain usable as ordinary code —
//! the same property the paper gets from putting annotations in comments.

use cdsspec_c11::{SpecNote, SpecVal};
use cdsspec_mc as mc;

#[inline]
fn note(n: SpecNote) {
    if mc::in_model() {
        mc::annotate(n);
    }
}

/// Mark the start of an API method call (its *invocation* event) on the
/// data-structure instance identified by `obj` (from
/// [`cdsspec_mc::new_object_id`]); instances are specified and checked
/// independently (composition, paper §3.2).
pub fn method_begin(obj: u64, name: &'static str) {
    note(SpecNote::MethodBegin { obj, name });
}

/// Record an argument of the current method call.
pub fn arg(v: impl Into<SpecVal>) {
    note(SpecNote::MethodArg { val: v.into() });
}

/// Mark the end of the current method call with its return value (the
/// *response* event; the value becomes `C_RET`).
pub fn method_end(ret: impl Into<SpecVal>) {
    note(SpecNote::MethodEnd { ret: ret.into() });
}

/// `@OPDefine: true` — the immediately-preceding atomic operation is an
/// ordering point of the current method call.
pub fn op_define() {
    note(SpecNote::OpDefine);
}

/// `@OPDefine: cond` — conditional form.
pub fn op_define_if(cond: bool) {
    if cond {
        op_define();
    }
}

/// `@OPClear` — discard all ordering points observed so far in this call.
pub fn op_clear() {
    note(SpecNote::OpClear);
}

/// `@OPClearDefine` — the paper's syntactic sugar for `@OPClear` followed
/// by `@OPDefine` (the common "last loop iteration wins" idiom).
pub fn op_clear_define() {
    note(SpecNote::OpClear);
    note(SpecNote::OpDefine);
}

/// `@OPClearDefine: cond` — conditional form.
pub fn op_clear_define_if(cond: bool) {
    if cond {
        op_clear_define();
    }
}

/// `@PotentialOP(label)` — the preceding atomic operation may be an
/// ordering point, to be confirmed by a later [`op_check`].
pub fn potential_op(label: &'static str) {
    note(SpecNote::PotentialOp { label });
}

/// `@PotentialOP(label): cond` — conditional form.
pub fn potential_op_if(label: &'static str, cond: bool) {
    if cond {
        potential_op(label);
    }
}

/// `@OPCheck(label)` — confirm all pending potential ordering points with
/// `label`.
pub fn op_check(label: &'static str) {
    note(SpecNote::OpCheck { label });
}

/// `@OPCheck(label): cond` — conditional form.
pub fn op_check_if(label: &'static str, cond: bool) {
    if cond {
        op_check(label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Outside a model run every annotation is a no-op (no panic).
    #[test]
    fn noop_outside_model() {
        method_begin(0, "m");
        arg(1i64);
        op_define();
        op_clear();
        op_clear_define();
        potential_op("x");
        op_check("x");
        op_define_if(true);
        op_check_if("x", false);
        method_end(-1i64);
    }
}
