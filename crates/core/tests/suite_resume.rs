//! `check_suite` resumability: interrupting a multi-part benchmark suite
//! at any point and resuming from the reported frontier must visit
//! exactly the executions a straight-through run would have — the
//! partition invariant that makes the evaluation harness's
//! checkpoint/resume exact even for the suite benchmarks.

use std::time::Duration;

use cdsspec_core as spec;
use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{Atomic, Config};
use spec::{check_suite, Spec, SuitePart};

fn part_a() {
    let x = Atomic::new(0i64);
    let t = mc::thread::spawn(move || x.store(1, Relaxed));
    let _ = x.load(Relaxed);
    t.join();
}

fn part_b() {
    let x = Atomic::new(0i64);
    let y = Atomic::new(0i64);
    let t1 = mc::thread::spawn(move || x.store(1, Relaxed));
    let t2 = mc::thread::spawn(move || y.store(1, Relaxed));
    let _ = x.load(Relaxed);
    let _ = y.load(Relaxed);
    t1.join();
    t2.join();
}

/// The raw-atomics closures make no specification calls, so an empty
/// spec sees clean executions and the suite exercises pure exploration.
fn suite() -> Vec<SuitePart<()>> {
    vec![
        (Spec::new("noop", || ()), Box::new(part_a)),
        (Spec::new("noop", || ()), Box::new(part_b)),
    ]
}

#[test]
fn suite_runs_all_parts() {
    let full = check_suite(Config::default(), suite());
    assert_eq!(full.stop, mc::StopReason::Exhausted, "{}", full.summary());
    assert!(full.frontier.is_none());
    let a = spec::check(Config::default(), Spec::new("noop", || ()), part_a);
    let b = spec::check(Config::default(), Spec::new("noop", || ()), part_b);
    assert_eq!(full.executions, a.executions + b.executions);
}

/// Cutting the suite at every sampled cap and resuming from the reported
/// frontier partitions the executions exactly, whichever part the cap
/// lands in.
#[test]
fn suite_partitions_across_any_cut() {
    let full = check_suite(Config::default(), suite());
    let part_a_total = spec::check(Config::default(), Spec::new("noop", || ()), part_a).executions;
    let stride = (full.executions / 8).max(1) as usize;
    // Sampled caps, plus forced cuts inside part A (cap 1) and inside
    // part B (cap just past part A's tree).
    let caps = (1..full.executions)
        .step_by(stride)
        .chain([1, part_a_total + 1])
        .collect::<Vec<_>>();
    for cap in caps {
        // `workers: 1` on the cut: `resume_script` resumption needs the
        // single-shard frontier only the sequential engine guarantees.
        let cut = check_suite(
            Config {
                max_executions: cap,
                workers: 1,
                ..Config::default()
            },
            suite(),
        );
        if cut.stop == mc::StopReason::Exhausted {
            // The per-part cap never fired (each part is under `cap`).
            assert_eq!(cut.executions, full.executions);
            continue;
        }
        assert_eq!(
            cut.stop,
            mc::StopReason::ExecutionCap,
            "cap {cap}: {}",
            cut.summary()
        );
        let frontier = cut
            .frontier
            .clone()
            .expect("capped suite leaves a frontier");
        // The per-part cap cuts part A only while it is below part A's
        // tree size; at or past it, part A exhausts and part B truncates.
        let expected_part = usize::from(cap >= part_a_total);
        assert_eq!(
            frontier[0], expected_part,
            "cap {cap} cuts in part {expected_part}"
        );
        let resumed = check_suite(
            Config {
                resume_script: Some(frontier),
                ..Config::default()
            },
            suite(),
        );
        assert_eq!(
            cut.executions + resumed.executions,
            full.executions,
            "cap {cap}: cut {} + resumed {} != full {}",
            cut.summary(),
            resumed.summary(),
            full.summary()
        );
    }
}

/// A *parallel* suite cut leaves part-prefixed frontier shards in
/// `Stats::shard_frontiers`, and resuming through
/// `Config::resume_shards` partitions the executions exactly — at any
/// worker count on either side of the cut.
#[test]
fn suite_parallel_cut_resumes_through_shards() {
    let full = check_suite(
        Config {
            workers: 1,
            ..Config::default()
        },
        suite(),
    );
    let part_a_total = spec::check(Config::default(), Spec::new("noop", || ()), part_a).executions;
    // One cap inside part A's tree, one inside part B's.
    for cap in [2, part_a_total + 2] {
        let cut = check_suite(
            Config {
                max_executions: cap,
                workers: 2,
                ..Config::default()
            },
            suite(),
        );
        if cut.stop == mc::StopReason::Exhausted {
            assert_eq!(cut.executions, full.executions);
            continue;
        }
        assert!(
            !cut.shard_frontiers.is_empty(),
            "cap {cap}: a truncated parallel suite leaves shards: {}",
            cut.summary()
        );
        for resume_workers in [1, 3] {
            let resumed = check_suite(
                Config {
                    resume_shards: Some(cut.shard_frontiers.clone()),
                    workers: resume_workers,
                    ..Config::default()
                },
                suite(),
            );
            assert_eq!(
                cut.executions + resumed.executions,
                full.executions,
                "cap {cap}, resume at {resume_workers} workers: cut {} + resumed {} != full {}",
                cut.summary(),
                resumed.summary(),
                full.summary()
            );
            assert_eq!(resumed.stop, mc::StopReason::Exhausted);
        }
    }
}

/// Reads-from equivalence pruning composes with suite shard peeling: a
/// pruned suite reports the same bug set and rf classes as an unpruned
/// one, and a pruned parallel cut resumed through part-prefixed shards
/// still partitions every counter — including `executions_pruned` —
/// exactly.
#[test]
fn suite_rf_pruning_is_sound_across_peeled_shards() {
    let pruned_cfg = || Config {
        rf_prune: true,
        workers: 1,
        ..Config::default()
    };
    let full = check_suite(pruned_cfg(), suite());
    let unpruned = check_suite(
        Config {
            rf_prune: false,
            workers: 1,
            ..Config::default()
        },
        suite(),
    );
    let msgs = |s: &mc::Stats| {
        let mut m: Vec<String> = s.bugs.iter().map(|b| b.bug.to_string()).collect();
        m.sort();
        m
    };
    assert_eq!(
        msgs(&full),
        msgs(&unpruned),
        "pruning changed the suite's bug set"
    );
    assert_eq!(
        full.rf_classes, unpruned.rf_classes,
        "pruning changed the suite's rf classes"
    );
    assert!(
        full.executions < unpruned.executions,
        "pruning did not engage on the suite: {} vs {}",
        full.summary(),
        unpruned.summary()
    );

    // Parallel pruned cut inside part B, resumed through peeled shards.
    let part_a_total = spec::check(pruned_cfg(), Spec::new("noop", || ()), part_a).executions;
    let cut = check_suite(
        Config {
            max_executions: part_a_total + 1,
            workers: 2,
            rf_prune: true,
            ..Config::default()
        },
        suite(),
    );
    if cut.stop == mc::StopReason::Exhausted {
        assert_eq!(cut.executions, full.executions);
        return;
    }
    assert!(!cut.shard_frontiers.is_empty(), "{}", cut.summary());
    let resumed = check_suite(
        Config {
            resume_shards: Some(cut.shard_frontiers.clone()),
            workers: 2,
            rf_prune: true,
            ..Config::default()
        },
        suite(),
    );
    assert_eq!(
        cut.executions + resumed.executions,
        full.executions,
        "cut {} + resumed {} != full {}",
        cut.summary(),
        resumed.summary(),
        full.summary()
    );
    assert_eq!(
        cut.executions_pruned + resumed.executions_pruned,
        full.executions_pruned,
        "pruned-branch counts must partition: cut {} + resumed {} != full {}",
        cut.summary(),
        resumed.summary(),
        full.summary()
    );
    let mut classes = cut.rf_classes.clone();
    classes.extend(resumed.rf_classes.iter().copied());
    assert_eq!(
        classes, full.rf_classes,
        "rf classes must union to the full set"
    );
}

/// A wall-clock budget of zero stops the suite with a resumable frontier
/// in its first part, and the resumed run completes the tree.
#[test]
fn suite_deadline_resumes_exactly() {
    let full = check_suite(Config::default(), suite());
    let cut = check_suite(
        Config {
            time_budget: Some(Duration::ZERO),
            workers: 1,
            ..Config::default()
        },
        suite(),
    );
    assert_eq!(cut.stop, mc::StopReason::Deadline, "{}", cut.summary());
    let frontier = cut.frontier.clone().expect("deadline leaves a frontier");
    assert_eq!(frontier[0], 0, "a zero budget stops in the first part");
    let resumed = check_suite(
        Config {
            resume_script: Some(frontier),
            ..Config::default()
        },
        suite(),
    );
    assert_eq!(cut.executions + resumed.executions, full.executions);
    assert_eq!(resumed.stop, mc::StopReason::Exhausted);
}
