//! Property tests for sequential-history enumeration and call extraction.

use cdsspec_core::{all_histories, CallOrder, HistoryPolicy};
use proptest::prelude::*;

/// Build a random DAG over `n` nodes: edge (i, j) with i < j included per
/// the bitmask — guarantees acyclicity by construction.
fn dag_strategy(n: usize) -> impl Strategy<Value = CallOrder> {
    let bits = n * (n - 1) / 2;
    prop::collection::vec(any::<bool>(), bits).prop_map(move |mask| {
        let mut o = CallOrder::new(n);
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if mask[k] {
                    o.add_edge(i, j);
                }
                k += 1;
            }
        }
        o.close();
        o
    })
}

/// Brute-force topological-sort count by filtering all permutations.
fn brute_force_count(o: &CallOrder) -> usize {
    fn perms(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for p in perms(n - 1) {
            for pos in 0..=p.len() {
                let mut q = p.clone();
                q.insert(pos, n - 1);
                out.push(q);
            }
        }
        out
    }
    perms(o.len())
        .into_iter()
        .filter(|p| {
            let pos: Vec<usize> = {
                let mut v = vec![0; p.len()];
                for (i, &x) in p.iter().enumerate() {
                    v[x] = i;
                }
                v
            };
            (0..o.len()).all(|a| (0..o.len()).all(|b| !o.ordered(a, b) || pos[a] < pos[b]))
        })
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Exhaustive enumeration produces exactly the valid permutations.
    #[test]
    fn exhaustive_matches_brute_force(o in dag_strategy(5)) {
        let hs = all_histories(&o, HistoryPolicy::Exhaustive { cap: 100_000 });
        prop_assert_eq!(hs.len(), brute_force_count(&o));
        // Each history is a valid permutation respecting every edge.
        for h in &hs {
            let mut seen = vec![false; o.len()];
            for &x in h {
                seen[x] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "not a permutation: {:?}", h);
            let pos: Vec<usize> = {
                let mut v = vec![0; h.len()];
                for (i, &x) in h.iter().enumerate() { v[x] = i; }
                v
            };
            for a in 0..o.len() {
                for b in 0..o.len() {
                    if o.ordered(a, b) {
                        prop_assert!(pos[a] < pos[b], "edge {}->{} violated in {:?}", a, b, h);
                    }
                }
            }
        }
        // No duplicates.
        let mut sorted = hs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), hs.len());
    }

    /// Random sampling only ever produces valid histories.
    #[test]
    fn sampling_respects_order(o in dag_strategy(6), seed in any::<u64>()) {
        let hs = all_histories(&o, HistoryPolicy::Sample { count: 12, seed });
        prop_assert_eq!(hs.len(), 12);
        for h in &hs {
            let pos: Vec<usize> = {
                let mut v = vec![0; h.len()];
                for (i, &x) in h.iter().enumerate() { v[x] = i; }
                v
            };
            for a in 0..o.len() {
                for b in 0..o.len() {
                    if o.ordered(a, b) {
                        prop_assert!(pos[a] < pos[b]);
                    }
                }
            }
        }
    }

    /// `predecessors_of` + `restrict` agree with the closed reachability:
    /// restriction to a prefix keeps exactly the inherited order.
    #[test]
    fn restriction_is_consistent(o in dag_strategy(6), target in 0usize..6) {
        let prefix = o.predecessors_of(target);
        let mut scope = prefix.clone();
        scope.push(target);
        let sub = o.restrict(&scope);
        prop_assert_eq!(sub.len(), scope.len());
        for (i, &a) in scope.iter().enumerate() {
            for (j, &b) in scope.iter().enumerate() {
                if i != j {
                    prop_assert_eq!(sub.ordered(i, j), o.ordered(a, b));
                }
            }
        }
        // The target can always be last in some sorting of the scope.
        let hs = all_histories(&sub, HistoryPolicy::Exhaustive { cap: 100_000 });
        let last_pos = scope.len() - 1;
        prop_assert!(
            hs.iter().any(|h| *h.last().unwrap() == last_pos),
            "target cannot be placed last"
        );
    }
}
