//! Semantic tests of the checker internals (`extract_calls`,
//! `build_call_order`) against real traces produced by the model checker,
//! via a probe plugin.

use cdsspec_core as spec;
use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{Atomic, Config};
use spec::{build_call_order, extract_calls};
use std::sync::{Arc, Mutex};

/// One execution's probe record: (call name, value) list + `r` edge list.
type ProbeRecord = (Vec<(&'static str, i64)>, Vec<(usize, usize)>);

/// Record (per execution) the extracted calls and their order relation as
/// an edge list.
fn probe_orders<F>(test: F) -> Vec<ProbeRecord>
where
    F: Fn() + Send + Sync + 'static,
{
    let acc: Arc<Mutex<Vec<ProbeRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let acc2 = Arc::clone(&acc);
    let plugin = mc::FnPlugin::new("probe", move |trace| {
        let calls = extract_calls(trace).expect("well-formed annotations");
        let order = build_call_order(trace, &calls);
        let names: Vec<(&'static str, i64)> = calls
            .iter()
            .map(|c| {
                let v = match c.ret {
                    spec::SpecVal::I64(v) => v,
                    _ => c.args.first().map(|a| a.as_i64()).unwrap_or(0),
                };
                (c.name, v)
            })
            .collect();
        let mut edges = Vec::new();
        for i in 0..calls.len() {
            for j in 0..calls.len() {
                if i != j && order.ordered(i, j) {
                    edges.push((i, j));
                }
            }
        }
        acc2.lock().unwrap().push((names, edges));
        Vec::new()
    });
    let stats = mc::explore_with_plugins(Config::default(), vec![Box::new(plugin)], test);
    assert!(!stats.buggy());
    Arc::try_unwrap(acc).unwrap().into_inner().unwrap()
}

/// A tiny annotated register for driving the probes.
#[derive(Clone)]
struct Probe {
    obj: u64,
    cell: Atomic<i64>,
}

impl Probe {
    fn new() -> Self {
        Probe {
            obj: mc::new_object_id(),
            cell: Atomic::new(0),
        }
    }
    fn put(&self, v: i64) {
        spec::method_begin(self.obj, "put");
        spec::arg(v);
        self.cell.store(v, Release);
        spec::op_define();
        spec::method_end(());
    }
    fn get(&self) -> i64 {
        spec::method_begin(self.obj, "get");
        let v = self.cell.load(Acquire);
        spec::op_define();
        spec::method_end(v);
        v
    }
}

/// Same-thread calls are always r-ordered by program order (sb ⊆ hb).
#[test]
fn program_order_always_orders_calls() {
    for (names, edges) in probe_orders(|| {
        let p = Probe::new();
        p.put(1);
        p.put(2);
        let _ = p.get();
    }) {
        assert_eq!(names.len(), 3);
        assert!(edges.contains(&(0, 1)), "{edges:?}");
        assert!(edges.contains(&(1, 2)), "{edges:?}");
        assert!(edges.contains(&(0, 2)), "transitive closure: {edges:?}");
    }
}

/// A reader that observed the writer's release store is ordered after it;
/// a reader that read the initial value is not ordered after the write.
#[test]
fn reads_from_determines_cross_thread_order() {
    let runs = probe_orders(|| {
        let p = Probe::new();
        let p1 = p.clone();
        let t = mc::thread::spawn(move || p1.put(7));
        let _ = p.get();
        t.join();
    });
    let mut saw_ordered = false;
    let mut saw_concurrent = false;
    for (names, edges) in runs {
        let put = names.iter().position(|(n, _)| *n == "put").unwrap();
        let get = names.iter().position(|(n, _)| *n == "get").unwrap();
        let got = names[get].1;
        if got == 7 {
            assert!(
                edges.contains(&(put, get)),
                "acquired read ⇒ r-ordered: {edges:?}"
            );
            saw_ordered = true;
        } else {
            assert!(
                !edges.contains(&(put, get)) && !edges.contains(&(get, put)),
                "stale read ⇒ concurrent: {edges:?}"
            );
            saw_concurrent = true;
        }
    }
    assert!(
        saw_ordered && saw_concurrent,
        "both behaviors must be explored"
    );
}

/// Calls on different objects never share an order relation (per-object
/// grouping) — `build_call_order` is computed per group by the checker,
/// but even the raw relation across objects only ever flows through
/// ordering points, which we verify by probing two disjoint registers in
/// one thread: their calls interleave in program order.
#[test]
fn per_object_extraction_keeps_instances_apart() {
    let runs = probe_orders(|| {
        let a = Probe::new();
        let b = Probe::new();
        a.put(1);
        b.put(2);
        let _ = a.get();
        let _ = b.get();
    });
    for (names, _) in runs {
        assert_eq!(names.len(), 4);
        // Extraction preserved all four calls with their objects distinct —
        // the checker groups by obj before checking; here we just confirm
        // the records exist and carry values.
        assert_eq!(names.iter().filter(|(n, _)| *n == "put").count(), 2);
    }
}

/// OPClear inside a retry loop leaves exactly the final attempt as the
/// ordering point: a CAS-retry method is ordered by its last (successful)
/// operation, so two contending calls are always r-ordered.
#[test]
fn retry_loops_order_by_final_attempt() {
    #[derive(Clone)]
    struct Counter {
        obj: u64,
        cell: Atomic<i64>,
    }
    impl Counter {
        fn bump(&self) -> i64 {
            spec::method_begin(self.obj, "bump");
            let mut cur = self.cell.load(Acquire);
            loop {
                match self.cell.compare_exchange(cur, cur + 1, AcqRel, Acquire) {
                    Ok(old) => {
                        spec::op_clear_define();
                        spec::method_end(old);
                        return old;
                    }
                    Err(now) => {
                        cur = now;
                        mc::spin_loop();
                    }
                }
            }
        }
    }
    let runs = probe_orders(|| {
        let c = Counter {
            obj: mc::new_object_id(),
            cell: Atomic::new(0),
        };
        let c1 = c.clone();
        let t = mc::thread::spawn(move || {
            let _ = c1.bump();
        });
        let _ = c.bump();
        t.join();
    });
    for (names, edges) in runs {
        assert_eq!(names.len(), 2);
        assert!(
            edges.contains(&(0, 1)) || edges.contains(&(1, 0)),
            "contending RMW calls must always be ordered: {names:?} {edges:?}"
        );
    }
}
