//! The stateless DFS explorer.
//!
//! Re-executes the test closure, replaying a prefix of recorded choices and
//! deviating at the deepest choice point that still has unexplored
//! alternatives — the classic stateless-model-checking loop (CDSChecker,
//! CHESS). Terminates when the whole choice tree is exhausted, the
//! execution cap is hit, or the wall-clock budget expires.
//!
//! ## Resumability
//!
//! The replay script *is* the explorer's complete state: `next_script`
//! computes the first unexplored leaf from the last execution's choices,
//! and a run cut short by the cap or the deadline records that script as
//! its [`Stats::frontier`]. [`explore_from`] restarts DFS at a
//! [`Checkpoint`]'s frontier and visits exactly the leaves the original
//! run had left, so execution counts partition:
//! `executions(full) == executions(to checkpoint) + executions(resumed)`.
//!
//! ## Deadline degradation
//!
//! With `Config::deadline_samples > 0`, a run that hits its deadline
//! additionally probes the *unexplored* region with seeded random-walk
//! executions (each replays the frontier prefix, then resolves choice
//! points by PRNG) — deterministic per `Config::sample_seed`, and the
//! DFS frontier is advanced past each probed subtree so samples spread
//! across the remaining tree instead of clustering under one branch.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use crate::config::Config;
use crate::plugin::Plugin;
use crate::report::{Bug, Checkpoint, FoundBug, Stats, StopReason};
use crate::runtime::{run_once, ChoiceRec, RunOutcome, RunResult};
use crate::worker::{panic_message, Pool};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maximum distinct bug records retained (duplicates across executions are
/// folded; exploration statistics still count every occurrence).
const MAX_BUG_RECORDS: usize = 24;

/// One DFS campaign over a test closure's choice tree.
struct Explorer {
    config: Config,
    pool: Arc<Mutex<Pool>>,
    test: Arc<dyn Fn() + Send + Sync>,
    stats: Stats,
    /// Rendered messages of every bug seen (the dedup key).
    seen_bugs: HashSet<String>,
    /// Executions performed by *this* run (`stats.executions` may include
    /// a resumed checkpoint's prior count; the cap applies locally).
    local_executions: u64,
    deadline: Option<Instant>,
}

impl Explorer {
    fn new(config: Config, prior: Stats, test: Arc<dyn Fn() + Send + Sync>) -> Self {
        let deadline = config.time_budget.map(|b| Instant::now() + b);
        let seen_bugs = prior.bugs.iter().map(|b| b.bug.to_string()).collect();
        Explorer {
            config,
            pool: Arc::new(Mutex::new(Pool::new())),
            test,
            stats: prior,
            seen_bugs,
            local_executions: 0,
            deadline,
        }
    }

    /// Record one bug occurrence, deduplicated by rendered message.
    fn record_bug(&mut self, bug: Bug, trace: &cdsspec_c11::Trace) {
        let key = bug.to_string();
        if self.seen_bugs.insert(key) && self.stats.bugs.len() < MAX_BUG_RECORDS {
            self.stats.bugs.push(FoundBug {
                bug,
                execution: self.stats.executions - 1,
                trace: trace.render(),
            });
        }
    }

    /// Run one execution and fold its outcome into the stats. Returns the
    /// choice record (for DFS backtracking) plus `Some(reason)` when the
    /// campaign must stop because of what happened *inside* the execution
    /// (a bug with `stop_on_first_bug`, or a crashed checker).
    fn step(
        &mut self,
        plugins: &mut [Box<dyn Plugin>],
        script: &[usize],
        sampler: Option<StdRng>,
    ) -> (RunResult, Option<StopReason>) {
        let result = run_once(
            &self.config,
            &self.pool,
            script,
            Arc::clone(&self.test),
            sampler,
        );
        self.stats.executions += 1;
        self.local_executions += 1;

        if self.config.verbose {
            eprintln!(
                "== execution {} ({:?}{}) ==\n{}",
                self.stats.executions,
                result.outcome,
                if result.hung {
                    ", wedged worker leaked"
                } else {
                    ""
                },
                result.trace.render()
            );
        }

        let mut stop = None;
        match &result.outcome {
            RunOutcome::Completed => {
                self.stats.feasible += 1;
                if self.config.validate_axioms {
                    for err in cdsspec_c11::relations::validate(&result.trace, true) {
                        self.record_bug(
                            Bug::AxiomViolation {
                                message: err.to_string(),
                            },
                            &result.trace,
                        );
                        stop = Some(StopReason::FirstBug);
                    }
                }
                for plugin in plugins.iter_mut() {
                    // A buggy checker must not take the campaign down with
                    // it: contain the panic, report it as a plugin bug,
                    // and stop with `Errored` so callers see the run is
                    // incomplete rather than silently clean.
                    let name = plugin.name();
                    let checked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        plugin.check(&result.trace)
                    }));
                    let found = match checked {
                        Ok(found) => found,
                        Err(payload) => {
                            let message = format!("checker panicked: {}", panic_message(&payload));
                            self.record_bug(
                                Bug::Plugin {
                                    plugin: name,
                                    message,
                                },
                                &result.trace,
                            );
                            stop = Some(StopReason::Errored);
                            continue;
                        }
                    };
                    if !found.is_empty() && self.config.stop_on_first_bug {
                        stop = Some(StopReason::FirstBug);
                    }
                    for bug in found {
                        self.record_bug(bug, &result.trace);
                    }
                }
            }
            RunOutcome::BugFound(bug) => {
                self.stats.feasible += 1; // a buggy execution is a real behavior
                self.record_bug(bug.clone(), &result.trace);
                if self.config.stop_on_first_bug {
                    stop = Some(StopReason::FirstBug);
                }
            }
            RunOutcome::Diverged => self.stats.diverged += 1,
            RunOutcome::SleepPruned => self.stats.sleep_pruned += 1,
        }
        (result, stop)
    }

    /// The DFS phase: explore leaves depth-first from `script` until the
    /// tree is exhausted or a stop condition fires.
    fn dfs(&mut self, plugins: &mut [Box<dyn Plugin>], mut script: Vec<usize>) {
        loop {
            let (result, stop) = self.step(plugins, &script, None);
            // Where DFS would go next — recorded before deciding to stop,
            // so an interrupted run always knows its frontier.
            let frontier = next_script(&result.choices);

            if let Some(reason) = stop {
                self.stats.stop = reason;
                self.stats.frontier = frontier;
                return;
            }
            // Exhaustion outranks the resource limits: a cap or deadline
            // that fires on the final leaf did not truncate anything, and
            // `ExecutionCap`/`Deadline` always imply a resumable frontier.
            let Some(next) = frontier else {
                self.stats.stop = StopReason::Exhausted;
                self.stats.frontier = None;
                return;
            };
            if self.local_executions >= self.config.max_executions {
                self.stats.stop = StopReason::ExecutionCap;
                self.stats.frontier = Some(next);
                return;
            }
            // The deadline is only checked between executions: partition
            // counts stay exact across checkpoint/resume.
            if self.deadline.is_some_and(|d| Instant::now() >= d) {
                self.stats.stop = StopReason::Deadline;
                self.stats.frontier = Some(next);
                return;
            }
            script = next;
        }
    }

    /// Deadline degradation: probe the unexplored region with seeded
    /// random walks. Each sample replays the current frontier prefix and
    /// resolves further choices by PRNG, then the frontier advances past
    /// that subtree so successive samples march across the remaining tree.
    fn sample_remaining(&mut self, plugins: &mut [Box<dyn Plugin>]) {
        for i in 0..self.config.deadline_samples {
            let Some(prefix) = self.stats.frontier.clone() else {
                break;
            };
            let rng = StdRng::seed_from_u64(self.config.sample_seed.wrapping_add(i));
            let (result, stop) = self.step(plugins, &prefix, Some(rng));
            self.stats.sampled += 1;
            if stop.is_some() {
                // Keep `Deadline` as the overall stop reason unless the
                // sample errored — sampling is best-effort extra coverage.
                if stop == Some(StopReason::Errored) {
                    self.stats.stop = StopReason::Errored;
                }
                break;
            }
            // Advance the DFS frontier past the prefix we just probed.
            // Only the scripted prefix is deterministic; the random tail
            // must not leak into the stored frontier.
            let prefix_len = prefix.len();
            let replayed = &result.choices[..prefix_len.min(result.choices.len())];
            self.stats.frontier = next_script(replayed);
        }
    }

    fn finish(mut self, start: Instant, prior_elapsed: std::time::Duration) -> Stats {
        self.stats.elapsed = prior_elapsed + start.elapsed();
        self.stats
    }
}

/// Exhaustively explore `test` under `config`, invoking `plugins` on every
/// feasible execution.
pub fn explore_with_plugins<F>(config: Config, plugins: Vec<Box<dyn Plugin>>, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_from_with_plugins(config, Checkpoint::root(), plugins, test)
}

/// Resume an interrupted exploration from `checkpoint` (see
/// [`Stats::checkpoint`] / [`Checkpoint::from_text`]): statistics continue
/// accumulating on top of the checkpointed counts, previously reported
/// bugs stay deduplicated, and DFS restarts at the checkpointed frontier.
pub fn explore_from<F>(config: Config, checkpoint: Checkpoint, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_from_with_plugins(config, checkpoint, Vec::new(), test)
}

/// [`explore_from`] with plugins.
pub fn explore_from_with_plugins<F>(
    config: Config,
    checkpoint: Checkpoint,
    mut plugins: Vec<Box<dyn Plugin>>,
    test: F,
) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let start = Instant::now();
    // Precedence: an explicit checkpoint wins; otherwise a script smuggled
    // through `Config::resume_script` (the only channel available to
    // callers holding a plain `fn(Config) -> Stats`, like the benchmark
    // registry) seeds the start position.
    let script = if !checkpoint.script.is_empty() {
        checkpoint.script.clone()
    } else {
        config.resume_script.clone().unwrap_or_default()
    };
    let prior = checkpoint.stats;
    let prior_elapsed = prior.elapsed;
    let test: Arc<dyn Fn() + Send + Sync> = Arc::new(test);

    let mut explorer = Explorer::new(config, prior, test);
    explorer.stats.elapsed = std::time::Duration::ZERO; // tracked via finish()
    explorer.dfs(&mut plugins, script);
    if explorer.stats.stop == StopReason::Deadline && explorer.config.deadline_samples > 0 {
        explorer.sample_remaining(&mut plugins);
    }
    explorer.finish(start, prior_elapsed)
}

/// Compute the replay script for the next DFS leaf, or `None` when the
/// tree is exhausted.
fn next_script(choices: &[ChoiceRec]) -> Option<Vec<usize>> {
    let mut i = choices.len();
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        if choices[i].picked + 1 < choices[i].num_options {
            break;
        }
    }
    let mut script: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
    script.push(choices[i].picked + 1);
    Some(script)
}

/// Explore with the default configuration and no plugins; panic if any bug
/// is found (loom-style assertion for tests).
pub fn model<F>(test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let stats = explore_with_plugins(Config::default(), Vec::new(), test);
    if stats.buggy() {
        let b = &stats.bugs[0];
        panic!("model checking found a bug: {}\ntrace:\n{}", b.bug, b.trace);
    }
    stats
}

/// Explore with a custom config and no plugins, returning the stats
/// without panicking.
pub fn explore<F>(config: Config, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with_plugins(config, Vec::new(), test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(picked: usize, num: usize) -> ChoiceRec {
        ChoiceRec {
            picked,
            num_options: num,
        }
    }

    #[test]
    fn next_script_increments_deepest() {
        let choices = vec![rec(0, 2), rec(1, 3), rec(0, 2)];
        assert_eq!(next_script(&choices), Some(vec![0, 1, 1]));
    }

    #[test]
    fn next_script_pops_exhausted_suffix() {
        let choices = vec![rec(0, 2), rec(2, 3), rec(1, 2)];
        assert_eq!(next_script(&choices), Some(vec![1]));
    }

    #[test]
    fn next_script_none_when_exhausted() {
        assert_eq!(next_script(&[]), None);
        assert_eq!(next_script(&[rec(1, 2), rec(2, 3)]), None);
    }
}
