//! The stateless DFS explorer.
//!
//! Re-executes the test closure, replaying a prefix of recorded choices and
//! deviating at the deepest choice point that still has unexplored
//! alternatives — the classic stateless-model-checking loop (CDSChecker,
//! CHESS). Terminates when the whole choice tree is exhausted.

use std::sync::Arc;
use std::time::Instant;

use crate::config::Config;
use crate::plugin::Plugin;
use crate::report::{Bug, FoundBug, Stats};
use crate::runtime::{run_once, ChoiceRec, RunOutcome};
use crate::worker::Pool;
use parking_lot::Mutex;

/// Maximum distinct bug records retained (duplicates across executions are
/// folded; exploration statistics still count every occurrence).
const MAX_BUG_RECORDS: usize = 24;

/// Exhaustively explore `test` under `config`, invoking `plugins` on every
/// feasible execution.
pub fn explore_with_plugins<F>(config: Config, mut plugins: Vec<Box<dyn Plugin>>, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let start = Instant::now();
    let test: Arc<dyn Fn() + Send + Sync> = Arc::new(test);
    let pool = Arc::new(Mutex::new(Pool::new()));
    let mut stats = Stats::default();
    let mut script: Vec<usize> = Vec::new();
    let mut seen_bugs: Vec<String> = Vec::new();

    loop {
        let result = run_once(&config, &pool, &script, Arc::clone(&test));
        stats.executions += 1;

        if config.verbose {
            eprintln!(
                "== execution {} ({:?}) ==\n{}",
                stats.executions,
                result.outcome,
                result.trace.render()
            );
        }

        let mut record_bug = |bug: Bug, stats: &mut Stats, trace: &cdsspec_c11::Trace| {
            let key = bug.to_string();
            if !seen_bugs.contains(&key) {
                seen_bugs.push(key);
                if stats.bugs.len() < MAX_BUG_RECORDS {
                    stats.bugs.push(FoundBug {
                        bug,
                        execution: stats.executions - 1,
                        trace: trace.render(),
                    });
                }
            }
        };

        let mut stop = false;
        match &result.outcome {
            RunOutcome::Completed => {
                stats.feasible += 1;
                if config.validate_axioms {
                    for err in cdsspec_c11::relations::validate(&result.trace, true) {
                        record_bug(
                            Bug::AxiomViolation { message: err.to_string() },
                            &mut stats,
                            &result.trace,
                        );
                        stop = true;
                    }
                }
                for plugin in plugins.iter_mut() {
                    let found = plugin.check(&result.trace);
                    if !found.is_empty() && config.stop_on_first_bug {
                        stop = true;
                    }
                    for bug in found {
                        record_bug(bug, &mut stats, &result.trace);
                    }
                }
            }
            RunOutcome::BugFound(bug) => {
                stats.feasible += 1; // a buggy execution is a real behavior
                record_bug(bug.clone(), &mut stats, &result.trace);
                if config.stop_on_first_bug {
                    stop = true;
                }
            }
            RunOutcome::Diverged => stats.diverged += 1,
            RunOutcome::SleepPruned => stats.sleep_pruned += 1,
        }

        if stop {
            break;
        }
        if stats.executions >= config.max_executions {
            stats.truncated = true;
            break;
        }

        // Backtrack: deepest choice with an unexplored alternative.
        match next_script(&result.choices) {
            Some(next) => script = next,
            None => break,
        }
    }

    stats.elapsed = start.elapsed();
    stats
}

/// Compute the replay script for the next DFS leaf, or `None` when the
/// tree is exhausted.
fn next_script(choices: &[ChoiceRec]) -> Option<Vec<usize>> {
    let mut i = choices.len();
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        if choices[i].picked + 1 < choices[i].num_options {
            break;
        }
    }
    let mut script: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
    script.push(choices[i].picked + 1);
    Some(script)
}

/// Explore with the default configuration and no plugins; panic if any bug
/// is found (loom-style assertion for tests).
pub fn model<F>(test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let stats = explore_with_plugins(Config::default(), Vec::new(), test);
    if stats.buggy() {
        let b = &stats.bugs[0];
        panic!("model checking found a bug: {}\ntrace:\n{}", b.bug, b.trace);
    }
    stats
}

/// Explore with a custom config and no plugins, returning the stats
/// without panicking.
pub fn explore<F>(config: Config, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with_plugins(config, Vec::new(), test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(picked: usize, num: usize) -> ChoiceRec {
        ChoiceRec { picked, num_options: num }
    }

    #[test]
    fn next_script_increments_deepest() {
        let choices = vec![rec(0, 2), rec(1, 3), rec(0, 2)];
        assert_eq!(next_script(&choices), Some(vec![0, 1, 1]));
    }

    #[test]
    fn next_script_pops_exhausted_suffix() {
        let choices = vec![rec(0, 2), rec(2, 3), rec(1, 2)];
        assert_eq!(next_script(&choices), Some(vec![1]));
    }

    #[test]
    fn next_script_none_when_exhausted() {
        assert_eq!(next_script(&[]), None);
        assert_eq!(next_script(&[rec(1, 2), rec(2, 3)]), None);
    }
}
