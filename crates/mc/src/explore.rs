//! The stateless DFS explorer.
//!
//! Re-executes the test closure, replaying a prefix of recorded choices and
//! deviating at the deepest choice point that still has unexplored
//! alternatives — the classic stateless-model-checking loop (CDSChecker,
//! CHESS). Terminates when the whole choice tree is exhausted, the
//! execution cap is hit, or the wall-clock budget expires.
//!
//! ## Resumability
//!
//! The replay script *is* the explorer's complete state: `next_script`
//! computes the first unexplored leaf from the last execution's choices,
//! and a run cut short by the cap or the deadline records that script as
//! its [`Stats::frontier`]. [`explore_from`] restarts DFS at a
//! [`Checkpoint`]'s frontier and visits exactly the leaves the original
//! run had left, so execution counts partition:
//! `executions(full) == executions(to checkpoint) + executions(resumed)`.
//!
//! ## Parallel exploration
//!
//! With `Config::workers > 1` the frontier is split into disjoint
//! [`ShardSpec`] subtrees explored concurrently by independent explorer
//! instances, with dynamic work-stealing between them; results merge
//! deterministically back into one [`Stats`]. The coordinator lives in
//! `crate::parallel`; the shard representation (`floor`-bounded DFS via
//! `next_script_bounded`) and the splitting rule (`split_frontier`)
//! live here, next to the sequential loop they generalize. See
//! `ARCHITECTURE.md` for the shard→steal→merge protocol and the
//! determinism argument.
//!
//! ## Deadline degradation
//!
//! With `Config::deadline_samples > 0`, a sequential run that hits its
//! deadline additionally probes the *unexplored* region with seeded
//! random-walk executions (each replays the frontier prefix, then resolves
//! choice points by PRNG) — deterministic per `Config::sample_seed`, and
//! the DFS frontier is advanced past each probed subtree so samples spread
//! across the remaining tree instead of clustering under one branch.
//! (Parallel runs skip the degradation phase: their frontier is a shard
//! *set*, which the single-script random walk cannot probe coherently.)

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use crate::config::Config;
use crate::plugin::{Plugin, PluginFactory};
use crate::report::{Bug, Checkpoint, FoundBug, ShardSpec, Stats, StopReason};
use crate::runtime::{run_once, ChoiceRec, Reuse, RunOutcome, RunResult};
use crate::worker::{panic_message, Pool};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maximum distinct bug records retained (duplicates across executions are
/// folded; exploration statistics still count every occurrence).
pub(crate) const MAX_BUG_RECORDS: usize = 24;

/// The plugins one explorer instance checks feasible executions with.
///
/// `Owned` is the fast path: the explorer has exclusive plugins (the
/// sequential engine, or a parallel worker whose plugins came from a
/// [`PluginFactory`]). `Shared` is the compatibility fallback for a plain
/// plugin `Vec` handed to the *parallel* engine: every worker serializes
/// its checking through one mutex, which is correct but contended —
/// prefer [`explore_factory`] for parallel specification checking.
pub(crate) enum PluginSet {
    Owned(Vec<Box<dyn Plugin>>),
    Shared(Arc<Mutex<Vec<Box<dyn Plugin>>>>),
}

impl PluginSet {
    fn with<R>(&mut self, f: impl FnOnce(&mut [Box<dyn Plugin>]) -> R) -> R {
        match self {
            PluginSet::Owned(v) => f(v),
            PluginSet::Shared(m) => f(&mut m.lock()),
        }
    }
}

/// Where an exploration's plugins come from: a one-shot list, or a factory
/// that can mint an independent list per parallel worker.
pub(crate) enum PluginSource {
    Direct(Vec<Box<dyn Plugin>>),
    Factory(PluginFactory),
}

/// How one shard's DFS ended.
pub(crate) enum ShardEnd {
    /// Every leaf of the shard's subtree was visited.
    Exhausted,
    /// Stopped early; carries the shard's remaining frontier (`None` when
    /// the stop fired on the shard's final leaf).
    Stopped(StopReason, Option<ShardSpec>),
}

/// One DFS campaign over a test closure's choice tree (or a shard of it).
pub(crate) struct Explorer {
    pub(crate) config: Config,
    pool: Arc<Mutex<Pool>>,
    test: Arc<dyn Fn() + Send + Sync>,
    pub(crate) stats: Stats,
    /// Rendered messages of every bug seen (the dedup key).
    pub(crate) seen_bugs: HashSet<String>,
    /// Executions performed by *this* run (`stats.executions` may include
    /// a resumed checkpoint's prior count; the cap applies locally).
    local_executions: u64,
    deadline: Option<Instant>,
    /// Worker index stamped onto found bugs (0 for the sequential engine).
    pub(crate) worker: usize,
    /// Start script of the shard currently being explored, stamped onto
    /// found bugs so parallel repros stay debuggable.
    pub(crate) shard_start: Vec<usize>,
    /// Execution harness carried between runs: `run_once` rewinds it in
    /// place instead of rebuilding the shared state per execution.
    reuse: Reuse,
}

impl Explorer {
    pub(crate) fn new(config: Config, prior: Stats, test: Arc<dyn Fn() + Send + Sync>) -> Self {
        let deadline = config.time_budget.map(|b| Instant::now() + b);
        let seen_bugs = prior.bugs.iter().map(|b| b.bug.to_string()).collect();
        Explorer {
            config,
            pool: Arc::new(Mutex::new(Pool::new())),
            test,
            stats: prior,
            seen_bugs,
            local_executions: 0,
            deadline,
            worker: 0,
            shard_start: Vec::new(),
            reuse: Reuse::default(),
        }
    }

    /// An explorer for parallel worker `worker`: zeroed statistics (the
    /// checkpointed prior lives once, in the merge base), but with the
    /// prior run's bug messages pre-seeded so resumed bugs stay
    /// deduplicated.
    pub(crate) fn for_worker(
        config: Config,
        seen: &[String],
        test: Arc<dyn Fn() + Send + Sync>,
        worker: usize,
    ) -> Self {
        let mut ex = Explorer::new(config, Stats::default(), test);
        ex.seen_bugs = seen.iter().cloned().collect();
        ex.worker = worker;
        ex
    }

    /// Record one bug occurrence, deduplicated by rendered message.
    fn record_bug(&mut self, bug: Bug, trace: &cdsspec_c11::Trace) {
        let key = bug.to_string();
        if self.seen_bugs.insert(key) && self.stats.bugs.len() < MAX_BUG_RECORDS {
            self.stats.bugs.push(FoundBug {
                bug,
                execution: self.stats.executions - 1,
                trace: trace.render(),
                worker: self.worker,
                shard: self.shard_start.clone(),
            });
        }
    }

    /// Run one execution and fold its outcome into the stats. Returns the
    /// choice record (for DFS backtracking) plus `Some(reason)` when the
    /// campaign must stop because of what happened *inside* the execution
    /// (a bug with `stop_on_first_bug`, or a crashed checker).
    pub(crate) fn step(
        &mut self,
        plugins: &mut PluginSet,
        script: &[usize],
        sampler: Option<StdRng>,
    ) -> (RunResult, Option<StopReason>) {
        let mut result = run_once(
            &self.config,
            &self.pool,
            script,
            Arc::clone(&self.test),
            sampler,
            &mut self.reuse,
        );
        self.stats.executions += 1;
        self.local_executions += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(result.choices.len() as u64);
        self.stats.executions_pruned += result.pruned;

        if self.config.verbose {
            eprintln!(
                "== execution {} ({:?}{}) ==\n{}",
                self.stats.executions,
                result.outcome,
                if result.hung {
                    ", wedged worker leaked"
                } else {
                    ""
                },
                result.trace.render()
            );
        }

        let mut stop = None;
        match &result.outcome {
            RunOutcome::Completed => {
                self.stats.feasible += 1;
                // Class accounting uses completed traces only: a partial
                // (bug-aborted) trace's signature would depend on where
                // the abort cut it, which is scheduling noise.
                self.stats
                    .rf_classes
                    .insert(cdsspec_c11::relations::rf_signature(&result.trace));
                // Two-tier axiom checking: `validate_axioms` runs the full
                // independent oracle (O(n²) hb closure, clock cross-check);
                // otherwise `debug_audit` runs the fast auditor that trusts
                // the trace's incremental indexes. Both produce identical
                // error strings for the violations they can both see.
                let errors = if self.config.validate_axioms {
                    cdsspec_c11::relations::validate(&result.trace, true)
                } else if self.config.debug_audit {
                    cdsspec_c11::relations::audit(&result.trace)
                } else {
                    Vec::new()
                };
                for err in errors {
                    self.record_bug(
                        Bug::AxiomViolation {
                            message: err.to_string(),
                        },
                        &result.trace,
                    );
                    stop = Some(StopReason::FirstBug);
                }
                let config_stop_on_first = self.config.stop_on_first_bug;
                plugins.with(|plugins| {
                    for plugin in plugins.iter_mut() {
                        // A buggy checker must not take the campaign down
                        // with it: contain the panic, report it as a plugin
                        // bug, and stop with `Errored` so callers see the
                        // run is incomplete rather than silently clean.
                        let name = plugin.name();
                        let checked =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                plugin.check(&result.trace)
                            }));
                        let found = match checked {
                            Ok(found) => found,
                            Err(payload) => {
                                let message =
                                    format!("checker panicked: {}", panic_message(&payload));
                                self.record_bug(
                                    Bug::Plugin {
                                        plugin: name,
                                        message,
                                    },
                                    &result.trace,
                                );
                                stop = Some(StopReason::Errored);
                                continue;
                            }
                        };
                        if !found.is_empty() && config_stop_on_first {
                            stop = Some(StopReason::FirstBug);
                        }
                        for bug in found {
                            self.record_bug(bug, &result.trace);
                        }
                    }
                });
            }
            RunOutcome::BugFound(bug) => {
                self.stats.feasible += 1; // a buggy execution is a real behavior
                self.record_bug(bug.clone(), &result.trace);
                if self.config.stop_on_first_bug {
                    stop = Some(StopReason::FirstBug);
                }
            }
            RunOutcome::Diverged => self.stats.diverged += 1,
            RunOutcome::SleepPruned => self.stats.sleep_pruned += 1,
            RunOutcome::EngineError(message) => {
                // Not a property of the modeled code: the engine could not
                // run the execution (e.g. the pool's respawn budget ran
                // out). Record it so the report explains itself, and stop
                // with `Errored` so the run never claims completeness.
                self.record_bug(
                    Bug::EngineFailure {
                        message: message.clone(),
                    },
                    &result.trace,
                );
                stop = Some(StopReason::Errored);
            }
        }
        // The plugins are done with the trace: hand the buffer back to the
        // harness so the next execution's event/mo/sc vectors start at
        // their high-water capacity. Callers of `step` only consume the
        // outcome and the choice record.
        self.reuse.trace = Some(std::mem::take(&mut result.trace));
        (result, stop)
    }

    /// The DFS phase over one shard: explore leaves depth-first from the
    /// shard's script, never backtracking above its floor, until the
    /// subtree is exhausted or a stop condition fires.
    fn dfs_shard(&mut self, plugins: &mut PluginSet, shard: ShardSpec) -> ShardEnd {
        self.shard_start = shard.script.clone();
        let floor = shard.floor;
        let mut script = shard.script;
        loop {
            let (result, stop) = self.step(plugins, &script, None);
            // Where DFS would go next — recorded before deciding to stop,
            // so an interrupted run always knows its frontier.
            let frontier = next_script_bounded(&result.choices, floor);

            if let Some(reason) = stop {
                let rem = frontier.map(|script| ShardSpec { floor, script });
                return ShardEnd::Stopped(reason, rem);
            }
            // Exhaustion outranks the resource limits: a cap or deadline
            // that fires on the final leaf did not truncate anything, and
            // `ExecutionCap`/`Deadline` always imply a resumable frontier.
            let Some(next) = frontier else {
                return ShardEnd::Exhausted;
            };
            if self.local_executions >= self.config.max_executions {
                return ShardEnd::Stopped(
                    StopReason::ExecutionCap,
                    Some(ShardSpec {
                        floor,
                        script: next,
                    }),
                );
            }
            // The deadline is only checked between executions: partition
            // counts stay exact across checkpoint/resume.
            if self.deadline.is_some_and(|d| Instant::now() >= d) {
                return ShardEnd::Stopped(
                    StopReason::Deadline,
                    Some(ShardSpec {
                        floor,
                        script: next,
                    }),
                );
            }
            script = next;
        }
    }

    /// Deadline degradation: probe the unexplored region with seeded
    /// random walks. Each sample replays the current frontier prefix and
    /// resolves further choices by PRNG, then the frontier advances past
    /// that subtree so successive samples march across the remaining tree.
    fn sample_remaining(&mut self, plugins: &mut PluginSet) {
        for i in 0..self.config.deadline_samples {
            let Some(prefix) = self.stats.frontier.clone() else {
                break;
            };
            let rng = StdRng::seed_from_u64(self.config.sample_seed.wrapping_add(i));
            let (result, stop) = self.step(plugins, &prefix, Some(rng));
            self.stats.sampled += 1;
            if stop.is_some() {
                // Keep `Deadline` as the overall stop reason unless the
                // sample errored — sampling is best-effort extra coverage.
                if stop == Some(StopReason::Errored) {
                    self.stats.stop = StopReason::Errored;
                }
                break;
            }
            // Advance the DFS frontier past the prefix we just probed.
            // Only the scripted prefix is deterministic; the random tail
            // must not leak into the stored frontier.
            let prefix_len = prefix.len();
            let replayed = &result.choices[..prefix_len.min(result.choices.len())];
            let advanced = next_script(replayed);
            self.stats.set_frontier_shards(
                advanced
                    .map(|s| vec![ShardSpec::from_script(s)])
                    .unwrap_or_default(),
            );
        }
    }
}

/// Exhaustively explore `test` under `config`, invoking `plugins` on every
/// feasible execution.
///
/// With `Config::workers > 1` and a non-empty plugin list, checking is
/// serialized through a mutex shared by all workers; use
/// [`explore_factory`] to give each worker independent plugins instead.
pub fn explore_with_plugins<F>(config: Config, plugins: Vec<Box<dyn Plugin>>, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_from_with_plugins(config, Checkpoint::root(), plugins, test)
}

/// Resume an interrupted exploration from `checkpoint` (see
/// [`Stats::checkpoint`] / [`Checkpoint::from_text`]): statistics continue
/// accumulating on top of the checkpointed counts, previously reported
/// bugs stay deduplicated, and DFS restarts at the checkpointed frontier
/// — every frontier shard of it, when the checkpoint came from an
/// interrupted parallel run.
///
/// The two halves of an interrupted run partition the choice tree exactly:
///
/// ```
/// use cdsspec_mc as mc;
/// use mc::MemOrd::Relaxed;
///
/// fn test() {
///     let x = mc::Atomic::new(0i32);
///     let t = mc::thread::spawn(move || x.store(1, Relaxed));
///     let _ = x.load(Relaxed);
///     t.join();
/// }
///
/// let seq = mc::Config { workers: 1, ..mc::Config::default() };
/// let full = mc::explore(seq.clone(), test);
///
/// // Cut the same exploration after one execution…
/// let cut = mc::explore(mc::Config { max_executions: 1, ..seq.clone() }, test);
/// let ck = cut.checkpoint().expect("interrupted run leaves a frontier");
///
/// // …and resume it: the halves partition the tree, so the resumed
/// // total equals the uninterrupted run's count exactly.
/// let resumed = mc::explore_from(seq, ck, test);
/// assert_eq!(resumed.executions, full.executions);
/// ```
pub fn explore_from<F>(config: Config, checkpoint: Checkpoint, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_from_with_plugins(config, checkpoint, Vec::new(), test)
}

/// [`explore_from`] with plugins.
pub fn explore_from_with_plugins<F>(
    config: Config,
    checkpoint: Checkpoint,
    plugins: Vec<Box<dyn Plugin>>,
    test: F,
) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_impl(
        config,
        checkpoint,
        PluginSource::Direct(plugins),
        Arc::new(test),
    )
}

/// Explore with per-worker plugin construction: `factory` is invoked once
/// per explorer worker, so each worker checks its shard with plugins it
/// owns exclusively — specification checking stays race-free without any
/// cross-worker locking. The sequential engine (`workers == 1`) invokes
/// the factory exactly once; behavior is then identical to
/// [`explore_with_plugins`].
pub fn explore_factory<F>(config: Config, factory: PluginFactory, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_from_factory(config, Checkpoint::root(), factory, test)
}

/// [`explore_factory`] resuming from a checkpoint (see [`explore_from`]).
pub fn explore_from_factory<F>(
    config: Config,
    checkpoint: Checkpoint,
    factory: PluginFactory,
    test: F,
) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_impl(
        config,
        checkpoint,
        PluginSource::Factory(factory),
        Arc::new(test),
    )
}

/// Resolve where exploration starts: the checkpoint's shard set when the
/// checkpoint has content, else shards/script smuggled through the config
/// (the only channel available to callers holding a plain
/// `fn(Config) -> Stats`, like the benchmark registry), else the root.
fn initial_shards(config: &Config, checkpoint: &Checkpoint) -> Vec<ShardSpec> {
    if !checkpoint.script.is_empty() || !checkpoint.stats.shard_frontiers.is_empty() {
        let shards = checkpoint.stats.frontier_shards();
        // Trust the shard list only when it agrees with the script — they
        // are always written together; a hand-built checkpoint with a
        // bare script keeps the PR 1 contract (the script wins).
        if shards.first().map(|s| &s.script) == Some(&checkpoint.script) {
            shards
        } else {
            vec![ShardSpec::from_script(checkpoint.script.clone())]
        }
    } else if let Some(shards) = &config.resume_shards {
        if shards.is_empty() {
            vec![ShardSpec::root()]
        } else {
            shards.clone()
        }
    } else if let Some(script) = &config.resume_script {
        vec![ShardSpec::from_script(script.clone())]
    } else {
        vec![ShardSpec::root()]
    }
}

/// Common implementation: resolve the starting shards, pick the engine by
/// `Config::workers`, and account wall-clock on top of the prior elapsed.
fn explore_impl(
    config: Config,
    checkpoint: Checkpoint,
    plugins: PluginSource,
    test: Arc<dyn Fn() + Send + Sync>,
) -> Stats {
    let start = Instant::now();
    let initial = initial_shards(&config, &checkpoint);
    let prior = checkpoint.stats;
    let prior_elapsed = prior.elapsed;
    let workers = config.effective_workers();

    let mut stats = if workers <= 1 {
        let owned = match plugins {
            PluginSource::Direct(v) => v,
            PluginSource::Factory(f) => f(),
        };
        sequential_explore(config, prior, initial, owned, test)
    } else {
        crate::parallel::explore_parallel(&config, prior, initial, plugins, test, workers)
    };
    stats.elapsed = prior_elapsed + start.elapsed();
    stats
}

/// The classic sequential engine, generalized to drain a queue of frontier
/// shards (a single root shard for a fresh run). A stop condition abandons
/// the current shard *and* every queued one; all of them are recorded in
/// [`Stats::shard_frontiers`] so nothing is lost across the interruption.
fn sequential_explore(
    config: Config,
    prior: Stats,
    initial: Vec<ShardSpec>,
    plugins: Vec<Box<dyn Plugin>>,
    test: Arc<dyn Fn() + Send + Sync>,
) -> Stats {
    let mut plugins = PluginSet::Owned(plugins);
    let mut explorer = Explorer::new(config, prior, test);
    explorer.stats.elapsed = std::time::Duration::ZERO; // tracked by explore_impl
    let mut queue: VecDeque<ShardSpec> = initial.into();
    let mut remaining: Vec<ShardSpec> = Vec::new();
    let mut stop = StopReason::Exhausted;
    while let Some(shard) = queue.pop_front() {
        match explorer.dfs_shard(&mut plugins, shard) {
            ShardEnd::Exhausted => {}
            ShardEnd::Stopped(reason, rem) => {
                stop = reason;
                remaining.extend(rem);
                remaining.extend(queue.drain(..));
                break;
            }
        }
    }
    explorer.stats.stop = stop;
    explorer.stats.set_frontier_shards(remaining);
    // Deadline degradation only knows how to march a single unfloored
    // script across the remaining tree.
    if explorer.stats.stop == StopReason::Deadline
        && explorer.config.deadline_samples > 0
        && matches!(explorer.stats.shard_frontiers.as_slice(), [s] if s.floor == 0)
    {
        explorer.sample_remaining(&mut plugins);
    }
    explorer.stats
}

/// Compute the replay script for the next DFS leaf, or `None` when the
/// tree is exhausted.
fn next_script(choices: &[ChoiceRec]) -> Option<Vec<usize>> {
    next_script_bounded(choices, 0)
}

/// [`next_script`] restricted to a shard: backtrack only at depths
/// `>= floor`. Returns `None` when the shard's subtree is exhausted —
/// alternatives above the floor belong to other shards.
pub(crate) fn next_script_bounded(choices: &[ChoiceRec], floor: usize) -> Option<Vec<usize>> {
    let mut i = choices.len();
    loop {
        if i <= floor {
            return None;
        }
        i -= 1;
        if choices[i].picked + 1 < choices[i].num_options {
            break;
        }
    }
    let mut script: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
    script.push(choices[i].picked + 1);
    Some(script)
}

/// Split a donor's frontier for work-stealing: scan the frontier
/// shallowest-first from the donor's floor and, at each depth that still
/// has unexplored sibling options, carve those siblings off as a thief
/// shard `{ floor: depth, script: frontier[..depth] ++ [frontier[depth]+1] }`,
/// raising the donor's floor past the donated depth. Up to `batch` thief
/// shards are produced; the donor keeps exactly its current branch below
/// the new floor.
///
/// Shallowest-first donation hands the thief the *largest* available
/// subtree (the Cilk steal heuristic), minimizing steal frequency. The
/// ISSUE sketch says "deepest unexplored backtrack point"; we deliberately
/// donate the shallowest instead — the deepest point is the donor's own
/// next stop, so donating it would maximize contention and minimize the
/// stolen subtree. `ARCHITECTURE.md` documents the trade-off and the
/// partition argument (the depths skipped between the old floor and the
/// donated depth have no unexplored siblings, so raising the floor loses
/// nothing).
pub(crate) fn split_frontier(
    frontier: &[usize],
    choices: &[ChoiceRec],
    floor: usize,
    batch: usize,
) -> (Vec<ShardSpec>, usize) {
    let mut thieves = Vec::new();
    let mut new_floor = floor;
    let depths = frontier.len().min(choices.len());
    for j in floor..depths {
        if thieves.len() == batch {
            break;
        }
        if frontier[j] + 1 < choices[j].num_options {
            let mut script = frontier[..j].to_vec();
            script.push(frontier[j] + 1);
            thieves.push(ShardSpec { floor: j, script });
            new_floor = j + 1;
        }
    }
    (thieves, new_floor)
}

/// Explore with the default configuration and no plugins; panic if any bug
/// is found (loom-style assertion for tests).
pub fn model<F>(test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let stats = explore_with_plugins(Config::default(), Vec::new(), test);
    if stats.buggy() {
        let b = &stats.bugs[0];
        panic!("model checking found a bug: {}\ntrace:\n{}", b.bug, b.trace);
    }
    stats
}

/// Explore with a custom config and no plugins, returning the stats
/// without panicking.
pub fn explore<F>(config: Config, test: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with_plugins(config, Vec::new(), test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(picked: usize, num: usize) -> ChoiceRec {
        ChoiceRec {
            picked,
            num_options: num,
        }
    }

    #[test]
    fn next_script_increments_deepest() {
        let choices = vec![rec(0, 2), rec(1, 3), rec(0, 2)];
        assert_eq!(next_script(&choices), Some(vec![0, 1, 1]));
    }

    #[test]
    fn next_script_pops_exhausted_suffix() {
        let choices = vec![rec(0, 2), rec(2, 3), rec(1, 2)];
        assert_eq!(next_script(&choices), Some(vec![1]));
    }

    #[test]
    fn next_script_none_when_exhausted() {
        assert_eq!(next_script(&[]), None);
        assert_eq!(next_script(&[rec(1, 2), rec(2, 3)]), None);
    }

    #[test]
    fn bounded_next_script_respects_floor() {
        // Alternatives exist at depths 0 and 1, but a floor of 2 owns
        // neither: the shard is exhausted.
        let choices = vec![rec(0, 2), rec(1, 3), rec(1, 2)];
        assert_eq!(next_script_bounded(&choices, 0), Some(vec![0, 2]));
        assert_eq!(next_script_bounded(&choices, 1), Some(vec![0, 2]));
        assert_eq!(next_script_bounded(&choices, 2), None);
        assert_eq!(next_script_bounded(&choices, 99), None);
    }

    #[test]
    fn bounded_next_script_floor_zero_matches_unbounded() {
        let cases = [
            vec![rec(0, 2), rec(1, 3), rec(0, 2)],
            vec![rec(0, 2), rec(2, 3), rec(1, 2)],
            vec![rec(1, 2), rec(2, 3)],
            vec![],
        ];
        for choices in &cases {
            assert_eq!(next_script_bounded(choices, 0), next_script(choices));
        }
    }

    #[test]
    fn split_donates_shallowest_and_raises_floor() {
        // Frontier 0,1,0 with siblings available at depths 0 and 1.
        let frontier = vec![0, 1, 0];
        let choices = vec![rec(0, 2), rec(1, 3), rec(0, 1)];
        let (thieves, floor) = split_frontier(&frontier, &choices, 0, 1);
        assert_eq!(
            thieves,
            vec![ShardSpec {
                floor: 0,
                script: vec![1]
            }]
        );
        assert_eq!(floor, 1, "donor keeps its branch below the donated depth");

        // A second split (new floor 1) donates the depth-1 siblings.
        let (thieves, floor) = split_frontier(&frontier, &choices, floor, 1);
        assert_eq!(
            thieves,
            vec![ShardSpec {
                floor: 1,
                script: vec![0, 2]
            }]
        );
        assert_eq!(floor, 2);

        // Nothing left to donate at depths >= 2.
        let (thieves, floor) = split_frontier(&frontier, &choices, floor, 1);
        assert!(thieves.is_empty());
        assert_eq!(floor, 2);
    }

    #[test]
    fn split_batches_multiple_depths() {
        let frontier = vec![0, 1, 0];
        let choices = vec![rec(0, 2), rec(1, 3), rec(0, 1)];
        let (thieves, floor) = split_frontier(&frontier, &choices, 0, 8);
        assert_eq!(thieves.len(), 2);
        assert_eq!(
            thieves[0],
            ShardSpec {
                floor: 0,
                script: vec![1]
            }
        );
        assert_eq!(
            thieves[1],
            ShardSpec {
                floor: 1,
                script: vec![0, 2]
            }
        );
        assert_eq!(floor, 2);
    }

    /// The donated shards plus the donor's kept branch cover exactly the
    /// leaves the donor owned before the split — checked by brute-force
    /// enumeration of a small synthetic tree.
    #[test]
    fn split_partitions_synthetic_tree_exactly() {
        // A uniform tree: depth 3, 3 options per node. Leaves are scripts.
        fn leaves_of(shard: &ShardSpec) -> Vec<Vec<usize>> {
            // Enumerate by simulating bounded DFS over the uniform tree.
            let mut out = Vec::new();
            let mut script = shard.script.clone();
            loop {
                // "Execute": extend the script to a full leaf (depth 3),
                // picking option 0 for unscripted choices.
                let mut choices: Vec<ChoiceRec> = script.iter().map(|&p| rec(p, 3)).collect();
                while choices.len() < 3 {
                    choices.push(rec(0, 3));
                }
                out.push(choices.iter().map(|c| c.picked).collect());
                match next_script_bounded(&choices, shard.floor) {
                    Some(next) => script = next,
                    None => return out,
                }
            }
        }

        let root = ShardSpec::root();
        let all = leaves_of(&root);
        assert_eq!(all.len(), 27);

        // Split at an arbitrary frontier mid-walk.
        let frontier = vec![1, 0, 2];
        let choices: Vec<ChoiceRec> = frontier.iter().map(|&p| rec(p, 3)).collect();
        let (thieves, new_floor) = split_frontier(&frontier, &choices, 0, 8);
        // Depths 0 and 1 have unexplored siblings; depth 2 is on its last
        // option and cannot be donated.
        assert_eq!(thieves.len(), 2);

        // Donor continues at the frontier with the raised floor; thieves
        // explore their shards. Together: every leaf >= frontier, once.
        let mut covered = leaves_of(&ShardSpec {
            floor: new_floor,
            script: frontier.clone(),
        });
        for t in &thieves {
            covered.extend(leaves_of(t));
        }
        let expected: Vec<Vec<usize>> = all
            .iter()
            .filter(|l| l.as_slice() >= frontier.as_slice())
            .cloned()
            .collect();
        covered.sort();
        let mut expected = expected;
        expected.sort();
        assert_eq!(covered, expected, "split must not lose or duplicate leaves");
    }
}
