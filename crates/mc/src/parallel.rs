//! The parallel frontier-sharded exploration engine.
//!
//! `N = Config::workers` independent [`Explorer`] instances (each with its
//! own modeled-thread pool, its own statistics, and — via
//! [`crate::explore_factory`] — its own plugins) drain a shared queue of
//! [`ShardSpec`] frontier shards. The choice tree is deterministic, so any
//! partition of its leaves yields the same per-leaf outcomes; the engine
//! only has to guarantee the shards *are* a partition:
//!
//! 1. **Shard**: exploration starts from the resolved initial shards
//!    (usually the single root shard `{floor: 0, script: []}`).
//! 2. **Steal**: a worker that finds the queue empty goes *hungry*; busy
//!    workers check for hunger between executions and donate by splitting
//!    their own frontier ([`crate::explore::split_frontier`]) — the
//!    donated sibling subtrees become fresh shards on the queue, and the
//!    donor raises its floor so it can never re-enter them.
//! 3. **Merge**: counters sum, [`StopReason`]s combine worst-of, bugs
//!    dedup by rendered message (then sort, so the merged order does not
//!    depend on thread timing), and every abandoned shard — in-flight or
//!    still queued — lands in [`Stats::shard_frontiers`] so an
//!    interrupted parallel run resumes exactly.
//!
//! Termination: work only ever enters the queue from a busy worker, so
//! "every worker idle and the queue empty" is stable and final. A global
//! halt (first bug, execution cap, deadline, error) wakes all waiters and
//! makes each busy worker park its current frontier as a leftover shard.
//!
//! The execution cap is enforced via a global atomic counter checked
//! between executions; concurrent workers may overshoot the cap by up to
//! `workers - 1` executions (each may be mid-execution when the counter
//! crosses). Exhausted runs are unaffected — the cap never fires.
//!
//! See `ARCHITECTURE.md` for the full protocol, a sequence diagram, and
//! the determinism argument.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::config::Config;
use crate::explore::{
    next_script_bounded, split_frontier, Explorer, PluginSet, PluginSource, MAX_BUG_RECORDS,
};
use crate::report::{FoundBug, ShardSpec, Stats, StopReason};
use crate::worker::run_shard_threads;

/// Queue + termination state, guarded by the coordinator's mutex.
struct CoordState {
    /// Shards awaiting a worker.
    queue: VecDeque<ShardSpec>,
    /// Workers currently blocked waiting for work.
    idle: usize,
    /// Workers that would accept stolen work right now (identical to
    /// `idle` today; kept separate so donation pressure reads as intent).
    hungry: usize,
    /// Set once a stop condition fires anywhere; all workers abandon.
    halt: Option<StopReason>,
    /// All workers idle with an empty queue: exploration is complete.
    done: bool,
}

/// Shared coordination for one parallel exploration.
struct Coordinator {
    state: Mutex<CoordState>,
    cv: Condvar,
    /// Executions performed by this run, across all workers (the global
    /// analog of the sequential engine's `local_executions`).
    executions: AtomicU64,
    workers: usize,
    steal_batch: usize,
    max_executions: u64,
    deadline: Option<Instant>,
}

impl Coordinator {
    /// Block until a shard is available; `None` means the run is over
    /// (completed or halted).
    fn next_shard(&self) -> Option<ShardSpec> {
        let mut st = self.state.lock();
        loop {
            if st.halt.is_some() || st.done {
                return None;
            }
            if let Some(s) = st.queue.pop_front() {
                return Some(s);
            }
            st.idle += 1;
            st.hungry += 1;
            if st.idle == self.workers {
                // Nobody is left to produce work: natural completion.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            self.cv.wait(&mut st);
            st.idle -= 1;
            st.hungry -= 1;
        }
    }

    /// Order a global stop, keeping the worst reason if several race.
    fn halt(&self, reason: StopReason) {
        let mut st = self.state.lock();
        st.halt = Some(st.halt.map_or(reason, |h| h.worst(reason)));
        self.cv.notify_all();
    }

    fn halted(&self) -> Option<StopReason> {
        self.state.lock().halt
    }

    /// Donate part of the caller's frontier if anyone is hungry and the
    /// queue cannot already feed them. Raises `floor` past every donated
    /// depth so the donor never re-explores what it gave away.
    fn maybe_donate(
        &self,
        frontier: &[usize],
        choices: &[crate::runtime::ChoiceRec],
        floor: &mut usize,
    ) {
        let mut st = self.state.lock();
        if st.halt.is_some() || st.hungry == 0 || st.queue.len() >= st.hungry {
            return;
        }
        let (thieves, new_floor) = split_frontier(frontier, choices, *floor, self.steal_batch);
        if thieves.is_empty() {
            return;
        }
        *floor = new_floor;
        st.queue.extend(thieves);
        self.cv.notify_all();
    }
}

/// One worker's campaign: drain shards until the run completes or halts.
/// Returns the worker's statistics plus any shards it had to abandon.
fn shard_worker(
    w: usize,
    coord: &Coordinator,
    config: &Config,
    prior_bugs: &[String],
    plugins: &mut PluginSet,
    test: &Arc<dyn Fn() + Send + Sync>,
) -> (Stats, Vec<ShardSpec>) {
    let mut ex = Explorer::for_worker(config.clone(), prior_bugs, Arc::clone(test), w);
    let mut leftovers = Vec::new();
    'shards: while let Some(shard) = coord.next_shard() {
        ex.shard_start = shard.script.clone();
        let mut floor = shard.floor;
        let mut script = shard.script;
        loop {
            let (result, stop) = ex.step(plugins, &script, None);
            let total = coord.executions.fetch_add(1, Ordering::Relaxed) + 1;
            let frontier = next_script_bounded(&result.choices, floor);

            if let Some(reason) = stop {
                ex.stats.stop = ex.stats.stop.worst(reason);
                coord.halt(reason);
                leftovers.extend(frontier.map(|script| ShardSpec { floor, script }));
                break 'shards;
            }
            let Some(next) = frontier else {
                continue 'shards; // shard exhausted; fetch the next one
            };
            if total >= coord.max_executions {
                ex.stats.stop = ex.stats.stop.worst(StopReason::ExecutionCap);
                coord.halt(StopReason::ExecutionCap);
                leftovers.push(ShardSpec {
                    floor,
                    script: next,
                });
                break 'shards;
            }
            if coord.deadline.is_some_and(|d| Instant::now() >= d) {
                ex.stats.stop = ex.stats.stop.worst(StopReason::Deadline);
                coord.halt(StopReason::Deadline);
                leftovers.push(ShardSpec {
                    floor,
                    script: next,
                });
                break 'shards;
            }
            if let Some(reason) = coord.halted() {
                // Someone else stopped the run: park the frontier and go.
                ex.stats.stop = ex.stats.stop.worst(reason);
                leftovers.push(ShardSpec {
                    floor,
                    script: next,
                });
                break 'shards;
            }
            coord.maybe_donate(&next, &result.choices, &mut floor);
            script = next;
        }
    }
    (ex.stats, leftovers)
}

/// Run the parallel engine. `prior` is the checkpointed base the merged
/// result accumulates onto; `initial` is the starting shard set. The
/// caller accounts `elapsed`.
pub(crate) fn explore_parallel(
    config: &Config,
    prior: Stats,
    initial: Vec<ShardSpec>,
    plugins: PluginSource,
    test: Arc<dyn Fn() + Send + Sync>,
    workers: usize,
) -> Stats {
    let coord = Coordinator {
        state: Mutex::new(CoordState {
            queue: initial.into_iter().collect(),
            idle: 0,
            hungry: 0,
            halt: None,
            done: false,
        }),
        cv: Condvar::new(),
        executions: AtomicU64::new(0),
        workers,
        steal_batch: config.steal_batch.max(1),
        max_executions: config.max_executions,
        deadline: config.time_budget.map(|b| Instant::now() + b),
    };
    let prior_bugs: Vec<String> = prior.bugs.iter().map(|b| b.bug.to_string()).collect();

    // One plugin set per worker: factory-made sets are exclusive; a plain
    // `Vec` is shared behind a mutex (serialized checking — documented on
    // `explore_with_plugins`).
    let sets: Vec<Mutex<Option<PluginSet>>> = match plugins {
        PluginSource::Factory(f) => (0..workers)
            .map(|_| Mutex::new(Some(PluginSet::Owned(f()))))
            .collect(),
        PluginSource::Direct(v) if v.is_empty() => (0..workers)
            .map(|_| Mutex::new(Some(PluginSet::Owned(Vec::new()))))
            .collect(),
        PluginSource::Direct(v) => {
            let shared = Arc::new(Mutex::new(v));
            (0..workers)
                .map(|_| Mutex::new(Some(PluginSet::Shared(Arc::clone(&shared)))))
                .collect()
        }
    };

    let results = run_shard_threads(workers, |w| {
        let mut set = sets[w].lock().take().expect("plugin set taken once");
        shard_worker(w, &coord, config, &prior_bugs, &mut set, &test)
    });

    let unclaimed = coord.state.into_inner().queue;
    merge_results(prior, results, unclaimed)
}

/// Deterministic merge of the workers' results onto the checkpointed base.
fn merge_results(
    prior: Stats,
    results: Vec<std::thread::Result<(Stats, Vec<ShardSpec>)>>,
    unclaimed: VecDeque<ShardSpec>,
) -> Stats {
    let mut merged = prior;
    merged.stop = StopReason::Exhausted;
    let mut seen: HashSet<String> = merged.bugs.iter().map(|b| b.bug.to_string()).collect();
    let mut fresh_bugs: Vec<FoundBug> = Vec::new();
    let mut leftovers: Vec<ShardSpec> = unclaimed.into_iter().collect();
    for r in results {
        match r {
            Ok((stats, rem)) => {
                merged.executions += stats.executions;
                merged.feasible += stats.feasible;
                merged.diverged += stats.diverged;
                merged.sleep_pruned += stats.sleep_pruned;
                merged.sampled += stats.sampled;
                merged.executions_pruned += stats.executions_pruned;
                merged.rf_classes.extend(stats.rf_classes);
                merged.peak_depth = merged.peak_depth.max(stats.peak_depth);
                merged.stop = merged.stop.worst(stats.stop);
                for b in stats.bugs {
                    if seen.insert(b.bug.to_string()) {
                        fresh_bugs.push(b);
                    }
                }
                leftovers.extend(rem);
            }
            // A dead worker thread is an engine failure; its shard is
            // unrecoverable, so the run must not claim completeness.
            Err(_) => merged.stop = merged.stop.worst(StopReason::Errored),
        }
    }
    // Sort new bugs by message so the merged record order is a function of
    // the bug *set*, not of which worker reported first.
    fresh_bugs.sort_by_key(|b| b.bug.to_string());
    for b in fresh_bugs {
        if merged.bugs.len() >= MAX_BUG_RECORDS {
            break;
        }
        merged.bugs.push(b);
    }
    // Sort leftover shards for stable checkpoint text.
    leftovers.sort_by(|a, b| a.script.cmp(&b.script).then(a.floor.cmp(&b.floor)));
    merged.set_frontier_shards(leftovers);
    merged
}
