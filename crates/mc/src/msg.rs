//! The worker ⇄ controller protocol.
//!
//! Modeled threads run on pooled OS threads. At every *visible operation*
//! (atomic access, fence, join, spin hint) the worker sends a [`Request`]
//! and parks until the controller answers with a [`Reply`]. The controller
//! only acts when every live modeled thread is parked, which makes
//! scheduling decisions independent of OS timing — the determinism the
//! stateless DFS depends on.

use cdsspec_c11::{LocId, MemOrd, Tid, Val};

/// A read-modify-write flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// Unconditional update with wrapping 64-bit addition.
    FetchAdd(Val),
    /// Wrapping subtraction.
    FetchSub(Val),
    /// Bitwise or.
    FetchOr(Val),
    /// Bitwise and.
    FetchAnd(Val),
    /// Unconditional exchange.
    Swap(Val),
    /// Compare-and-exchange.
    Cas {
        /// Value the cell must hold for the write to happen.
        expected: Val,
        /// Replacement value.
        new: Val,
        /// Ordering applied when the exchange fails (pure load).
        fail_ord: MemOrd,
        /// Weak CAS may fail spuriously even when it reads `expected`.
        weak: bool,
    },
}

impl RmwKind {
    /// Apply the update to a read value. `None` for a CAS that must fail on
    /// this value.
    pub fn apply(&self, old: Val) -> Option<Val> {
        match *self {
            RmwKind::FetchAdd(v) => Some(old.wrapping_add(v)),
            RmwKind::FetchSub(v) => Some(old.wrapping_sub(v)),
            RmwKind::FetchOr(v) => Some(old | v),
            RmwKind::FetchAnd(v) => Some(old & v),
            RmwKind::Swap(v) => Some(v),
            RmwKind::Cas { expected, new, .. } => (old == expected).then_some(new),
        }
    }
}

/// A visible operation a modeled thread wants to perform.
#[derive(Clone, Debug)]
pub enum Op {
    /// Atomic load.
    Load {
        /// Location read.
        loc: LocId,
        /// Load ordering.
        ord: MemOrd,
    },
    /// Atomic store.
    Store {
        /// Location written.
        loc: LocId,
        /// Store ordering.
        ord: MemOrd,
        /// Value written.
        val: Val,
    },
    /// Atomic read-modify-write.
    Rmw {
        /// Location updated.
        loc: LocId,
        /// Success ordering.
        ord: MemOrd,
        /// The update to apply.
        kind: RmwKind,
    },
    /// Memory fence.
    Fence {
        /// Fence ordering.
        ord: MemOrd,
    },
    /// Block until `target` finishes, then synchronize with its last state.
    Join {
        /// The joined thread.
        target: Tid,
    },
    /// A futile-spin hint; bounded by `Config::max_spins`.
    Spin,
    /// Voluntary scheduling point with no memory effect.
    Yield,
}

impl Op {
    /// The atomic location the op touches, if any.
    pub fn loc(&self) -> Option<LocId> {
        match self {
            Op::Load { loc, .. } | Op::Store { loc, .. } | Op::Rmw { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Does this op write to its location?
    pub fn writes(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Rmw { .. })
    }

    /// Is the op `seq_cst`?
    pub fn is_sc(&self) -> bool {
        matches!(
            self,
            Op::Load {
                ord: MemOrd::SeqCst,
                ..
            } | Op::Store {
                ord: MemOrd::SeqCst,
                ..
            } | Op::Rmw {
                ord: MemOrd::SeqCst,
                ..
            } | Op::Fence {
                ord: MemOrd::SeqCst
            }
        )
    }

    /// Conservative dependence relation used by the sleep-set reduction.
    ///
    /// Two pending ops are *independent* when executing them in either
    /// order yields the same reads-from candidate sets and memory-model
    /// state for every continuation. We approximate:
    ///
    /// * same-location atomic ops are dependent unless both are plain loads;
    /// * any two `seq_cst` operations are dependent (the SC order *S* is
    ///   observable, e.g. IRIW);
    /// * SC fences are dependent with every atomic op (they publish and
    ///   snapshot global floors);
    /// * everything else (different locations, joins, spins) is independent.
    pub fn dependent(&self, other: &Op) -> bool {
        // SC fences are global.
        let sc_fence = |o: &Op| {
            matches!(
                o,
                Op::Fence {
                    ord: MemOrd::SeqCst
                }
            )
        };
        if sc_fence(self) || sc_fence(other) {
            return self.loc().is_some()
                || other.loc().is_some()
                || (sc_fence(self) && sc_fence(other));
        }
        if self.is_sc() && other.is_sc() {
            return true;
        }
        match (self.loc(), other.loc()) {
            (Some(a), Some(b)) if a == b => self.writes() || other.writes(),
            _ => false,
        }
    }
}

/// Worker → controller message.
pub enum Request {
    /// The thread's next visible operation; the thread is parked awaiting a
    /// [`Reply`].
    Op(Tid, Op),
    /// Create a modeled thread running `f`; processed eagerly (it is a
    /// deterministic, non-branching event).
    Spawn(Tid, Box<dyn FnOnce() + Send + 'static>),
    /// The thread's closure returned.
    Finished(Tid),
    /// The thread's closure panicked with this message.
    Panicked(Tid, String),
    /// The thread unwound in response to [`Reply::Die`].
    Aborted(Tid),
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Request::Op(t, op) => write!(f, "Op({t}, {op:?})"),
            Request::Spawn(t, _) => write!(f, "Spawn({t})"),
            Request::Finished(t) => write!(f, "Finished({t})"),
            Request::Panicked(t, m) => write!(f, "Panicked({t}, {m})"),
            Request::Aborted(t) => write!(f, "Aborted({t})"),
        }
    }
}

/// Controller → worker message.
#[derive(Clone, Debug)]
pub enum Reply {
    /// Result of a load (the value read).
    Val(Val),
    /// Result of an RMW: the value read and whether the write happened.
    Rmw {
        /// Value the RMW read.
        old: Val,
        /// Whether the write part happened (CAS success).
        success: bool,
    },
    /// The spawned thread's id.
    Spawned(Tid),
    /// Plain acknowledgement (stores, fences, joins, spins).
    Ok,
    /// The execution is being abandoned: unwind immediately.
    Die,
}

#[cfg(test)]
mod tests {
    use super::*;
    use MemOrd::*;

    #[test]
    fn rmw_apply() {
        assert_eq!(RmwKind::FetchAdd(2).apply(40), Some(42));
        assert_eq!(RmwKind::FetchSub(1).apply(0), Some(u64::MAX)); // wraps
        assert_eq!(RmwKind::Swap(9).apply(1), Some(9));
        assert_eq!(RmwKind::FetchOr(0b10).apply(0b01), Some(0b11));
        assert_eq!(RmwKind::FetchAnd(0b10).apply(0b11), Some(0b10));
        let cas = RmwKind::Cas {
            expected: 5,
            new: 6,
            fail_ord: Relaxed,
            weak: false,
        };
        assert_eq!(cas.apply(5), Some(6));
        assert_eq!(cas.apply(4), None);
    }

    fn load(loc: u32, ord: MemOrd) -> Op {
        Op::Load {
            loc: LocId(loc),
            ord,
        }
    }
    fn store(loc: u32, ord: MemOrd) -> Op {
        Op::Store {
            loc: LocId(loc),
            ord,
            val: 0,
        }
    }

    #[test]
    fn dependence_same_location() {
        assert!(store(0, Relaxed).dependent(&load(0, Relaxed)));
        assert!(store(0, Relaxed).dependent(&store(0, Relaxed)));
        assert!(!load(0, Relaxed).dependent(&load(0, Relaxed)));
    }

    #[test]
    fn dependence_different_locations() {
        assert!(!store(0, Release).dependent(&store(1, Release)));
        assert!(!store(0, Relaxed).dependent(&load(1, Acquire)));
        // ... unless both are SC (S order observable).
        assert!(store(0, SeqCst).dependent(&load(1, SeqCst)));
    }

    #[test]
    fn sc_fence_is_globally_dependent() {
        let f = Op::Fence { ord: SeqCst };
        assert!(f.dependent(&load(0, Relaxed)));
        assert!(f.dependent(&f));
        // but acq/rel fences are thread-local in effect
        let rf = Op::Fence { ord: Release };
        assert!(!rf.dependent(&load(0, Relaxed)));
        assert!(!rf.dependent(&rf));
    }

    #[test]
    fn joins_and_spins_are_independent() {
        let j = Op::Join { target: Tid(1) };
        assert!(!j.dependent(&store(0, SeqCst)));
        assert!(!Op::Spin.dependent(&Op::Spin));
    }
}
