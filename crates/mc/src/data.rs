//! Modeled non-atomic shared memory with data-race detection.
//!
//! [`Data<T>`] is the stand-in for a plain field accessed by multiple
//! threads. Accesses are *invisible* to scheduling (they create no choice
//! points — a race is a race in every interleaving of the surrounding
//! atomics, and happens-before race detection finds it wherever it sits),
//! but they are recorded in the trace and checked against all unordered
//! prior accesses with vector clocks — CDSChecker's built-in race check.

use std::marker::PhantomData;

use cdsspec_c11::{DataId, PrimVal};

use crate::worker::with_ctx;

/// A modeled non-atomic cell holding a `T`.
#[derive(Clone, Copy, Debug)]
pub struct Data<T: PrimVal> {
    id: DataId,
    _marker: PhantomData<fn(T) -> T>,
}

unsafe impl<T: PrimVal> Send for Data<T> {}
unsafe impl<T: PrimVal> Sync for Data<T> {}

impl<T: PrimVal> Data<T> {
    /// A new cell initialized to `v` by the current thread.
    pub fn new(v: T) -> Self {
        let d = with_ctx(|ctx| {
            let mut st = ctx.shared.inner.lock();
            let id = st.mem.alloc_data();
            // The constructor's write is ordered before any access through
            // a published handle, so it is never racy.
            let bug = st.mem.apply_data_write(ctx.tid, id, v.to_bits());
            debug_assert!(bug.is_none());
            id
        });
        Data {
            id: d,
            _marker: PhantomData,
        }
    }

    /// Non-atomic read; a race with an unordered write is reported as a
    /// built-in bug and aborts the execution at the next scheduling step.
    pub fn read(&self) -> T {
        with_ctx(|ctx| {
            let mut st = ctx.shared.inner.lock();
            let (val, bug) = st.mem.apply_data_read(ctx.tid, self.id);
            drop(st);
            if let Some(bug) = bug {
                ctx.shared.post_bug(bug);
            }
            T::from_bits(val)
        })
    }

    /// Non-atomic write; races are reported as built-in bugs.
    pub fn write(&self, v: T) {
        with_ctx(|ctx| {
            let mut st = ctx.shared.inner.lock();
            let bug = st.mem.apply_data_write(ctx.tid, self.id, v.to_bits());
            drop(st);
            if let Some(bug) = bug {
                ctx.shared.post_bug(bug);
            }
        })
    }

    /// The underlying location id (diagnostics).
    pub fn id(&self) -> DataId {
        self.id
    }
}
