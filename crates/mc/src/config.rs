//! Exploration configuration.

use crate::report::ShardSpec;
use std::time::Duration;

/// Tuning knobs for [`crate::explore()`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Hard bound on visible operations per modeled thread. Executions that
    /// exceed it are pruned and counted as *diverged* (the analog of
    /// CDSChecker's infeasible executions).
    pub max_steps_per_thread: u32,
    /// Bound on **total** [`crate::spin_loop`] hints by one thread in one
    /// execution before the branch is pruned as a futile spin. Cumulative
    /// (not consecutive): retry loops that write on every iteration
    /// (compensating RMWs, CAS loops) never look "futile" to the read
    /// tracker, and any behavior reachable through a long wait is also
    /// reachable through a shorter schedule at unit-test scale — the same
    /// bounded-fairness stance CDSChecker takes.
    pub max_spins: u32,
    /// Bound on consecutive loads of the *same location reading the same
    /// store* by one thread. This automatically prunes the stale-read
    /// chains of unannotated spin loops, which would otherwise branch
    /// exponentially until the step bound.
    pub max_futile_reads: u32,
    /// Safety valve: stop exploring after this many executions. When
    /// resuming from a checkpoint, the cap bounds the executions of the
    /// resumed run, not the checkpointed total.
    pub max_executions: u64,
    /// Wall-clock budget for the whole exploration. Checked between
    /// executions (never mid-execution, so checkpointed partition counts
    /// stay exact); on expiry the run stops with `StopReason::Deadline`
    /// and a resumable frontier. `None` = unlimited.
    pub time_budget: Option<Duration>,
    /// Watchdog: abort an execution that makes no scheduling progress for
    /// this long (a wedged modeled thread, e.g. an infinite non-atomic
    /// loop), reporting `Bug::InternalHang`. `None` disables the watchdog
    /// and restores the old park-forever behavior.
    pub hang_timeout: Option<Duration>,
    /// When the deadline fires before exhaustion, additionally probe this
    /// many random-walk executions of the *unexplored* part of the choice
    /// tree (seeded by `sample_seed`, fully deterministic). 0 disables
    /// the degradation mode.
    pub deadline_samples: u64,
    /// PRNG seed for deadline-degraded sampling.
    pub sample_seed: u64,
    /// Start DFS from this replay script instead of the tree root —
    /// the `Checkpoint::script` of an interrupted run. Threads resumption
    /// through APIs that only accept a `Config` (e.g. the benchmark
    /// registry's `check` function pointers). `None`/empty = the root.
    pub resume_script: Option<Vec<usize>>,
    /// Resume exploration from a *set* of frontier shards instead of a
    /// single script — the `Stats::shard_frontiers` of an interrupted
    /// parallel run. Takes precedence over `resume_script` when set.
    /// `None` = start from the root (or from `resume_script`).
    pub resume_shards: Option<Vec<ShardSpec>>,
    /// Number of parallel explorer workers. `1` = the classic sequential
    /// engine; `0` = auto-detect (`std::thread::available_parallelism`).
    /// The default is `1`, overridable process-wide by setting the
    /// `CDSSPEC_WORKERS` environment variable (used by CI to run the
    /// whole tier-1 suite through the parallel engine).
    pub workers: usize,
    /// How many frontier shards an idle worker tries to steal per request
    /// (it receives fewer when the donor has less to give). Must be ≥ 1.
    pub steal_batch: usize,
    /// Maximum modeled threads per execution.
    pub max_threads: u32,
    /// Enable sleep-set partial-order reduction (on by default; the
    /// ablation bench toggles it).
    pub sleep_sets: bool,
    /// Enable rf-equivalence pruning (on by default; `--no-rf-prune`
    /// toggles it in the bench harnesses). Treats the reads-from
    /// assignment — not the interleaving — as the execution's identity:
    /// non-SC loads are deferred behind co-enabled same-location writes
    /// (the read-then-write order is rf-equivalent to write-then-read
    /// with the same candidate window), and rf candidates that would
    /// immediately trip the futile-read bound are rejected eagerly,
    /// before scheduling descends under them. Checkpoints and shard
    /// frontiers are only valid under the same setting they were
    /// produced with — the same contract `sleep_sets` already has.
    /// See ARCHITECTURE.md "Exploration identity and rf-equivalence
    /// pruning" for the soundness and determinism argument.
    pub rf_prune: bool,
    /// Stop at the first bug instead of enumerating all buggy executions.
    pub stop_on_first_bug: bool,
    /// Run the offline axiom validator on every feasible execution
    /// (expensive; used by the property-test suite).
    pub validate_axioms: bool,
    /// Run the fast index-trusting axiom auditor
    /// ([`cdsspec_c11::relations::audit`]) on every feasible execution.
    /// Unlike `validate_axioms` it performs no O(n²) closure — it trusts
    /// the trace's incremental clocks and indexes — so it is cheap enough
    /// to leave on by default. Bench probes turn it off to measure the
    /// bare engine. Ignored (subsumed) when `validate_axioms` is set.
    pub debug_audit: bool,
    /// Host every modeled thread of an execution on userspace fibers of
    /// the explorer thread where the target supports it (see
    /// `crate::fiber`). Purely a hosting-mechanism switch: the explored
    /// tree, counters, and bug reports are identical either way (pinned
    /// by `tests/fiber_equivalence.rs`), so — like `workers` — it is
    /// excluded from the campaign layer's semantic config hash. `false`
    /// forces the OS-thread pool, which the equivalence suites and the
    /// A/B benchmark rows use as the reference host. The default is
    /// `true`, overridable process-wide with `CDSSPEC_FIBER_HOSTING=0`
    /// (used to re-run whole suites against the reference host without
    /// code changes).
    pub fiber_hosting: bool,
    /// Usable stack size, in bytes, of each fiber when `fiber_hosting`
    /// is in effect (the guard region is extra). Rounded up to a whole
    /// number of pages and clamped to a 64 KiB floor at use; `0` means
    /// "the built-in default" (1 MiB). Like `workers` and
    /// `fiber_hosting` this is a hosting-mechanism knob — the explored
    /// tree is identical at any size that doesn't overflow — so it is
    /// excluded from the campaign layer's semantic config hash. The
    /// default is overridable process-wide with `CDSSPEC_FIBER_STACK`
    /// (a byte count, e.g. `262144`).
    pub fiber_stack: usize,
    /// Print every explored trace (debugging).
    pub verbose: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps_per_thread: 500,
            max_spins: 4,
            max_futile_reads: 3,
            max_executions: 20_000_000,
            time_budget: None,
            hang_timeout: Some(Duration::from_secs(10)),
            deadline_samples: 0,
            sample_seed: 0xCD55_9EC5,
            resume_script: None,
            resume_shards: None,
            workers: std::env::var("CDSSPEC_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
            steal_batch: 1,
            max_threads: 32,
            sleep_sets: true,
            rf_prune: true,
            stop_on_first_bug: true,
            validate_axioms: false,
            debug_audit: true,
            fiber_hosting: std::env::var("CDSSPEC_FIBER_HOSTING")
                .map(|v| v != "0")
                .unwrap_or(true),
            fiber_stack: std::env::var("CDSSPEC_FIBER_STACK")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(crate::fiber::DEFAULT_STACK_SIZE),
            verbose: false,
        }
    }
}

impl Config {
    /// Preset used by the test suites: exhaustive, with online axiom
    /// validation enabled.
    pub fn validating() -> Self {
        Config {
            validate_axioms: true,
            ..Config::default()
        }
    }

    /// The concrete worker count this config resolves to: `workers`
    /// itself, or the machine's available parallelism when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.max_steps_per_thread >= 100);
        assert!(c.sleep_sets);
        assert!(c.rf_prune, "rf-equivalence pruning on by default");
        assert!(!c.validate_axioms);
        assert!(c.debug_audit, "fast auditor on by default");
        assert!(Config::validating().validate_axioms);
        assert!(c.time_budget.is_none(), "no deadline unless asked");
        assert!(c.hang_timeout.is_some(), "watchdog on by default");
        // `fiber_hosting` defaults to the env override so whole suites can
        // be re-run against the reference host; assert the resolution rule
        // rather than a fixed value so the test itself survives that mode.
        let want = std::env::var("CDSSPEC_FIBER_HOSTING")
            .map(|v| v != "0")
            .unwrap_or(true);
        assert_eq!(c.fiber_hosting, want, "fiber hosting on unless overridden");
        let want_stack = std::env::var("CDSSPEC_FIBER_STACK")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(crate::fiber::DEFAULT_STACK_SIZE);
        assert_eq!(c.fiber_stack, want_stack, "stack default env-resolved");
        assert_eq!(c.deadline_samples, 0, "sampling degradation is opt-in");
        assert!(c.resume_script.is_none());
        assert!(c.resume_shards.is_none());
        assert!(c.steal_batch >= 1);
        assert!(c.effective_workers() >= 1, "0 resolves to >= 1");
    }
}
