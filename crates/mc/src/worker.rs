//! Worker-pool plumbing: pooled OS threads hosting modeled threads, the
//! per-thread context, and the quiet panic hook.
//!
//! Scheduling itself lives in [`crate::runtime`] (token-passing: the
//! worker that parks last decides who runs next). Pool threads are reused
//! across executions — thread spawn cost would otherwise dominate
//! exploration time (see `benches/exploration.rs`).

use std::any::Any;
use std::cell::RefCell;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Once};

use cdsspec_c11::Tid;

use crate::runtime::{self, Shared};

/// Marker panic payload used to unwind a worker when the runtime abandons
/// an execution.
pub(crate) struct DieMarker;

/// Per-modeled-thread context installed in the worker's thread-local while
/// it runs a job.
pub(crate) struct Ctx {
    pub tid: Tid,
    pub shared: Arc<Shared>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Run `f` with the current modeled-thread context. Panics (with a clear
/// message) when called outside `mc::explore`/`mc::model`.
///
/// The context is cloned out (a `Tid` copy plus one `Arc` bump) so the
/// `RefCell` borrow is released *before* `f` runs. This is load-bearing
/// under fiber hosting: `f` may suspend the calling fiber mid-operation,
/// and the fiber that runs next re-points `CTX` for itself — a borrow
/// held across the switch would make that re-point panic.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    // Preemption gate, held across `f` as well as the `RefCell` borrow:
    // every `with_ctx` callback is engine code (they lock `Shared::inner`,
    // the arena, or the pending-bug slot), and a signal rescue abandoning
    // a fiber inside one of those locks would deadlock the explorer when
    // the host relocks on its side. Holding the gate across a suspension
    // inside `f` is fine — the switch paths save/restore each fiber's
    // depth — but the borrow still must not span a switch, so it stays
    // scoped tightly below.
    let _gate = crate::fiber::engine_section();
    let ctx = CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("cdsspec-mc primitives may only be used inside mc::explore/mc::model");
        Ctx {
            tid: ctx.tid,
            shared: Arc::clone(&ctx.shared),
        }
    });
    f(&ctx)
}

/// Is the caller inside a modeled thread?
pub fn in_model() -> bool {
    let _gate = crate::fiber::engine_section();
    CTX.with(|c| c.borrow().is_some())
}

/// Install (or clear) the modeled-thread context directly — used by the
/// fiber host, which multiplexes many modeled threads on one OS thread
/// and must re-point the context at every stack switch.
pub(crate) fn set_fiber_ctx(ctx: Option<Ctx>) {
    let _gate = crate::fiber::engine_section();
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// A unit of work for a pooled OS thread: run `closure` as modeled thread
/// `tid` of the execution owned by `shared`.
pub(crate) struct Job {
    pub tid: Tid,
    pub shared: Arc<Shared>,
    pub closure: Box<dyn FnOnce() + Send + 'static>,
}

struct WorkerHandle {
    job_tx: Sender<Job>,
}

/// A reusable pool of OS threads hosting modeled threads.
pub(crate) struct Pool {
    workers: Vec<WorkerHandle>,
    free_rx: Receiver<usize>,
    free_tx: Sender<usize>,
}

impl Pool {
    pub fn new() -> Self {
        install_quiet_panic_hook();
        let (free_tx, free_rx) = channel();
        Pool {
            workers: Vec::new(),
            free_rx,
            free_tx,
        }
    }

    /// Dispatch a job onto a free worker, growing the pool when necessary.
    /// A worker whose OS thread has died (its job channel is closed) is
    /// respawned in place and the dispatch retried — one lost thread must
    /// not take down the whole exploration.
    ///
    /// Respawns are bounded: a host where fresh pool threads die
    /// immediately on every start (resource exhaustion, a broken runtime)
    /// would otherwise spin here forever. After [`Pool::MAX_RESPAWNS`]
    /// consecutive failed hand-offs — each preceded by an exponentially
    /// growing backoff sleep — the dispatch gives up and returns `false`;
    /// callers surface the failure as [`crate::StopReason::Errored`]
    /// instead of hanging the exploration.
    #[must_use = "a failed dispatch must abort the execution, not be ignored"]
    pub fn dispatch(&mut self, job: Job) -> bool {
        let mut job = job;
        let mut respawns = 0u32;
        loop {
            let idx = match self.free_rx.try_recv() {
                Ok(i) => i,
                Err(_) => {
                    let i = self.workers.len();
                    self.workers.push(spawn_worker(i, self.free_tx.clone()));
                    i
                }
            };
            job = match self.workers[idx].job_tx.send(job) {
                Ok(()) => return true,
                Err(std::sync::mpsc::SendError(j)) => j,
            };
            // Dead worker: replace it and hand the fresh one the job
            // directly (it never announced itself free). Back off first —
            // if threads are dying from transient resource pressure, an
            // immediate respawn just burns the retry budget.
            if respawns >= Self::MAX_RESPAWNS {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(50u64 << respawns.min(12)));
            respawns += 1;
            self.workers[idx] = spawn_worker(idx, self.free_tx.clone());
            job = match self.workers[idx].job_tx.send(job) {
                Ok(()) => return true,
                Err(std::sync::mpsc::SendError(j)) => j,
            };
        }
    }
}

impl Pool {
    /// Consecutive dead-worker respawns tolerated by one dispatch before
    /// it reports failure (total backoff ≈ 0.8 s at the cap).
    pub(crate) const MAX_RESPAWNS: u32 = 8;
}

/// Run `n` shard-explorer bodies on dedicated OS threads and collect their
/// results in worker-index order — the spawn half of the parallel engine
/// (`crate::parallel`), kept here with the rest of the thread plumbing.
///
/// Shard threads are named `cdsspec-shard-N`, deliberately NOT matched by
/// the quiet panic hook below: a crashing shard explorer is an engine bug
/// worth printing, unlike the routine unwinds of the modeled-thread pool.
/// A `Err` join result is surfaced to the caller rather than propagated,
/// so one dead shard cannot take down its siblings' results.
pub(crate) fn run_shard_threads<R, F>(n: usize, body: F) -> Vec<std::thread::Result<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    std::thread::scope(|s| {
        let body = &body;
        let handles: Vec<_> = (0..n)
            .map(|w| {
                std::thread::Builder::new()
                    .name(format!("cdsspec-shard-{w}"))
                    .spawn_scoped(s, move || body(w))
                    .expect("failed to spawn shard explorer")
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    })
}

/// Worker threads unwind constantly (every abandoned execution panics with
/// [`DieMarker`], and `mc_assert!` failures are caught and reported through
/// the bug machinery), so the default panic hook's stderr output — possibly
/// with full backtraces — would dominate exploration time. Silence panics
/// on pool threads and inside any modeled-thread context (the explorer
/// runs the main modeled thread inline, see [`run_main_inline`]);
/// everything else keeps the default hook.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .map(|n| n.starts_with("cdsspec-worker"))
                .unwrap_or(false);
            if !on_worker && !in_model() {
                default(info);
            }
        }));
    });
}

fn spawn_worker(index: usize, free_tx: Sender<usize>) -> WorkerHandle {
    let (job_tx, job_rx) = channel::<Job>();
    std::thread::Builder::new()
        .name(format!("cdsspec-worker-{index}"))
        .spawn(move || {
            while let Ok(job) = job_rx.recv() {
                run_job(job);
                if free_tx.send(index).is_err() {
                    break; // pool dropped
                }
            }
        })
        .expect("failed to spawn pool worker");
    WorkerHandle { job_tx }
}

/// Run the *main* modeled thread of an execution on the calling (explorer)
/// thread instead of dispatching it to the pool.
///
/// On a mostly-idle explorer this removes two futex round-trips per
/// execution — the wake of the pool worker that would host `main`, and the
/// `done` signal parking/unparking the explorer — which is a measurable
/// share of short executions on a single-core host. The explorer simply
/// becomes one more participant in the token-passing handshake: it blocks
/// in `visible_op` like any worker while other threads are scheduled.
///
/// Only sound when the caller has nothing else to do during the execution;
/// `run_once` falls back to pool dispatch when a hang watchdog must keep
/// polling. The modeled-thread context is installed around the closure, so
/// the quiet panic hook covers the routine [`DieMarker`] unwinds here too.
pub(crate) fn run_main_inline(shared: &Arc<Shared>, closure: Box<dyn FnOnce() + Send + 'static>) {
    run_job(Job {
        tid: Tid::MAIN,
        shared: Arc::clone(shared),
        closure,
    });
}

/// Host one modeled thread to completion: install its context, run the
/// closure, catch any unwind, and report the exit to the runtime. The
/// body of every pool worker, of [`run_main_inline`], and of every fiber
/// root (`crate::fiber`).
pub(crate) fn run_job(job: Job) {
    let Job {
        tid,
        shared,
        closure,
    } = job;
    {
        // Gate the `RefCell` borrow against signal rescue (see with_ctx).
        let _gate = crate::fiber::engine_section();
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                tid,
                shared: Arc::clone(&shared),
            });
        });
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(closure));
    {
        let _gate = crate::fiber::engine_section();
        CTX.with(|c| {
            *c.borrow_mut() = None;
        });
    }
    match result {
        Ok(()) => runtime::thread_finished(&shared, tid),
        Err(payload) => {
            if payload.is::<DieMarker>() {
                runtime::thread_aborted(&shared, tid);
            } else {
                runtime::thread_panicked(&shared, tid, panic_message(&payload));
            }
        }
    }
    runtime::job_exited(&shared);
}

pub(crate) fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_ctx_outside_model_panics() {
        let r = std::panic::catch_unwind(|| with_ctx(|_| ()));
        assert!(r.is_err());
        assert!(!in_model());
    }
}
