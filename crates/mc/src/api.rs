//! Free-function model API: modeled threads, fences, spin hints,
//! per-execution allocation, and spec annotations.

use cdsspec_c11::{MemOrd, SpecNote, Tid};

use crate::msg::{Op, Reply};
use crate::runtime;
use crate::worker::with_ctx;

/// Perform a visible operation for the calling modeled thread.
pub(crate) fn visible_op(op: Op) -> Reply {
    with_ctx(|ctx| runtime::visible_op(&ctx.shared, ctx.tid, op))
}

/// Modeled threads.
pub mod thread {
    use super::*;

    /// Handle to a modeled thread; `join` synchronizes with its completion
    /// (like `std::thread::JoinHandle`, minus the return value — modeled
    /// tests communicate through the structures under test).
    #[must_use = "dropping a JoinHandle without joining leaves the thread running"]
    pub struct JoinHandle {
        tid: Tid,
    }

    impl JoinHandle {
        /// The modeled thread id.
        pub fn tid(&self) -> Tid {
            self.tid
        }

        /// Block until the thread finishes; its effects happen-before the
        /// caller's subsequent operations.
        pub fn join(self) {
            match visible_op(Op::Join { target: self.tid }) {
                Reply::Ok => {}
                r => unreachable!("join reply {r:?}"),
            }
        }
    }

    /// Spawn a modeled thread. The spawn happens-before the closure's first
    /// operation.
    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        with_ctx(|ctx| {
            let tid = runtime::spawn_thread(&ctx.shared, ctx.tid, Box::new(f));
            JoinHandle { tid }
        })
    }

    /// The current modeled thread id.
    pub fn current() -> Tid {
        with_ctx(|ctx| ctx.tid)
    }
}

/// A memory fence with the given ordering (`atomic_thread_fence`).
pub fn fence(ord: MemOrd) {
    match visible_op(Op::Fence { ord }) {
        Reply::Ok => {}
        r => unreachable!("fence reply {r:?}"),
    }
}

/// Futile-spin hint: call once per failed spin/retry-loop iteration. The
/// checker prunes branches where one thread spins more than
/// `Config::max_spins` times in one execution — the bounded-fairness
/// treatment of unbounded retry loops (any outcome reachable through a
/// long wait is also reachable through a shorter schedule at unit-test
/// scale).
pub fn spin_loop() {
    match visible_op(Op::Spin) {
        Reply::Ok => {}
        r => unreachable!("spin reply {r:?}"),
    }
}

/// Voluntary scheduling point with no memory effect.
pub fn yield_now() {
    match visible_op(Op::Yield) {
        Reply::Ok => {}
        r => unreachable!("yield reply {r:?}"),
    }
}

/// Feed the hang watchdog without a scheduling point. Modeled code doing
/// a legitimately long non-atomic computation (longer than
/// `Config::hang_timeout`) between visible operations should call this
/// periodically so the watchdog does not mistake it for a wedged thread.
/// No-op outside a model run.
pub fn progress_hint() {
    if !crate::worker::in_model() {
        return;
    }
    // Lock-free: the heartbeat is an atomic on `Shared`, so the hint
    // costs one fetch_add — cheap enough to sprinkle into tight loops.
    with_ctx(|ctx| ctx.shared.heartbeat());
}

/// Allocate `v` for the duration of the current execution and return a raw
/// pointer to it. The allocation is freed when the execution ends (after
/// every modeled thread has stopped), which makes it the right tool for
/// linked-structure nodes that C code would leak or defer-free:
///
/// ```ignore
/// let node: *mut Node = mc::alloc(Node::new(val));
/// ```
pub fn alloc<T: Send + 'static>(v: T) -> *mut T {
    with_ctx(|ctx| {
        let mut arena = ctx.shared.arena.lock();
        let mut boxed = Box::new(v);
        let ptr: *mut T = &mut *boxed;
        arena.push(boxed);
        ptr
    })
}

/// Allocate a deterministic per-execution object identity for a data
/// structure instance (used by specification composition, paper §3.2).
/// Returns 0 outside a model run.
pub fn new_object_id() -> u64 {
    if !crate::worker::in_model() {
        return 0;
    }
    with_ctx(|ctx| ctx.shared.inner.lock().mem.next_object_id())
}

/// Record a specification annotation (used by `cdsspec-core`; data
/// structures call the typed wrappers there instead).
pub fn annotate(note: SpecNote) {
    with_ctx(|ctx| {
        ctx.shared.inner.lock().mem.annotate(ctx.tid, note);
    })
}

/// Model-checked assertion: panics (reported as a bug with the message)
/// when `cond` is false.
#[macro_export]
macro_rules! mc_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("mc_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            panic!("mc_assert failed: {}", format_args!($($arg)+));
        }
    };
}
