//! Modeled C/C++11 atomic cells.
//!
//! [`Atomic<T>`] is the instrumented stand-in for `std::atomic<T>`: every
//! access becomes a visible operation of the model checker with an explicit
//! [`MemOrd`] parameter. Data structures under test take their orderings
//! from an ordering table so the fault-injection campaign can weaken one
//! site at a time (see `cdsspec-structures::ords`).

use std::marker::PhantomData;

use cdsspec_c11::{LocId, MemOrd, PrimVal};

use crate::api::visible_op;
use crate::msg::{Op, Reply, RmwKind};
use crate::worker::with_ctx;

/// A modeled atomic memory location holding a `T`.
///
/// `Atomic` is `Copy`: it is only a handle (location id); the cell contents
/// live in the model checker. Handles must not leak across executions — a
/// fresh execution re-runs the whole test closure, reallocating every
/// location.
#[derive(Clone, Copy, Debug)]
pub struct Atomic<T: PrimVal> {
    loc: LocId,
    _marker: PhantomData<fn(T) -> T>,
}

// The cell is exclusively managed by the checker; handles are freely
// shareable.
unsafe impl<T: PrimVal> Send for Atomic<T> {}
unsafe impl<T: PrimVal> Sync for Atomic<T> {}

impl<T: PrimVal> Atomic<T> {
    /// A new atomic initialized to `v` (the C11 `atomic_init`: an
    /// unordered store by the constructing thread; visibility to other
    /// threads flows through whatever publishes the handle).
    pub fn new(v: T) -> Self {
        let loc = with_ctx(|ctx| {
            ctx.shared
                .inner
                .lock()
                .mem
                .alloc_atomic(ctx.tid, Some(v.to_bits()))
        });
        Atomic {
            loc,
            _marker: PhantomData,
        }
    }

    /// A new **uninitialized** atomic. Loads that can observe the cell
    /// before any store are reported as CDSChecker-style "uninitialized
    /// load" bugs — this is how the known Chase-Lev resize bug manifests.
    pub fn uninit() -> Self {
        let loc = with_ctx(|ctx| ctx.shared.inner.lock().mem.alloc_atomic(ctx.tid, None));
        Atomic {
            loc,
            _marker: PhantomData,
        }
    }

    /// The underlying location id (diagnostics).
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Atomic load.
    pub fn load(&self, ord: MemOrd) -> T {
        match visible_op(Op::Load { loc: self.loc, ord }) {
            Reply::Val(v) => T::from_bits(v),
            r => unreachable!("load reply {r:?}"),
        }
    }

    /// Atomic store.
    pub fn store(&self, v: T, ord: MemOrd) {
        match visible_op(Op::Store {
            loc: self.loc,
            ord,
            val: v.to_bits(),
        }) {
            Reply::Ok => {}
            r => unreachable!("store reply {r:?}"),
        }
    }

    /// Atomic exchange; returns the previous value.
    pub fn swap(&self, v: T, ord: MemOrd) -> T {
        match visible_op(Op::Rmw {
            loc: self.loc,
            ord,
            kind: RmwKind::Swap(v.to_bits()),
        }) {
            Reply::Rmw { old, .. } => T::from_bits(old),
            r => unreachable!("swap reply {r:?}"),
        }
    }

    /// `compare_exchange_strong`: on success returns `Ok(previous)`, on
    /// failure `Err(observed)`. The failure path is an atomic load with
    /// `fail_ord` and may observe stale values — the weak-memory behavior
    /// the paper's examples revolve around.
    pub fn compare_exchange(
        &self,
        expected: T,
        new: T,
        ord: MemOrd,
        fail_ord: MemOrd,
    ) -> Result<T, T> {
        self.cas(expected, new, ord, fail_ord, false)
    }

    /// `compare_exchange_weak`: may additionally fail spuriously.
    pub fn compare_exchange_weak(
        &self,
        expected: T,
        new: T,
        ord: MemOrd,
        fail_ord: MemOrd,
    ) -> Result<T, T> {
        self.cas(expected, new, ord, fail_ord, true)
    }

    fn cas(&self, expected: T, new: T, ord: MemOrd, fail_ord: MemOrd, weak: bool) -> Result<T, T> {
        let kind = RmwKind::Cas {
            expected: expected.to_bits(),
            new: new.to_bits(),
            fail_ord,
            weak,
        };
        match visible_op(Op::Rmw {
            loc: self.loc,
            ord,
            kind,
        }) {
            Reply::Rmw { old, success: true } => Ok(T::from_bits(old)),
            Reply::Rmw {
                old,
                success: false,
            } => Err(T::from_bits(old)),
            r => unreachable!("cas reply {r:?}"),
        }
    }

    fn fetch_op(&self, kind: RmwKind, ord: MemOrd) -> T {
        match visible_op(Op::Rmw {
            loc: self.loc,
            ord,
            kind,
        }) {
            Reply::Rmw { old, .. } => T::from_bits(old),
            r => unreachable!("rmw reply {r:?}"),
        }
    }
}

macro_rules! integer_rmw {
    ($($t:ty),*) => {$(
        impl Atomic<$t> {
            /// Wrapping `fetch_add`; returns the previous value.
            pub fn fetch_add(&self, v: $t, ord: MemOrd) -> $t {
                self.fetch_op(RmwKind::FetchAdd(v.to_bits()), ord)
            }
            /// Wrapping `fetch_sub`; returns the previous value.
            pub fn fetch_sub(&self, v: $t, ord: MemOrd) -> $t {
                // Build the two's-complement delta in 64-bit space so that
                // sign-extended encodings subtract correctly.
                self.fetch_op(RmwKind::FetchSub(v.to_bits()), ord)
            }
            /// Bitwise `fetch_or`; returns the previous value.
            pub fn fetch_or(&self, v: $t, ord: MemOrd) -> $t {
                self.fetch_op(RmwKind::FetchOr(v.to_bits()), ord)
            }
            /// Bitwise `fetch_and`; returns the previous value.
            pub fn fetch_and(&self, v: $t, ord: MemOrd) -> $t {
                self.fetch_op(RmwKind::FetchAnd(v.to_bits()), ord)
            }
        }
    )*};
}

integer_rmw!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A modeled pointer-width atomic used for linked structures. Alias for
/// readability in data-structure code.
pub type AtomicPtr<T> = Atomic<*mut T>;
