//! Plugin interface: per-execution trace checkers.
//!
//! The CDSSpec checker (`cdsspec-core`) attaches to exploration through
//! this trait, exactly as the paper's tool plugs into CDSChecker. Plugins
//! see only *feasible, built-in-bug-free* executions: races, uninitialized
//! loads, panics and deadlocks abort an execution before its trace is
//! complete, and checking a specification against a partial trace would
//! produce noise.

use cdsspec_c11::Trace;

use crate::report::Bug;

/// Builds a fresh plugin list on demand — one list per explorer worker,
/// so parallel exploration (`Config::workers > 1`) checks each frontier
/// shard with plugins it owns exclusively and no cross-worker locking.
/// See [`crate::explore_factory`].
pub type PluginFactory = std::sync::Arc<dyn Fn() -> Vec<Box<dyn Plugin>> + Send + Sync>;

/// A checker invoked on every feasible execution.
pub trait Plugin: Send {
    /// Display name used in bug reports.
    fn name(&self) -> &'static str;
    /// Inspect one feasible execution; return all violations found.
    fn check(&mut self, trace: &Trace) -> Vec<Bug>;
}

/// A plugin built from a closure — handy in tests.
pub struct FnPlugin<F: FnMut(&Trace) -> Vec<Bug> + Send> {
    name: &'static str,
    f: F,
}

impl<F: FnMut(&Trace) -> Vec<Bug> + Send> FnPlugin<F> {
    /// Wrap `f` as a plugin called `name`.
    pub fn new(name: &'static str, f: F) -> Self {
        FnPlugin { name, f }
    }
}

impl<F: FnMut(&Trace) -> Vec<Bug> + Send> Plugin for FnPlugin<F> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn check(&mut self, trace: &Trace) -> Vec<Bug> {
        (self.f)(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_plugin_delegates() {
        let mut calls = 0;
        {
            let mut p = FnPlugin::new("probe", |_t| {
                calls += 1;
                vec![]
            });
            assert_eq!(p.name(), "probe");
            assert!(p.check(&Trace::default()).is_empty());
        }
        assert_eq!(calls, 1);
    }
}
