//! # cdsspec-mc
//!
//! A stateless model checker for code written against modeled C/C++11
//! atomics — the reproduction of **CDSChecker** (Norris & Demsky,
//! OOPSLA'13), the substrate the CDSSpec paper builds on.
//!
//! ## What it explores
//!
//! The checker re-executes a deterministic test closure, enumerating:
//!
//! 1. **Thread interleavings** of visible operations (atomic accesses,
//!    fences, joins), reduced with sleep sets;
//! 2. **Reads-from choices**: each load may observe any store permitted by
//!    the C/C++11 coherence and SC axioms — including *stale* stores, which
//!    is where relaxed-memory behaviors come from.
//!
//! Modification order is derived from per-location commit order, which
//! covers all RC11-consistent behaviors except load buffering /
//! out-of-thin-air — the same class CDSChecker declines to generate
//! (paper §5.2).
//!
//! ## Built-in checks
//!
//! Data races on [`Data`] cells, uninitialized atomic loads, deadlocks, and
//! modeled-thread panics (`mc_assert!`). Specification checking attaches
//! through the [`Plugin`] trait (see `cdsspec-core`).
//!
//! ## Example
//!
//! ```
//! use cdsspec_mc as mc;
//! use mc::mc_assert;
//! use mc::MemOrd::*;
//!
//! // Release/acquire message passing never reads stale data.
//! mc::model(|| {
//!     let data = mc::Atomic::new(0i32);
//!     let flag = mc::Atomic::new(0i32);
//!     let t = mc::thread::spawn(move || {
//!         data.store(42, Relaxed);
//!         flag.store(1, Release);
//!     });
//!     if flag.load(Acquire) == 1 {
//!         mc_assert!(data.load(Relaxed) == 42);
//!     }
//!     t.join();
//! });
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod atomic;
pub mod config;
pub mod data;
pub mod explore;
pub(crate) mod fiber;
pub mod memstate;
pub mod msg;
pub(crate) mod parallel;
pub mod plugin;
pub mod report;
pub(crate) mod runtime;
pub(crate) mod worker;

pub use api::{alloc, annotate, fence, new_object_id, progress_hint, spin_loop, thread, yield_now};
pub use atomic::{Atomic, AtomicPtr};
pub use config::Config;
pub use data::Data;
pub use explore::{
    explore, explore_factory, explore_from, explore_from_factory, explore_from_with_plugins,
    explore_with_plugins, model,
};
pub use plugin::{FnPlugin, Plugin, PluginFactory};
pub use report::{Bug, BugCategory, Checkpoint, FoundBug, ShardSpec, Stats, StopReason};
pub use worker::in_model;

// Re-export the vocabulary crate so downstream users need one import.
pub use cdsspec_c11 as c11;
pub use cdsspec_c11::MemOrd;
