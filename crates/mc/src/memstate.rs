//! The memory-model engine.
//!
//! [`MemState`] owns the evolving execution: per-thread clocks, per-location
//! modification orders, the SC machinery, and the trace being built. The
//! controller calls into it to (a) enumerate the reads-from candidates of a
//! load/RMW — the checker's second kind of choice point — and (b) apply
//! chosen operations, updating clocks per the C/C++11 synchronization
//! rules:
//!
//! * release/acquire via reads-from, with release sequences continued
//!   through RMWs;
//! * release/acquire/SC fences (C++11 29.8 and 29.3 p4–p6);
//! * thread create/join edges;
//! * coherence as per-location mo floors carried in [`Clock`]
//!   (see `cdsspec-c11::clock` for the encoding).
//!
//! Modification order is the per-location commit order of stores, which is
//! why a load's candidate set is always a suffix of the store list plus
//! (when nothing is visible yet) the *uninitialized* pseudo-store.

use cdsspec_c11::clock::CoherenceMap;
use cdsspec_c11::{
    Annotation, Clock, DataId, EventId, EventKind, LocId, MemOrd, SpecNote, Tid, Trace, Val,
};

use crate::msg::RmwKind;
use crate::report::Bug;

/// Per-thread memory-model state.
#[derive(Clone, Debug, Default)]
pub struct ThreadState {
    /// Current happens-before knowledge (incl. coherence floors).
    pub clock: Clock,
    /// Events performed so far (1-based seq of the last event).
    pub seq: u32,
    /// Payload of the latest release fence, if any (C++11 29.8p2: the
    /// fence becomes the sync source for subsequent relaxed stores).
    rel_fence: Option<Payload>,
    /// Accumulated sync payloads of stores read by *relaxed* loads since
    /// thread start; an acquire fence joins this (29.8p3-4).
    acq_pending: Clock,
    /// mo floors snapshotted at the latest SC fence (29.3 p4+p6).
    sc_fence_floor: CoherenceMap,
    /// Per-location mo index of the latest store performed by this thread
    /// (published to `sc_fence_published` at SC fences, 29.3 p5-p6).
    own_stores: CoherenceMap,
    /// Thread ran to completion.
    pub finished: bool,
    /// Clock at finish (join payload, own component lazy).
    finish_clock: Payload,
    /// Visible operations performed (divergence bound).
    pub steps: u32,
    /// Consecutive spin hints (futile-spin bound).
    pub spins: u32,
}

/// Per-data-location race-detection state plus the stored value (the value
/// of a racy read is whatever was last committed — the race itself is
/// reported as a bug, so the value never matters for correctness).
#[derive(Clone, Debug, Default)]
struct DataState {
    value: Val,
    last_write: Option<(Tid, u32)>,
    reads_since_write: Vec<(Tid, u32)>,
}

/// Release payload of a store or release fence: the source thread's clock
/// plus the source event's own `(tid, seq)` component, kept *unapplied*.
/// Building a payload is then pure COW Arc bumps — the deep vector copy
/// that eagerly raising the own component would force (the payload clock
/// shares its buffers with the still-mutating thread clock) is deferred
/// to the reader that actually joins the payload, and never happens at
/// all for the many release stores nobody synchronizes with.
#[derive(Clone, Debug, Default)]
struct Payload {
    clock: Clock,
    own: Option<(Tid, u32)>,
}

impl Payload {
    /// Join this payload into a receiver clock. Raising the lazy
    /// component after the join is equivalent to joining the raised
    /// clock: both are component-wise max.
    fn join_into(&self, dst: &mut Clock) {
        dst.join(&self.clock);
        if let Some((t, s)) = self.own {
            dst.vc.raise(t, s);
        }
    }

    /// Fold the lazy component into the clock (needed before this
    /// payload can absorb a *second* own component).
    fn flatten(&mut self) {
        if let Some((t, s)) = self.own.take() {
            self.clock.vc.raise(t, s);
        }
    }
}

/// A reads-from candidate for a load or RMW.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RfChoice {
    /// The store read (`None` = uninitialized pseudo-store).
    pub rf: Option<EventId>,
    /// For RMWs: does the write part happen?
    pub success: bool,
}

/// The evolving execution.
#[derive(Debug, Default)]
pub struct MemState {
    /// The trace being constructed.
    pub trace: Trace,
    /// Modeled threads (index = tid).
    pub threads: Vec<ThreadState>,
    /// Per-atomic-location store lists live in `trace.mo`.
    data: Vec<DataState>,
    /// Release payloads of stores, indexed by event id.
    sync_of: Vec<Option<Payload>>,
    /// Per-location mo index of the latest SC store (29.3 p3-p4).
    sc_last_store: CoherenceMap,
    /// Per-location max mo index published by SC fences (29.3 p5-p6).
    sc_fence_published: CoherenceMap,
    /// Last event of each thread (annotation anchoring).
    last_event: Vec<Option<EventId>>,
    /// Deterministic per-execution object-identity counter.
    obj_counter: u64,
    /// Recycled per-location store lists: [`Self::reset`] parks the inner
    /// `trace.mo` vectors here (cleared, capacity kept) and
    /// [`Self::alloc_atomic`] hands them back out, so location churn stops
    /// allocating once the harness is warm.
    mo_pool: Vec<Vec<EventId>>,
}

impl MemState {
    /// Fresh state with the main thread (Tid 0) registered.
    pub fn new() -> Self {
        let mut s = MemState::default();
        s.threads.push(ThreadState::default());
        s.last_event.push(None);
        s.trace.num_threads = 1;
        s
    }

    /// Rewind to the initial state (main thread registered, nothing else),
    /// recycling `recycle` as the new trace buffer so the event/mo/sc
    /// vectors keep the capacity earlier executions grew. Equivalent to
    /// `*self = MemState::new()` up to observable behavior.
    pub fn reset(&mut self, mut recycle: Trace) {
        self.mo_pool.extend(recycle.mo.drain(..).map(|mut v| {
            v.clear();
            v
        }));
        // Clears every column and incremental index while keeping their
        // capacity (and the `record_sw` setting).
        recycle.clear();
        self.trace = recycle;
        self.threads.clear();
        self.threads.push(ThreadState::default());
        self.data.clear();
        self.sync_of.clear();
        self.sc_last_store = CoherenceMap::new();
        self.sc_fence_published = CoherenceMap::new();
        self.last_event.clear();
        self.last_event.push(None);
        self.obj_counter = 0;
    }

    /// Register a child thread spawned by `parent`; records the
    /// `ThreadCreate` event and seeds the child clock (create ⊆ sw).
    pub fn spawn_thread(&mut self, parent: Tid) -> Tid {
        let child = Tid(self.threads.len() as u32);
        self.push_event(parent, EventKind::ThreadCreate { child });
        let pth = &self.threads[parent.idx()];
        // Thread clocks leave their own component implicit; crossing to
        // another thread makes it explicit (the create event included).
        let mut clock = pth.clock.clone();
        clock.vc.raise(parent, pth.seq);
        let st = ThreadState {
            clock,
            ..ThreadState::default()
        };
        self.threads.push(st);
        self.last_event.push(None);
        self.trace.num_threads += 1;
        child
    }

    /// Allocate a fresh atomic location, optionally with an initializing
    /// store by `tid` (invisible to scheduling: the location cannot be
    /// shared before its constructor returns).
    pub fn alloc_atomic(&mut self, tid: Tid, init: Option<Val>) -> LocId {
        let loc = LocId(self.trace.mo.len() as u32);
        self.trace.mo.push(self.mo_pool.pop().unwrap_or_default());
        if let Some(v) = init {
            self.apply_store(tid, loc, MemOrd::Relaxed, v);
        }
        loc
    }

    /// Allocate a fresh non-atomic location.
    pub fn alloc_data(&mut self) -> DataId {
        let id = DataId(self.data.len() as u32);
        self.data.push(DataState::default());
        id
    }

    fn loc_stores(&self, loc: LocId) -> &[EventId] {
        &self.trace.mo[loc.idx()]
    }

    /// The mo-maximal store to `loc`, if any — the write most recently
    /// committed (mo order is commit order per location).
    pub fn last_store(&self, loc: LocId) -> Option<EventId> {
        self.loc_stores(loc).last().copied()
    }

    fn store_val(&self, id: EventId) -> Val {
        self.trace
            .written_val(id)
            .expect("rf target must be a write")
    }

    /// Commit an event for `tid` through [`Trace::push`] (which maintains
    /// SC membership and every incremental index) and return its id.
    ///
    /// Allocation note: the thread's vector clock does *not* carry the
    /// thread's own component (it is implicit in `seq`), so the per-event
    /// snapshot below is a pure copy-on-write share — the clock buffers
    /// are only copied when a later *join* actually learns something new.
    fn push_event(&mut self, tid: Tid, kind: EventKind) -> EventId {
        let th = &mut self.threads[tid.idx()];
        th.seq += 1;
        th.steps += 1;
        let clock = th.clock.vc.clone();
        let id = self.trace.push(tid, th.seq, kind, clock);
        self.sync_of.push(None);
        self.last_event[tid.idx()] = Some(id);
        id
    }

    /// The mo floor for a read of `loc` by `tid` with ordering `ord`:
    /// coherence floors from the clock, SC-fence floors, and (for SC reads)
    /// the published-fence floor. `None` = unconstrained (uninitialized
    /// reads possible).
    fn read_floor(&self, tid: Tid, loc: LocId, ord: MemOrd) -> Option<u32> {
        let th = &self.threads[tid.idx()];
        let mut floor = th.clock.read_floor(loc);
        let mut bump = |b: Option<u32>| {
            floor = match (floor, b) {
                (None, x) => x,
                (x, None) => x,
                (Some(a), Some(b)) => Some(a.max(b)),
            }
        };
        bump(th.sc_fence_floor.get(loc));
        if ord.is_seq_cst() {
            bump(self.sc_fence_published.get(loc));
        }
        floor
    }

    /// Enumerate the reads-from candidates for a plain load, newest first;
    /// a trailing `None` means the uninitialized pseudo-store is readable.
    ///
    /// Allocating wrapper around [`MemState::load_candidates_into`] —
    /// kept for tests and one-shot callers; the exploration hot path
    /// reuses a buffer instead.
    pub fn load_candidates(&self, tid: Tid, loc: LocId, ord: MemOrd) -> Vec<Option<EventId>> {
        let mut out = Vec::new();
        self.load_candidates_into(tid, loc, ord, &mut out);
        out
    }

    /// Fill `out` with the reads-from candidates for a plain load, newest
    /// first (see [`MemState::load_candidates`]). `out` is cleared first;
    /// its capacity is the point — the scheduler passes the same buffer
    /// for every load of an exploration. Candidates are enumerated over
    /// the per-location window `[read_floor, len)` of the store list:
    /// everything below the floor is coherence-hidden and never scanned.
    pub fn load_candidates_into(
        &self,
        tid: Tid,
        loc: LocId,
        ord: MemOrd,
        out: &mut Vec<Option<EventId>>,
    ) {
        out.clear();
        let stores = self.loc_stores(loc);
        let floor = self.read_floor(tid, loc, ord);
        let lo = floor.map(|f| f as usize).unwrap_or(0);

        // C++11 29.3p3: an SC read must see the last preceding SC store in
        // S (== the mo-max SC store, since S is commit order) or a non-SC
        // store that does not happen-before it.
        let b_idx: Option<u32> = if ord.is_seq_cst() {
            self.sc_last_store.get(loc)
        } else {
            None
        };
        let b_event = b_idx.map(|i| stores[i as usize]);

        for idx in (lo..stores.len()).rev() {
            let w = stores[idx];
            if let (Some(bi), Some(be)) = (b_idx, b_event) {
                if (idx as u32) < bi {
                    if self.trace.is_sc(w) {
                        continue; // older SC store: hidden by B in S
                    }
                    // hidden if it happens-before B
                    if self.trace.happens_before(w, be) {
                        continue;
                    }
                }
            }
            out.push(Some(w));
        }
        if floor.is_none() {
            out.push(None);
        }
    }

    /// Enumerate RMW outcomes. Successful RMWs must read the mo-maximal
    /// store (their write is appended right after it in mo); failing strong
    /// CASes are plain loads of any coherent store whose value differs from
    /// `expected`; weak CASes may additionally fail while reading
    /// `expected`.
    ///
    /// Allocating wrapper around [`MemState::rmw_candidates_into`] —
    /// kept for tests and one-shot callers; the exploration hot path
    /// reuses buffers instead.
    pub fn rmw_candidates(
        &self,
        tid: Tid,
        loc: LocId,
        ord: MemOrd,
        kind: RmwKind,
    ) -> Vec<RfChoice> {
        let mut out = Vec::new();
        self.rmw_candidates_into(tid, loc, ord, kind, &mut out, &mut Vec::new());
        out
    }

    /// Fill `out` with the RMW outcomes (see [`MemState::rmw_candidates`]).
    /// `out` is cleared first; `scratch` backs the failing-CAS candidate
    /// scan. Both keep their capacity across calls — the scheduler passes
    /// the same two buffers for every RMW of an exploration.
    pub fn rmw_candidates_into(
        &self,
        tid: Tid,
        loc: LocId,
        _ord: MemOrd,
        kind: RmwKind,
        out: &mut Vec<RfChoice>,
        scratch: &mut Vec<Option<EventId>>,
    ) {
        out.clear();
        let stores = self.loc_stores(loc);
        if stores.is_empty() {
            // Uninitialized RMW: surfaces as a built-in bug; the update is
            // applied to 0 so the trace stays well-formed until reported.
            out.push(RfChoice {
                rf: None,
                success: !matches!(kind, RmwKind::Cas { .. }),
            });
            return;
        }
        let last = *stores.last().expect("nonempty");
        match kind {
            RmwKind::Cas { weak, .. } => {
                let fail_ord = match kind {
                    RmwKind::Cas { fail_ord, .. } => fail_ord,
                    _ => unreachable!(),
                };
                let last_val = self.store_val(last);
                if kind.apply(last_val).is_some() {
                    out.push(RfChoice {
                        rf: Some(last),
                        success: true,
                    });
                    if weak {
                        out.push(RfChoice {
                            rf: Some(last),
                            success: false,
                        });
                    }
                } else {
                    out.push(RfChoice {
                        rf: Some(last),
                        success: false,
                    });
                }
                // Stale reads use the *failure* ordering.
                self.load_candidates_into(tid, loc, fail_ord, scratch);
                for &cand in scratch.iter() {
                    let Some(w) = cand else {
                        out.push(RfChoice {
                            rf: None,
                            success: false,
                        });
                        continue;
                    };
                    if w == last {
                        continue; // already covered above
                    }
                    let v = self.store_val(w);
                    if kind.apply(v).is_none() || weak {
                        out.push(RfChoice {
                            rf: Some(w),
                            success: false,
                        });
                    }
                    // A strong CAS that reads `expected` from a non-maximal
                    // store is inconsistent (its write could not be mo-adjacent),
                    // so that rf choice simply does not exist.
                }
            }
            _ => out.push(RfChoice {
                rf: Some(last),
                success: true,
            }),
        }
    }

    /// Apply a load with the chosen `rf`. Returns the value read.
    pub fn apply_load(&mut self, tid: Tid, loc: LocId, ord: MemOrd, rf: Option<EventId>) -> Val {
        let val = rf.map(|w| self.store_val(w)).unwrap_or(0);
        self.absorb_read(tid, loc, ord, rf);
        self.push_event(tid, EventKind::AtomicLoad { loc, ord, rf, val });
        val
    }

    /// Clock effects of reading `rf` at `ord` (shared by loads and RMWs).
    fn absorb_read(&mut self, tid: Tid, loc: LocId, ord: MemOrd, rf: Option<EventId>) {
        let Some(w) = rf else { return };
        let mo_idx = self.trace.mo_index(w).expect("rf target writes");
        // Split borrow: join straight from the stored payload instead of
        // cloning it (a deep copy in the pre-COW layout, and still an Arc
        // bump worth skipping on every synchronizing read).
        let MemState {
            threads, sync_of, ..
        } = self;
        let th = &mut threads[tid.idx()];
        th.clock.rmax.raise(loc, mo_idx);
        if let Some(sync) = &sync_of[w.idx()] {
            if ord.is_acquire() {
                sync.join_into(&mut th.clock);
            } else {
                sync.join_into(&mut th.acq_pending);
            }
        }
    }

    /// Apply a store. Returns the new event's id.
    pub fn apply_store(&mut self, tid: Tid, loc: LocId, ord: MemOrd, val: Val) -> EventId {
        let mo_index = self.trace.mo[loc.idx()].len() as u32;
        {
            let th = &mut self.threads[tid.idx()];
            th.clock.wmax.raise(loc, mo_index);
            th.own_stores.raise(loc, mo_index);
        }
        let id = self.push_event(
            tid,
            EventKind::AtomicStore {
                loc,
                ord,
                val,
                mo_index,
            },
        );
        self.trace.mo[loc.idx()].push(id);
        self.finish_write(tid, loc, ord, id, mo_index, None);
        id
    }

    /// Release-payload and SC bookkeeping shared by stores and RMW writes.
    /// `inherited` carries the release sequence a successful RMW continues.
    fn finish_write(
        &mut self,
        tid: Tid,
        loc: LocId,
        ord: MemOrd,
        id: EventId,
        mo_index: u32,
        inherited: Option<Payload>,
    ) {
        let th = &self.threads[tid.idx()];
        let mut payload: Option<Payload> = inherited;
        if ord.is_release() {
            // The thread clock plus this write's own (implicit) component
            // is the event clock — the strongest correct payload. The own
            // component stays lazy; see [`Payload`].
            match &mut payload {
                Some(p) => {
                    // A payload carries at most one lazy component: fold
                    // the inherited one before taking this write's.
                    p.flatten();
                    p.clock.join(&th.clock);
                    p.own = Some((tid, th.seq));
                }
                None => {
                    payload = Some(Payload {
                        clock: th.clock.clone(),
                        own: Some((tid, th.seq)),
                    })
                }
            }
        } else if let Some(f) = &th.rel_fence {
            // 29.8p2: a release fence sequenced before a relaxed store makes
            // the *fence* the sync source.
            match &mut payload {
                Some(p) => f.join_into(&mut p.clock),
                None => payload = Some(f.clone()),
            }
        }
        self.sync_of[id.idx()] = payload;
        if ord.is_seq_cst() {
            self.sc_last_store.raise(loc, mo_index);
        }
    }

    /// Apply an RMW with the chosen outcome. Returns `(old, success)`.
    pub fn apply_rmw(
        &mut self,
        tid: Tid,
        loc: LocId,
        ord: MemOrd,
        kind: RmwKind,
        choice: RfChoice,
    ) -> (Val, bool) {
        let old = choice.rf.map(|w| self.store_val(w)).unwrap_or(0);
        if choice.success {
            let new = kind
                .apply(old)
                .expect("successful RMW must produce a value");
            let inherited = choice.rf.and_then(|w| self.sync_of[w.idx()].clone());
            self.absorb_read(tid, loc, ord, choice.rf);
            let mo_index = self.trace.mo[loc.idx()].len() as u32;
            {
                let th = &mut self.threads[tid.idx()];
                th.clock.wmax.raise(loc, mo_index);
                th.own_stores.raise(loc, mo_index);
            }
            let id = self.push_event(
                tid,
                EventKind::Rmw {
                    loc,
                    ord,
                    rf: choice.rf,
                    read_val: old,
                    written: Some(new),
                    mo_index,
                },
            );
            self.trace.mo[loc.idx()].push(id);
            self.finish_write(tid, loc, ord, id, mo_index, inherited);
            (old, true)
        } else {
            let fail_ord = match kind {
                RmwKind::Cas { fail_ord, .. } => fail_ord,
                _ => ord,
            };
            self.absorb_read(tid, loc, fail_ord, choice.rf);
            self.push_event(
                tid,
                EventKind::Rmw {
                    loc,
                    ord: fail_ord,
                    rf: choice.rf,
                    read_val: old,
                    written: None,
                    mo_index: 0,
                },
            );
            (old, false)
        }
    }

    /// Apply a fence (29.8 + the SC-fence floor machinery of 29.3 p4-p6).
    pub fn apply_fence(&mut self, tid: Tid, ord: MemOrd) {
        {
            let th = &mut self.threads[tid.idx()];
            if ord.is_acquire() {
                let pending = th.acq_pending.clone();
                th.clock.join(&pending);
            }
        }
        if ord.is_seq_cst() {
            // Snapshot p4 (last SC store) and p6 (earlier fences') floors…
            let snapshot_sc = self.sc_last_store.clone();
            let snapshot_pub = self.sc_fence_published.clone();
            let th = &mut self.threads[tid.idx()];
            th.sc_fence_floor.join(&snapshot_sc);
            th.sc_fence_floor.join(&snapshot_pub);
            // …then publish this thread's prior stores (p5, later p6).
            let own = th.own_stores.clone();
            self.sc_fence_published.join(&own);
        }
        self.push_event(tid, EventKind::Fence { ord });
        if ord.is_release() {
            let th = &mut self.threads[tid.idx()];
            // The fence's own component crosses threads with the payload;
            // it stays lazy until a reader joins (see [`Payload`]).
            th.rel_fence = Some(Payload {
                clock: th.clock.clone(),
                own: Some((tid, th.seq)),
            });
        }
    }

    /// Record a thread's completion.
    pub fn apply_finish(&mut self, tid: Tid) {
        self.push_event(tid, EventKind::ThreadFinish);
        let th = &mut self.threads[tid.idx()];
        th.finished = true;
        // Stamp the finish event's own component: joiners are other threads.
        th.finish_clock = Payload {
            clock: th.clock.clone(),
            own: Some((tid, th.seq)),
        };
    }

    /// Apply a join on a finished `target` (the controller guarantees
    /// enabledness).
    pub fn apply_join(&mut self, tid: Tid, target: Tid) {
        debug_assert!(self.threads[target.idx()].finished);
        // The clone is COW Arc bumps; it sidesteps the double borrow.
        let fc = self.threads[target.idx()].finish_clock.clone();
        fc.join_into(&mut self.threads[tid.idx()].clock);
        self.push_event(tid, EventKind::ThreadJoin { target });
    }

    /// Non-atomic write: race-check against unordered prior accesses, then
    /// record. Returns a bug if racy.
    pub fn apply_data_write(&mut self, tid: Tid, loc: DataId, val: Val) -> Option<Bug> {
        let mut bug = None;
        {
            let th = &self.threads[tid.idx()];
            let d = &self.data[loc.idx()];
            if let Some((wt, ws)) = d.last_write {
                if wt != tid && !th.clock.vc.knows(wt, ws) {
                    bug = Some(Bug::DataRace {
                        loc,
                        first: wt,
                        second: tid,
                        second_is_write: true,
                    });
                }
            }
            for &(rt, rs) in &d.reads_since_write {
                if rt != tid && !th.clock.vc.knows(rt, rs) {
                    bug = Some(Bug::DataRace {
                        loc,
                        first: rt,
                        second: tid,
                        second_is_write: true,
                    });
                }
            }
        }
        self.push_event(tid, EventKind::DataWrite { loc });
        let seq = self.threads[tid.idx()].seq;
        let d = &mut self.data[loc.idx()];
        d.value = val;
        d.last_write = Some((tid, seq));
        d.reads_since_write.clear();
        bug
    }

    /// Non-atomic read: race-check against an unordered prior write.
    /// Returns the stored value and the race, if any.
    pub fn apply_data_read(&mut self, tid: Tid, loc: DataId) -> (Val, Option<Bug>) {
        let mut bug = None;
        {
            let th = &self.threads[tid.idx()];
            let d = &self.data[loc.idx()];
            if let Some((wt, ws)) = d.last_write {
                if wt != tid && !th.clock.vc.knows(wt, ws) {
                    bug = Some(Bug::DataRace {
                        loc,
                        first: wt,
                        second: tid,
                        second_is_write: false,
                    });
                }
            }
        }
        self.push_event(tid, EventKind::DataRead { loc });
        let seq = self.threads[tid.idx()].seq;
        self.data[loc.idx()].reads_since_write.push((tid, seq));
        (self.data[loc.idx()].value, bug)
    }

    /// Allocate a fresh object identity (deterministic: allocation order
    /// is fixed by the replayed schedule).
    pub fn next_object_id(&mut self) -> u64 {
        self.obj_counter += 1;
        self.obj_counter
    }

    /// Record a specification annotation anchored to `tid`'s last event.
    pub fn annotate(&mut self, tid: Tid, note: SpecNote) {
        let after = self.last_event[tid.idx()];
        self.trace.annotations.push(Annotation { tid, after, note });
    }

    /// Are all threads finished?
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MemOrd::*;

    fn t(i: u32) -> Tid {
        Tid(i)
    }

    /// Message passing with release/acquire: after reading the flag, the
    /// data store is floor-hidden (only the new value is readable).
    #[test]
    fn mp_release_acquire_forbids_stale_data() {
        let mut m = MemState::new();
        let data = m.alloc_atomic(t(0), Some(0));
        let flag = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        // T0: data=1 rlx; flag=1 rel
        m.apply_store(t(0), data, Relaxed, 1);
        let f1 = m.apply_store(t(0), flag, Release, 1);
        // T1 reads flag: both init(0) and 1 are candidates.
        let cands = m.load_candidates(t1, flag, Acquire);
        assert_eq!(cands.len(), 2);
        // Read the release store.
        m.apply_load(t1, flag, Acquire, Some(f1));
        // Now the data load has exactly one candidate: the new value.
        let cands = m.load_candidates(t1, data, Relaxed);
        assert_eq!(cands.len(), 1);
        assert_eq!(m.apply_load(t1, data, Relaxed, cands[0]), 1);
    }

    /// Same shape but the flag store is relaxed: the stale data value stays
    /// readable (no synchronization).
    #[test]
    fn mp_relaxed_allows_stale_data() {
        let mut m = MemState::new();
        let data = m.alloc_atomic(t(0), Some(0));
        let flag = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        m.apply_store(t(0), data, Relaxed, 1);
        let f1 = m.apply_store(t(0), flag, Relaxed, 1);
        m.apply_load(t1, flag, Acquire, Some(f1));
        let cands = m.load_candidates(t1, data, Relaxed);
        assert_eq!(cands.len(), 2, "stale init must remain readable");
    }

    /// CoRR: after reading mo index 1, a thread can never go back to 0.
    #[test]
    fn read_coherence_is_monotone() {
        let mut m = MemState::new();
        let t1 = m.spawn_thread(t(0));
        let x = m.alloc_atomic(t(0), Some(0));
        let w1 = m.apply_store(t(0), x, Relaxed, 1);
        m.apply_load(t1, x, Relaxed, Some(w1));
        let cands = m.load_candidates(t1, x, Relaxed);
        assert_eq!(cands, vec![Some(w1)]);
    }

    /// Uninitialized locations expose the uninit pseudo-store; initialized
    /// ones never do (the init store is hb-visible to all threads created
    /// afterwards).
    #[test]
    fn uninit_candidate_only_without_visible_store() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), None);
        let y = m.alloc_atomic(t(0), Some(7));
        let t1 = m.spawn_thread(t(0));
        assert_eq!(m.load_candidates(t1, x, Relaxed), vec![None]);
        let ycands = m.load_candidates(t1, y, Relaxed);
        assert_eq!(ycands.len(), 1);
        assert!(ycands[0].is_some());
    }

    /// Store buffering with SC: after both SC stores, an SC load must read
    /// the mo-max SC store of its location (B-rule), so at most one thread
    /// can read 0 — here we check the B-rule restricts candidates.
    #[test]
    fn sc_load_sees_last_sc_store() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        let _t2 = m.spawn_thread(t(0));
        let w1 = m.apply_store(t1, x, SeqCst, 1);
        // An SC read of x now: B = w1. The init store (non-SC) happens-before
        // w1? init by T0 precedes spawn of T1 → hb(init, w1) → hidden.
        let cands = m.load_candidates(t(2), x, SeqCst);
        assert_eq!(cands, vec![Some(w1)]);
        // A relaxed read could still see the init value.
        let relaxed = m.load_candidates(t(2), x, Relaxed);
        assert_eq!(relaxed.len(), 2);
    }

    /// Release sequence: acquire-reading an RMW that updated a release
    /// store synchronizes with the head.
    #[test]
    fn release_sequence_via_rmw() {
        let mut m = MemState::new();
        let data = m.alloc_atomic(t(0), Some(0));
        let x = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        let t2 = m.spawn_thread(t(0));
        // T0 writes data then release-stores x=1.
        m.apply_store(t(0), data, Relaxed, 5);
        m.apply_store(t(0), x, Release, 1);
        // T1 bumps x with a relaxed RMW.
        let c = m.rmw_candidates(t1, x, Relaxed, RmwKind::FetchAdd(1));
        assert_eq!(c.len(), 1);
        m.apply_rmw(t1, x, Relaxed, RmwKind::FetchAdd(1), c[0]);
        // T2 acquire-loads the RMW's value: must synchronize with T0's
        // release store → stale `data` becomes unreadable.
        let top = *m.loc_stores(x).last().unwrap();
        m.apply_load(t2, x, Acquire, Some(top));
        let dcands = m.load_candidates(t2, data, Relaxed);
        assert_eq!(
            dcands.len(),
            1,
            "release sequence must carry the data store"
        );
        assert_eq!(m.apply_load(t2, data, Relaxed, dcands[0]), 5);
    }

    /// Fence-to-fence synchronization (29.8p1-4).
    #[test]
    fn fence_pair_synchronizes() {
        let mut m = MemState::new();
        let data = m.alloc_atomic(t(0), Some(0));
        let flag = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        m.apply_store(t(0), data, Relaxed, 1);
        m.apply_fence(t(0), Release);
        let f = m.apply_store(t(0), flag, Relaxed, 1);
        // T1: relaxed load of flag; acquire fence; data must be fresh.
        m.apply_load(t1, flag, Relaxed, Some(f));
        // Before the fence the stale data is still readable.
        assert_eq!(m.load_candidates(t1, data, Relaxed).len(), 2);
        m.apply_fence(t1, Acquire);
        assert_eq!(m.load_candidates(t1, data, Relaxed).len(), 1);
    }

    /// SC-fence p4/p5: store-buffering with relaxed accesses + SC fences
    /// forbids both threads reading stale.
    #[test]
    fn sc_fences_forbid_double_stale_sb() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), Some(0));
        let y = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        let t2 = m.spawn_thread(t(0));
        // T1: x=1 rlx; sc fence; read y.
        m.apply_store(t1, x, Relaxed, 1);
        m.apply_fence(t1, SeqCst);
        // T2: y=1 rlx; sc fence; read x.
        m.apply_store(t2, y, Relaxed, 1);
        m.apply_fence(t2, SeqCst);
        // T2's fence is S-after T1's fence, which published x=1 (p6/p5):
        // T2 must see x=1.
        let xc = m.load_candidates(t2, x, Relaxed);
        assert_eq!(xc.len(), 1, "p6 floor must hide the stale x");
        // T1 read y *before* T2's fence published — wait, T1's read happens
        // now, after both fences; its own fence snapshotted *before* T2
        // published, so T1's floor does not yet cover y — but a fresh SC
        // *read* would (p5). Relaxed read keeps both candidates:
        let yc = m.load_candidates(t1, y, Relaxed);
        assert_eq!(yc.len(), 2);
    }

    /// CAS candidate enumeration: strong CAS reading a stale non-expected
    /// value fails; reading the latest expected value succeeds; no
    /// "succeed on stale" choice exists.
    #[test]
    fn cas_candidates() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        m.apply_store(t(0), x, Relaxed, 1);
        let kind = RmwKind::Cas {
            expected: 1,
            new: 9,
            fail_ord: Relaxed,
            weak: false,
        };
        let cands = m.rmw_candidates(t1, x, AcqRel, kind);
        // latest store holds 1 → success candidate; init store holds 0 →
        // stale fail candidate.
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().any(|c| c.success));
        assert!(cands.iter().any(|c| !c.success));
        // CAS expecting 0 (stale value): reading the stale store cannot
        // succeed; the only candidates are failures.
        let kind0 = RmwKind::Cas {
            expected: 0,
            new: 9,
            fail_ord: Relaxed,
            weak: false,
        };
        let cands0 = m.rmw_candidates(t1, x, AcqRel, kind0);
        assert!(cands0.iter().all(|c| !c.success));
    }

    /// Weak CAS gains spurious-failure choices.
    #[test]
    fn weak_cas_spurious_failure() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), Some(1));
        let t1 = m.spawn_thread(t(0));
        let kind = RmwKind::Cas {
            expected: 1,
            new: 2,
            fail_ord: Relaxed,
            weak: true,
        };
        let cands = m.rmw_candidates(t1, x, AcqRel, kind);
        assert!(cands.iter().any(|c| c.success));
        assert!(
            cands.iter().any(|c| !c.success),
            "weak CAS must offer spurious failure"
        );
    }

    /// Data-race detection: unordered write/write race is flagged; ordered
    /// (via join) accesses are not.
    #[test]
    fn data_race_detection() {
        let mut m = MemState::new();
        let d = m.alloc_data();
        assert!(m.apply_data_write(t(0), d, 1).is_none());
        let t1 = m.spawn_thread(t(0));
        // T1 inherits the creator's clock → ordered → no race, and it sees
        // the written value.
        assert_eq!(m.apply_data_read(t1, d).0, 1);
        assert!(m.apply_data_write(t1, d, 2).is_none());
        // But now T0 writes again without synchronization → race with T1.
        let bug = m.apply_data_write(t(0), d, 3);
        assert!(matches!(bug, Some(Bug::DataRace { .. })));
    }

    #[test]
    fn data_read_write_race() {
        let mut m = MemState::new();
        let d = m.alloc_data();
        let t1 = m.spawn_thread(t(0));
        assert!(m.apply_data_read(t1, d).1.is_none());
        m.apply_data_write(t1, d, 5);
        // T0 reads concurrently with T1's write → race.
        let (_, bug) = m.apply_data_read(t(0), d);
        assert!(matches!(bug, Some(Bug::DataRace { .. })));
    }

    /// Join transfers the target's final clock.
    #[test]
    fn join_synchronizes() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), Some(0));
        let t1 = m.spawn_thread(t(0));
        m.apply_store(t1, x, Relaxed, 1);
        m.apply_finish(t1);
        m.apply_join(t(0), t1);
        // After join, only the new value is visible.
        assert_eq!(m.load_candidates(t(0), x, Relaxed).len(), 1);
    }

    /// The trace records annotations anchored to the thread's last event.
    #[test]
    fn annotations_anchor_to_last_event() {
        let mut m = MemState::new();
        let x = m.alloc_atomic(t(0), Some(0));
        m.annotate(t(0), SpecNote::MethodBegin { obj: 0, name: "op" });
        let w = m.apply_store(t(0), x, Relaxed, 1);
        m.annotate(t(0), SpecNote::OpDefine);
        let notes = &m.trace.annotations;
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[1].after, Some(w));
        assert!(notes[0].after.is_some()); // the init store of x
    }

    // -----------------------------------------------------------------
    // Differential check of the candidate-window optimization.
    // -----------------------------------------------------------------

    /// Pre-window reference enumeration: walk the *whole* store list
    /// newest→oldest and filter coherence-hidden stores one by one — the
    /// behavior `load_candidates` had before the `[read_floor, len)`
    /// window skipped the scan. The proptest below requires the optimized
    /// enumeration to match this, order included.
    fn load_candidates_full_scan(
        m: &MemState,
        tid: Tid,
        loc: LocId,
        ord: MemOrd,
    ) -> Vec<Option<EventId>> {
        let stores = &m.trace.mo[loc.idx()];
        let floor = m.read_floor(tid, loc, ord);
        let b_idx: Option<u32> = if ord.is_seq_cst() {
            m.sc_last_store.get(loc)
        } else {
            None
        };
        let b_event = b_idx.map(|i| stores[i as usize]);
        let mut out = Vec::new();
        for idx in (0..stores.len()).rev() {
            if let Some(f) = floor {
                if (idx as u32) < f {
                    continue; // coherence-hidden
                }
            }
            let w = stores[idx];
            if let (Some(bi), Some(be)) = (b_idx, b_event) {
                if (idx as u32) < bi && (m.trace.is_sc(w) || m.trace.happens_before(w, be)) {
                    continue; // hidden by the last SC store (29.3p3)
                }
            }
            out.push(Some(w));
        }
        if floor.is_none() {
            out.push(None);
        }
        out
    }

    use proptest::prelude::*;

    /// One step of a random three-thread, two-location history.
    #[derive(Clone, Debug)]
    enum Act {
        Store { t: u8, l: u8, ord: u8, val: u8 },
        Load { t: u8, l: u8, ord: u8, pick: u8 },
        Fence { t: u8, ord: u8 },
    }

    fn act_strategy() -> impl Strategy<Value = Act> {
        prop_oneof![
            (0u8..3, 0u8..2, 0u8..3, 0u8..4).prop_map(|(t, l, ord, val)| Act::Store {
                t,
                l,
                ord,
                val
            }),
            (0u8..3, 0u8..2, 0u8..3, 0u8..8).prop_map(|(t, l, ord, pick)| Act::Load {
                t,
                l,
                ord,
                pick
            }),
            (0u8..3, 0u8..3).prop_map(|(t, ord)| Act::Fence { t, ord }),
        ]
    }

    proptest! {
        /// Drive a `MemState` through random histories (stores, loads
        /// reading an arbitrary candidate, fences, all orderings) and
        /// after every step require the windowed `load_candidates` to
        /// equal the pre-window full scan for every (thread, location,
        /// ordering) combination — order included.
        #[test]
        fn windowed_candidates_match_full_scan(
            acts in prop::collection::vec(act_strategy(), 0..32)
        ) {
            let store_ords = [Relaxed, Release, SeqCst];
            let load_ords = [Relaxed, Acquire, SeqCst];
            let fence_ords = [Acquire, Release, SeqCst];
            let mut m = MemState::new();
            let l0 = m.alloc_atomic(t(0), Some(0));
            let l1 = m.alloc_atomic(t(0), None); // uninitialized path
            let t1 = m.spawn_thread(t(0));
            let t2 = m.spawn_thread(t(0));
            let locs = [l0, l1];
            let tids = [t(0), t1, t2];
            for act in &acts {
                match *act {
                    Act::Store { t, l, ord, val } => {
                        m.apply_store(
                            tids[t as usize],
                            locs[l as usize],
                            store_ords[ord as usize],
                            val as Val,
                        );
                    }
                    Act::Load { t, l, ord, pick } => {
                        let tid = tids[t as usize];
                        let loc = locs[l as usize];
                        let o = load_ords[ord as usize];
                        let cands = m.load_candidates(tid, loc, o);
                        let rf = cands[pick as usize % cands.len()];
                        m.apply_load(tid, loc, o, rf);
                    }
                    Act::Fence { t, ord } => {
                        m.apply_fence(tids[t as usize], fence_ords[ord as usize]);
                    }
                }
                for &tid in &tids {
                    for &loc in &locs {
                        for &o in &load_ords {
                            let want = load_candidates_full_scan(&m, tid, loc, o);
                            prop_assert_eq!(
                                m.load_candidates(tid, loc, o),
                                want,
                                "tid={:?} loc={:?} ord={:?}", tid, loc, o
                            );
                        }
                    }
                }
            }
        }
    }
}
