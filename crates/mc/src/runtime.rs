//! Token-passing execution runtime.
//!
//! The original CDSChecker runs on one core, and so — typically — does
//! this reproduction's CI environment. A dedicated controller thread
//! would cost two context switches per visible operation; instead, the
//! scheduling decision is made *inline by whichever worker parks last*:
//!
//! * every modeled thread, at a visible operation, locks the shared
//!   [`ExecState`], records its pending op, and decrements the running
//!   count;
//! * the worker that brings the running count to zero runs the scheduler:
//!   it picks the next runnable thread (per the DFS replay script, with
//!   sleep-set filtering), applies that thread's operation against the
//!   memory-model engine, and deposits the reply;
//! * if the chosen thread is *itself* — the common case, since the
//!   default schedule prefers the currently running thread — it simply
//!   continues: **zero context switches**. Otherwise it wakes the chosen
//!   worker's condvar and parks.
//!
//! The explorer thread only participates at execution boundaries.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cdsspec_c11::{EventId, LocId, Tid, Trace};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::Config;
use crate::memstate::MemState;
use crate::msg::{Op, Reply, RmwKind};
use crate::report::Bug;
use crate::worker::{DieMarker, Job, Pool};

/// One recorded choice point.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChoiceRec {
    /// Index taken.
    pub picked: usize,
    /// Number of alternatives that existed.
    pub num_options: usize,
}

/// How an execution ended.
#[derive(Clone, Debug)]
pub(crate) enum RunOutcome {
    /// All threads finished; the trace is a feasible execution.
    Completed,
    /// A defect was detected; the trace is the (partial) witness.
    BugFound(Bug),
    /// Step/spin/futile-read bound exceeded — pruned, counted infeasible.
    Diverged,
    /// Every runnable thread was asleep — a redundant interleaving.
    SleepPruned,
    /// The engine itself failed (e.g. the OS thread pool exhausted its
    /// bounded respawn budget). The execution is void and the campaign
    /// stops with [`crate::StopReason::Errored`].
    EngineError(String),
}

/// Result of one execution.
pub(crate) struct RunResult {
    pub outcome: RunOutcome,
    pub trace: Trace,
    pub choices: Vec<ChoiceRec>,
    /// The execution wedged an OS worker that had to be leaked (the
    /// watchdog aborted, but one job never exited). The per-execution
    /// arena is intentionally kept alive in this case.
    pub hung: bool,
    /// Choice-tree branches suppressed by rf-equivalence pruning at
    /// decision points this execution visited for the first time (see
    /// [`ExecState::at_fresh_node`]). Summing these over an exploration
    /// counts each suppressed branch exactly once, independent of worker
    /// count and checkpoint partitioning.
    pub pruned: u64,
}

/// Futile-read state for one `(thread, location)` pair: the rf observed by
/// the last load and how many consecutive loads have observed it.
type FutileSlot = Option<(Option<EventId>, u32)>;

/// The mutable heart of one execution, guarded by [`Shared::inner`].
pub(crate) struct ExecState {
    pub mem: MemState,
    config: Config,
    script: Vec<usize>,
    cursor: usize,
    choices: Vec<ChoiceRec>,

    /// Announced-but-unprocessed op per thread.
    pending: Vec<Option<Op>>,
    /// Deposited replies awaiting pickup.
    replies: Vec<Option<Reply>>,
    /// Spawned and not finished.
    alive: Vec<bool>,
    /// Modeled threads currently executing user code.
    running: usize,
    /// OS jobs that have not returned to the pool yet (arena safety).
    active_jobs: usize,
    /// Sleep set.
    sleep: Vec<bool>,
    /// Total spin hints per thread.
    spins: Vec<u32>,
    /// Futile-read tracking per (thread, location). Indexed by `loc.idx()`
    /// — location ids are dense per execution and few, so a flat `Vec`
    /// beats hashing on every load (this lookup is on the per-event hot
    /// path).
    futile: Vec<Vec<FutileSlot>>,
    /// Thread scheduled most recently (preferred by the default schedule).
    last_sched: Tid,
    /// Execution verdict; set exactly once.
    outcome: Option<RunOutcome>,
    /// Abort in progress: remaining workers unwind on wakeup.
    dying: bool,
    /// When set, choice points past the replay script are resolved by
    /// this PRNG instead of depth-first (deadline-degraded sampling).
    sampler: Option<StdRng>,
    /// Reusable rf-candidate buffer: refilled by every load decision, so
    /// candidate enumeration allocates only while the high-water mark
    /// still grows.
    cand_buf: Vec<Option<EventId>>,
    /// Reusable RMW-outcome buffer (same discipline as `cand_buf`).
    rmw_buf: Vec<crate::memstate::RfChoice>,
    /// Scratch backing the failing-CAS candidate scan inside
    /// [`MemState::rmw_candidates_into`].
    cand_scratch: Vec<Option<EventId>>,
    /// Reusable runnable-thread buffer for [`schedule`]: two `Vec<Tid>`
    /// collects per scheduling decision was the single largest remaining
    /// allocation source after the rf-candidate buffers moved here.
    sched_buf: Vec<Tid>,
    /// Branches suppressed by rf-equivalence pruning at fresh decision
    /// points of *this* execution (reset per execution, surfaced through
    /// [`RunResult::pruned`]).
    pruned: u64,
    /// Per-thread rf floor set when a *sleeping* thread whose pending op
    /// is a non-SC load (or a CAS with a non-SC failure ordering) of
    /// `loc` is woken by a write to `loc`: the already-explored sibling
    /// subtree (the reason the thread slept) covered every pre-write
    /// candidate, so the woken read only needs candidates `>=` the waking
    /// write in mo. Cleared when the read executes; slot reuse mirrors
    /// `futile`. Soundness requires the mapping to point at strictly
    /// DFS-earlier branches — see the exploration-identity contract in
    /// `ARCHITECTURE.md`.
    wake_floor: Vec<Option<(LocId, EventId)>>,
}

/// Shared handle between the explorer, the workers, and the user-facing
/// primitives.
pub(crate) struct Shared {
    pub inner: Mutex<ExecState>,
    /// Heartbeat counter: bumped on every scheduling decision (and by
    /// `crate::api::progress_hint`). Watchdogs abort the execution when
    /// it stops moving for `Config::hang_timeout`. Lives on `Shared` as
    /// a lock-free atomic — not in `ExecState` — because the fiber
    /// watchdog's monitor thread must sample it while a wedged host may
    /// never release `inner`.
    pub(crate) progress: std::sync::atomic::AtomicU64,
    /// Per-modeled-thread wakeups (indexed by tid; grown under the lock).
    cvs: Mutex<Vec<Arc<Condvar>>>,
    /// Explorer wakeup: outcome decided and all jobs drained.
    done: Condvar,
    /// Worker-side detected bug (data race), honored at the next decision.
    pub pending_bug: Mutex<Option<Bug>>,
    /// Fast-path guard for `pending_bug`: the scheduler checks this atomic
    /// on every decision and only touches the mutex when a bug was
    /// actually posted (set with `Release` by [`Shared::post_bug`], read
    /// with `Acquire`). The posting thread holds the running token, so the
    /// next scheduling decision is always ordered after the store.
    pending_bug_flag: std::sync::atomic::AtomicBool,
    /// Per-execution allocations (freed by the explorer after `done`).
    pub arena: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
    /// The worker pool (needed by spawn).
    pool: Arc<Mutex<Pool>>,
}

impl Shared {
    fn cv(&self, tid: Tid) -> Arc<Condvar> {
        self.cvs.lock()[tid.idx()].clone()
    }

    /// Make sure a condvar exists for `tid`, reusing one left over from an
    /// earlier execution of this `Shared` (condvars are stateless between
    /// executions).
    fn ensure_cv(&self, tid: Tid) {
        let mut cvs = self.cvs.lock();
        if cvs.len() <= tid.idx() {
            cvs.push(Arc::new(Condvar::new()));
        }
    }

    /// Post a worker-side detected bug; honored at the next scheduling
    /// decision.
    pub(crate) fn post_bug(&self, bug: Bug) {
        *self.pending_bug.lock() = Some(bug);
        self.pending_bug_flag
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Feed the watchdogs (see the `progress` field).
    pub(crate) fn heartbeat(&self) {
        self.progress
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl ExecState {
    fn choose(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let picked = if self.cursor < self.script.len() {
            self.script[self.cursor]
        } else if let Some(rng) = &mut self.sampler {
            rng.gen_range(0..n)
        } else {
            0
        };
        assert!(
            picked < n,
            "replay divergence: script wants option {picked} of {n} at choice {} — \
             the test closure is nondeterministic",
            self.cursor
        );
        self.choices.push(ChoiceRec {
            picked,
            num_options: n,
        });
        self.cursor += 1;
        picked
    }

    fn register_thread(&mut self) -> Tid {
        let idx = self.pending.len();
        self.pending.push(None);
        self.replies.push(None);
        self.alive.push(true);
        self.sleep.push(false);
        self.spins.push(0);
        // `futile` is not truncated by `reset`, so slot reuse here keeps
        // the per-thread inner buffers across executions.
        if self.futile.len() <= idx {
            self.futile.push(Default::default());
        } else {
            self.futile[idx].clear();
        }
        if self.wake_floor.len() <= idx {
            self.wake_floor.push(None);
        } else {
            self.wake_floor[idx] = None;
        }
        Tid(idx as u32)
    }

    /// Rewind to a pristine pre-execution state, retaining every buffer
    /// capacity earlier executions grew — the point of handing the whole
    /// `Shared` back through [`Reuse`]. The `config` is deliberately kept:
    /// a `Reuse` never crosses explorers, and an explorer's config is
    /// fixed for its lifetime.
    fn reset(&mut self, script: &[usize], sampler: Option<StdRng>, recycle: Trace) {
        self.mem.reset(recycle);
        self.script.clear();
        self.script.extend_from_slice(script);
        self.cursor = 0;
        self.choices.clear();
        self.pending.clear();
        self.replies.clear();
        self.alive.clear();
        self.running = 0;
        self.active_jobs = 0;
        self.sleep.clear();
        self.spins.clear();
        self.last_sched = Tid::MAIN;
        self.outcome = None;
        self.dying = false;
        self.sampler = sampler;
        self.pruned = 0;
    }

    /// Render the watchdog bug for this execution: the *configured*
    /// limit (not the measured stall — measured values differ run to run
    /// and would defeat bug-string dedup and fiber/pool equivalence),
    /// the `wedged` thread, and the last-committed trace event as a
    /// human-readable anchor. The fiber rescue path knows the wedged
    /// fiber exactly (the signal handler recorded it); the OS-thread
    /// watchdog passes `last_sched`, its best estimate — a freshly
    /// spawned job wedging before its first visible op was never
    /// scheduled and can be misattributed there.
    fn hang_bug(&self, limit: Duration, wedged: Tid) -> Bug {
        Bug::InternalHang {
            stalled_ms: limit.as_millis() as u64,
            tid: Some(wedged),
            last_op: last_op_tag(&self.mem.trace),
        }
    }

    /// True when the current decision point is being visited for the first
    /// time across the whole exploration: not a script replay (`cursor`
    /// still inside the script) and not a random sample. Generated scripts
    /// always end in an incremented entry, so for every decision-point
    /// prefix exactly one executed script satisfies this — pruning
    /// counters bumped under this guard count each suppressed branch once,
    /// regardless of worker count or checkpoint partitioning.
    fn at_fresh_node(&self) -> bool {
        self.sampler.is_none() && self.cursor >= self.script.len()
    }

    /// Eager futile-read rejection (`Config::rf_prune`): when `(t, loc)`
    /// already sits at the futile-read bound, drop load candidates equal
    /// to the previously observed rf — choosing one would immediately
    /// divergence-abort in [`ExecState::track_read`], so the branch is
    /// rejected before scheduling descends under it. Only
    /// already-diverging branches are removed, leaving the bug set and
    /// the feasible executions untouched.
    fn reject_futile_loads(&mut self, t: Tid, loc: LocId) -> Result<(), RunOutcome> {
        let cap = self.config.max_futile_reads;
        let Some(slot) = self.futile.get(t.idx()).and_then(|f| f.get(loc.idx())) else {
            return Ok(());
        };
        let Some((prev, n)) = *slot else {
            return Ok(());
        };
        if n < cap {
            return Ok(());
        }
        let before = self.cand_buf.len();
        self.cand_buf.retain(|&c| c != prev);
        let removed = (before - self.cand_buf.len()) as u64;
        if removed > 0 && self.at_fresh_node() {
            self.pruned += removed;
        }
        if self.cand_buf.is_empty() {
            return Err(RunOutcome::Diverged);
        }
        Ok(())
    }

    /// As [`ExecState::reject_futile_loads`] for RMW decisions: only
    /// *failing* reads are tracked by the futile counter, so successful
    /// RMW outcomes are never removed.
    fn reject_futile_rmws(&mut self, t: Tid, loc: LocId) -> Result<(), RunOutcome> {
        let cap = self.config.max_futile_reads;
        let Some(slot) = self.futile.get(t.idx()).and_then(|f| f.get(loc.idx())) else {
            return Ok(());
        };
        let Some((prev, n)) = *slot else {
            return Ok(());
        };
        if n < cap {
            return Ok(());
        }
        let before = self.rmw_buf.len();
        self.rmw_buf.retain(|c| c.success || c.rf != prev);
        let removed = (before - self.rmw_buf.len()) as u64;
        if removed > 0 && self.at_fresh_node() {
            self.pruned += removed;
        }
        if self.rmw_buf.is_empty() {
            return Err(RunOutcome::Diverged);
        }
        Ok(())
    }

    /// Record a read for futile-read tracking; `true` = prune.
    fn track_read(&mut self, t: Tid, loc: LocId, rf: Option<EventId>) -> bool {
        let cap = self.config.max_futile_reads;
        let f = &mut self.futile[t.idx()];
        if f.len() <= loc.idx() {
            f.resize(loc.idx() + 1, None);
        }
        match &mut f[loc.idx()] {
            Some((prev, n)) if *prev == rf => {
                *n += 1;
                *n > cap
            }
            slot => {
                *slot = Some((rf, 1));
                false
            }
        }
    }

    /// Forget futile-read state for `(t, loc)` — a store to `loc` resets
    /// the streak.
    fn clear_futile(&mut self, t: Tid, loc: LocId) {
        if let Some(slot) = self.futile[t.idx()].get_mut(loc.idx()) {
            *slot = None;
        }
    }

    /// Apply one visible operation; `Err(outcome)` aborts the execution.
    fn process(&mut self, t: Tid, op: &Op) -> Result<Reply, RunOutcome> {
        match *op {
            Op::Load { loc, ord } => {
                self.mem
                    .load_candidates_into(t, loc, ord, &mut self.cand_buf);
                if self.config.rf_prune {
                    self.reject_futile_loads(t, loc)?;
                    if let Some((fl, fev)) = self.wake_floor[t.idx()].take() {
                        if fl == loc && !ord.is_seq_cst() {
                            let before = self.cand_buf.len();
                            self.cand_buf.retain(|c| matches!(c, Some(w) if *w >= fev));
                            let removed = (before - self.cand_buf.len()) as u64;
                            if removed > 0 && self.at_fresh_node() {
                                self.pruned += removed;
                            }
                            // The waking write itself is always in this
                            // thread's window (the thread has not run since
                            // before the write committed, so its coherence
                            // floor predates it) and is never the futile
                            // `prev` (which was read before the sleep).
                            debug_assert!(!self.cand_buf.is_empty());
                            if self.cand_buf.is_empty() {
                                return Err(RunOutcome::Diverged);
                            }
                        }
                    }
                }
                let idx = self.choose(self.cand_buf.len());
                let rf = self.cand_buf[idx];
                let val = self.mem.apply_load(t, loc, ord, rf);
                if rf.is_none() {
                    return Err(RunOutcome::BugFound(Bug::UninitLoad { loc, tid: t }));
                }
                if self.track_read(t, loc, rf) {
                    return Err(RunOutcome::Diverged);
                }
                Ok(Reply::Val(val))
            }
            Op::Store { loc, ord, val } => {
                self.mem.apply_store(t, loc, ord, val);
                self.clear_futile(t, loc);
                Ok(Reply::Ok)
            }
            Op::Rmw { loc, ord, kind } => {
                self.mem.rmw_candidates_into(
                    t,
                    loc,
                    ord,
                    kind,
                    &mut self.rmw_buf,
                    &mut self.cand_scratch,
                );
                if self.config.rf_prune {
                    self.reject_futile_rmws(t, loc)?;
                    if let Some((fl, fev)) = self.wake_floor[t.idx()].take() {
                        if fl == loc {
                            let before = self.rmw_buf.len();
                            // Success choices read the mo-maximal store
                            // (`>=` the waking write by construction), so
                            // only stale *failure* reads are floored.
                            self.rmw_buf
                                .retain(|c| c.success || matches!(c.rf, Some(w) if w >= fev));
                            let removed = (before - self.rmw_buf.len()) as u64;
                            if removed > 0 && self.at_fresh_node() {
                                self.pruned += removed;
                            }
                            // The fail-or-succeed choice on the current
                            // mo-maximal store always survives the floor.
                            debug_assert!(!self.rmw_buf.is_empty());
                            if self.rmw_buf.is_empty() {
                                return Err(RunOutcome::Diverged);
                            }
                        }
                    }
                }
                let idx = self.choose(self.rmw_buf.len());
                let choice = self.rmw_buf[idx];
                let (old, success) = self.mem.apply_rmw(t, loc, ord, kind, choice);
                if choice.rf.is_none() {
                    return Err(RunOutcome::BugFound(Bug::UninitLoad { loc, tid: t }));
                }
                if success {
                    self.clear_futile(t, loc);
                } else if self.track_read(t, loc, choice.rf) {
                    return Err(RunOutcome::Diverged);
                }
                Ok(Reply::Rmw { old, success })
            }
            Op::Fence { ord } => {
                self.mem.apply_fence(t, ord);
                Ok(Reply::Ok)
            }
            Op::Join { target } => {
                self.mem.apply_join(t, target);
                Ok(Reply::Ok)
            }
            Op::Spin => {
                self.spins[t.idx()] += 1;
                if self.spins[t.idx()] > self.config.max_spins {
                    return Err(RunOutcome::Diverged);
                }
                Ok(Reply::Ok)
            }
            Op::Yield => Ok(Reply::Ok),
        }
    }
}

/// Run the scheduler: called under the lock whenever `running` drops to 0
/// and the execution has not ended. Deposits exactly one reply (possibly
/// `Die` for everyone on abort). `caller` is the thread running this call
/// inline — when it schedules itself (the common case under the
/// continue-last-thread default), the wakeup notify is skipped: the caller
/// finds its reply on the way out of `visible_op` without ever parking.
fn schedule(shared: &Shared, st: &mut ExecState, caller: Tid) {
    debug_assert_eq!(st.running, 0);
    if st.outcome.is_some() {
        return;
    }
    shared.heartbeat();

    // Worker-side race found since the last decision? (Atomic fast path:
    // the mutex is only touched when a bug was actually posted.)
    if shared
        .pending_bug_flag
        .load(std::sync::atomic::Ordering::Acquire)
    {
        shared
            .pending_bug_flag
            .store(false, std::sync::atomic::Ordering::Relaxed);
        if let Some(bug) = shared.pending_bug.lock().take() {
            return abort(shared, st, RunOutcome::BugFound(bug));
        }
    }

    if st.alive.iter().all(|a| !a) {
        st.outcome = Some(RunOutcome::Completed);
        return;
    }

    // Enabled: alive, announced, and (for joins) target finished. Built
    // into the reusable buffer — the take/put-back dance keeps the borrow
    // checker happy while `st` is read inside the loop; the abort paths
    // restore the buffer too, so even they don't leak its capacity.
    let mut runnable = std::mem::take(&mut st.sched_buf);
    runnable.clear();
    for i in 0..st.alive.len() {
        let enabled = st.alive[i]
            && match &st.pending[i] {
                Some(Op::Join { target }) => st.mem.threads[target.idx()].finished,
                Some(_) => true,
                None => false,
            };
        if enabled {
            runnable.push(Tid(i as u32));
        }
    }
    if runnable.is_empty() {
        st.sched_buf = runnable;
        let blocked: Vec<Tid> = (0..st.alive.len())
            .filter(|&i| st.alive[i])
            .map(|i| Tid(i as u32))
            .collect();
        return abort(shared, st, RunOutcome::BugFound(Bug::Deadlock { blocked }));
    }

    if st.config.sleep_sets {
        let sleep = &st.sleep;
        runnable.retain(|t| !sleep[t.idx()]);
    }
    if runnable.is_empty() {
        st.sched_buf = runnable;
        return abort(shared, st, RunOutcome::SleepPruned);
    }
    // Prefer continuing the last-scheduled thread: fewer context switches
    // and more natural default executions.
    if let Some(pos) = runnable.iter().position(|&t| t == st.last_sched) {
        runnable.swap(0, pos);
    }
    // Explore floorable readers before writers (`Config::rf_prune`): the
    // rf floor only prunes a reader that *slept* through the waking write,
    // i.e. one explored as an earlier sibling. Readers-first makes that
    // the common case. Stable, so the last-scheduled preference survives
    // within each group — a deterministic ordering heuristic, not a
    // correctness condition.
    if st.config.rf_prune && runnable.len() > 1 {
        let pending = &st.pending;
        runnable.sort_by_key(|&t| {
            let floorable = matches!(
                &pending[t.idx()],
                Some(Op::Load { ord, .. }) if !ord.is_seq_cst()
            );
            !floorable
        });
    }

    let pick = st.choose(runnable.len());
    let t = runnable[pick];
    for &u in &runnable[..pick] {
        st.sleep[u.idx()] = true;
    }
    st.sched_buf = runnable;
    st.sleep[t.idx()] = false;
    st.last_sched = t;

    let op = st.pending[t.idx()]
        .take()
        .expect("runnable thread has a pending op");
    match st.process(t, &op) {
        Ok(reply) => {
            // Dynamic dependence (`Config::rf_prune`): a CAS that failed
            // wrote nothing — as executed it is a plain load with the
            // failure ordering. Downgrading it tightens the sleep-set wake
            // rule: sleeping readers stay asleep across failed CASes. A
            // *spurious* weak-CAS failure (read value == expected) stays a
            // full RMW: the fail-on-expected branch is only enumerated for
            // the mo-maximal store, so it does not survive commutation
            // with a later write the way a value-mismatch failure does.
            let eff_op: Op = match (&op, &reply) {
                (
                    Op::Rmw {
                        loc,
                        kind:
                            RmwKind::Cas {
                                expected, fail_ord, ..
                            },
                        ..
                    },
                    Reply::Rmw {
                        old,
                        success: false,
                    },
                ) if st.config.rf_prune && old != expected => Op::Load {
                    loc: *loc,
                    ord: *fail_ord,
                },
                _ => op.clone(),
            };
            if st.config.sleep_sets {
                // If the op committed a write, sleeping non-SC loads of
                // that location wake with an rf floor: everything mo-older
                // than this write was already explored in the subtree that
                // put them to sleep (see `ExecState::wake_floor`).
                let wake_write: Option<(LocId, EventId)> = if st.config.rf_prune && eff_op.writes()
                {
                    eff_op
                        .loc()
                        .and_then(|l| st.mem.last_store(l).map(|e| (l, e)))
                } else {
                    None
                };
                for i in 0..st.sleep.len() {
                    if st.sleep[i] {
                        if let Some(p) = &st.pending[i] {
                            if p.dependent(&eff_op) {
                                st.sleep[i] = false;
                                if let Some((l, e)) = wake_write {
                                    // Non-SC read ordering is what makes
                                    // the commutation S-preserving; a CAS
                                    // reads with its failure ordering.
                                    let floors = match p {
                                        Op::Load { loc, ord } => *loc == l && !ord.is_seq_cst(),
                                        Op::Rmw {
                                            loc,
                                            kind: RmwKind::Cas { fail_ord, .. },
                                            ..
                                        } => *loc == l && !fail_ord.is_seq_cst(),
                                        _ => false,
                                    };
                                    if floors {
                                        st.wake_floor[i] = Some((l, e));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if st.mem.threads[t.idx()].steps > st.config.max_steps_per_thread {
                return abort(shared, st, RunOutcome::Diverged);
            }
            st.replies[t.idx()] = Some(reply);
            // Under fiber hosting nobody waits on condvars: the parked
            // fiber that ran this decision finds the reply itself and
            // stack-switches to its owner (see `fiber_next`).
            if t != caller && !crate::fiber::active() {
                shared.cv(t).notify_one();
            }
        }
        Err(outcome) => abort(shared, st, outcome),
    }
}

/// Abandon the execution: record the outcome and hand every live thread a
/// `Die` reply (they unwind on wakeup; job-exit accounting signals the
/// explorer once all are gone).
fn abort(shared: &Shared, st: &mut ExecState, outcome: RunOutcome) {
    if st.outcome.is_none() {
        st.outcome = Some(outcome);
    }
    st.dying = true;
    let fiber_mode = crate::fiber::active();
    for i in 0..st.alive.len() {
        if st.alive[i] {
            st.replies[i] = Some(Reply::Die);
            // Fiber-hosted threads drain via `fiber_next` transfers, not
            // condvar wakeups — nobody parks on a condvar in fiber mode,
            // including the host-side watchdog-rescue abort (which runs
            // with `fiber::active()` still true and drains the survivors
            // through `run_execution`'s switch loop).
            if !fiber_mode {
                shared.cv(Tid(i as u32)).notify_one();
            }
        }
    }
}

/// Human-readable anchor for hang reports: the last event committed to
/// the trace, rendered `event-id:kind@thread` (e.g. `e7:Store@T2`).
fn last_op_tag(trace: &Trace) -> Option<String> {
    if trace.is_empty() {
        return None;
    }
    let id = EventId(trace.len() as u32 - 1);
    Some(format!("{id}:{:?}@{}", trace.tag(id), trace.tid(id)))
}

/// Repair the scheduler's accounting after a signal rescue abandoned the
/// wedged fiber `wedged` mid-flight, and abort the execution with the
/// corresponding bug. Called by `fiber::run_execution` on the host, with
/// the wedged fiber already marked dead+abandoned.
///
/// The preemption gate guarantees the rescue interrupted *user* code —
/// i.e. the wedged thread held the running token — so it is counted in
/// `running` (unless it had already passed `thread_finished`, in which
/// case `alive` is false and there is nothing to undo). Its pending op
/// and reply are cleared so no stale state can steer `fiber_next`, and
/// its job-exit is accounted here (the fiber's root will never run
/// `job_exited`).
pub(crate) fn fiber_rescued(
    shared: &Arc<Shared>,
    wedged: Tid,
    overflow: bool,
    limit: Option<Duration>,
) {
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    if st.alive.get(wedged.idx()).copied().unwrap_or(false) {
        st.alive[wedged.idx()] = false;
        st.running = st.running.saturating_sub(1);
    }
    if let Some(p) = st.pending.get_mut(wedged.idx()) {
        *p = None;
    }
    if let Some(r) = st.replies.get_mut(wedged.idx()) {
        *r = None;
    }
    st.active_jobs = st.active_jobs.saturating_sub(1);
    if st.outcome.is_none() {
        let bug = if overflow {
            Bug::StackOverflow { tid: wedged }
        } else {
            // `wedged` came from the signal handler: exact even for a
            // fiber that wedged before its first visible op (which
            // `last_sched` would misattribute).
            st.hang_bug(limit.unwrap_or_default(), wedged)
        };
        abort(shared, &mut st, RunOutcome::BugFound(bug));
    }
    if st.active_jobs == 0 {
        shared.done.notify_all();
    }
    drop(st);
    // Critical: reset the monitor's stall clock. The rescue itself bumps
    // no progress, so without this the monitor would re-request a rescue
    // immediately and could preempt a *draining* (unwinding) fiber in a
    // gate-open window; with it, the drain gets a full fresh timeout —
    // and a genuinely wedged drain still gets rescued after one.
    shared.heartbeat();
}

/// In fiber mode: the fiber a parking (or exiting) fiber must transfer
/// control to — the thread whose deposited reply is waiting to be picked
/// up, else the lowest spawned-but-never-run fiber (which still holds a
/// running token, so the next scheduling decision cannot happen until it
/// posts its first operation). `None` only when the execution has fully
/// drained and control belongs back to the explorer.
pub(crate) fn fiber_next(st: &ExecState) -> Option<Tid> {
    // The `alive` filter is belt and braces: replies are only ever
    // deposited for live threads and cleared when a thread dies, but a
    // stale one slipping through would transfer control into a dead
    // fiber's stack — keep the memory-safety margin explicit.
    st.replies
        .iter()
        .zip(&st.alive)
        .position(|(r, &alive)| r.is_some() && alive)
        .map(|i| Tid(i as u32))
        .or_else(crate::fiber::first_unstarted)
}

// ---------------------------------------------------------------------
// Worker-side entry points (called from the public primitives).
// ---------------------------------------------------------------------

/// Perform a visible operation as modeled thread `me`.
pub(crate) fn visible_op(shared: &Shared, me: Tid, op: Op) -> Reply {
    // Close the preemption gate: a signal rescue must never abandon a
    // fiber holding `inner` or mid-bookkeeping. (The gate is per-fiber —
    // saved/restored across the suspension inside `switch_to`.)
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    if st.dying {
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    st.pending[me.idx()] = Some(op);
    st.running -= 1;
    if st.running == 0 {
        schedule(shared, &mut st, me);
    }
    // The condvar is fetched lazily: when the scheduler picked `me` again
    // (the common case), the reply is already deposited and the cvs lock
    // is never touched. Fetching under `inner` follows the established
    // inner→cvs lock order (see `spawn_thread` and `schedule`).
    let fiber_mode = crate::fiber::active();
    let mut cv = None;
    loop {
        if let Some(reply) = st.replies[me.idx()].take() {
            if matches!(reply, Reply::Die) {
                drop(st);
                std::panic::panic_any(DieMarker);
            }
            st.running += 1;
            return reply;
        }
        if fiber_mode {
            // No reply for this thread yet: hand the CPU straight to the
            // fiber that can make progress instead of parking an OS
            // thread. Control comes back (with the lock released) once
            // some later decision deposits this thread's reply and a
            // parking fiber switches here.
            let next =
                fiber_next(&st).expect("fiber host: a parked thread has no runnable successor");
            drop(st);
            crate::fiber::switch_to(next);
            st = shared.inner.lock();
        } else {
            cv.get_or_insert_with(|| shared.cv(me)).wait(&mut st);
        }
    }
}

/// Spawn a modeled child thread.
pub(crate) fn spawn_thread(
    shared: &Arc<Shared>,
    me: Tid,
    closure: Box<dyn FnOnce() + Send + 'static>,
) -> Tid {
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    if st.dying {
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    if st.pending.len() >= st.config.max_threads as usize {
        let bug = Bug::UserPanic {
            tid: me,
            message: "max_threads exceeded".into(),
        };
        abort(shared, &mut st, RunOutcome::BugFound(bug));
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    let child = st.register_thread();
    shared.heartbeat();
    shared.ensure_cv(child);
    st.mem.spawn_thread(me);
    st.running += 1; // the child runs until its first visible op
    st.active_jobs += 1;
    if crate::fiber::active() {
        // Fiber hosting: the child becomes a fiber of this OS thread. It
        // runs when a parking fiber picks it via `fiber_next` (it holds a
        // running token until its first visible op, so that is guaranteed
        // before the next scheduling decision). Creation cannot fail —
        // there is no pool to exhaust.
        drop(st);
        crate::fiber::spawn_fiber(child, Arc::clone(shared), closure);
        return child;
    }
    let pool = Arc::clone(&shared.pool);
    drop(st);
    let dispatched = pool.lock().dispatch(Job {
        tid: child,
        shared: Arc::clone(shared),
        closure,
    });
    if !dispatched {
        // The pool could not keep a worker alive for the child (bounded
        // respawns exhausted). Undo the child's accounting and abort the
        // execution as an engine error — the spawning thread unwinds like
        // any other abandoned execution.
        let mut st = shared.inner.lock();
        st.alive[child.idx()] = false;
        st.running -= 1;
        st.active_jobs -= 1;
        abort(
            shared,
            &mut st,
            RunOutcome::EngineError(format!(
                "worker pool exhausted its respawn budget dispatching {child}"
            )),
        );
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    child
}

/// Called by the job wrapper when the closure returns normally.
pub(crate) fn thread_finished(shared: &Shared, me: Tid) {
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    if st.alive[me.idx()] {
        st.mem.apply_finish(me);
        st.alive[me.idx()] = false;
        st.running -= 1;
        if st.running == 0 {
            schedule(shared, &mut st, me);
        }
    }
}

/// Called by the job wrapper when the closure unwound with [`DieMarker`].
pub(crate) fn thread_aborted(shared: &Shared, me: Tid) {
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    if st.alive[me.idx()] {
        st.alive[me.idx()] = false;
        // A dying thread was counted running iff it held the token; it
        // panicked out of visible_op/spawn before re-incrementing, so it
        // is *not* counted in `running` here. Nothing to decrement.
    }
    // A thread that died *without starting* (spawned, then the execution
    // aborted before its first visible op) never picked up the `Die` the
    // abort deposited for it. Clear it: a stale reply for a dead thread
    // would otherwise steer `fiber_next` into a dead fiber.
    st.replies[me.idx()] = None;
}

/// Called by the job wrapper when the closure panicked for real.
pub(crate) fn thread_panicked(shared: &Shared, me: Tid, message: String) {
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    if st.alive[me.idx()] {
        st.alive[me.idx()] = false;
        st.running -= 1;
        let bug = Bug::UserPanic { tid: me, message };
        abort(shared, &mut st, RunOutcome::BugFound(bug));
    }
    // See `thread_aborted`: no stale reply may outlive its thread.
    st.replies[me.idx()] = None;
}

/// Job-exit accounting: the last job out signals the explorer.
pub(crate) fn job_exited(shared: &Shared) {
    let _gate = crate::fiber::engine_section();
    let mut st = shared.inner.lock();
    st.active_jobs -= 1;
    if st.active_jobs == 0 && st.outcome.is_some() {
        shared.done.notify_all();
    }
    // Liveness guard: if every job exited but no outcome was decided, the
    // execution stalled (should be impossible); mark it so the explorer
    // is not left hanging.
    if st.active_jobs == 0 && st.outcome.is_none() && st.alive.iter().all(|a| !a) {
        st.outcome = Some(RunOutcome::Completed);
        shared.done.notify_all();
    }
}

// ---------------------------------------------------------------------
// Explorer-side driver.
// ---------------------------------------------------------------------

/// Execution-harness state carried between the executions of one
/// exploration campaign: the `Shared` handle (with every buffer at its
/// high-water capacity) and the recycled trace buffer of the previous
/// execution. Per-execution setup cost — a fresh `Arc<Shared>`, every
/// `Vec` regrowing from zero, one `Arc<Condvar>` per modeled thread —
/// is a large share of short executions, so `run_once` rewinds this
/// state in place instead of rebuilding it.
///
/// One `Reuse` belongs to exactly one explorer (and therefore one
/// `Config`); it must not be shared across campaigns with different
/// configs.
#[derive(Default)]
pub(crate) struct Reuse {
    shared: Option<Arc<Shared>>,
    /// Trace buffer handed back by the explorer once the plugins are done
    /// with the previous execution's trace.
    pub trace: Option<Trace>,
}

/// Execute the test closure once, replaying `script`. With a `sampler`,
/// choice points beyond the script are resolved randomly instead of
/// depth-first (deadline-degraded sampling). `reuse` carries the harness
/// across executions; after a *hung* execution the `Shared` is abandoned
/// (the wedged job may still touch it) and the next call builds afresh.
pub(crate) fn run_once(
    config: &Config,
    pool: &Arc<Mutex<Pool>>,
    script: &[usize],
    test: Arc<dyn Fn() + Send + Sync>,
    sampler: Option<StdRng>,
    reuse: &mut Reuse,
) -> RunResult {
    let mut recycle = reuse.trace.take().unwrap_or_default();
    // sw-edge recording feeds the post-hoc oracle's delta cross-check; it
    // is only consumed by the validating test suites, so tie it to the
    // same flag. `Trace::clear` preserves the setting across reuse.
    recycle.record_sw = config.validate_axioms;
    let shared = match reuse.shared.take() {
        Some(shared) => {
            shared.inner.lock().reset(script, sampler, recycle);
            // A bug posted right before an abort-for-another-reason could
            // survive the previous execution; it must not leak into this
            // one.
            *shared.pending_bug.lock() = None;
            shared
                .pending_bug_flag
                .store(false, std::sync::atomic::Ordering::Relaxed);
            shared
        }
        None => Arc::new(Shared {
            inner: Mutex::new(ExecState {
                mem: {
                    let mut mem = MemState::new();
                    mem.trace.record_sw = config.validate_axioms;
                    mem
                },
                config: config.clone(),
                script: script.to_vec(),
                cursor: 0,
                choices: Vec::new(),
                pending: Vec::new(),
                replies: Vec::new(),
                alive: Vec::new(),
                running: 0,
                active_jobs: 0,
                sleep: Vec::new(),
                spins: Vec::new(),
                futile: Vec::new(),
                last_sched: Tid::MAIN,
                outcome: None,
                dying: false,
                sampler,
                cand_buf: Vec::new(),
                rmw_buf: Vec::new(),
                cand_scratch: Vec::new(),
                sched_buf: Vec::new(),
                pruned: 0,
                wake_floor: Vec::new(),
            }),
            progress: std::sync::atomic::AtomicU64::new(0),
            cvs: Mutex::new(Vec::new()),
            done: Condvar::new(),
            pending_bug: Mutex::new(None),
            pending_bug_flag: std::sync::atomic::AtomicBool::new(false),
            arena: Mutex::new(Vec::new()),
            pool: Arc::clone(pool),
        }),
    };

    {
        let mut st = shared.inner.lock();
        let main = st.register_thread();
        debug_assert_eq!(main, Tid::MAIN);
        shared.ensure_cv(main);
        st.running = 1;
        st.active_jobs = 1;
    }
    let t2 = Arc::clone(&test);
    // Host selection is centralized in `fiber::host_choice` (shared with
    // `fiber::enabled_here` so the gating logic cannot drift). Fibers run
    // *every* modeled thread of the execution on this (explorer) thread
    // with userspace stack switches — zero kernel handshakes per token
    // transfer — and, with a hang_timeout, arm the monitor-thread
    // watchdog for signal-directed rescue. Where fibers are unavailable,
    // running just the main modeled thread inline still saves two futex
    // round-trips per execution, but only when the explorer has no
    // watchdog polling to do; the OS-thread pool covers the rest
    // (notably nested explorations).
    match crate::fiber::host_choice(config) {
        crate::fiber::HostChoice::Fiber => {
            crate::fiber::run_execution(
                &shared,
                Box::new(move || t2()),
                config.hang_timeout,
                config.fiber_stack,
            );
        }
        crate::fiber::HostChoice::Inline => {
            crate::worker::run_main_inline(&shared, Box::new(move || t2()));
        }
        crate::fiber::HostChoice::Pool => {
            let dispatched = pool.lock().dispatch(Job {
                tid: Tid::MAIN,
                shared: Arc::clone(&shared),
                closure: Box::new(move || t2()),
            });
            if !dispatched {
                // No worker could host even the main modeled thread: void
                // the execution up front instead of waiting on a job that
                // will never run.
                let mut st = shared.inner.lock();
                st.alive[Tid::MAIN.idx()] = false;
                st.running -= 1;
                st.active_jobs -= 1;
                st.outcome = Some(RunOutcome::EngineError(
                    "worker pool exhausted its respawn budget dispatching the main thread".into(),
                ));
                shared.done.notify_all();
            }
        }
    }

    // Wait for the verdict + full job drain (arena safety). With a
    // hang_timeout, a watchdog polls the heartbeat counter: an execution
    // whose scheduler makes no progress for the configured interval is
    // aborted (`Bug::InternalHang`), and if the wedged job still refuses
    // to exit, it is leaked rather than parking the explorer forever.
    let (outcome, trace, choices, hung, pruned) = {
        let mut st = shared.inner.lock();
        let mut hung = false;
        match config.hang_timeout {
            None => {
                while !(st.outcome.is_some() && st.active_jobs == 0) {
                    shared.done.wait(&mut st);
                }
            }
            Some(limit) => {
                // Fiber-hosted executions return from `run_execution`
                // fully drained (their watchdog lives on the monitor
                // thread), so this loop exits on its first check there;
                // the polling below is the OS-thread path's watchdog.
                let slice = (limit / 4).max(Duration::from_millis(10));
                let progress = || shared.progress.load(std::sync::atomic::Ordering::Relaxed);
                let mut last_progress = progress();
                let mut last_change = Instant::now();
                loop {
                    if st.outcome.is_some() && st.active_jobs == 0 {
                        break;
                    }
                    shared.done.wait_for(&mut st, slice);
                    let now_progress = progress();
                    if now_progress != last_progress {
                        last_progress = now_progress;
                        last_change = Instant::now();
                        continue;
                    }
                    let stalled = last_change.elapsed();
                    if stalled < limit {
                        continue;
                    }
                    if st.outcome.is_none() {
                        let wedged = st.last_sched;
                        let bug = st.hang_bug(limit, wedged);
                        abort(&shared, &mut st, RunOutcome::BugFound(bug));
                        // Fresh grace period for the surviving jobs to
                        // unwind and drain.
                        last_change = Instant::now();
                    } else {
                        // Already aborted, still not drained: a job is
                        // wedged in user code and will never exit.
                        hung = true;
                        break;
                    }
                }
            }
        }
        (
            st.outcome.clone().expect("decided"),
            std::mem::take(&mut st.mem.trace),
            std::mem::take(&mut st.choices),
            hung,
            st.pruned,
        )
    };
    if !hung {
        shared.arena.lock().clear();
        // All jobs have drained (`active_jobs == 0`), so nothing touches
        // the execution state again: the harness can be rewound and
        // reused by the next execution.
        reuse.shared = Some(shared);
    }
    // On a hang the arena stays alive deliberately: the wedged thread may
    // still dereference per-execution allocations, and its thread-local
    // context keeps `shared` (and thus the arena) reachable. The leak is
    // bounded by one wedged execution per InternalHang report.
    RunResult {
        outcome,
        trace,
        choices,
        hung,
        pruned,
    }
}
