//! Token-passing execution runtime.
//!
//! The original CDSChecker runs on one core, and so — typically — does
//! this reproduction's CI environment. A dedicated controller thread
//! would cost two context switches per visible operation; instead, the
//! scheduling decision is made *inline by whichever worker parks last*:
//!
//! * every modeled thread, at a visible operation, locks the shared
//!   [`ExecState`], records its pending op, and decrements the running
//!   count;
//! * the worker that brings the running count to zero runs the scheduler:
//!   it picks the next runnable thread (per the DFS replay script, with
//!   sleep-set filtering), applies that thread's operation against the
//!   memory-model engine, and deposits the reply;
//! * if the chosen thread is *itself* — the common case, since the
//!   default schedule prefers the currently running thread — it simply
//!   continues: **zero context switches**. Otherwise it wakes the chosen
//!   worker's condvar and parks.
//!
//! The explorer thread only participates at execution boundaries.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cdsspec_c11::{EventId, LocId, Tid, Trace};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::Config;
use crate::memstate::MemState;
use crate::msg::{Op, Reply};
use crate::report::Bug;
use crate::worker::{DieMarker, Job, Pool};

/// One recorded choice point.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChoiceRec {
    /// Index taken.
    pub picked: usize,
    /// Number of alternatives that existed.
    pub num_options: usize,
}

/// How an execution ended.
#[derive(Clone, Debug)]
pub(crate) enum RunOutcome {
    /// All threads finished; the trace is a feasible execution.
    Completed,
    /// A defect was detected; the trace is the (partial) witness.
    BugFound(Bug),
    /// Step/spin/futile-read bound exceeded — pruned, counted infeasible.
    Diverged,
    /// Every runnable thread was asleep — a redundant interleaving.
    SleepPruned,
}

/// Result of one execution.
pub(crate) struct RunResult {
    pub outcome: RunOutcome,
    pub trace: Trace,
    pub choices: Vec<ChoiceRec>,
    /// The execution wedged an OS worker that had to be leaked (the
    /// watchdog aborted, but one job never exited). The per-execution
    /// arena is intentionally kept alive in this case.
    pub hung: bool,
}

/// The mutable heart of one execution, guarded by [`Shared::inner`].
pub(crate) struct ExecState {
    pub mem: MemState,
    config: Config,
    script: Vec<usize>,
    cursor: usize,
    choices: Vec<ChoiceRec>,

    /// Announced-but-unprocessed op per thread.
    pending: Vec<Option<Op>>,
    /// Deposited replies awaiting pickup.
    replies: Vec<Option<Reply>>,
    /// Spawned and not finished.
    alive: Vec<bool>,
    /// Modeled threads currently executing user code.
    running: usize,
    /// OS jobs that have not returned to the pool yet (arena safety).
    active_jobs: usize,
    /// Sleep set.
    sleep: Vec<bool>,
    /// Total spin hints per thread.
    spins: Vec<u32>,
    /// Futile-read tracking per (thread, location).
    futile: Vec<std::collections::HashMap<LocId, (Option<EventId>, u32)>>,
    /// Thread scheduled most recently (preferred by the default schedule).
    last_sched: Tid,
    /// Execution verdict; set exactly once.
    outcome: Option<RunOutcome>,
    /// Abort in progress: remaining workers unwind on wakeup.
    dying: bool,
    /// Heartbeat counter: bumped on every scheduling decision (and by
    /// `crate::api::progress_hint`). The watchdog in [`run_once`] aborts
    /// the execution when this stops moving for `Config::hang_timeout`.
    progress: u64,
    /// When set, choice points past the replay script are resolved by
    /// this PRNG instead of depth-first (deadline-degraded sampling).
    sampler: Option<StdRng>,
}

/// Shared handle between the explorer, the workers, and the user-facing
/// primitives.
pub(crate) struct Shared {
    pub inner: Mutex<ExecState>,
    /// Per-modeled-thread wakeups (indexed by tid; grown under the lock).
    cvs: Mutex<Vec<Arc<Condvar>>>,
    /// Explorer wakeup: outcome decided and all jobs drained.
    done: Condvar,
    /// Worker-side detected bug (data race), honored at the next decision.
    pub pending_bug: Mutex<Option<Bug>>,
    /// Per-execution allocations (freed by the explorer after `done`).
    pub arena: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
    /// The worker pool (needed by spawn).
    pool: Arc<Mutex<Pool>>,
}

impl Shared {
    fn cv(&self, tid: Tid) -> Arc<Condvar> {
        self.cvs.lock()[tid.idx()].clone()
    }
}

impl ExecState {
    fn choose(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let picked = if self.cursor < self.script.len() {
            self.script[self.cursor]
        } else if let Some(rng) = &mut self.sampler {
            rng.gen_range(0..n)
        } else {
            0
        };
        assert!(
            picked < n,
            "replay divergence: script wants option {picked} of {n} at choice {} — \
             the test closure is nondeterministic",
            self.cursor
        );
        self.choices.push(ChoiceRec {
            picked,
            num_options: n,
        });
        self.cursor += 1;
        picked
    }

    /// Feed the watchdog (see the `progress` field).
    pub(crate) fn heartbeat(&mut self) {
        self.progress = self.progress.wrapping_add(1);
    }

    fn register_thread(&mut self) -> Tid {
        let tid = Tid(self.pending.len() as u32);
        self.pending.push(None);
        self.replies.push(None);
        self.alive.push(true);
        self.sleep.push(false);
        self.spins.push(0);
        self.futile.push(Default::default());
        tid
    }

    /// Record a read for futile-read tracking; `true` = prune.
    fn track_read(&mut self, t: Tid, loc: LocId, rf: Option<EventId>) -> bool {
        let cap = self.config.max_futile_reads;
        let entry = self.futile[t.idx()].entry(loc).or_insert((rf, 0));
        if entry.0 == rf {
            entry.1 += 1;
            entry.1 > cap
        } else {
            *entry = (rf, 1);
            false
        }
    }

    /// Apply one visible operation; `Err(outcome)` aborts the execution.
    fn process(&mut self, t: Tid, op: &Op) -> Result<Reply, RunOutcome> {
        match *op {
            Op::Load { loc, ord } => {
                let cands = self.mem.load_candidates(t, loc, ord);
                let idx = self.choose(cands.len());
                let rf = cands[idx];
                let val = self.mem.apply_load(t, loc, ord, rf);
                if rf.is_none() {
                    return Err(RunOutcome::BugFound(Bug::UninitLoad { loc, tid: t }));
                }
                if self.track_read(t, loc, rf) {
                    return Err(RunOutcome::Diverged);
                }
                Ok(Reply::Val(val))
            }
            Op::Store { loc, ord, val } => {
                self.mem.apply_store(t, loc, ord, val);
                self.futile[t.idx()].remove(&loc);
                Ok(Reply::Ok)
            }
            Op::Rmw { loc, ord, kind } => {
                let cands = self.mem.rmw_candidates(t, loc, ord, kind);
                let idx = self.choose(cands.len());
                let choice = cands[idx];
                let (old, success) = self.mem.apply_rmw(t, loc, ord, kind, choice);
                if choice.rf.is_none() {
                    return Err(RunOutcome::BugFound(Bug::UninitLoad { loc, tid: t }));
                }
                if success {
                    self.futile[t.idx()].remove(&loc);
                } else if self.track_read(t, loc, choice.rf) {
                    return Err(RunOutcome::Diverged);
                }
                Ok(Reply::Rmw { old, success })
            }
            Op::Fence { ord } => {
                self.mem.apply_fence(t, ord);
                Ok(Reply::Ok)
            }
            Op::Join { target } => {
                self.mem.apply_join(t, target);
                Ok(Reply::Ok)
            }
            Op::Spin => {
                self.spins[t.idx()] += 1;
                if self.spins[t.idx()] > self.config.max_spins {
                    return Err(RunOutcome::Diverged);
                }
                Ok(Reply::Ok)
            }
            Op::Yield => Ok(Reply::Ok),
        }
    }
}

/// Run the scheduler: called under the lock whenever `running` drops to 0
/// and the execution has not ended. Deposits exactly one reply (possibly
/// `Die` for everyone on abort).
fn schedule(shared: &Shared, st: &mut ExecState) {
    debug_assert_eq!(st.running, 0);
    if st.outcome.is_some() {
        return;
    }
    st.heartbeat();

    // Worker-side race found since the last decision?
    let pending_bug = shared.pending_bug.lock().take();
    if let Some(bug) = pending_bug {
        return abort(shared, st, RunOutcome::BugFound(bug));
    }

    if st.alive.iter().all(|a| !a) {
        st.outcome = Some(RunOutcome::Completed);
        return;
    }

    // Enabled: alive, announced, and (for joins) target finished.
    let enabled: Vec<Tid> = (0..st.alive.len())
        .filter(|&i| st.alive[i])
        .filter(|&i| match &st.pending[i] {
            Some(Op::Join { target }) => st.mem.threads[target.idx()].finished,
            Some(_) => true,
            None => false,
        })
        .map(|i| Tid(i as u32))
        .collect();
    if enabled.is_empty() {
        let blocked: Vec<Tid> = (0..st.alive.len())
            .filter(|&i| st.alive[i])
            .map(|i| Tid(i as u32))
            .collect();
        return abort(shared, st, RunOutcome::BugFound(Bug::Deadlock { blocked }));
    }

    let mut runnable: Vec<Tid> = if st.config.sleep_sets {
        enabled
            .iter()
            .copied()
            .filter(|t| !st.sleep[t.idx()])
            .collect()
    } else {
        enabled
    };
    if runnable.is_empty() {
        return abort(shared, st, RunOutcome::SleepPruned);
    }
    // Prefer continuing the last-scheduled thread: fewer context switches
    // and more natural default executions.
    if let Some(pos) = runnable.iter().position(|&t| t == st.last_sched) {
        runnable.swap(0, pos);
    }

    let pick = st.choose(runnable.len());
    let t = runnable[pick];
    for &u in &runnable[..pick] {
        st.sleep[u.idx()] = true;
    }
    st.sleep[t.idx()] = false;
    st.last_sched = t;

    let op = st.pending[t.idx()]
        .take()
        .expect("runnable thread has a pending op");
    match st.process(t, &op) {
        Ok(reply) => {
            if st.config.sleep_sets {
                for i in 0..st.sleep.len() {
                    if st.sleep[i] {
                        if let Some(p) = &st.pending[i] {
                            if p.dependent(&op) {
                                st.sleep[i] = false;
                            }
                        }
                    }
                }
            }
            if st.mem.threads[t.idx()].steps > st.config.max_steps_per_thread {
                return abort(shared, st, RunOutcome::Diverged);
            }
            st.replies[t.idx()] = Some(reply);
            shared.cv(t).notify_one();
        }
        Err(outcome) => abort(shared, st, outcome),
    }
}

/// Abandon the execution: record the outcome and hand every live thread a
/// `Die` reply (they unwind on wakeup; job-exit accounting signals the
/// explorer once all are gone).
fn abort(shared: &Shared, st: &mut ExecState, outcome: RunOutcome) {
    if st.outcome.is_none() {
        st.outcome = Some(outcome);
    }
    st.dying = true;
    for i in 0..st.alive.len() {
        if st.alive[i] {
            st.replies[i] = Some(Reply::Die);
            shared.cv(Tid(i as u32)).notify_one();
        }
    }
}

// ---------------------------------------------------------------------
// Worker-side entry points (called from the public primitives).
// ---------------------------------------------------------------------

/// Perform a visible operation as modeled thread `me`.
pub(crate) fn visible_op(shared: &Shared, me: Tid, op: Op) -> Reply {
    let cv = shared.cv(me);
    let mut st = shared.inner.lock();
    if st.dying {
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    st.pending[me.idx()] = Some(op);
    st.running -= 1;
    if st.running == 0 {
        schedule(shared, &mut st);
    }
    loop {
        if let Some(reply) = st.replies[me.idx()].take() {
            if matches!(reply, Reply::Die) {
                drop(st);
                std::panic::panic_any(DieMarker);
            }
            st.running += 1;
            return reply;
        }
        cv.wait(&mut st);
    }
}

/// Spawn a modeled child thread.
pub(crate) fn spawn_thread(
    shared: &Arc<Shared>,
    me: Tid,
    closure: Box<dyn FnOnce() + Send + 'static>,
) -> Tid {
    let mut st = shared.inner.lock();
    if st.dying {
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    if st.pending.len() >= st.config.max_threads as usize {
        let bug = Bug::UserPanic {
            tid: me,
            message: "max_threads exceeded".into(),
        };
        abort(shared, &mut st, RunOutcome::BugFound(bug));
        drop(st);
        std::panic::panic_any(DieMarker);
    }
    let child = st.register_thread();
    st.heartbeat();
    shared.cvs.lock().push(Arc::new(Condvar::new()));
    st.mem.spawn_thread(me);
    st.running += 1; // the child runs until its first visible op
    st.active_jobs += 1;
    let pool = Arc::clone(&shared.pool);
    drop(st);
    pool.lock().dispatch(Job {
        tid: child,
        shared: Arc::clone(shared),
        closure,
    });
    child
}

/// Called by the job wrapper when the closure returns normally.
pub(crate) fn thread_finished(shared: &Shared, me: Tid) {
    let mut st = shared.inner.lock();
    if st.alive[me.idx()] {
        st.mem.apply_finish(me);
        st.alive[me.idx()] = false;
        st.running -= 1;
        if st.running == 0 {
            schedule(shared, &mut st);
        }
    }
}

/// Called by the job wrapper when the closure unwound with [`DieMarker`].
pub(crate) fn thread_aborted(shared: &Shared, me: Tid) {
    let mut st = shared.inner.lock();
    if st.alive[me.idx()] {
        st.alive[me.idx()] = false;
        // A dying thread was counted running iff it held the token; it
        // panicked out of visible_op/spawn before re-incrementing, so it
        // is *not* counted in `running` here. Nothing to decrement.
    }
}

/// Called by the job wrapper when the closure panicked for real.
pub(crate) fn thread_panicked(shared: &Shared, me: Tid, message: String) {
    let mut st = shared.inner.lock();
    if st.alive[me.idx()] {
        st.alive[me.idx()] = false;
        st.running -= 1;
        let bug = Bug::UserPanic { tid: me, message };
        abort(shared, &mut st, RunOutcome::BugFound(bug));
    }
}

/// Job-exit accounting: the last job out signals the explorer.
pub(crate) fn job_exited(shared: &Shared) {
    let mut st = shared.inner.lock();
    st.active_jobs -= 1;
    if st.active_jobs == 0 && st.outcome.is_some() {
        shared.done.notify_all();
    }
    // Liveness guard: if every job exited but no outcome was decided, the
    // execution stalled (should be impossible); mark it so the explorer
    // is not left hanging.
    if st.active_jobs == 0 && st.outcome.is_none() && st.alive.iter().all(|a| !a) {
        st.outcome = Some(RunOutcome::Completed);
        shared.done.notify_all();
    }
}

// ---------------------------------------------------------------------
// Explorer-side driver.
// ---------------------------------------------------------------------

/// Execute the test closure once, replaying `script`. With a `sampler`,
/// choice points beyond the script are resolved randomly instead of
/// depth-first (deadline-degraded sampling).
pub(crate) fn run_once(
    config: &Config,
    pool: &Arc<Mutex<Pool>>,
    script: &[usize],
    test: Arc<dyn Fn() + Send + Sync>,
    sampler: Option<StdRng>,
) -> RunResult {
    let shared = Arc::new(Shared {
        inner: Mutex::new(ExecState {
            mem: MemState::new(),
            config: config.clone(),
            script: script.to_vec(),
            cursor: 0,
            choices: Vec::new(),
            pending: Vec::new(),
            replies: Vec::new(),
            alive: Vec::new(),
            running: 0,
            active_jobs: 0,
            sleep: Vec::new(),
            spins: Vec::new(),
            futile: Vec::new(),
            last_sched: Tid::MAIN,
            outcome: None,
            dying: false,
            progress: 0,
            sampler,
        }),
        cvs: Mutex::new(Vec::new()),
        done: Condvar::new(),
        pending_bug: Mutex::new(None),
        arena: Mutex::new(Vec::new()),
        pool: Arc::clone(pool),
    });

    {
        let mut st = shared.inner.lock();
        let main = st.register_thread();
        debug_assert_eq!(main, Tid::MAIN);
        shared.cvs.lock().push(Arc::new(Condvar::new()));
        st.running = 1;
        st.active_jobs = 1;
    }
    let t2 = Arc::clone(&test);
    pool.lock().dispatch(Job {
        tid: Tid::MAIN,
        shared: Arc::clone(&shared),
        closure: Box::new(move || t2()),
    });

    // Wait for the verdict + full job drain (arena safety). With a
    // hang_timeout, a watchdog polls the heartbeat counter: an execution
    // whose scheduler makes no progress for the configured interval is
    // aborted (`Bug::InternalHang`), and if the wedged job still refuses
    // to exit, it is leaked rather than parking the explorer forever.
    let (outcome, trace, choices, hung) = {
        let mut st = shared.inner.lock();
        let mut hung = false;
        match config.hang_timeout {
            None => {
                while !(st.outcome.is_some() && st.active_jobs == 0) {
                    shared.done.wait(&mut st);
                }
            }
            Some(limit) => {
                let slice = (limit / 4).max(Duration::from_millis(10));
                let mut last_progress = st.progress;
                let mut last_change = Instant::now();
                loop {
                    if st.outcome.is_some() && st.active_jobs == 0 {
                        break;
                    }
                    shared.done.wait_for(&mut st, slice);
                    if st.progress != last_progress {
                        last_progress = st.progress;
                        last_change = Instant::now();
                        continue;
                    }
                    let stalled = last_change.elapsed();
                    if stalled < limit {
                        continue;
                    }
                    if st.outcome.is_none() {
                        let bug = Bug::InternalHang {
                            stalled_ms: stalled.as_millis() as u64,
                        };
                        abort(&shared, &mut st, RunOutcome::BugFound(bug));
                        // Fresh grace period for the surviving jobs to
                        // unwind and drain.
                        last_change = Instant::now();
                    } else {
                        // Already aborted, still not drained: a job is
                        // wedged in user code and will never exit.
                        hung = true;
                        break;
                    }
                }
            }
        }
        (
            st.outcome.clone().expect("decided"),
            std::mem::take(&mut st.mem.trace),
            std::mem::take(&mut st.choices),
            hung,
        )
    };
    if !hung {
        shared.arena.lock().clear();
    }
    // On a hang the arena stays alive deliberately: the wedged thread may
    // still dereference per-execution allocations, and its thread-local
    // context keeps `shared` (and thus the arena) reachable. The leak is
    // bounded by one wedged execution per InternalHang report.
    RunResult {
        outcome,
        trace,
        choices,
        hung,
    }
}
