//! Userspace-fiber execution: every modeled thread of one execution runs
//! on the *same* OS thread, on its own guarded stack, and control moves
//! between them with a ~20-instruction stack switch instead of a futex
//! round trip.
//!
//! # Why
//!
//! The token-passing runtime (see [`crate::runtime`]) is strictly
//! sequential: exactly one modeled thread executes user code at any
//! moment, and every visible operation hands the token to the next thread
//! the DFS script selects. Hosting modeled threads on pooled OS threads
//! therefore buys no parallelism — it only pays, per token transfer, a
//! condvar wake plus a park: two kernel entries and a scheduler pass. On
//! the single-core CI hosts this is *half the wall clock* of a figure-7
//! exploration (`sys` ≈ `user` in `time`'s output). CDSChecker itself
//! runs modeled threads on `ucontext` fibers for exactly this reason.
//!
//! # How
//!
//! [`run_execution`] hosts one execution: it creates a fiber for the main
//! modeled thread and switches to it; [`crate::runtime::spawn_thread`]
//! creates further fibers in place of pool dispatches. A fiber that must
//! wait for its reply picks the next runnable fiber itself (the thread
//! whose reply the scheduler just deposited, or a spawned-but-not-yet-run
//! fiber holding the running token) and switches straight to it — the
//! scheduling *decisions* stay in [`crate::runtime::schedule`], byte for
//! byte the same as under OS-thread hosting; only the transfer mechanism
//! changes. The equivalence is pinned by `tests/fiber_equivalence.rs`.
//!
//! Host selection lives in one place, [`host_choice`], shared by
//! [`enabled_here`] and `runtime::run_once` so the two sites cannot
//! drift: fibers where the target supports them and
//! `Config::fiber_hosting` asks for them; the inline-main fast path where
//! fibers are unavailable but the explorer is still free; the OS-thread
//! pool otherwise (notably for *nested* explorations, where the caller is
//! itself a modeled thread). A configured hang watchdog no longer forces
//! the pool on Linux: stall detection runs on a dedicated monitor thread
//! (`mod watchdog`) and a wedged fiber is preempted by a directed signal
//! (`mod signals`), so `Config::default` — watchdog on — gets the fiber
//! fast path.
//!
//! # Hang rescue
//!
//! The explorer thread *is* the fiber host, so the in-function watchdog
//! poll of the OS-thread path can never run while a fiber is wedged. A
//! lazily spawned `cdsspec-watchdog` monitor thread watches the
//! per-execution heartbeat (`Shared::progress`, a lock-free atomic — a
//! wedged host never releases `Shared::inner`, so the monitor must not
//! take it). On a stall it sets a preemption request and `pthread_kill`s
//! the host with `SIGURG`, re-sending every tick until the handler
//! accepts. The handler — when the *preemption gate* (below) says user
//! code was running — stack-switches from the wedged fiber straight back
//! to the host continuation saved by [`run_execution`]'s switch-out. The
//! host then reports `Bug::InternalHang` (with the wedged tid and the
//! last-committed event), marks the wedged fiber dead + abandoned,
//! poisons the stack pool, and keeps draining the surviving fibers of the
//! aborted execution. The abandoned stack (and whatever its frames own)
//! is leaked — bounded, one stack per hang, mirroring the wedged-job leak
//! of the OS-thread host.
//!
//! # Stack overflow
//!
//! On Linux/x86_64 each fiber stack is a raw `mmap` with a `PROT_NONE`
//! guard region below it; a `SIGSEGV`-on-altstack handler converts guard
//! hits under an open gate into the same rescue mechanism, reporting
//! `Bug::StackOverflow` instead of corrupting the heap. Everywhere else
//! (and if `mmap` fails) stacks fall back to plain heap buffers with
//! canary words at the low end, re-armed on every pool checkout and
//! checked at every switch — detection after the fact, but deterministic
//! and allocation-free. Guard faults with the gate *closed* (engine
//! frames overflowing, which would mean engine state is unrecoverable)
//! fail fast with an async-signal-safe `write(2)` + `abort`.
//!
//! # The preemption gate
//!
//! Rescue is only sound when the wedged fiber was executing *user* code:
//! preempting mid-engine would abandon a fiber holding `Shared::inner`,
//! or halfway through transfer bookkeeping. Every engine entry point
//! holds an [`EngineSection`] (a thread-local depth counter, saved and
//! restored per fiber at every switch), and the switch paths themselves
//! set a `SWITCHING` flag across the bookkeeping window; the signal
//! handlers refuse to rescue unless depth is zero, no switch is in
//! flight, and a fiber is actually running. A refused delivery is
//! retried by the monitor on its next tick.
//!
//! # Safety notes
//!
//! * Panics never unwind across a stack switch: each fiber's unwinds
//!   (including the routine [`crate::worker::DieMarker`] aborts) are
//!   caught by `catch_unwind` at the fiber's own root frame
//!   ([`crate::worker::run_job`]), above the assembly trampoline.
//! * The per-thread context used by the modeled-code primitives is
//!   re-installed on every switch, so `with_ctx` always sees the fiber
//!   that is actually running.
//! * A locked [`Shared::inner`] guard is never held across a switch —
//!   every transfer site drops the guard first and relocks on resume.
//! * An abandoned fiber's stack is never reused or unwound: the slot is
//!   marked dead, the teardown `mem::forget`s the stack (its frames may
//!   own `Arc`s and arena pointers), and the whole pool is discarded
//!   because the wedged closure may have scribbled on any previously
//!   pooled stack it borrowed from.
//! * Residual hazard, accepted: a rescue signal could land inside a
//!   memory-allocator critical section *of user code* (the gate only
//!   tracks engine sections). The window is nanoseconds against a
//!   multi-second stall timeout, the failure mode is a wedged explorer
//!   (no corruption of checked state), and the campaign supervisor's
//!   process-level kill is the backstop — same contract as a wedged
//!   OS-thread job.
//! * Residual hazard, accepted: a fiber abandoned while blocked in
//!   `std`'s thread parker would leave the *host* OS thread's parker in
//!   a parked state. Contained: the explorer never calls
//!   `std::thread::park`, and the runtime's own blocking uses condvars.
//! * x87/SSE control words are not switched (nothing in this process
//!   changes them) — pre-existing caveat of the switch primitive.

use std::cell::{Cell, RefCell};
use std::mem::MaybeUninit;
use std::sync::Arc;
use std::time::Duration;

use cdsspec_c11::Tid;

use crate::config::Config;
use crate::report::Bug;
use crate::runtime::Shared;
use crate::worker::{self, Job};

/// Is fiber hosting implemented for this target?
pub(crate) const SUPPORTED: bool = cfg!(all(target_arch = "x86_64", unix));

/// Is watchdog preemption (signal-directed rescue of a wedged fiber)
/// implemented for this target? Subset of [`SUPPORTED`]: the rescue
/// machinery leans on Linux signal semantics (`pthread_kill`, sigaltstack
/// layout, guard-page `mmap`).
pub(crate) const PREEMPT_SUPPORTED: bool = cfg!(all(target_arch = "x86_64", target_os = "linux"));

/// How one execution's modeled threads are hosted. Selected once per
/// execution by [`host_choice`] — the single predicate shared by
/// [`enabled_here`] and `runtime::run_once`, so the gating logic cannot
/// be re-implemented divergently at the two sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum HostChoice {
    /// Every modeled thread on userspace fibers of the explorer thread.
    Fiber,
    /// Main modeled thread inline on the explorer, children on the pool.
    Inline,
    /// Every modeled thread on the OS-thread pool.
    Pool,
}

/// Pick the hosting mechanism for an execution under `config`. See the
/// module docs for why each condition exists.
pub(crate) fn host_choice(config: &Config) -> HostChoice {
    if worker::in_model() {
        // Nested exploration: the caller is itself a modeled thread and
        // must stay free to respond to its own scheduler.
        return HostChoice::Pool;
    }
    if SUPPORTED && config.fiber_hosting && (config.hang_timeout.is_none() || PREEMPT_SUPPORTED) {
        return HostChoice::Fiber;
    }
    if config.hang_timeout.is_none() {
        // No watchdog to poll: the explorer can at least host the main
        // modeled thread inline.
        return HostChoice::Inline;
    }
    HostChoice::Pool
}

/// Should this execution run on fibers? Thin view over [`host_choice`]
/// (production code matches on the full choice; the test suites assert
/// through this predicate).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn enabled_here(config: &Config) -> bool {
    matches!(host_choice(config), HostChoice::Fiber)
}

/// Default fiber stack size (usable, excluding the guard region) when
/// `Config::fiber_stack` is 0 or untouched. Untouched pages stay
/// uncommitted; generous because modeled closures may nest a whole inner
/// exploration.
pub(crate) const DEFAULT_STACK_SIZE: usize = 1 << 20;

/// Smallest usable stack this module will hand out, whatever the config
/// asks for: enough for the trampoline, the entry frames, and the engine
/// code a fiber runs before its first switch-out.
const MIN_STACK_SIZE: usize = 64 << 10;

/// Page granularity stack sizes are rounded to.
const PAGE: usize = 4096;

/// Resolve a requested `Config::fiber_stack` into the size actually
/// mapped: 0 means the default, everything is rounded up to a whole page
/// and clamped to [`MIN_STACK_SIZE`].
fn effective_stack_size(requested: usize) -> usize {
    let want = if requested == 0 {
        DEFAULT_STACK_SIZE
    } else {
        requested
    };
    want.max(MIN_STACK_SIZE).div_ceil(PAGE) * PAGE
}

/// Size of the `PROT_NONE` guard region below each mapped stack.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
const GUARD_SIZE: usize = 1 << 16;

/// Canary pattern written at the low end of every stack; see
/// [`Stack::arm_canary`].
const CANARY: u64 = 0xCD55_FEED_DEAD_5AFE;
/// Number of canary words.
const CANARY_WORDS: usize = 4;

// ---------------------------------------------------------------------
// Preemption gate: handler-visible, async-signal-safe thread-locals.
//
// All are const-initialized `Cell`s — reads and writes are plain TLS
// accesses with no lazy-init or allocation, safe to touch from the
// signal handlers in `mod signals`.
// ---------------------------------------------------------------------

const RESCUE_NONE: u8 = 0;
const RESCUE_HANG: u8 = 1;
const RESCUE_OVERFLOW: u8 = 2;

thread_local! {
    /// Engine-section depth. Nonzero ⇒ engine code (scheduler, runtime
    /// bookkeeping, locks) is on the stack ⇒ no rescue.
    static ENGINE_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// A stack switch's bookkeeping window is open (depth may legally be
    /// 0 mid-transfer while the target's depth is being staged).
    static SWITCHING: Cell<bool> = const { Cell::new(false) };
    /// Where to save the running fiber's SP if a handler preempts it.
    /// Null ⇔ the host (not a fiber) is running ⇒ no rescue.
    static CUR_SP_SLOT: Cell<*mut usize> = const { Cell::new(std::ptr::null_mut()) };
    /// Tid of the running fiber (valid while `CUR_SP_SLOT` is non-null).
    static CUR_TID: Cell<u32> = const { Cell::new(0) };
    /// The host continuation's saved-SP slot (points into
    /// `FiberRt::host_sp` for the span of `run_execution`).
    static HOST_SP_SLOT: Cell<*const usize> = const { Cell::new(std::ptr::null()) };
    /// Guard region of the running fiber's stack (`0..0` when none).
    static GUARD_LO: Cell<usize> = const { Cell::new(0) };
    static GUARD_HI: Cell<usize> = const { Cell::new(0) };
    /// Set by a handler that performed a rescue switch; consumed by
    /// [`take_rescue`] on the host side.
    static RESCUE: Cell<u8> = const { Cell::new(RESCUE_NONE) };
    static RESCUE_TID: Cell<u32> = const { Cell::new(0) };
    /// `Arc::as_ptr` of the armed `watchdog::PreemptState`, 0 when no
    /// watchdog is armed. The `WatchGuard` clears this before dropping
    /// its `Arc`, so the handler never dereferences a dead pointer.
    static PREEMPT_PTR: Cell<usize> = const { Cell::new(0) };
}

/// RAII depth token for the preemption gate. Every engine entry point
/// reachable from modeled code holds one; the signal handlers refuse to
/// rescue while any is alive on the running fiber.
pub(crate) struct EngineSection(());

/// Open an engine section (close the preemption gate) until the returned
/// token drops.
pub(crate) fn engine_section() -> EngineSection {
    ENGINE_DEPTH.set(ENGINE_DEPTH.get() + 1);
    EngineSection(())
}

impl Drop for EngineSection {
    fn drop(&mut self) {
        ENGINE_DEPTH.set(ENGINE_DEPTH.get() - 1);
    }
}

fn begin_transfer() {
    SWITCHING.set(true);
}

fn end_transfer() {
    SWITCHING.set(false);
}

/// Point the signal handlers at the fiber about to run.
fn point_handler_at(slot: &mut FiberSlot) {
    CUR_TID.set(slot.tid.0);
    let (lo, hi) = slot.stack.guard_range();
    GUARD_LO.set(lo);
    GUARD_HI.set(hi);
    CUR_SP_SLOT.set(&mut *slot.stack.sp as *mut usize);
}

/// No fiber is running (the host is): handlers must not rescue.
fn clear_handler_target() {
    CUR_SP_SLOT.set(std::ptr::null_mut());
    CUR_TID.set(0);
    GUARD_LO.set(0);
    GUARD_HI.set(0);
}

/// A rescue performed by a signal handler, observed by the host after its
/// switch-out "returned".
struct Rescue {
    tid: Tid,
    overflow: bool,
}

/// Consume a pending handler rescue, if any. Re-opens the signal mask:
/// the rescuing handler switched away instead of returning through
/// `sigreturn`, so the kernel still has its signal blocked on this
/// thread.
fn take_rescue() -> Option<Rescue> {
    match RESCUE.replace(RESCUE_NONE) {
        RESCUE_NONE => None,
        kind => {
            signals::unblock_after_rescue();
            Some(Rescue {
                tid: Tid(RESCUE_TID.get()),
                overflow: kind == RESCUE_OVERFLOW,
            })
        }
    }
}

// ---------------------------------------------------------------------
// Stacks: guarded mappings with a heap fallback, canaried, pooled.
// ---------------------------------------------------------------------

/// Backing memory of one fiber stack.
enum StackMem {
    /// Plain heap buffer: no guard, canary-only overflow detection.
    /// Uninitialized on purpose — zeroing would commit every page of
    /// every stack up front.
    Heap(Box<[MaybeUninit<u8>]>),
    /// Raw `mmap` of `GUARD_SIZE + size` bytes with the low `GUARD_SIZE`
    /// bytes `PROT_NONE` (`base` is the mapping start; the usable stack
    /// begins at `base + GUARD_SIZE`).
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    Mapped { base: *mut u8, size: usize },
}

impl StackMem {
    fn new(size: usize) -> StackMem {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if let Some(base) = map_guarded(size) {
            return StackMem::Mapped { base, size };
        }
        StackMem::Heap(Box::new_uninit_slice(size))
    }

    /// Usable stack bytes (the guard region is extra).
    fn size(&self) -> usize {
        match self {
            StackMem::Heap(b) => b.len(),
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            StackMem::Mapped { size, .. } => *size,
        }
    }

    /// Lowest usable stack byte.
    fn lo(&self) -> *const u8 {
        match self {
            StackMem::Heap(b) => b.as_ptr() as *const u8,
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            StackMem::Mapped { base, .. } => unsafe { base.add(GUARD_SIZE) },
        }
    }

    fn lo_mut(&mut self) -> *mut u8 {
        match self {
            StackMem::Heap(b) => b.as_mut_ptr() as *mut u8,
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            StackMem::Mapped { base, .. } => unsafe { base.add(GUARD_SIZE) },
        }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if let StackMem::Mapped { base, size } = self {
            unsafe { sys::munmap(*base as *mut core::ffi::c_void, GUARD_SIZE + *size) };
        }
    }
}

/// `mmap` a guarded stack: RW anonymous mapping with the low guard
/// region re-protected to `PROT_NONE`. `None` on any failure (the caller
/// falls back to a heap stack).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn map_guarded(size: usize) -> Option<*mut u8> {
    unsafe {
        let len = GUARD_SIZE + size;
        let base = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ | sys::PROT_WRITE,
            sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_NORESERVE,
            -1,
            0,
        );
        if base == sys::MAP_FAILED {
            return None;
        }
        if sys::mprotect(base, GUARD_SIZE, sys::PROT_NONE) != 0 {
            sys::munmap(base, len);
            return None;
        }
        Some(base as *mut u8)
    }
}

/// A reusable fiber stack plus the slot its suspended stack pointer is
/// saved in. The slot is boxed so its address survives growth of the
/// per-execution fiber table (and so the signal handler can name it).
struct Stack {
    mem: StackMem,
    /// Saved stack pointer while the fiber is suspended.
    sp: Box<usize>,
}

impl Stack {
    fn new(size: usize) -> Self {
        let mut s = Stack {
            mem: StackMem::new(size),
            sp: Box::new(0),
        };
        s.arm_canary();
        s
    }

    /// Usable stack bytes.
    fn size(&self) -> usize {
        self.mem.size()
    }

    /// Write the canary words at the lowest usable bytes. Unaligned
    /// writes: heap stacks have alignment 1.
    fn arm_canary(&mut self) {
        let lo = self.mem.lo_mut();
        unsafe {
            for i in 0..CANARY_WORDS {
                lo.add(i * 8).cast::<u64>().write_unaligned(CANARY);
            }
        }
    }

    /// Are the canary words intact?
    fn canary_ok(&self) -> bool {
        let lo = self.mem.lo();
        unsafe { (0..CANARY_WORDS).all(|i| lo.add(i * 8).cast::<u64>().read_unaligned() == CANARY) }
    }

    /// `[lo, hi)` of the guard region, `(0, 0)` when the stack has none.
    fn guard_range(&self) -> (usize, usize) {
        match &self.mem {
            StackMem::Heap(_) => (0, 0),
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            StackMem::Mapped { base, .. } => {
                let lo = *base as usize;
                (lo, lo + GUARD_SIZE)
            }
        }
    }

    /// Re-sanitize a pooled stack on checkout: re-assert the guard
    /// protection (a wedged closure could have `mprotect`ed it away — and
    /// `false` here means the mapping can no longer be trusted at all)
    /// and re-arm the canary. `false` ⇒ discard the stack.
    fn reverify(&mut self) -> bool {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if let StackMem::Mapped { base, .. } = &self.mem {
            let ok = unsafe {
                sys::mprotect(*base as *mut core::ffi::c_void, GUARD_SIZE, sys::PROT_NONE) == 0
            };
            if !ok {
                return false;
            }
        }
        self.arm_canary();
        true
    }
}

thread_local! {
    static RT: RefCell<Option<FiberRt>> = const { RefCell::new(None) };
    /// Stacks recycled across the executions hosted by this OS thread.
    static STACK_POOL: RefCell<Vec<Stack>> = const { RefCell::new(Vec::new()) };
}

/// Take a sanitized stack of exactly `size` usable bytes from the pool
/// (re-arming its canary and re-verifying its guard), or map a fresh
/// one. Other sizes stay pooled: an execution at a custom
/// `Config::fiber_stack` must never inherit a smaller (or wastefully
/// larger) stack mapped for an earlier config.
fn checkout_stack(size: usize) -> Stack {
    STACK_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        while let Some(at) = pool.iter().position(|s| s.size() == size) {
            let mut s = pool.swap_remove(at);
            if s.reverify() {
                return s;
            }
            // Unverifiable guard: drop (unmaps) rather than reuse.
        }
        Stack::new(size)
    })
}

/// Discard every pooled stack on this OS thread. Called after a rescue:
/// the wedged closure may hold pointers into (or have scribbled over) any
/// stack it ever borrowed, so the whole pool is contaminated.
fn poison_pool() {
    STACK_POOL.with(|pool| pool.borrow_mut().clear());
}

#[cfg(test)]
fn pool_size() -> usize {
    STACK_POOL.with(|pool| pool.borrow().len())
}

// ---------------------------------------------------------------------
// Per-execution fiber runtime.
// ---------------------------------------------------------------------

/// One modeled thread's fiber within the current execution.
struct FiberSlot {
    tid: Tid,
    stack: Stack,
    /// Has the fiber run at least once? Unstarted fibers hold the running
    /// token (they are "executing user code" as far as the scheduler's
    /// accounting goes) and must be given control before the token count
    /// can reach zero.
    started: bool,
    /// The fiber's root returned or unwound (or the fiber was abandoned
    /// by a rescue); its stack may be reclaimed at teardown and control
    /// must never transfer to it again.
    dead: bool,
    /// Abandoned mid-flight by a signal rescue: the stack still holds
    /// live frames (owning `Arc`s, arena pointers) and must be leaked,
    /// never unwound or reused.
    abandoned: bool,
    /// The fiber's `ENGINE_DEPTH` while suspended; restored by whoever
    /// switches to it. 0 for a fiber that has never run.
    saved_depth: u32,
}

/// Per-OS-thread fiber host state, alive for the span of one execution.
struct FiberRt {
    shared: Arc<Shared>,
    fibers: Vec<FiberSlot>,
    /// Saved host (explorer) context; the last dying fiber — or a
    /// rescuing signal handler — returns here.
    host_sp: Box<usize>,
    /// Currently running fiber, `None` while the host itself runs.
    current: Option<Tid>,
    /// A rescue happened: discard the stack pool at teardown.
    poisoned: bool,
    /// Usable bytes per fiber stack for this execution (already
    /// page-rounded and clamped by [`effective_stack_size`]).
    stack_size: usize,
}

/// Is a fiber-hosted execution in progress on this OS thread?
pub(crate) fn active() -> bool {
    let _gate = engine_section();
    RT.with(|rt| rt.borrow().is_some())
}

/// The lowest-tid fiber that has never run. Token accounting (see
/// [`FiberSlot::started`]) guarantees one exists whenever the running
/// count is nonzero and the current fiber has posted its operation.
pub(crate) fn first_unstarted() -> Option<Tid> {
    let _gate = engine_section();
    RT.with(|rt| {
        rt.borrow()
            .as_ref()
            .expect("first_unstarted outside a fiber execution")
            .fibers
            .iter()
            .find(|f| !f.started && !f.dead)
            .map(|f| f.tid)
    })
}

/// Host one execution: run `closure` as the main modeled thread and every
/// spawned thread on fibers of the calling OS thread. Returns when the
/// execution has fully drained (outcome decided, every fiber dead) —
/// including after watchdog rescues, which abort the execution but keep
/// draining its surviving fibers.
pub(crate) fn run_execution(
    shared: &Arc<Shared>,
    closure: Box<dyn FnOnce() + Send + 'static>,
    hang_timeout: Option<Duration>,
    stack_size: usize,
) {
    RT.with(|rt| {
        let prev = rt.borrow_mut().replace(FiberRt {
            shared: Arc::clone(shared),
            fibers: Vec::new(),
            host_sp: Box::new(0),
            current: None,
            poisoned: false,
            stack_size: effective_stack_size(stack_size),
        });
        debug_assert!(prev.is_none(), "nested fiber executions on one thread");
    });
    RT.with(|rt| {
        let rt = rt.borrow();
        let rt = rt.as_ref().expect("fiber rt just installed");
        HOST_SP_SLOT.set(&*rt.host_sp as *const usize);
    });
    spawn_fiber(Tid::MAIN, Arc::clone(shared), closure);
    signals::ensure();
    let watch = watchdog::arm(shared, hang_timeout);

    // Drive the execution. Control returns to this loop from
    // `exit_current(None)` when the execution has drained (no rescue
    // pending), or from a signal-handler rescue that abandoned the
    // running fiber mid-flight.
    let mut next = Some(Tid::MAIN);
    while let Some(target) = next {
        switch_from_host(target);
        match take_rescue() {
            None => break, // clean drain: every fiber dead
            Some(rescue) => {
                // The abandoned fiber's modeled-thread context is still
                // installed; clear it before engine code runs here.
                worker::set_fiber_ctx(None);
                RT.with(|rt| {
                    let mut rt = rt.borrow_mut();
                    let rt = rt.as_mut().expect("fiber rt present during rescue");
                    rt.current = None;
                    rt.poisoned = true;
                    let slot = slot_mut(rt, rescue.tid);
                    slot.dead = true;
                    slot.abandoned = true;
                });
                crate::runtime::fiber_rescued(shared, rescue.tid, rescue.overflow, hang_timeout);
                next = {
                    let _gate = engine_section();
                    let st = shared.inner.lock();
                    crate::runtime::fiber_next(&st)
                };
            }
        }
    }
    drop(watch);

    // Teardown: reclaim the stacks. An abandoned stack is leaked (its
    // frames own live state); after any rescue the whole pool is
    // discarded; a stack whose canary died is dropped.
    let rt = RT
        .with(|rt| rt.borrow_mut().take())
        .expect("fiber rt present");
    HOST_SP_SLOT.set(std::ptr::null());
    debug_assert!(rt.current.is_none());
    debug_assert!(
        rt.fibers.iter().all(|f| f.dead),
        "teardown with a live fiber"
    );
    let poisoned = rt.poisoned;
    if poisoned {
        poison_pool();
    }
    for f in rt.fibers {
        if f.abandoned {
            std::mem::forget(f.stack);
        } else if !poisoned && f.stack.canary_ok() {
            STACK_POOL.with(|pool| pool.borrow_mut().push(f.stack));
        }
        // else: drop frees/unmaps it.
    }
}

/// Create (but do not run) the fiber for modeled thread `tid`. Called by
/// [`crate::runtime::spawn_thread`] in place of a pool dispatch; the new
/// fiber holds the running token until its first visible operation.
pub(crate) fn spawn_fiber(
    tid: Tid,
    shared: Arc<Shared>,
    closure: Box<dyn FnOnce() + Send + 'static>,
) {
    let _gate = engine_section();
    let size = RT.with(|rt| {
        rt.borrow()
            .as_ref()
            .expect("spawn_fiber outside a fiber execution")
            .stack_size
    });
    let mut stack = checkout_stack(size);
    let job = Box::new(Job {
        tid,
        shared,
        closure,
    });
    arch::craft_initial_frame(&mut stack, Box::into_raw(job) as usize);
    RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("spawn_fiber outside a fiber execution");
        rt.fibers.push(FiberSlot {
            tid,
            stack,
            started: false,
            dead: false,
            abandoned: false,
            saved_depth: 0,
        });
    });
}

/// If the running fiber's canary died, report a stack overflow (honored
/// at the next scheduling decision). The switch itself proceeds: frames
/// *above* the canary are intact, so suspending and later unwinding this
/// fiber stays safe; its stack is filtered out at teardown.
fn canary_check_current() {
    let hit = RT.with(|rt| {
        let rt = rt.borrow();
        let rt = rt.as_ref().expect("canary check outside a fiber execution");
        let me = rt.current.expect("canary check from the host context");
        let mine = rt
            .fibers
            .iter()
            .find(|f| f.tid == me)
            .expect("fiber slot exists for the running fiber");
        if mine.stack.canary_ok() {
            None
        } else {
            Some((Arc::clone(&rt.shared), me))
        }
    });
    if let Some((shared, tid)) = hit {
        shared.post_bug(Bug::StackOverflow { tid });
    }
}

/// Transfer control from the running fiber to `target`, suspending the
/// caller until some fiber switches back. The per-thread context, the
/// caller's gate depth, and the handler target are all saved/re-staged
/// around the switch.
pub(crate) fn switch_to(target: Tid) {
    let _gate = engine_section();
    canary_check_current();
    begin_transfer();
    let (save, load) = RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("switch_to outside a fiber execution");
        let me = rt.current.expect("switch_to from the host context");
        debug_assert_ne!(me, target, "self-switch");
        let depth = ENGINE_DEPTH.get();
        let save = {
            let mine = slot_mut(rt, me);
            debug_assert!(!mine.dead);
            mine.saved_depth = depth;
            &mut *mine.stack.sp as *mut usize
        };
        install_ctx(Some(target), &rt.shared);
        rt.current = Some(target);
        let theirs = slot_mut(rt, target);
        debug_assert!(!theirs.dead, "switch to a dead fiber");
        theirs.started = true;
        ENGINE_DEPTH.set(theirs.saved_depth);
        point_handler_at(theirs);
        (save, *theirs.stack.sp)
    });
    unsafe { arch::switch_stacks(save, load) };
    // Resumed: whoever switched here restored our depth and pointed the
    // handlers at us; close the transfer window they opened.
    end_transfer();
}

/// Transfer control from the *host* (explorer) context into `target`.
/// Returns when control comes back to the host — via `exit_current(None)`
/// on a clean drain, or via a signal-handler rescue; the repair sequence
/// after the switch is idempotent across both return paths.
fn switch_from_host(target: Tid) {
    let depth0 = ENGINE_DEPTH.get();
    begin_transfer();
    let (save, load) = RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt
            .as_mut()
            .expect("switch_from_host outside a fiber execution");
        debug_assert!(rt.current.is_none(), "switch_from_host while a fiber runs");
        install_ctx(Some(target), &rt.shared);
        rt.current = Some(target);
        let load = {
            let theirs = slot_mut(rt, target);
            debug_assert!(!theirs.dead, "switch to a dead fiber");
            theirs.started = true;
            ENGINE_DEPTH.set(theirs.saved_depth);
            point_handler_at(theirs);
            *theirs.stack.sp
        };
        (&mut *rt.host_sp as *mut usize, load)
    });
    unsafe { arch::switch_stacks(save, load) };
    end_transfer();
    clear_handler_target();
    ENGINE_DEPTH.set(depth0);
}

/// Terminal transfer out of a finished fiber: to `next` when the runtime
/// names a successor, to the host context when the execution has drained.
/// Never returns — nothing switches back to a dead fiber.
fn exit_current(next: Option<Tid>) -> ! {
    let _gate = engine_section();
    canary_check_current();
    begin_transfer();
    let (save, load) = RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("exit_current outside a fiber execution");
        let me = rt.current.expect("exit_current from the host context");
        let save = {
            let mine = slot_mut(rt, me);
            mine.dead = true;
            // The save slot of a dead fiber is write-only scratch.
            &mut *mine.stack.sp as *mut usize
        };
        match next {
            Some(target) => {
                install_ctx(Some(target), &rt.shared);
                rt.current = Some(target);
                let theirs = slot_mut(rt, target);
                debug_assert!(!theirs.dead, "exit to a dead fiber");
                theirs.started = true;
                ENGINE_DEPTH.set(theirs.saved_depth);
                point_handler_at(theirs);
                (save, *theirs.stack.sp)
            }
            None => {
                install_ctx(None, &rt.shared);
                rt.current = None;
                // Gate/handler repair happens host-side, in
                // `switch_from_host`'s post-switch sequence.
                (save, *rt.host_sp)
            }
        }
    });
    unsafe { arch::switch_stacks(save, load) };
    unreachable!("a dead fiber was resumed");
}

fn slot_mut(rt: &mut FiberRt, tid: Tid) -> &mut FiberSlot {
    rt.fibers
        .iter_mut()
        .find(|f| f.tid == tid)
        .expect("fiber slot exists for every registered thread")
}

/// (Re)install the modeled-thread context for the fiber about to run.
fn install_ctx(tid: Option<Tid>, shared: &Arc<Shared>) {
    worker::set_fiber_ctx(tid.map(|tid| worker::Ctx {
        tid,
        shared: Arc::clone(shared),
    }));
}

/// Root of every fiber: run the modeled thread like a pooled worker
/// would, then hand control to whichever fiber the runtime says runs
/// next. `arg` is the boxed [`Job`] smuggled through the crafted initial
/// stack frame.
extern "C" fn fiber_entry(arg: usize) -> ! {
    // The switch that started this fiber left its transfer window open.
    end_transfer();
    let job = unsafe { Box::from_raw(arg as *mut Job) };
    let shared = Arc::clone(&job.shared);
    // run_job installs the context itself and catches every unwind
    // (normal return, DieMarker abort, real panic) before this frame.
    worker::run_job(*job);
    // Past this point the job's exit is fully accounted (`job_exited`
    // ran); a rescue landing in the remaining window would double-count
    // it. Shut the gate for the rest of this fiber's life — the guard is
    // deliberately leaked; the terminal switch discards this fiber's
    // gate state anyway.
    std::mem::forget(engine_section());
    let next = {
        let st = shared.inner.lock();
        crate::runtime::fiber_next(&st)
    };
    exit_current(next)
}

// ---------------------------------------------------------------------
// Raw Linux syscall surface (no libc crate: the repo's no-new-deps
// discipline). x86_64 Linux only; glibc and musl share these layouts.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_NONE: c_int = 0;
    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const MAP_NORESERVE: c_int = 0x4000;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    pub const SIGSEGV: c_int = 11;
    pub const SIGURG: c_int = 23;
    pub const SA_SIGINFO: c_int = 4;
    pub const SA_ONSTACK: c_int = 0x0800_0000;
    pub const SIG_DFL: usize = 0;
    pub const SIG_IGN: usize = 1;
    pub const SIG_UNBLOCK: c_int = 1;
    pub const SS_DISABLE: c_int = 2;

    /// `sigset_t`: 1024 bits on Linux glibc/musl.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SigSet(pub [u64; 16]);

    impl SigSet {
        pub const fn empty() -> Self {
            SigSet([0; 16])
        }
        pub fn add(&mut self, sig: c_int) {
            let bit = (sig - 1) as usize;
            self.0[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Userspace `struct sigaction`, x86_64 glibc/musl layout (identical
    /// on both): handler, mask, flags, restorer.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SigAction {
        pub handler: usize,
        pub mask: SigSet,
        pub flags: c_int,
        pub restorer: usize,
    }

    impl SigAction {
        pub const fn zeroed() -> Self {
            SigAction {
                handler: 0,
                mask: SigSet::empty(),
                flags: 0,
                restorer: 0,
            }
        }
    }

    /// `siginfo_t` prefix, x86_64 Linux: three ints, padding, then the
    /// fault address for SIGSEGV. 128 bytes total.
    #[repr(C)]
    pub struct SigInfo {
        pub si_signo: c_int,
        pub si_errno: c_int,
        pub si_code: c_int,
        _pad: c_int,
        pub si_addr: usize,
        _rest: [u64; 13],
    }

    /// `stack_t` for `sigaltstack`.
    #[repr(C)]
    pub struct StackT {
        pub ss_sp: usize,
        pub ss_flags: c_int,
        pub ss_size: usize,
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            off: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
        pub fn sigaction(sig: c_int, act: *const SigAction, old: *mut SigAction) -> c_int;
        pub fn sigaltstack(ss: *const StackT, old: *mut StackT) -> c_int;
        pub fn pthread_sigmask(how: c_int, set: *const SigSet, old: *mut SigSet) -> c_int;
        pub fn pthread_self() -> usize;
        pub fn pthread_kill(thread: usize, sig: c_int) -> c_int;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn abort() -> !;
    }
}

// ---------------------------------------------------------------------
// Signal handlers: SIGURG preemption + SIGSEGV guard-page conversion.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod signals {
    use super::*;
    use core::ffi::{c_int, c_void};
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    static INSTALL: Once = Once::new();
    /// The SIGSEGV disposition we displaced (usually Rust std's own
    /// stack-overflow reporter); non-guard faults chain to it.
    static mut PREV_SEGV: sys::SigAction = sys::SigAction::zeroed();

    thread_local! {
        static ALTSTACK_READY: Cell<bool> = const { Cell::new(false) };
    }

    /// Install the process-wide handlers (once) and make sure this OS
    /// thread has a signal altstack (SIGSEGV from a blown guard must not
    /// be delivered on the very stack that just ran out).
    pub(super) fn ensure() {
        INSTALL.call_once(install_handlers);
        ensure_altstack();
    }

    fn install_handlers() {
        unsafe {
            let urg = sys::SigAction {
                handler: sigurg_handler as *const () as usize,
                mask: sys::SigSet::empty(),
                flags: sys::SA_SIGINFO,
                restorer: 0,
            };
            sys::sigaction(sys::SIGURG, &urg, std::ptr::null_mut());
            let segv = sys::SigAction {
                handler: sigsegv_handler as *const () as usize,
                mask: sys::SigSet::empty(),
                flags: sys::SA_SIGINFO | sys::SA_ONSTACK,
                restorer: 0,
            };
            sys::sigaction(sys::SIGSEGV, &segv, std::ptr::addr_of_mut!(PREV_SEGV));
        }
    }

    fn ensure_altstack() {
        ALTSTACK_READY.with(|r| {
            if r.get() {
                return;
            }
            unsafe {
                let mut old = sys::StackT {
                    ss_sp: 0,
                    ss_flags: 0,
                    ss_size: 0,
                };
                sys::sigaltstack(std::ptr::null(), &mut old);
                if old.ss_sp == 0 || old.ss_flags & sys::SS_DISABLE != 0 {
                    // Rust std normally installs one per thread; this is
                    // the belt-and-braces path for threads where it
                    // didn't. Leaked once per such thread.
                    const ALT_SIZE: usize = 64 << 10;
                    let buf: &'static mut [u8] = Box::leak(vec![0u8; ALT_SIZE].into_boxed_slice());
                    let ss = sys::StackT {
                        ss_sp: buf.as_mut_ptr() as usize,
                        ss_flags: 0,
                        ss_size: ALT_SIZE,
                    };
                    sys::sigaltstack(&ss, std::ptr::null_mut());
                }
            }
            r.set(true);
        });
    }

    /// Re-open SIGURG/SIGSEGV after a rescue: the rescuing handler
    /// switched away instead of `sigreturn`ing, so the kernel still has
    /// the signal blocked on this thread.
    pub(super) fn unblock_after_rescue() {
        let mut set = sys::SigSet::empty();
        set.add(sys::SIGURG);
        set.add(sys::SIGSEGV);
        unsafe { sys::pthread_sigmask(sys::SIG_UNBLOCK, &set, std::ptr::null_mut()) };
    }

    /// Watchdog preemption. Runs on the wedged fiber's stack. Only
    /// touches const-init TLS cells and, if every gate condition passes,
    /// performs the rescue switch back to the host continuation. A
    /// refused delivery (gate closed, no fiber running, no request) just
    /// returns — the monitor re-sends every tick while the stall lasts.
    extern "C" fn sigurg_handler(_sig: c_int, _info: *mut sys::SigInfo, _uctx: *mut c_void) {
        let pp = PREEMPT_PTR.get();
        if pp == 0 {
            return;
        }
        let preempt = unsafe { &*(pp as *const watchdog::PreemptState) };
        if !preempt.requested.load(Ordering::Acquire) {
            return;
        }
        if ENGINE_DEPTH.get() != 0 || SWITCHING.get() {
            return;
        }
        let slot = CUR_SP_SLOT.get();
        if slot.is_null() {
            return;
        }
        preempt.requested.store(false, Ordering::Release);
        RESCUE.set(RESCUE_HANG);
        RESCUE_TID.set(CUR_TID.get());
        let host = unsafe { *HOST_SP_SLOT.get() };
        // Abandon the wedged fiber: save its (mid-handler) context into
        // its slot — never to be resumed — and adopt the host's.
        unsafe { arch::switch_stacks(slot, host) };
        unreachable!("an abandoned fiber was resumed");
    }

    /// Guard-page conversion. On-altstack. Faults outside the running
    /// fiber's guard region chain to the displaced handler (Rust std's
    /// overflow reporter, or the default action).
    extern "C" fn sigsegv_handler(sig: c_int, info: *mut sys::SigInfo, uctx: *mut c_void) {
        let addr = unsafe { (*info).si_addr };
        let (lo, hi) = (GUARD_LO.get(), GUARD_HI.get());
        if !(lo != 0 && addr >= lo && addr < hi) {
            unsafe { chain_prev(sig, info, uctx) };
            return;
        }
        if ENGINE_DEPTH.get() != 0 || SWITCHING.get() || CUR_SP_SLOT.get().is_null() {
            // Engine frames overflowed the fiber stack: the runtime's
            // own state cannot be trusted, so recovery is impossible.
            // Fail fast, async-signal-safely.
            let msg = b"cdsspec: fiber guard page hit inside engine internals; aborting\n";
            unsafe {
                sys::write(2, msg.as_ptr() as *const c_void, msg.len());
                sys::abort();
            }
        }
        RESCUE.set(RESCUE_OVERFLOW);
        RESCUE_TID.set(CUR_TID.get());
        let slot = CUR_SP_SLOT.get();
        let host = unsafe { *HOST_SP_SLOT.get() };
        unsafe { arch::switch_stacks(slot, host) };
        unreachable!("an abandoned fiber was resumed");
    }

    /// Invoke (or re-instate) the displaced SIGSEGV disposition for a
    /// fault that is not ours.
    unsafe fn chain_prev(sig: c_int, info: *mut sys::SigInfo, uctx: *mut c_void) {
        let prev = std::ptr::addr_of!(PREV_SEGV).read();
        match prev.handler {
            sys::SIG_DFL => {
                // Re-instate the default action and return: the faulting
                // instruction re-executes, re-faults, and now terminates
                // the process with the default disposition.
                sys::sigaction(sys::SIGSEGV, &prev, std::ptr::null_mut());
            }
            sys::SIG_IGN => {}
            h if prev.flags & sys::SA_SIGINFO != 0 => {
                let f: extern "C" fn(c_int, *mut sys::SigInfo, *mut c_void) =
                    std::mem::transmute(h);
                f(sig, info, uctx);
            }
            h => {
                let f: extern "C" fn(c_int) = std::mem::transmute(h);
                f(sig);
            }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod signals {
    /// No preemption machinery off Linux/x86_64: [`super::host_choice`]
    /// only picks fibers+watchdog where it exists, and canary checks are
    /// the (portable) overflow detection.
    pub(super) fn ensure() {}
    pub(super) fn unblock_after_rescue() {}
}

// ---------------------------------------------------------------------
// Watchdog monitor: one detached thread watching every armed host.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod watchdog {
    use super::*;
    use parking_lot::{Condvar, Mutex};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Once, OnceLock};
    use std::time::Instant;

    /// Shared between the monitor (producer) and the SIGURG handler
    /// (consumer) of one armed host.
    pub(super) struct PreemptState {
        /// Set by the monitor when the heartbeat stalls past the
        /// timeout; cleared by the handler when it performs the rescue
        /// (and by the monitor when progress resumes). Re-armed and
        /// re-signalled every tick while the stall lasts, so a delivery
        /// that lands with the preemption gate closed simply retries.
        pub requested: AtomicBool,
    }

    struct Entry {
        /// pthread handle of the explorer OS thread hosting the fibers.
        /// Only used (`pthread_kill`) while the entry is registered —
        /// `WatchGuard::drop` removes the entry under the registry lock
        /// before the host's `run_execution` returns, so the monitor can
        /// never signal a handle that may have been reclaimed.
        host: usize,
        preempt: Arc<PreemptState>,
        shared: Arc<Shared>,
        timeout: Duration,
        last_progress: u64,
        last_change: Instant,
    }

    struct Registry {
        entries: Mutex<Vec<Entry>>,
        wake: Condvar,
    }

    fn registry() -> &'static Registry {
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(|| Registry {
            entries: Mutex::new(Vec::new()),
            wake: Condvar::new(),
        })
    }

    /// De-registration token; dropping it disarms the watchdog for this
    /// execution.
    pub(super) struct WatchGuard {
        preempt: Arc<PreemptState>,
    }

    impl Drop for WatchGuard {
        fn drop(&mut self) {
            // Order matters: detach the handler's pointer before this
            // guard's `Arc` (the pointee's co-owner) can go away, then
            // remove the entry under the registry lock so the monitor
            // never signals a de-registered host.
            PREEMPT_PTR.set(0);
            let mut entries = registry().entries.lock();
            entries.retain(|e| !Arc::ptr_eq(&e.preempt, &self.preempt));
        }
    }

    /// Register the calling (host) thread with the monitor for the span
    /// of one execution. `None` timeout ⇒ no watchdog.
    pub(super) fn arm(shared: &Arc<Shared>, timeout: Option<Duration>) -> Option<WatchGuard> {
        let timeout = timeout?;
        // The monitor is spawned outside `registry()`'s initializer: it
        // calls `registry()` itself, and `OnceLock::get_or_init`
        // re-entry would deadlock.
        static MONITOR: Once = Once::new();
        MONITOR.call_once(|| {
            std::thread::Builder::new()
                .name("cdsspec-watchdog".into())
                .spawn(monitor_loop)
                .expect("failed to spawn the fiber watchdog monitor");
        });
        // Arm runs once per *execution* — a hot path at ~10^5
        // executions/sec — so the per-host `PreemptState` is cached in a
        // thread-local and the monitor is never explicitly woken: it
        // samples the registry on its own tick, which merely delays the
        // first look at a fresh entry by up to one tick (≤ 250 ms,
        // noise against any useful hang timeout).
        thread_local! {
            static CACHED: RefCell<Option<Arc<PreemptState>>> = const { RefCell::new(None) };
        }
        let preempt = CACHED.with(|c| {
            Arc::clone(c.borrow_mut().get_or_insert_with(|| {
                Arc::new(PreemptState {
                    requested: AtomicBool::new(false),
                })
            }))
        });
        preempt.requested.store(false, Ordering::Release);
        PREEMPT_PTR.set(Arc::as_ptr(&preempt) as usize);
        registry().entries.lock().push(Entry {
            host: unsafe { sys::pthread_self() },
            preempt: Arc::clone(&preempt),
            shared: Arc::clone(shared),
            timeout,
            last_progress: shared.progress.load(Ordering::Relaxed),
            last_change: Instant::now(),
        });
        Some(WatchGuard { preempt })
    }

    fn monitor_loop() {
        let reg = registry();
        let mut entries = reg.entries.lock();
        loop {
            if entries.is_empty() {
                // Nobody notifies this condvar (see `arm`): the wait is
                // a lock-released sleep, and an idle monitor costs four
                // wakeups a second.
                reg.wake.wait_for(&mut entries, Duration::from_millis(250));
                continue;
            }
            let mut tick = Duration::from_millis(250);
            for e in entries.iter_mut() {
                let slice =
                    (e.timeout / 8).clamp(Duration::from_millis(5), Duration::from_millis(250));
                tick = tick.min(slice);
                let progress = e.shared.progress.load(Ordering::Relaxed);
                if progress != e.last_progress {
                    e.last_progress = progress;
                    e.last_change = Instant::now();
                    e.preempt.requested.store(false, Ordering::Release);
                } else if e.last_change.elapsed() >= e.timeout {
                    e.preempt.requested.store(true, Ordering::Release);
                    unsafe { sys::pthread_kill(e.host, sys::SIGURG) };
                }
            }
            reg.wake.wait_for(&mut entries, tick);
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod watchdog {
    use super::Shared;
    use std::sync::Arc;
    use std::time::Duration;

    pub(super) struct WatchGuard;

    pub(super) fn arm(_shared: &Arc<Shared>, timeout: Option<Duration>) -> Option<WatchGuard> {
        debug_assert!(
            timeout.is_none(),
            "host_choice only picks watchdogged fiber hosting where preemption is implemented"
        );
        None
    }
}

/// The machine-dependent pieces: a System-V x86_64 stack switch and the
/// initial-frame layout that makes [`arch::switch_stacks`] "return" into
/// [`fiber_entry`] on a fresh stack.
#[cfg(all(target_arch = "x86_64", unix))]
mod arch {
    use super::{fiber_entry, Stack};

    /// Save the callee-saved register state on the current stack, park the
    /// resulting stack pointer in `*save_sp`, adopt `load_sp`, restore its
    /// register state, and continue where that context left off.
    ///
    /// Caller-saved registers are covered by the `extern "C"` call
    /// convention; x87/SSE control words are not switched (nothing in
    /// this process changes them).
    ///
    /// # Safety
    /// `load_sp` must be a stack pointer previously produced by this
    /// function or by [`craft_initial_frame`], on a live stack no other
    /// context is using.
    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn switch_stacks(save_sp: *mut usize, load_sp: usize) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, rsi",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// Entered via the `ret` of [`switch_stacks`] on a fresh stack: moves
    /// the smuggled argument into place and calls [`fiber_entry`], which
    /// never returns.
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_trampoline() {
        core::arch::naked_asm!(
            "pop rdi",
            "call {entry}",
            "ud2",
            entry = sym fiber_entry,
        )
    }

    /// Lay out a fresh stack so that switching to it enters
    /// [`fiber_trampoline`] with `arg` on top: from the aligned top
    /// downward, `arg`, the trampoline address, then six zeroed slots for
    /// the callee-saved registers [`switch_stacks`] will pop. The
    /// alignment works out so `fiber_entry` sees the ABI-required
    /// `rsp % 16 == 8` at its entry.
    pub(super) fn craft_initial_frame(stack: &mut Stack, arg: usize) {
        let base = stack.mem.lo_mut() as usize;
        let top = (base + stack.size()) & !15;
        unsafe {
            let mut p = top as *mut usize;
            p = p.sub(1);
            *p = arg;
            p = p.sub(1);
            *p = fiber_trampoline as *const () as usize;
            for _ in 0..6 {
                p = p.sub(1);
                *p = 0;
            }
            *stack.sp = p as usize;
        }
    }
}

#[cfg(all(test, target_arch = "x86_64", unix))]
mod switch_tests {
    use super::*;

    thread_local! {
        static HOST_SP: Cell<usize> = const { Cell::new(0) };
        static SIDE_SP: Cell<usize> = const { Cell::new(0) };
        static TRACE_LOG: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    extern "C" fn side_entry(arg: usize) -> ! {
        TRACE_LOG.with(|l| l.borrow_mut().push(arg as u32));
        // Bounce back and forth twice, then exit for good.
        for i in 0..2u32 {
            let mut sp = 0usize;
            let host = HOST_SP.with(|h| unsafe { *(h.get() as *const usize) });
            SIDE_SP.with(|s| s.set(&mut sp as *mut usize as usize));
            unsafe { arch::switch_stacks(&mut sp, host) };
            TRACE_LOG.with(|l| l.borrow_mut().push(100 + i));
        }
        let host = HOST_SP.with(|h| unsafe { *(h.get() as *const usize) });
        let mut scratch = 0usize;
        unsafe { arch::switch_stacks(&mut scratch, host) };
        unreachable!("resumed a finished test fiber");
    }

    /// Drives the raw primitive without the runtime: host -> fiber ->
    /// host ... verifying control lands where expected with data intact.
    #[test]
    fn raw_switch_round_trips() {
        let mut stack = Stack::new(DEFAULT_STACK_SIZE);
        // Abuse the craft path with `side_entry` via a stand-in: craft
        // pushes `fiber_entry`, so hand-roll the same frame here.
        let base = stack.mem.lo_mut() as usize;
        let top = (base + stack.size()) & !15;
        unsafe {
            let mut p = top as *mut usize;
            p = p.sub(1);
            *p = 7; // arg
            p = p.sub(1);
            *p = test_trampoline as *const () as usize;
            for _ in 0..6 {
                p = p.sub(1);
                *p = 0;
            }
            *stack.sp = p as usize;
        }
        let mut host_sp = 0usize;
        for step in 0..3 {
            HOST_SP.with(|h| h.set(&mut host_sp as *mut usize as usize));
            let load = if step == 0 {
                *stack.sp
            } else {
                SIDE_SP.with(|s| unsafe { *(s.get() as *const usize) })
            };
            unsafe { arch::switch_stacks(&mut host_sp, load) };
            TRACE_LOG.with(|l| l.borrow_mut().push(200 + step));
        }
        let log = TRACE_LOG.with(|l| l.borrow().clone());
        assert_eq!(log, vec![7, 200, 100, 201, 101, 202]);
    }

    #[unsafe(naked)]
    unsafe extern "C" fn test_trampoline() {
        core::arch::naked_asm!(
            "pop rdi",
            "call {entry}",
            "ud2",
            entry = sym side_entry,
        )
    }
}

#[cfg(test)]
mod host_choice_tests {
    use super::*;

    #[test]
    fn default_config_rides_fibers_where_preemption_exists() {
        // Pin `fiber_hosting` explicitly so the test holds even when the
        // suite itself runs under `CDSSPEC_FIBER_HOSTING=0`.
        let c = Config {
            fiber_hosting: true,
            ..Config::default()
        };
        assert!(c.hang_timeout.is_some(), "default keeps the watchdog");
        if PREEMPT_SUPPORTED {
            assert!(
                enabled_here(&c),
                "the watchdog must no longer force the OS-thread pool"
            );
        }
    }

    #[test]
    fn fiber_hosting_false_forces_the_reference_host() {
        let mut c = Config {
            fiber_hosting: false,
            ..Config::default()
        };
        assert!(!enabled_here(&c));
        assert_eq!(host_choice(&c), HostChoice::Pool);
        c.hang_timeout = None;
        assert_eq!(host_choice(&c), HostChoice::Inline);
    }

    #[test]
    fn watchdog_free_configs_keep_fibers_on_all_supported_targets() {
        let c = Config {
            hang_timeout: None,
            fiber_hosting: true,
            ..Config::default()
        };
        assert_eq!(enabled_here(&c), SUPPORTED);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;

    #[test]
    fn fresh_stack_has_armed_canary() {
        let s = Stack::new(DEFAULT_STACK_SIZE);
        assert!(s.canary_ok());
    }

    #[test]
    fn smashed_canary_is_detected() {
        let mut s = Stack::new(DEFAULT_STACK_SIZE);
        unsafe { s.mem.lo_mut().write(0xAB) };
        assert!(!s.canary_ok());
    }

    #[test]
    fn checkout_rearms_pooled_canary() {
        // A contaminated stack returned to the pool must come back out
        // sanitized (or not at all).
        let mut s = Stack::new(DEFAULT_STACK_SIZE);
        unsafe { s.mem.lo_mut().add(8).write(0xCD) };
        assert!(!s.canary_ok());
        STACK_POOL.with(|p| p.borrow_mut().push(s));
        let out = checkout_stack(DEFAULT_STACK_SIZE);
        assert!(out.canary_ok(), "checkout must re-arm the canary");
        poison_pool();
    }

    #[test]
    fn poisoned_pool_hands_out_fresh_stacks_only() {
        STACK_POOL.with(|p| p.borrow_mut().push(Stack::new(DEFAULT_STACK_SIZE)));
        STACK_POOL.with(|p| p.borrow_mut().push(Stack::new(DEFAULT_STACK_SIZE)));
        poison_pool();
        assert_eq!(pool_size(), 0, "poisoning empties the pool");
        let s = checkout_stack(DEFAULT_STACK_SIZE);
        assert!(s.canary_ok());
    }

    #[test]
    fn effective_size_rounds_and_clamps() {
        assert_eq!(effective_stack_size(0), DEFAULT_STACK_SIZE);
        assert_eq!(effective_stack_size(1), MIN_STACK_SIZE);
        assert_eq!(effective_stack_size(MIN_STACK_SIZE), MIN_STACK_SIZE);
        assert_eq!(
            effective_stack_size(MIN_STACK_SIZE + 1),
            MIN_STACK_SIZE + PAGE
        );
        assert_eq!(effective_stack_size(256 << 10), 256 << 10);
    }

    #[test]
    fn custom_sized_stacks_keep_guard_and_canary() {
        // The guard/canary machinery must hold at non-default sizes.
        let sz = effective_stack_size(256 << 10);
        let mut s = Stack::new(sz);
        assert_eq!(s.size(), sz);
        assert!(s.canary_ok());
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if let StackMem::Mapped { .. } = &s.mem {
            let (lo, hi) = s.guard_range();
            assert_eq!(hi - lo, GUARD_SIZE);
            assert_eq!(hi, s.mem.lo() as usize, "guard sits just below the stack");
        }
        assert!(s.reverify(), "reverify holds at custom sizes");
    }

    #[test]
    fn checkout_is_keyed_by_size() {
        poison_pool();
        let small = effective_stack_size(128 << 10);
        STACK_POOL.with(|p| p.borrow_mut().push(Stack::new(small)));
        // Asking for the default size must not hand out the small stack.
        let big = checkout_stack(DEFAULT_STACK_SIZE);
        assert_eq!(big.size(), DEFAULT_STACK_SIZE);
        assert_eq!(pool_size(), 1, "the small stack stays pooled");
        let reused = checkout_stack(small);
        assert_eq!(reused.size(), small);
        assert_eq!(pool_size(), 0, "size match reuses the pooled stack");
        poison_pool();
    }

    #[test]
    fn engine_section_depth_balances() {
        assert_eq!(ENGINE_DEPTH.get(), 0);
        {
            let _a = engine_section();
            assert_eq!(ENGINE_DEPTH.get(), 1);
            {
                let _b = engine_section();
                assert_eq!(ENGINE_DEPTH.get(), 2);
            }
            assert_eq!(ENGINE_DEPTH.get(), 1);
        }
        assert_eq!(ENGINE_DEPTH.get(), 0);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn mapped_stacks_have_guard_regions() {
        let s = Stack::new(DEFAULT_STACK_SIZE);
        match &s.mem {
            StackMem::Mapped { .. } => {
                let (lo, hi) = s.guard_range();
                assert_ne!(lo, 0);
                assert_eq!(hi - lo, GUARD_SIZE);
            }
            StackMem::Heap(_) => {
                // mmap failed (resource limits); the fallback is legal,
                // just assert its shape.
                assert_eq!(s.guard_range(), (0, 0));
            }
        }
    }
}

/// Stub for targets without a stack-switch implementation: fiber hosting
/// reports unsupported ([`SUPPORTED`] is `false`), so none of these can
/// be reached.
#[cfg(not(all(target_arch = "x86_64", unix)))]
mod arch {
    use super::Stack;

    pub(super) unsafe extern "C" fn switch_stacks(_save_sp: *mut usize, _load_sp: usize) {
        unreachable!("fiber hosting is not supported on this target");
    }

    pub(super) fn craft_initial_frame(_stack: &mut Stack, _arg: usize) {
        unreachable!("fiber hosting is not supported on this target");
    }
}
