//! Userspace-fiber execution: every modeled thread of one execution runs
//! on the *same* OS thread, on its own heap-allocated stack, and control
//! moves between them with a ~20-instruction stack switch instead of a
//! futex round trip.
//!
//! # Why
//!
//! The token-passing runtime (see [`crate::runtime`]) is strictly
//! sequential: exactly one modeled thread executes user code at any
//! moment, and every visible operation hands the token to the next thread
//! the DFS script selects. Hosting modeled threads on pooled OS threads
//! therefore buys no parallelism — it only pays, per token transfer, a
//! condvar wake plus a park: two kernel entries and a scheduler pass. On
//! the single-core CI hosts this is *half the wall clock* of a figure-7
//! exploration (`sys` ≈ `user` in `time`'s output). CDSChecker itself
//! runs modeled threads on `ucontext` fibers for exactly this reason.
//!
//! # How
//!
//! [`run_execution`] hosts one execution: it creates a fiber for the main
//! modeled thread and switches to it; [`crate::runtime::spawn_thread`]
//! creates further fibers in place of pool dispatches. A fiber that must
//! wait for its reply picks the next runnable fiber itself (the thread
//! whose reply the scheduler just deposited, or a spawned-but-not-yet-run
//! fiber holding the running token) and switches straight to it — the
//! scheduling *decisions* stay in [`crate::runtime::schedule`], byte for
//! byte the same as under OS-thread hosting; only the transfer mechanism
//! changes. The equivalence is pinned by `tests/fiber_equivalence.rs`.
//!
//! Fiber hosting is used when three conditions hold (see
//! [`enabled_here`]): the target is x86_64-unix (the stack switch is
//! hand-written System-V assembly), no hang watchdog is configured, and
//! the explorer is not itself a modeled thread. With a watchdog the
//! explorer must stay free to poll — a wedged modeled thread would wedge
//! the fiber host with it — so those configs keep the OS-thread pool;
//! `Config::default` keeps the watchdog, so the test suites exercise both
//! hosts.
//!
//! # Safety notes
//!
//! * Stacks are plain heap buffers ([`STACK_SIZE`] each, pooled across
//!   executions) with **no guard pages**: modeled closures that recurse
//!   kilobytes deep would silently corrupt the heap. Unit-test closures
//!   are shallow by construction; the OS-thread host remains available for
//!   anything else.
//! * Panics never unwind across a stack switch: each fiber's unwinds
//!   (including the routine [`crate::worker::DieMarker`] aborts) are
//!   caught by `catch_unwind` at the fiber's own root frame
//!   ([`crate::worker::run_job`]), above the assembly trampoline.
//! * The per-thread context used by the modeled-code primitives is
//!   re-installed on every switch, so `with_ctx` always sees the fiber
//!   that is actually running.
//! * A locked [`Shared::inner`] guard is never held across a switch —
//!   every transfer site drops the guard first and relocks on resume.

use std::cell::RefCell;
use std::mem::MaybeUninit;
use std::sync::Arc;

use cdsspec_c11::Tid;

use crate::config::Config;
use crate::runtime::Shared;
use crate::worker::{self, Job};

/// Is fiber hosting implemented for this target?
pub(crate) const SUPPORTED: bool = cfg!(all(target_arch = "x86_64", unix));

/// Should this execution run on fibers? See the module docs for why each
/// condition exists.
pub(crate) fn enabled_here(config: &Config) -> bool {
    SUPPORTED && config.hang_timeout.is_none() && !worker::in_model()
}

/// Fiber stack size. Heap-allocated, untouched pages stay uncommitted;
/// generous because modeled closures may nest a whole inner exploration.
const STACK_SIZE: usize = 1 << 20;

/// A reusable fiber stack plus the slot its suspended stack pointer is
/// saved in. The slot is boxed so its address survives growth of the
/// per-execution fiber table.
struct Stack {
    mem: Box<[MaybeUninit<u8>]>,
    /// Saved stack pointer while the fiber is suspended.
    sp: Box<usize>,
}

impl Stack {
    fn new() -> Self {
        // Uninitialized on purpose: zeroing would commit every page of
        // every stack up front.
        Stack {
            mem: Box::new_uninit_slice(STACK_SIZE),
            sp: Box::new(0),
        }
    }
}

/// One modeled thread's fiber within the current execution.
struct FiberSlot {
    tid: Tid,
    stack: Stack,
    /// Has the fiber run at least once? Unstarted fibers hold the running
    /// token (they are "executing user code" as far as the scheduler's
    /// accounting goes) and must be given control before the token count
    /// can reach zero.
    started: bool,
    /// The fiber's root returned or unwound; its stack may be reclaimed
    /// at teardown and control must never transfer to it again.
    dead: bool,
}

/// Per-OS-thread fiber host state, alive for the span of one execution.
struct FiberRt {
    shared: Arc<Shared>,
    fibers: Vec<FiberSlot>,
    /// Saved host (explorer) context; the last dying fiber returns here.
    host_sp: Box<usize>,
    /// Currently running fiber, `None` while the host itself runs.
    current: Option<Tid>,
}

thread_local! {
    static RT: RefCell<Option<FiberRt>> = const { RefCell::new(None) };
    /// Stacks recycled across the executions hosted by this OS thread.
    static STACK_POOL: RefCell<Vec<Stack>> = const { RefCell::new(Vec::new()) };
}

/// Is a fiber-hosted execution in progress on this OS thread?
pub(crate) fn active() -> bool {
    RT.with(|rt| rt.borrow().is_some())
}

/// The lowest-tid fiber that has never run. Token accounting (see
/// [`FiberSlot::started`]) guarantees one exists whenever the running
/// count is nonzero and the current fiber has posted its operation.
pub(crate) fn first_unstarted() -> Option<Tid> {
    RT.with(|rt| {
        rt.borrow()
            .as_ref()
            .expect("first_unstarted outside a fiber execution")
            .fibers
            .iter()
            .find(|f| !f.started && !f.dead)
            .map(|f| f.tid)
    })
}

/// Host one execution: run `closure` as the main modeled thread and every
/// spawned thread on fibers of the calling OS thread. Returns when the
/// execution has fully drained (outcome decided, every fiber dead).
pub(crate) fn run_execution(shared: &Arc<Shared>, closure: Box<dyn FnOnce() + Send + 'static>) {
    RT.with(|rt| {
        let prev = rt.borrow_mut().replace(FiberRt {
            shared: Arc::clone(shared),
            fibers: Vec::new(),
            host_sp: Box::new(0),
            current: None,
        });
        debug_assert!(prev.is_none(), "nested fiber executions on one thread");
    });
    spawn_fiber(Tid::MAIN, Arc::clone(shared), closure);

    // Switch host -> main. Control returns here only from the last dying
    // fiber (`exit_current` with no runnable successor).
    let (save, load) = RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("fiber rt just installed");
        rt.current = Some(Tid::MAIN);
        rt.fibers[0].started = true;
        install_ctx(Some(Tid::MAIN), &rt.shared);
        (&mut *rt.host_sp as *mut usize, *rt.fibers[0].stack.sp)
    });
    unsafe { arch::switch_stacks(save, load) };

    // Teardown: reclaim the stacks. If a fiber is somehow still live the
    // runtime invariant was broken — leak its state rather than reuse a
    // stack that might be referenced (mirrors the wedged-job leak of the
    // OS-thread host).
    let rt = RT
        .with(|rt| rt.borrow_mut().take())
        .expect("fiber rt present");
    debug_assert!(rt.current.is_none());
    if rt.fibers.iter().all(|f| f.dead) {
        STACK_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            pool.extend(rt.fibers.into_iter().map(|f| f.stack));
        });
    }
}

/// Create (but do not run) the fiber for modeled thread `tid`. Called by
/// [`crate::runtime::spawn_thread`] in place of a pool dispatch; the new
/// fiber holds the running token until its first visible operation.
pub(crate) fn spawn_fiber(
    tid: Tid,
    shared: Arc<Shared>,
    closure: Box<dyn FnOnce() + Send + 'static>,
) {
    let mut stack = STACK_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_else(Stack::new);
    let job = Box::new(Job {
        tid,
        shared,
        closure,
    });
    arch::craft_initial_frame(&mut stack, Box::into_raw(job) as usize);
    RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("spawn_fiber outside a fiber execution");
        rt.fibers.push(FiberSlot {
            tid,
            stack,
            started: false,
            dead: false,
        });
    });
}

/// Transfer control from the running fiber to `target`, suspending the
/// caller until some fiber switches back. The per-thread context is
/// re-installed for `target` before the switch.
pub(crate) fn switch_to(target: Tid) {
    let (save, load) = RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("switch_to outside a fiber execution");
        let me = rt.current.expect("switch_to from the host context");
        debug_assert_ne!(me, target, "self-switch");
        let save = {
            let mine = slot_mut(rt, me);
            debug_assert!(!mine.dead);
            &mut *mine.stack.sp as *mut usize
        };
        install_ctx(Some(target), &rt.shared);
        rt.current = Some(target);
        let theirs = slot_mut(rt, target);
        debug_assert!(!theirs.dead, "switch to a dead fiber");
        theirs.started = true;
        (save, *theirs.stack.sp)
    });
    unsafe { arch::switch_stacks(save, load) };
}

/// Terminal transfer out of a finished fiber: to `next` when the runtime
/// names a successor, to the host context when the execution has drained.
/// Never returns — nothing switches back to a dead fiber.
fn exit_current(next: Option<Tid>) -> ! {
    let (save, load) = RT.with(|rt| {
        let mut rt = rt.borrow_mut();
        let rt = rt.as_mut().expect("exit_current outside a fiber execution");
        let me = rt.current.expect("exit_current from the host context");
        let save = {
            let mine = slot_mut(rt, me);
            mine.dead = true;
            // The save slot of a dead fiber is write-only scratch.
            &mut *mine.stack.sp as *mut usize
        };
        match next {
            Some(target) => {
                install_ctx(Some(target), &rt.shared);
                rt.current = Some(target);
                let theirs = slot_mut(rt, target);
                debug_assert!(!theirs.dead, "exit to a dead fiber");
                theirs.started = true;
                (save, *theirs.stack.sp)
            }
            None => {
                install_ctx(None, &rt.shared);
                rt.current = None;
                (save, *rt.host_sp)
            }
        }
    });
    unsafe { arch::switch_stacks(save, load) };
    unreachable!("a dead fiber was resumed");
}

fn slot_mut(rt: &mut FiberRt, tid: Tid) -> &mut FiberSlot {
    rt.fibers
        .iter_mut()
        .find(|f| f.tid == tid)
        .expect("fiber slot exists for every registered thread")
}

/// (Re)install the modeled-thread context for the fiber about to run.
fn install_ctx(tid: Option<Tid>, shared: &Arc<Shared>) {
    worker::set_fiber_ctx(tid.map(|tid| worker::Ctx {
        tid,
        shared: Arc::clone(shared),
    }));
}

/// Root of every fiber: run the modeled thread like a pooled worker
/// would, then hand control to whichever fiber the runtime says runs
/// next. `arg` is the boxed [`Job`] smuggled through the crafted initial
/// stack frame.
extern "C" fn fiber_entry(arg: usize) -> ! {
    let job = unsafe { Box::from_raw(arg as *mut Job) };
    let shared = Arc::clone(&job.shared);
    // run_job installs the context itself and catches every unwind
    // (normal return, DieMarker abort, real panic) before this frame.
    worker::run_job(*job);
    let next = {
        let st = shared.inner.lock();
        crate::runtime::fiber_next(&st)
    };
    exit_current(next)
}

/// The machine-dependent pieces: a System-V x86_64 stack switch and the
/// initial-frame layout that makes [`arch::switch_stacks`] "return" into
/// [`fiber_entry`] on a fresh stack.
#[cfg(all(target_arch = "x86_64", unix))]
mod arch {
    use super::{fiber_entry, Stack, STACK_SIZE};

    /// Save the callee-saved register state on the current stack, park the
    /// resulting stack pointer in `*save_sp`, adopt `load_sp`, restore its
    /// register state, and continue where that context left off.
    ///
    /// Caller-saved registers are covered by the `extern "C"` call
    /// convention; x87/SSE control words are not switched (nothing in
    /// this process changes them).
    ///
    /// # Safety
    /// `load_sp` must be a stack pointer previously produced by this
    /// function or by [`craft_initial_frame`], on a live stack no other
    /// context is using.
    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn switch_stacks(save_sp: *mut usize, load_sp: usize) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, rsi",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// Entered via the `ret` of [`switch_stacks`] on a fresh stack: moves
    /// the smuggled argument into place and calls [`fiber_entry`], which
    /// never returns.
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_trampoline() {
        core::arch::naked_asm!(
            "pop rdi",
            "call {entry}",
            "ud2",
            entry = sym fiber_entry,
        )
    }

    /// Lay out a fresh stack so that switching to it enters
    /// [`fiber_trampoline`] with `arg` on top: from the aligned top
    /// downward, `arg`, the trampoline address, then six zeroed slots for
    /// the callee-saved registers [`switch_stacks`] will pop. The
    /// alignment works out so `fiber_entry` sees the ABI-required
    /// `rsp % 16 == 8` at its entry.
    pub(super) fn craft_initial_frame(stack: &mut Stack, arg: usize) {
        let base = stack.mem.as_mut_ptr() as usize;
        let top = (base + STACK_SIZE) & !15;
        unsafe {
            let mut p = top as *mut usize;
            p = p.sub(1);
            *p = arg;
            p = p.sub(1);
            *p = fiber_trampoline as *const () as usize;
            for _ in 0..6 {
                p = p.sub(1);
                *p = 0;
            }
            *stack.sp = p as usize;
        }
    }
}

#[cfg(all(test, target_arch = "x86_64", unix))]
mod switch_tests {
    use super::*;
    use std::cell::Cell;

    thread_local! {
        static HOST_SP: Cell<usize> = const { Cell::new(0) };
        static SIDE_SP: Cell<usize> = const { Cell::new(0) };
        static TRACE_LOG: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    extern "C" fn side_entry(arg: usize) -> ! {
        TRACE_LOG.with(|l| l.borrow_mut().push(arg as u32));
        // Bounce back and forth twice, then exit for good.
        for i in 0..2u32 {
            let mut sp = 0usize;
            let host = HOST_SP.with(|h| unsafe { *(h.get() as *const usize) });
            SIDE_SP.with(|s| s.set(&mut sp as *mut usize as usize));
            unsafe { arch::switch_stacks(&mut sp, host) };
            TRACE_LOG.with(|l| l.borrow_mut().push(100 + i));
        }
        let host = HOST_SP.with(|h| unsafe { *(h.get() as *const usize) });
        let mut scratch = 0usize;
        unsafe { arch::switch_stacks(&mut scratch, host) };
        unreachable!("resumed a finished test fiber");
    }

    /// Drives the raw primitive without the runtime: host -> fiber ->
    /// host ... verifying control lands where expected with data intact.
    #[test]
    fn raw_switch_round_trips() {
        let mut stack = Stack::new();
        // Abuse the craft path with `side_entry` via a stand-in: craft
        // pushes `fiber_entry`, so hand-roll the same frame here.
        let base = stack.mem.as_mut_ptr() as usize;
        let top = (base + STACK_SIZE) & !15;
        unsafe {
            let mut p = top as *mut usize;
            p = p.sub(1);
            *p = 7; // arg
            p = p.sub(1);
            *p = test_trampoline as *const () as usize;
            for _ in 0..6 {
                p = p.sub(1);
                *p = 0;
            }
            *stack.sp = p as usize;
        }
        let mut host_sp = 0usize;
        for step in 0..3 {
            HOST_SP.with(|h| h.set(&mut host_sp as *mut usize as usize));
            let load = if step == 0 {
                *stack.sp
            } else {
                SIDE_SP.with(|s| unsafe { *(s.get() as *const usize) })
            };
            unsafe { arch::switch_stacks(&mut host_sp, load) };
            TRACE_LOG.with(|l| l.borrow_mut().push(200 + step));
        }
        let log = TRACE_LOG.with(|l| l.borrow().clone());
        assert_eq!(log, vec![7, 200, 100, 201, 101, 202]);
    }

    #[unsafe(naked)]
    unsafe extern "C" fn test_trampoline() {
        core::arch::naked_asm!(
            "pop rdi",
            "call {entry}",
            "ud2",
            entry = sym side_entry,
        )
    }
}

/// Stub for targets without a stack-switch implementation: fiber hosting
/// reports unsupported ([`SUPPORTED`] is `false`), so none of these can
/// be reached.
#[cfg(not(all(target_arch = "x86_64", unix)))]
mod arch {
    use super::Stack;

    pub(super) unsafe extern "C" fn switch_stacks(_save_sp: *mut usize, _load_sp: usize) {
        unreachable!("fiber hosting is not supported on this target");
    }

    pub(super) fn craft_initial_frame(_stack: &mut Stack, _arg: usize) {
        unreachable!("fiber hosting is not supported on this target");
    }
}
