//! Exploration outcomes: bug kinds, found-bug records, aggregate stats,
//! stop reasons, and serializable checkpoints for resumable campaigns.

use cdsspec_c11::{DataId, LocId, Tid};
use std::collections::BTreeSet;
use std::time::Duration;

/// A defect detected during exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bug {
    /// Two unordered accesses to a non-atomic location, at least one a
    /// write (CDSChecker built-in check).
    DataRace {
        /// The racy non-atomic cell.
        loc: DataId,
        /// Thread of the earlier access.
        first: Tid,
        /// Thread of the unordered later access.
        second: Tid,
        /// Whether the later access was a write.
        second_is_write: bool,
    },
    /// An atomic load could observe the location before any initialization
    /// (CDSChecker built-in check).
    UninitLoad {
        /// The atomic location read.
        loc: LocId,
        /// The reading thread.
        tid: Tid,
    },
    /// No thread can make progress but some have not finished.
    Deadlock {
        /// The threads still blocked when progress stopped.
        blocked: Vec<Tid>,
    },
    /// A modeled thread panicked (includes `mc_assert!` failures).
    UserPanic {
        /// The panicking thread.
        tid: Tid,
        /// Rendered panic payload.
        message: String,
    },
    /// A plugin (e.g. the CDSSpec checker) rejected the execution.
    Plugin {
        /// The rejecting plugin's display name.
        plugin: &'static str,
        /// The plugin's diagnostic.
        message: String,
    },
    /// The offline axiom validator rejected a trace the online checker
    /// produced — an internal consistency failure, never expected.
    AxiomViolation {
        /// The validator's diagnostic.
        message: String,
    },
    /// An execution made no scheduling progress for `stalled_ms`
    /// milliseconds and was aborted by the watchdog — the modeled code
    /// wedged its host (e.g. an unannotated infinite non-atomic loop).
    InternalHang {
        /// The configured stall threshold that was exceeded. The
        /// *configured* value, not the measured wall-clock stall, so the
        /// rendered message — the bug dedup key — is deterministic.
        stalled_ms: u64,
        /// The modeled thread last granted the scheduling token before
        /// progress stopped. Under fiber hosting this is exactly the
        /// wedged fiber; under the OS-thread pool it is the runtime's
        /// best estimate (several threads may hold running tokens).
        /// `None` only for hangs reported before any thread ran.
        tid: Option<Tid>,
        /// Short tag of the last visible operation committed before the
        /// stall (`event-id:kind@thread`), when any event was committed.
        last_op: Option<String>,
    },
    /// A modeled closure overran its fiber stack. On Linux the `PROT_NONE`
    /// guard region below the stack converts the overflow into this clean
    /// report; elsewhere a canary word checked at every fiber switch
    /// catches it (best-effort — the guard page is the hard stop).
    StackOverflow {
        /// The overflowing modeled thread.
        tid: Tid,
    },
    /// The exploration engine itself failed (e.g. the OS thread pool could
    /// not keep workers alive after bounded respawn attempts). Not a
    /// defect in the modeled code: the run is incomplete and stops with
    /// [`StopReason::Errored`].
    EngineFailure {
        /// What the engine could not do.
        message: String,
    },
    /// A bug deserialized from a [`Checkpoint`]: only its category and
    /// rendered message survive the round trip.
    Restored {
        /// The original bug's category.
        category: BugCategory,
        /// The original bug's rendered message.
        message: String,
    },
}

impl Bug {
    /// Coarse category used by the fault-injection experiment (Figure 8).
    pub fn category(&self) -> BugCategory {
        match self {
            Bug::DataRace { .. } | Bug::UninitLoad { .. } => BugCategory::BuiltIn,
            Bug::Deadlock { .. } | Bug::UserPanic { .. } => BugCategory::BuiltIn,
            Bug::Plugin { message, .. } => {
                if message.starts_with("admissibility") {
                    BugCategory::Admissibility
                } else {
                    BugCategory::Assertion
                }
            }
            Bug::AxiomViolation { .. } => BugCategory::Internal,
            Bug::EngineFailure { .. } => BugCategory::Internal,
            Bug::InternalHang { .. } => BugCategory::BuiltIn,
            Bug::StackOverflow { .. } => BugCategory::BuiltIn,
            Bug::Restored { category, .. } => *category,
        }
    }
}

impl std::fmt::Display for Bug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bug::DataRace {
                loc,
                first,
                second,
                second_is_write,
            } => write!(
                f,
                "data race on {loc}: {first} and {second} unordered ({} second access)",
                if *second_is_write { "write" } else { "read" }
            ),
            Bug::UninitLoad { loc, tid } => {
                write!(f, "uninitialized atomic load of {loc} by {tid}")
            }
            Bug::Deadlock { blocked } => write!(f, "deadlock: {blocked:?} blocked forever"),
            Bug::UserPanic { tid, message } => write!(f, "panic in {tid}: {message}"),
            Bug::Plugin { plugin, message } => write!(f, "[{plugin}] {message}"),
            Bug::AxiomViolation { message } => write!(f, "AXIOM VIOLATION (internal): {message}"),
            Bug::EngineFailure { message } => write!(f, "engine failure: {message}"),
            Bug::InternalHang {
                stalled_ms,
                tid,
                last_op,
            } => {
                write!(
                    f,
                    "internal hang: no scheduling progress for {stalled_ms} ms"
                )?;
                if let Some(tid) = tid {
                    write!(f, " ({tid} wedged")?;
                    if let Some(op) = last_op {
                        write!(f, " after {op}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Bug::StackOverflow { tid } => {
                write!(f, "stack overflow: {tid} overran its fiber stack")
            }
            // Print the message verbatim: the dedup key of a restored bug
            // must equal the key of the live bug it was serialized from.
            Bug::Restored { message, .. } => write!(f, "{message}"),
        }
    }
}

/// The paper's Figure 8 detection buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugCategory {
    /// CDSChecker built-in checks (races, uninitialized loads) plus
    /// deadlocks/panics/hangs.
    BuiltIn,
    /// CDSSpec admissibility-condition failures.
    Admissibility,
    /// CDSSpec assertion (specification) violations.
    Assertion,
    /// Internal consistency failure of the checker itself.
    Internal,
}

impl BugCategory {
    fn label(&self) -> &'static str {
        match self {
            BugCategory::BuiltIn => "builtin",
            BugCategory::Admissibility => "admissibility",
            BugCategory::Assertion => "assertion",
            BugCategory::Internal => "internal",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "builtin" => BugCategory::BuiltIn,
            "admissibility" => BugCategory::Admissibility,
            "assertion" => BugCategory::Assertion,
            "internal" => BugCategory::Internal,
            _ => return None,
        })
    }
}

/// One bug occurrence, with the trace that exhibited it.
#[derive(Clone, Debug)]
pub struct FoundBug {
    /// What went wrong.
    pub bug: Bug,
    /// 0-based index of the execution that exhibited it. Sequential runs
    /// count globally; parallel runs count per worker (the index is only
    /// meaningful together with [`FoundBug::worker`]).
    pub execution: u64,
    /// Rendered trace for diagnostics.
    pub trace: String,
    /// Index of the explorer worker that found the bug (0 in sequential
    /// runs) — printed by `known_bugs` so parallel repros stay debuggable.
    pub worker: usize,
    /// Replay script of the frontier shard the finding worker was
    /// exploring when it hit the bug (empty = the root shard).
    pub shard: Vec<usize>,
}

/// Why an exploration run returned.
///
/// Ordered by "badness": [`Stats::merge`] keeps the worst reason of the
/// two runs, so a suite of sub-runs reports `Deadline` if any sub-run was
/// cut short by the clock, and `Errored` if any sub-run crashed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The whole choice tree was explored.
    #[default]
    Exhausted,
    /// `Config::stop_on_first_bug` ended the run at the first defect.
    FirstBug,
    /// `Config::max_executions` was reached.
    ExecutionCap,
    /// `Config::time_budget` expired before exhaustion.
    Deadline,
    /// The run aborted abnormally (e.g. a checker plugin panicked).
    Errored,
}

impl StopReason {
    fn severity(self) -> u8 {
        match self {
            StopReason::Exhausted => 0,
            StopReason::FirstBug => 1,
            StopReason::ExecutionCap => 2,
            StopReason::Deadline => 3,
            StopReason::Errored => 4,
        }
    }

    /// The worse (more truncated) of two reasons.
    pub fn worst(self, other: StopReason) -> StopReason {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    fn label(&self) -> &'static str {
        match self {
            StopReason::Exhausted => "exhausted",
            StopReason::FirstBug => "first-bug",
            StopReason::ExecutionCap => "execution-cap",
            StopReason::Deadline => "deadline",
            StopReason::Errored => "errored",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "exhausted" => StopReason::Exhausted,
            "first-bug" => StopReason::FirstBug,
            "execution-cap" => StopReason::ExecutionCap,
            "deadline" => StopReason::Deadline,
            "errored" => StopReason::Errored,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One shard of the DFS frontier: a subtree of the choice tree owned by
/// exactly one explorer.
///
/// `script` is the replay script of the shard's next unexplored leaf
/// (PR 1's checkpoint representation, reused verbatim). `floor` is the
/// *depth floor*: the shard owns only the backtrack points at depths
/// `>= floor`, so its DFS never climbs above the subtree it was handed.
/// A plain (unsharded) exploration is the single shard
/// `{ floor: 0, script: [] }` — the whole tree.
///
/// Work-stealing splits a shard in two: the donor keeps its current
/// branch with a raised floor, the thief gets the sibling alternatives at
/// the split depth (see `ARCHITECTURE.md` for the partition argument).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSpec {
    /// Lowest depth at which this shard may backtrack.
    pub floor: usize,
    /// Replay script of the shard's next unexplored leaf.
    pub script: Vec<usize>,
}

impl ShardSpec {
    /// The root shard: the whole choice tree.
    pub fn root() -> Self {
        ShardSpec::default()
    }

    /// A floor-0 shard starting at `script` (the shape of every PR 1
    /// checkpoint, which always owned the whole remaining tree).
    pub fn from_script(script: Vec<usize>) -> Self {
        ShardSpec { floor: 0, script }
    }
}

/// Aggregate result of a [`crate::explore()`] run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Total executions attempted (feasible + pruned), the analog of the
    /// paper's "# Executions" column.
    pub executions: u64,
    /// Executions that ran to completion and satisfied the memory model —
    /// the paper's "# Feasible" column. Bug-exhibiting executions count:
    /// they are real behaviors.
    pub feasible: u64,
    /// Branches pruned by the step/spin bounds.
    pub diverged: u64,
    /// Branches pruned by sleep sets (redundant interleavings).
    pub sleep_pruned: u64,
    /// Executions contributed by deadline-degraded random-walk sampling
    /// (a subset of `executions`; see `Config::deadline_samples`).
    pub sampled: u64,
    /// Choice-tree branches suppressed by rf-equivalence pruning
    /// (`Config::rf_prune`): deferred redundant reader schedules plus
    /// eagerly rejected futile rf candidates. Counted once per suppressed
    /// branch at its unique fresh visit, so the total is deterministic
    /// across worker counts and sums exactly across checkpoint
    /// partitions. `0` when pruning is disabled.
    pub executions_pruned: u64,
    /// rf-signatures of the distinct execution identities observed among
    /// completed executions (see `cdsspec_c11::relations::rf_signature`):
    /// the abstract (per-thread ops, rf, mo, SC) graph with scheduling
    /// noise canonicalized away. Pruned and unpruned explorations of the
    /// same closure cover the same set — that is the pruning soundness
    /// invariant the differential tests check. Merging unions the sets.
    pub rf_classes: BTreeSet<u64>,
    /// Deepest DFS frontier reached: the maximum number of recorded
    /// choice points in any single execution. Deterministic across worker
    /// counts (the set of explored executions is identical), so it can be
    /// diffed like the execution counters.
    pub peak_depth: u64,
    /// Bugs found (deduplicated per (category, message) pair).
    pub bugs: Vec<FoundBug>,
    /// Wall-clock time of the whole exploration.
    pub elapsed: Duration,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Replay script of the first unexplored DFS leaf, when the run
    /// stopped before exhausting the tree — the seed of a [`Checkpoint`].
    /// Equal to the script of the first entry of
    /// [`Stats::shard_frontiers`] whenever that list is non-empty.
    pub frontier: Option<Vec<usize>>,
    /// The complete unexplored frontier as a list of disjoint shards.
    ///
    /// A sequential run that stops early leaves exactly one floor-0 shard
    /// here (mirroring [`Stats::frontier`]); an interrupted *parallel*
    /// run leaves one shard per in-flight worker plus any shards still
    /// queued for stealing. Resuming every listed shard visits exactly
    /// the leaves the interrupted run had left — the partition invariant
    /// extended to shard sets.
    pub shard_frontiers: Vec<ShardSpec>,
}

impl Stats {
    /// Did exploration find any defect?
    pub fn buggy(&self) -> bool {
        !self.bugs.is_empty()
    }

    /// First bug of a given category, if any.
    pub fn first_of(&self, cat: BugCategory) -> Option<&FoundBug> {
        self.bugs.iter().find(|b| b.bug.category() == cat)
    }

    /// Compatibility accessor for the pre-`StopReason` API: was the run
    /// cut short by a resource limit? (`FirstBug` is deliberate stopping,
    /// not truncation — matching the old `truncated: bool` semantics,
    /// which only covered the execution cap.)
    pub fn truncated(&self) -> bool {
        matches!(
            self.stop,
            StopReason::ExecutionCap | StopReason::Deadline | StopReason::Errored
        )
    }

    /// Set the unexplored frontier from a shard list, keeping
    /// [`Stats::frontier`] (the first shard's script) in sync. An empty
    /// list clears both — the tree is exhausted.
    pub fn set_frontier_shards(&mut self, shards: Vec<ShardSpec>) {
        self.frontier = shards.first().map(|s| s.script.clone());
        self.shard_frontiers = shards;
    }

    /// The complete frontier as shards: [`Stats::shard_frontiers`] when
    /// populated, else the single floor-0 shard implied by
    /// [`Stats::frontier`] (the PR 1 representation).
    pub fn frontier_shards(&self) -> Vec<ShardSpec> {
        if !self.shard_frontiers.is_empty() {
            self.shard_frontiers.clone()
        } else {
            self.frontier
                .as_ref()
                .map(|s| vec![ShardSpec::from_script(s.clone())])
                .unwrap_or_default()
        }
    }

    /// A checkpoint from which [`crate::explore_from`] can resume, when
    /// the run left part of the tree unexplored.
    pub fn checkpoint(&self) -> Option<Checkpoint> {
        self.frontier.as_ref().map(|script| Checkpoint {
            script: script.clone(),
            stats: self.clone(),
        })
    }

    /// Merge another run's statistics into this one (used when a
    /// benchmark's standard check is a *suite* of unit tests, as the
    /// paper's §6.4 corner-case tests are). Keeps the worst stop reason
    /// and the other run's frontier, if any.
    pub fn merge(&mut self, other: Stats) {
        self.executions += other.executions;
        self.feasible += other.feasible;
        self.diverged += other.diverged;
        self.sleep_pruned += other.sleep_pruned;
        self.sampled += other.sampled;
        self.executions_pruned += other.executions_pruned;
        self.rf_classes.extend(other.rf_classes.iter().copied());
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.elapsed += other.elapsed;
        self.stop = self.stop.worst(other.stop);
        if other.frontier.is_some() {
            self.frontier = other.frontier;
            self.shard_frontiers = other.shard_frontiers;
        }
        self.bugs.extend(other.bugs);
    }

    /// Fold a resumed run's statistics into checkpointed ones. Counters
    /// accumulate like [`Stats::merge`], but the continuation's stop
    /// reason and frontier *replace* the originals: the checkpoint's
    /// `Deadline`/`ExecutionCap` describes the interruption, not the
    /// combined run's fate.
    pub fn continue_with(&mut self, continuation: Stats) {
        let stop = continuation.stop;
        let frontier = continuation.frontier.clone();
        let shards = continuation.shard_frontiers.clone();
        self.merge(continuation);
        self.stop = stop;
        self.frontier = frontier;
        self.shard_frontiers = shards;
    }

    /// Executions per wall-clock second (`0.0` when no time was recorded,
    /// e.g. on a hand-built `Stats`).
    pub fn exec_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.executions as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line summary (used by the evaluation harness).
    pub fn summary(&self) -> String {
        format!(
            "{} executions ({} feasible, {} diverged, {} sleep-pruned, {} rf-pruned, \
             {} rf classes), {} bug(s), {:.2?} ({:.0} exec/s), peak depth {}, stop: {}",
            self.executions,
            self.feasible,
            self.diverged,
            self.sleep_pruned,
            self.executions_pruned,
            self.rf_classes.len(),
            self.bugs.len(),
            self.elapsed,
            self.exec_per_sec(),
            self.peak_depth,
            self.stop
        )
    }
}

/// A resumable exploration position: the replay script of the first
/// unexplored DFS leaf plus the statistics accumulated so far.
///
/// The DFS explorer's replay script *is* its complete state — re-running
/// from `script` visits exactly the leaves a straight-through run would
/// have visited after the interruption point, so
/// `executions(full) == executions(to checkpoint) + executions(resumed)`.
/// A *parallel* run's checkpoint additionally carries one
/// [`ShardSpec`] per abandoned subtree in its statistics; together the
/// shards partition the unexplored remainder, so the same identity holds
/// at any worker count.
///
/// Checkpoints survive process restarts through a line-oriented text
/// form:
///
/// ```
/// use cdsspec_mc::{Checkpoint, ShardSpec};
///
/// let mut ckpt = Checkpoint::root();
/// ckpt.script = vec![0, 2, 1];
/// ckpt.stats.executions = 7;
/// let back = Checkpoint::from_text(&ckpt.to_text()).unwrap();
/// assert_eq!(back.script, vec![0, 2, 1]);
/// assert_eq!(back.stats.executions, 7);
/// // A single-script checkpoint parses back as one floor-0 shard — the
/// // degenerate partition a sequential cut leaves behind.
/// assert_eq!(
///     back.stats.frontier_shards(),
///     vec![ShardSpec { floor: 0, script: vec![0, 2, 1] }],
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Replay script of the next unexplored leaf.
    pub script: Vec<usize>,
    /// Statistics accumulated before the interruption.
    pub stats: Stats,
}

impl Checkpoint {
    /// The checkpoint at the root of the tree: resuming from it explores
    /// everything from scratch.
    pub fn root() -> Self {
        Checkpoint::default()
    }

    /// Serialize to a line-oriented text format (see [`Checkpoint::from_text`]).
    ///
    /// Single-shard, floor-0 checkpoints (everything PR 1 could produce)
    /// keep the `v1` format byte-for-byte; a multi-shard frontier — the
    /// fingerprint of an interrupted *parallel* run — upgrades to `v2`,
    /// which adds one `shard <floor> <script>` line per frontier shard.
    pub fn to_text(&self) -> String {
        let shards = self.stats.frontier_shards();
        let v2 = shards.len() > 1 || shards.iter().any(|s| s.floor != 0);
        let mut out = if v2 {
            String::from("cdsspec-checkpoint v2\n")
        } else {
            String::from("cdsspec-checkpoint v1\n")
        };
        let render = |script: &[usize]| {
            if script.is_empty() {
                "-".to_string()
            } else {
                script
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        };
        out.push_str(&format!("script {}\n", render(&self.script)));
        if v2 {
            for s in &shards {
                out.push_str(&format!("shard {} {}\n", s.floor, render(&s.script)));
            }
        }
        out.push_str(&format!(
            "counts {} {} {} {} {}\n",
            self.stats.executions,
            self.stats.feasible,
            self.stats.diverged,
            self.stats.sleep_pruned,
            self.stats.sampled
        ));
        out.push_str(&format!("elapsed_ns {}\n", self.stats.elapsed.as_nanos()));
        if self.stats.peak_depth != 0 {
            out.push_str(&format!("peak_depth {}\n", self.stats.peak_depth));
        }
        // Optional lines (omitted when trivial) keep old checkpoints and
        // old parsers compatible with the `counts` line unchanged.
        if self.stats.executions_pruned != 0 {
            out.push_str(&format!(
                "executions_pruned {}\n",
                self.stats.executions_pruned
            ));
        }
        if !self.stats.rf_classes.is_empty() {
            let classes = self
                .stats
                .rf_classes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!("rf_classes {classes}\n"));
        }
        out.push_str(&format!("stop {}\n", self.stats.stop));
        for b in &self.stats.bugs {
            out.push_str(&format!(
                "bug {} {} {}\n",
                b.bug.category().label(),
                b.execution,
                escape(&b.bug.to_string())
            ));
        }
        out.push_str("end\n");
        out
    }

    /// Parse the format produced by [`Checkpoint::to_text`]. Bugs come
    /// back as [`Bug::Restored`] (category + message only). Returns a
    /// human-readable error for malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty checkpoint")?;
        if header != "cdsspec-checkpoint v1" && header != "cdsspec-checkpoint v2" {
            return Err(format!("unrecognized checkpoint header: {header:?}"));
        }
        let parse_script = |s: &str| -> Result<Vec<usize>, String> {
            if s == "-" {
                return Ok(Vec::new());
            }
            s.split(',')
                .map(|c| {
                    c.parse()
                        .map_err(|e| format!("bad script entry {c:?}: {e}"))
                })
                .collect()
        };
        let mut ck = Checkpoint::root();
        let mut saw_end = false;
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "script" => {
                    ck.script = parse_script(rest)?;
                }
                "shard" => {
                    let (floor, script) = rest
                        .split_once(' ')
                        .ok_or_else(|| format!("malformed shard line {rest:?}"))?;
                    let floor: usize = floor
                        .parse()
                        .map_err(|e| format!("bad shard floor {floor:?}: {e}"))?;
                    ck.stats.shard_frontiers.push(ShardSpec {
                        floor,
                        script: parse_script(script)?,
                    });
                }
                "counts" => {
                    let nums: Vec<u64> = rest
                        .split_whitespace()
                        .map(|c| c.parse().map_err(|e| format!("bad count {c:?}: {e}")))
                        .collect::<Result<_, _>>()?;
                    if nums.len() != 5 {
                        return Err(format!("expected 5 counters, got {}", nums.len()));
                    }
                    ck.stats.executions = nums[0];
                    ck.stats.feasible = nums[1];
                    ck.stats.diverged = nums[2];
                    ck.stats.sleep_pruned = nums[3];
                    ck.stats.sampled = nums[4];
                }
                "elapsed_ns" => {
                    let ns: u128 = rest
                        .parse()
                        .map_err(|e| format!("bad elapsed_ns {rest:?}: {e}"))?;
                    ck.stats.elapsed = Duration::from_nanos(ns.min(u64::MAX as u128) as u64);
                }
                "peak_depth" => {
                    ck.stats.peak_depth = rest
                        .parse()
                        .map_err(|e| format!("bad peak_depth {rest:?}: {e}"))?;
                }
                "executions_pruned" => {
                    ck.stats.executions_pruned = rest
                        .parse()
                        .map_err(|e| format!("bad executions_pruned {rest:?}: {e}"))?;
                }
                "rf_classes" => {
                    ck.stats.rf_classes = rest
                        .split(',')
                        .filter(|c| !c.is_empty())
                        .map(|c| c.parse().map_err(|e| format!("bad rf class {c:?}: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "stop" => {
                    ck.stats.stop = StopReason::from_label(rest)
                        .ok_or_else(|| format!("unknown stop reason {rest:?}"))?;
                }
                "bug" => {
                    let mut parts = rest.splitn(3, ' ');
                    let cat = parts
                        .next()
                        .and_then(BugCategory::from_label)
                        .ok_or_else(|| format!("bad bug category in {rest:?}"))?;
                    let execution: u64 = parts
                        .next()
                        .and_then(|e| e.parse().ok())
                        .ok_or_else(|| format!("bad bug execution in {rest:?}"))?;
                    let message = unescape(parts.next().unwrap_or(""));
                    ck.stats.bugs.push(FoundBug {
                        bug: Bug::Restored {
                            category: cat,
                            message,
                        },
                        execution,
                        trace: String::new(),
                        worker: 0,
                        shard: Vec::new(),
                    });
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(format!("unknown checkpoint line {other:?}")),
            }
        }
        if !saw_end {
            return Err("truncated checkpoint (missing end line)".into());
        }
        // A checkpointed run by definition has unexplored work, so the
        // frontier is the script itself. v1 checkpoints (no `shard`
        // lines) describe the single floor-0 shard rooted at that script.
        ck.stats.frontier = Some(ck.script.clone());
        if ck.stats.shard_frontiers.is_empty() {
            ck.stats.shard_frontiers = vec![ShardSpec::from_script(ck.script.clone())];
        }
        Ok(ck)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        let race = Bug::DataRace {
            loc: DataId(0),
            first: Tid(0),
            second: Tid(1),
            second_is_write: true,
        };
        assert_eq!(race.category(), BugCategory::BuiltIn);
        let adm = Bug::Plugin {
            plugin: "cdsspec",
            message: "admissibility: x".into(),
        };
        assert_eq!(adm.category(), BugCategory::Admissibility);
        let spec = Bug::Plugin {
            plugin: "cdsspec",
            message: "postcondition failed".into(),
        };
        assert_eq!(spec.category(), BugCategory::Assertion);
        let hang = Bug::InternalHang {
            stalled_ms: 250,
            tid: Some(Tid(2)),
            last_op: Some("e7:Store@T2".into()),
        };
        assert_eq!(hang.category(), BugCategory::BuiltIn);
        assert_eq!(
            hang.to_string(),
            "internal hang: no scheduling progress for 250 ms (T2 wedged after e7:Store@T2)"
        );
        let bare = Bug::InternalHang {
            stalled_ms: 250,
            tid: None,
            last_op: None,
        };
        assert_eq!(
            bare.to_string(),
            "internal hang: no scheduling progress for 250 ms"
        );
        let overflow = Bug::StackOverflow { tid: Tid(1) };
        assert_eq!(overflow.category(), BugCategory::BuiltIn);
        assert!(overflow.to_string().contains("T1"));
    }

    #[test]
    fn display_is_informative() {
        let b = Bug::UninitLoad {
            loc: LocId(3),
            tid: Tid(1),
        };
        assert!(b.to_string().contains("a3"));
        assert!(b.to_string().contains("T1"));
    }

    #[test]
    fn stats_queries() {
        let mut s = Stats::default();
        assert!(!s.buggy());
        s.bugs.push(FoundBug {
            bug: Bug::Deadlock {
                blocked: vec![Tid(1)],
            },
            execution: 0,
            trace: String::new(),
            worker: 0,
            shard: Vec::new(),
        });
        assert!(s.buggy());
        assert!(s.first_of(BugCategory::BuiltIn).is_some());
        assert!(s.first_of(BugCategory::Assertion).is_none());
        assert!(s.summary().contains("bug"));
    }

    #[test]
    fn stop_reason_worst_of() {
        use StopReason::*;
        assert_eq!(Exhausted.worst(Deadline), Deadline);
        assert_eq!(Deadline.worst(Exhausted), Deadline);
        assert_eq!(FirstBug.worst(ExecutionCap), ExecutionCap);
        assert_eq!(Errored.worst(Deadline), Errored);
        assert_eq!(Exhausted.worst(Exhausted), Exhausted);
    }

    #[test]
    fn truncated_compat_semantics() {
        let mut s = Stats::default();
        assert!(!s.truncated());
        s.stop = StopReason::FirstBug;
        assert!(!s.truncated(), "stopping at a bug is not truncation");
        for stop in [
            StopReason::ExecutionCap,
            StopReason::Deadline,
            StopReason::Errored,
        ] {
            s.stop = stop;
            assert!(s.truncated(), "{stop} should count as truncated");
        }
    }

    #[test]
    fn merge_keeps_worst_stop_and_latest_frontier() {
        let mut a = Stats {
            executions: 10,
            stop: StopReason::Deadline,
            frontier: Some(vec![0, 1]),
            ..Stats::default()
        };
        let b = Stats {
            executions: 5,
            stop: StopReason::FirstBug,
            ..Stats::default()
        };
        a.merge(b);
        assert_eq!(a.executions, 15);
        assert_eq!(a.stop, StopReason::Deadline);
        assert_eq!(
            a.frontier,
            Some(vec![0, 1]),
            "no new frontier keeps the old one"
        );

        let c = Stats {
            executions: 2,
            stop: StopReason::Errored,
            frontier: Some(vec![3]),
            ..Stats::default()
        };
        a.merge(c);
        assert_eq!(a.stop, StopReason::Errored);
        assert_eq!(a.frontier, Some(vec![3]));
    }

    #[test]
    fn continue_with_takes_continuation_fate() {
        let mut prior = Stats {
            executions: 10,
            stop: StopReason::Deadline,
            frontier: Some(vec![0, 1]),
            ..Stats::default()
        };
        let resumed = Stats {
            executions: 7,
            stop: StopReason::Exhausted,
            ..Stats::default()
        };
        prior.continue_with(resumed);
        assert_eq!(prior.executions, 17);
        assert_eq!(prior.stop, StopReason::Exhausted);
        assert_eq!(prior.frontier, None);
    }

    #[test]
    fn checkpoint_round_trips() {
        let stats = Stats {
            executions: 42,
            feasible: 30,
            diverged: 7,
            sleep_pruned: 5,
            sampled: 3,
            executions_pruned: 6,
            rf_classes: [4u64, u64::MAX - 3].into_iter().collect(),
            peak_depth: 9,
            elapsed: Duration::from_millis(1234),
            stop: StopReason::Deadline,
            frontier: Some(vec![0, 2, 1]),
            bugs: vec![FoundBug {
                bug: Bug::UserPanic {
                    tid: Tid(2),
                    message: "boom\nwith newline".into(),
                },
                execution: 17,
                trace: "irrelevant".into(),
                worker: 0,
                shard: Vec::new(),
            }],
            ..Stats::default()
        };
        let ck = stats.checkpoint().expect("has frontier");
        let text = ck.to_text();
        let back = Checkpoint::from_text(&text).expect("parses");
        assert_eq!(back.script, vec![0, 2, 1]);
        assert_eq!(back.stats.executions, 42);
        assert_eq!(back.stats.feasible, 30);
        assert_eq!(back.stats.diverged, 7);
        assert_eq!(back.stats.sleep_pruned, 5);
        assert_eq!(back.stats.sampled, 3);
        assert_eq!(back.stats.executions_pruned, 6);
        assert_eq!(back.stats.rf_classes, stats.rf_classes);
        assert_eq!(back.stats.peak_depth, 9);
        // Elapsed must round-trip exactly: resumed throughput summaries
        // divide by accumulated *active* time, so a checkpoint that
        // dropped or re-derived it would fold suspension gaps into the
        // reported exec/s rate.
        assert_eq!(back.stats.elapsed, stats.elapsed);
        assert_eq!(back.stats.stop, StopReason::Deadline);
        assert_eq!(back.stats.bugs.len(), 1);
        // The restored bug renders identically, so dedup on resume works.
        assert_eq!(
            back.stats.bugs[0].bug.to_string(),
            stats.bugs[0].bug.to_string()
        );
        assert_eq!(back.stats.bugs[0].bug.category(), BugCategory::BuiltIn);
        assert_eq!(back.stats.bugs[0].execution, 17);
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(Checkpoint::from_text("").is_err());
        assert!(Checkpoint::from_text("not a checkpoint\nend\n").is_err());
        assert!(Checkpoint::from_text("cdsspec-checkpoint v1\nscript 0,1\n").is_err());
        assert!(Checkpoint::from_text("cdsspec-checkpoint v1\nstop nonsense\nend\n").is_err());
    }

    #[test]
    fn empty_script_round_trips() {
        let ck = Checkpoint::root();
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert!(back.script.is_empty());
    }

    #[test]
    fn single_floor0_shard_stays_v1() {
        // PR 1 consumers parse v1 only; anything they could have written
        // must keep serializing exactly as before.
        let mut stats = Stats {
            executions: 3,
            frontier: Some(vec![1, 0]),
            ..Stats::default()
        };
        stats.set_frontier_shards(vec![ShardSpec::from_script(vec![1, 0])]);
        let text = stats.checkpoint().unwrap().to_text();
        assert!(text.starts_with("cdsspec-checkpoint v1\n"), "{text}");
        assert!(!text.contains("\nshard "), "{text}");
    }

    #[test]
    fn multi_shard_checkpoint_round_trips_as_v2() {
        let mut stats = Stats {
            executions: 9,
            stop: StopReason::Deadline,
            ..Stats::default()
        };
        let shards = vec![
            ShardSpec {
                floor: 2,
                script: vec![0, 1, 3],
            },
            ShardSpec {
                floor: 1,
                script: vec![2],
            },
            ShardSpec {
                floor: 0,
                script: vec![],
            },
        ];
        stats.set_frontier_shards(shards.clone());
        let ck = stats.checkpoint().expect("has frontier");
        let text = ck.to_text();
        assert!(text.starts_with("cdsspec-checkpoint v2\n"), "{text}");
        let back = Checkpoint::from_text(&text).expect("parses");
        assert_eq!(back.stats.shard_frontiers, shards);
        assert_eq!(back.script, vec![0, 1, 3]);
        assert_eq!(back.stats.frontier, Some(vec![0, 1, 3]));
    }

    #[test]
    fn raised_floor_forces_v2() {
        let mut stats = Stats::default();
        stats.set_frontier_shards(vec![ShardSpec {
            floor: 1,
            script: vec![0, 2],
        }]);
        let text = stats.checkpoint().unwrap().to_text();
        assert!(text.starts_with("cdsspec-checkpoint v2\n"), "{text}");
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(back.stats.shard_frontiers[0].floor, 1);
    }
}
