//! Exploration outcomes: bug kinds, found-bug records, aggregate stats.

use cdsspec_c11::{DataId, LocId, Tid};
use std::time::Duration;

/// A defect detected during exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bug {
    /// Two unordered accesses to a non-atomic location, at least one a
    /// write (CDSChecker built-in check).
    DataRace { loc: DataId, first: Tid, second: Tid, second_is_write: bool },
    /// An atomic load could observe the location before any initialization
    /// (CDSChecker built-in check).
    UninitLoad { loc: LocId, tid: Tid },
    /// No thread can make progress but some have not finished.
    Deadlock { blocked: Vec<Tid> },
    /// A modeled thread panicked (includes `mc_assert!` failures).
    UserPanic { tid: Tid, message: String },
    /// A plugin (e.g. the CDSSpec checker) rejected the execution.
    Plugin { plugin: &'static str, message: String },
    /// The offline axiom validator rejected a trace the online checker
    /// produced — an internal consistency failure, never expected.
    AxiomViolation { message: String },
}

impl Bug {
    /// Coarse category used by the fault-injection experiment (Figure 8).
    pub fn category(&self) -> BugCategory {
        match self {
            Bug::DataRace { .. } | Bug::UninitLoad { .. } => BugCategory::BuiltIn,
            Bug::Deadlock { .. } | Bug::UserPanic { .. } => BugCategory::BuiltIn,
            Bug::Plugin { message, .. } => {
                if message.starts_with("admissibility") {
                    BugCategory::Admissibility
                } else {
                    BugCategory::Assertion
                }
            }
            Bug::AxiomViolation { .. } => BugCategory::Internal,
        }
    }
}

impl std::fmt::Display for Bug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bug::DataRace { loc, first, second, second_is_write } => write!(
                f,
                "data race on {loc}: {first} and {second} unordered ({} second access)",
                if *second_is_write { "write" } else { "read" }
            ),
            Bug::UninitLoad { loc, tid } => {
                write!(f, "uninitialized atomic load of {loc} by {tid}")
            }
            Bug::Deadlock { blocked } => write!(f, "deadlock: {blocked:?} blocked forever"),
            Bug::UserPanic { tid, message } => write!(f, "panic in {tid}: {message}"),
            Bug::Plugin { plugin, message } => write!(f, "[{plugin}] {message}"),
            Bug::AxiomViolation { message } => write!(f, "AXIOM VIOLATION (internal): {message}"),
        }
    }
}

/// The paper's Figure 8 detection buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugCategory {
    /// CDSChecker built-in checks (races, uninitialized loads) plus
    /// deadlocks/panics.
    BuiltIn,
    /// CDSSpec admissibility-condition failures.
    Admissibility,
    /// CDSSpec assertion (specification) violations.
    Assertion,
    /// Internal consistency failure of the checker itself.
    Internal,
}

/// One bug occurrence, with the trace that exhibited it.
#[derive(Clone, Debug)]
pub struct FoundBug {
    /// What went wrong.
    pub bug: Bug,
    /// 0-based index of the execution that exhibited it.
    pub execution: u64,
    /// Rendered trace for diagnostics.
    pub trace: String,
}

/// Aggregate result of a [`crate::explore`] run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Total executions attempted (feasible + pruned), the analog of the
    /// paper's "# Executions" column.
    pub executions: u64,
    /// Executions that ran to completion and satisfied the memory model —
    /// the paper's "# Feasible" column. Bug-exhibiting executions count:
    /// they are real behaviors.
    pub feasible: u64,
    /// Branches pruned by the step/spin bounds.
    pub diverged: u64,
    /// Branches pruned by sleep sets (redundant interleavings).
    pub sleep_pruned: u64,
    /// Bugs found (deduplicated per (category, message) pair).
    pub bugs: Vec<FoundBug>,
    /// Wall-clock time of the whole exploration.
    pub elapsed: Duration,
    /// True when exploration ended because `max_executions` was hit.
    pub truncated: bool,
}

impl Stats {
    /// Did exploration find any defect?
    pub fn buggy(&self) -> bool {
        !self.bugs.is_empty()
    }

    /// First bug of a given category, if any.
    pub fn first_of(&self, cat: BugCategory) -> Option<&FoundBug> {
        self.bugs.iter().find(|b| b.bug.category() == cat)
    }

    /// Merge another run's statistics into this one (used when a
    /// benchmark's standard check is a *suite* of unit tests, as the
    /// paper's §6.4 corner-case tests are).
    pub fn merge(&mut self, other: Stats) {
        self.executions += other.executions;
        self.feasible += other.feasible;
        self.diverged += other.diverged;
        self.sleep_pruned += other.sleep_pruned;
        self.elapsed += other.elapsed;
        self.truncated |= other.truncated;
        self.bugs.extend(other.bugs);
    }

    /// One-line summary (used by the evaluation harness).
    pub fn summary(&self) -> String {
        format!(
            "{} executions ({} feasible, {} diverged, {} sleep-pruned), {} bug(s), {:.2?}",
            self.executions,
            self.feasible,
            self.diverged,
            self.sleep_pruned,
            self.bugs.len(),
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        let race = Bug::DataRace {
            loc: DataId(0),
            first: Tid(0),
            second: Tid(1),
            second_is_write: true,
        };
        assert_eq!(race.category(), BugCategory::BuiltIn);
        let adm = Bug::Plugin { plugin: "cdsspec", message: "admissibility: x".into() };
        assert_eq!(adm.category(), BugCategory::Admissibility);
        let spec = Bug::Plugin { plugin: "cdsspec", message: "postcondition failed".into() };
        assert_eq!(spec.category(), BugCategory::Assertion);
    }

    #[test]
    fn display_is_informative() {
        let b = Bug::UninitLoad { loc: LocId(3), tid: Tid(1) };
        assert!(b.to_string().contains("a3"));
        assert!(b.to_string().contains("T1"));
    }

    #[test]
    fn stats_queries() {
        let mut s = Stats::default();
        assert!(!s.buggy());
        s.bugs.push(FoundBug {
            bug: Bug::Deadlock { blocked: vec![Tid(1)] },
            execution: 0,
            trace: String::new(),
        });
        assert!(s.buggy());
        assert!(s.first_of(BugCategory::BuiltIn).is_some());
        assert!(s.first_of(BugCategory::Assertion).is_none());
        assert!(s.summary().contains("bug"));
    }
}
