//! Edge-case tests for the token-passing runtime: thread limits,
//! truncation, yields, deep nesting, pool reuse across explorations, and
//! the verbose/validating config paths.

use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{mc_assert, Atomic, Config};

/// Exceeding `max_threads` is a reported bug, not a hang.
#[test]
fn max_threads_is_enforced() {
    let config = Config { max_threads: 3, ..Config::default() };
    let stats = mc::explore(config, || {
        let mut handles = Vec::new();
        for _ in 0..5 {
            handles.push(mc::thread::spawn(|| {}));
        }
        for h in handles {
            h.join();
        }
    });
    assert!(stats.buggy());
    assert!(stats.bugs[0].bug.to_string().contains("max_threads"));
}

/// `max_executions` truncates and says so.
#[test]
fn truncation_is_reported() {
    let config = Config { max_executions: 3, ..Config::default() };
    let stats = mc::explore(config, || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || x.store(1, Relaxed));
        let _ = x.load(Relaxed);
        let _ = x.load(Relaxed);
        t.join();
    });
    assert!(stats.truncated);
    assert_eq!(stats.executions, 3);
}

/// `yield_now` is a scheduling point with no memory effect.
#[test]
fn yield_now_works() {
    let stats = mc::explore(Config::validating(), || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            mc::yield_now();
            x.store(1, Relaxed);
        });
        mc::yield_now();
        let _ = x.load(Relaxed);
        t.join();
    });
    assert!(!stats.buggy());
    assert!(stats.feasible >= 2, "yield must create interleavings");
}

/// Deep spawn chains (each thread spawns the next) work and synchronize.
#[test]
fn deep_spawn_chain() {
    mc::model(|| {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            let inner = mc::thread::spawn(move || {
                let inner2 = mc::thread::spawn(move || {
                    x.store(3, Release);
                });
                inner2.join();
            });
            inner.join();
        });
        t.join();
        mc_assert!(x.load(Acquire) == 3);
    });
}

/// A thread that is never joined still finishes and its effects are
/// explorable (the execution completes when all threads finish).
#[test]
fn unjoined_threads_complete() {
    let stats = mc::explore(Config::validating(), || {
        let x = Atomic::new(0i64);
        let h = mc::thread::spawn(move || {
            x.store(1, Relaxed);
        });
        // Deliberately do not join: the handle is consumed via drop.
        let _ = h.tid();
        #[allow(clippy::mem_forget)]
        drop(h);
        let _ = x.load(Relaxed);
    });
    assert!(!stats.buggy());
    assert!(stats.feasible >= 2, "store may land before or after the load");
}

/// The same process can run many explorations back-to-back (pool threads
/// and panic hooks don't leak state across runs).
#[test]
fn repeated_explorations_are_independent() {
    for round in 0..5 {
        let stats = mc::explore(Config::default(), move || {
            let x = Atomic::new(round as i64);
            mc_assert!(x.load(Relaxed) == round as i64);
        });
        assert_eq!(stats.executions, 1);
        assert!(!stats.buggy());
    }
}

/// Exploration with `verbose` exercises the trace renderer on every
/// execution without panicking.
#[test]
fn verbose_rendering_smoke() {
    let config = Config { verbose: true, ..Config::default() };
    let stats = mc::explore(config, || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.fetch_add(1, AcqRel);
        });
        let _ = x.compare_exchange(0, 5, SeqCst, Relaxed);
        mc::fence(SeqCst);
        t.join();
    });
    assert!(!stats.buggy());
}

/// Two explorations in parallel from different OS threads don't interfere
/// (thread-local contexts are per-worker).
#[test]
fn parallel_explorations() {
    let h1 = std::thread::spawn(|| {
        mc::model(|| {
            let x = Atomic::new(1i64);
            mc_assert!(x.load(Relaxed) == 1);
        })
    });
    let h2 = std::thread::spawn(|| {
        mc::model(|| {
            let y = Atomic::new(2i64);
            mc_assert!(y.load(Relaxed) == 2);
        })
    });
    h1.join().unwrap();
    h2.join().unwrap();
}

/// Stats bookkeeping: executions = feasible + diverged + sleep-pruned.
#[test]
fn stats_partition_executions() {
    let stats = mc::explore(Config::validating(), || {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.store(1, Release);
            y.store(1, Release);
        });
        let _ = y.load(Acquire);
        let _ = x.load(Acquire);
        t.join();
    });
    assert!(!stats.buggy());
    assert_eq!(
        stats.executions,
        stats.feasible + stats.diverged + stats.sleep_pruned,
        "{}",
        stats.summary()
    );
}
