//! Edge-case tests for the token-passing runtime: thread limits,
//! truncation, yields, deep nesting, pool reuse across explorations, the
//! verbose/validating config paths, and the resilience layer (watchdog,
//! deadlines, checkpoint/resume, sampling degradation).

use std::time::Duration;

use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{mc_assert, Atomic, Config};

/// Exceeding `max_threads` is a reported bug, not a hang.
#[test]
fn max_threads_is_enforced() {
    let config = Config {
        max_threads: 3,
        ..Config::default()
    };
    let stats = mc::explore(config, || {
        let mut handles = Vec::new();
        for _ in 0..5 {
            handles.push(mc::thread::spawn(|| {}));
        }
        for h in handles {
            h.join();
        }
    });
    assert!(stats.buggy());
    assert!(stats.bugs[0].bug.to_string().contains("max_threads"));
}

/// `max_executions` truncates and says so. (`workers: 1`: the parallel
/// engine may overshoot the cap by in-flight executions, so the exact
/// count here is a sequential-engine guarantee.)
#[test]
fn truncation_is_reported() {
    // rf-equivalence pruning collapses this program to 3 executions, so
    // the cap sits at 2 to still fire mid-tree.
    let config = Config {
        max_executions: 2,
        workers: 1,
        ..Config::default()
    };
    let stats = mc::explore(config, || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || x.store(1, Relaxed));
        let _ = x.load(Relaxed);
        let _ = x.load(Relaxed);
        t.join();
    });
    assert!(stats.truncated());
    assert_eq!(stats.stop, mc::StopReason::ExecutionCap);
    assert_eq!(stats.executions, 2);
    assert!(stats.frontier.is_some(), "a capped run must be resumable");
}

/// `yield_now` is a scheduling point with no memory effect.
#[test]
fn yield_now_works() {
    let stats = mc::explore(Config::validating(), || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            mc::yield_now();
            x.store(1, Relaxed);
        });
        mc::yield_now();
        let _ = x.load(Relaxed);
        t.join();
    });
    assert!(!stats.buggy());
    assert!(stats.feasible >= 2, "yield must create interleavings");
}

/// Deep spawn chains (each thread spawns the next) work and synchronize.
#[test]
fn deep_spawn_chain() {
    mc::model(|| {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            let inner = mc::thread::spawn(move || {
                let inner2 = mc::thread::spawn(move || {
                    x.store(3, Release);
                });
                inner2.join();
            });
            inner.join();
        });
        t.join();
        mc_assert!(x.load(Acquire) == 3);
    });
}

/// A thread that is never joined still finishes and its effects are
/// explorable (the execution completes when all threads finish).
#[test]
fn unjoined_threads_complete() {
    let stats = mc::explore(Config::validating(), || {
        let x = Atomic::new(0i64);
        let h = mc::thread::spawn(move || {
            x.store(1, Relaxed);
        });
        // Deliberately do not join: the handle is consumed via drop.
        let _ = h.tid();
        #[allow(clippy::mem_forget)]
        drop(h);
        let _ = x.load(Relaxed);
    });
    assert!(!stats.buggy());
    assert!(
        stats.feasible >= 2,
        "store may land before or after the load"
    );
}

/// The same process can run many explorations back-to-back (pool threads
/// and panic hooks don't leak state across runs).
#[test]
fn repeated_explorations_are_independent() {
    for round in 0..5 {
        let stats = mc::explore(Config::default(), move || {
            let x = Atomic::new(round as i64);
            mc_assert!(x.load(Relaxed) == round as i64);
        });
        assert_eq!(stats.executions, 1);
        assert!(!stats.buggy());
    }
}

/// Exploration with `verbose` exercises the trace renderer on every
/// execution without panicking.
#[test]
fn verbose_rendering_smoke() {
    let config = Config {
        verbose: true,
        ..Config::default()
    };
    let stats = mc::explore(config, || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.fetch_add(1, AcqRel);
        });
        let _ = x.compare_exchange(0, 5, SeqCst, Relaxed);
        mc::fence(SeqCst);
        t.join();
    });
    assert!(!stats.buggy());
}

/// Two explorations in parallel from different OS threads don't interfere
/// (thread-local contexts are per-worker).
#[test]
fn parallel_explorations() {
    let h1 = std::thread::spawn(|| {
        mc::model(|| {
            let x = Atomic::new(1i64);
            mc_assert!(x.load(Relaxed) == 1);
        })
    });
    let h2 = std::thread::spawn(|| {
        mc::model(|| {
            let y = Atomic::new(2i64);
            mc_assert!(y.load(Relaxed) == 2);
        })
    });
    h1.join().unwrap();
    h2.join().unwrap();
}

/// A branchy but tiny workload shared by the resilience tests: two
/// storer threads racing two loads gives a choice tree of a few dozen
/// leaves — big enough to interrupt, small enough to exhaust instantly.
fn branchy_workload() {
    let x = Atomic::new(0i64);
    let y = Atomic::new(0i64);
    let t1 = mc::thread::spawn(move || x.store(1, Relaxed));
    let t2 = mc::thread::spawn(move || y.store(1, Relaxed));
    let _ = x.load(Relaxed);
    let _ = y.load(Relaxed);
    t1.join();
    t2.join();
}

/// A deliberately wedged modeled thread (never reaches another visible
/// operation) no longer hangs exploration: the watchdog aborts the
/// execution and reports `Bug::InternalHang`.
#[test]
fn watchdog_aborts_wedged_thread() {
    let config = Config {
        hang_timeout: Some(Duration::from_millis(200)),
        ..Config::default()
    };
    let stats = mc::explore(config, || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.store(1, Relaxed);
            // Wedge: user code that never returns and never performs
            // another visible operation. (`park` rather than a spin so
            // the leaked OS thread doesn't burn a core for the rest of
            // the test process's life.)
            loop {
                std::thread::park();
            }
        });
        let _ = x.load(Relaxed);
        t.join();
    });
    assert!(
        stats.buggy(),
        "wedged thread must be reported: {}",
        stats.summary()
    );
    let hang = stats
        .bugs
        .iter()
        .find(|b| matches!(b.bug, mc::Bug::InternalHang { .. }));
    let hang = hang.expect("expected an InternalHang bug");
    assert_eq!(hang.bug.category(), mc::BugCategory::BuiltIn);
    assert_eq!(stats.stop, mc::StopReason::FirstBug);
}

/// Deadline expiry stops between executions with a resumable frontier,
/// and resuming reproduces the straight-through run's aggregate counts
/// exactly — including through the text serialization round trip.
#[test]
fn deadline_expiry_reports_and_resumes() {
    let full = mc::explore(Config::default(), branchy_workload);
    assert_eq!(full.stop, mc::StopReason::Exhausted);
    assert!(full.frontier.is_none());
    assert!(
        full.executions > 4,
        "workload too small to interrupt: {}",
        full.summary()
    );

    let config = Config {
        time_budget: Some(Duration::ZERO),
        ..Config::default()
    };
    let cut = mc::explore(config, branchy_workload);
    assert_eq!(cut.stop, mc::StopReason::Deadline);
    assert!(cut.executions < full.executions);
    let ckpt = cut.checkpoint().expect("deadline leaves a frontier");

    // Round-trip the checkpoint through its text form, as the bench
    // binaries do across process restarts.
    let ckpt = mc::Checkpoint::from_text(&ckpt.to_text()).expect("serializable");

    let resumed = mc::explore_from(Config::default(), ckpt, branchy_workload);
    assert_eq!(resumed.stop, mc::StopReason::Exhausted);
    assert_eq!(resumed.executions, full.executions);
    assert_eq!(resumed.feasible, full.feasible);
    assert_eq!(resumed.diverged, full.diverged);
    assert_eq!(resumed.sleep_pruned, full.sleep_pruned);
}

/// `Config::resume_script` threads resumption through APIs that only
/// accept a `Config` (the benchmark registry's `check` fn pointers);
/// executions partition exactly.
#[test]
fn resume_script_threads_through_config() {
    let full = mc::explore(Config::default(), branchy_workload);
    // `workers: 1` on the cut: `Config::resume_script` is a single
    // script, so the cut must leave a single-shard frontier.
    let cut = mc::explore(
        Config {
            max_executions: 2,
            workers: 1,
            ..Config::default()
        },
        branchy_workload,
    );
    assert_eq!(cut.stop, mc::StopReason::ExecutionCap);
    let frontier = cut.frontier.clone().expect("capped run leaves a frontier");
    let resumed = mc::explore(
        Config {
            resume_script: Some(frontier),
            ..Config::default()
        },
        branchy_workload,
    );
    assert_eq!(
        cut.executions + resumed.executions,
        full.executions,
        "cut {} + resumed {} != full {}",
        cut.summary(),
        resumed.summary(),
        full.summary()
    );
}

/// Resumed elapsed time accumulates the checkpoint's *active*
/// exploration time plus the resumed run's own — never the wall-clock
/// age of the checkpoint. A checkpoint written an hour before resumption
/// must not inflate `Stats::elapsed` (and through it the figure7/figure8
/// exec/s summaries) by that hour.
#[test]
fn resume_elapsed_excludes_suspension_gap() {
    let cut = mc::explore(
        Config {
            max_executions: 2,
            workers: 1,
            ..Config::default()
        },
        branchy_workload,
    );
    let ckpt = cut.checkpoint().expect("capped run leaves a frontier");
    // Round-trip through the text form, as the harness binaries do, and
    // simulate a long suspension by aging the stored active time: the
    // resumed total must sit just above it, proving the engine adds only
    // its own active time on top of what the checkpoint recorded.
    let mut ckpt = mc::Checkpoint::from_text(&ckpt.to_text()).expect("serializable");
    assert_eq!(
        ckpt.stats.elapsed, cut.elapsed,
        "elapsed survives the text form"
    );
    let hour = Duration::from_secs(3600);
    ckpt.stats.elapsed = hour;
    let resumed = mc::explore_from(Config::default(), ckpt, branchy_workload);
    assert!(resumed.elapsed >= hour, "{:?}", resumed.elapsed);
    assert!(
        resumed.elapsed < hour + Duration::from_secs(60),
        "resume added wall-clock beyond its own active time: {:?}",
        resumed.elapsed
    );
}

/// With `deadline_samples`, a deadline-cut run degrades to seeded
/// random-walk probes of the unexplored region — deterministically.
#[test]
fn deadline_degrades_to_sampling_deterministically() {
    // Sampling degradation is a sequential-engine feature (the parallel
    // engine reports its shard frontiers instead), so pin `workers: 1`.
    let config = Config {
        time_budget: Some(Duration::ZERO),
        deadline_samples: 5,
        sample_seed: 42,
        workers: 1,
        ..Config::default()
    };
    let a = mc::explore(config.clone(), branchy_workload);
    let b = mc::explore(config, branchy_workload);
    assert_eq!(a.stop, mc::StopReason::Deadline);
    assert!(
        a.sampled > 0,
        "expected sampling to kick in: {}",
        a.summary()
    );
    assert!(a.sampled <= 5);
    assert_eq!(a.executions, b.executions, "sampling must be deterministic");
    assert_eq!(a.sampled, b.sampled);
    assert_eq!(a.feasible, b.feasible);
    assert_eq!(a.diverged, b.diverged);
}

/// Stats bookkeeping: executions = feasible + diverged + sleep-pruned.
#[test]
fn stats_partition_executions() {
    let stats = mc::explore(Config::validating(), || {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.store(1, Release);
            y.store(1, Release);
        });
        let _ = y.load(Acquire);
        let _ = x.load(Acquire);
        t.join();
    });
    assert!(!stats.buggy());
    assert_eq!(
        stats.executions,
        stats.feasible + stats.diverged + stats.sleep_pruned,
        "{}",
        stats.summary()
    );
}
