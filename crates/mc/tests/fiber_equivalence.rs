//! Fiber hosting must be a pure transport change.
//!
//! With `Config::fiber_hosting` (the default) on x86_64 the runtime hosts
//! every modeled thread of an execution on the explorer's own OS thread,
//! moving control with userspace stack switches (`crate::fiber`) — on
//! Linux even with a hang watchdog configured, whose stall detection then
//! runs on a monitor thread. With `fiber_hosting: false` it hosts them on
//! pooled OS threads parked on condvars. The scheduling *decisions* are
//! made by the same code on the same state in all modes, so an
//! exploration must be indistinguishable between them: same executions in
//! the same DFS order, same per-execution traces, same bugs, same prune
//! counters.
//!
//! These tests pin that equivalence: random weakly-ordered programs are
//! explored under the fiber host (watchdog-free *and* watchdog-on) and
//! the OS-thread reference host, and every deterministic statistic plus
//! the exact per-execution rf-signature *sequence* must match; the bug
//! paths (user panics — i.e. unwinds through a fiber root — divergence
//! bounds, and watchdog hang injection) are exercised explicitly.

use std::sync::{Arc, Mutex};

use cdsspec_c11::{relations, Trace};
use cdsspec_mc as mc;
use mc::MemOrd::{self, *};
use mc::{Atomic, Bug, Config, Plugin};
use proptest::prelude::*;

/// A step of a random program (mirrors `proptest_lockstep`).
#[derive(Clone, Copy, Debug)]
enum Step {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
    Cas(usize, i64, i64),
    Fence,
}

type Program = Vec<Vec<(Step, MemOrd)>>;

fn ord_strategy() -> impl Strategy<Value = MemOrd> {
    prop_oneof![
        Just(Relaxed),
        Just(Acquire),
        Just(Release),
        Just(AcqRel),
        Just(SeqCst),
    ]
}

fn step_strategy(locs: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..locs).prop_map(Step::Load),
        (0..locs, 1..6i64).prop_map(|(l, v)| Step::Store(l, v)),
        (0..locs, 1..3i64).prop_map(|(l, v)| Step::FetchAdd(l, v)),
        (0..locs, 0..6i64, 1..6i64).prop_map(|(l, e, n)| Step::Cas(l, e, n)),
        Just(Step::Fence),
    ]
}

fn program_strategy(threads: usize, steps: usize, locs: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop::collection::vec((step_strategy(locs), ord_strategy()), 1..=steps),
        1..=threads,
    )
}

fn legal_ord(step: Step, ord: MemOrd) -> MemOrd {
    match step {
        Step::Load(_) => match ord {
            Release | AcqRel => Acquire,
            o => o,
        },
        Step::Store(..) => match ord {
            Acquire | AcqRel => Release,
            o => o,
        },
        _ => ord,
    }
}

fn interp(steps: &[(Step, MemOrd)], cells: &[Atomic<i64>]) {
    for &(step, ord) in steps {
        let ord = legal_ord(step, ord);
        match step {
            Step::Load(l) => {
                cells[l].load(ord);
            }
            Step::Store(l, v) => cells[l].store(v, ord),
            Step::FetchAdd(l, v) => {
                cells[l].fetch_add(v, ord);
            }
            Step::Cas(l, e, n) => {
                let fail = ord.weaken_load().unwrap_or(Relaxed);
                let _ = cells[l].compare_exchange(e, n, ord, fail);
            }
            Step::Fence => mc::fence(ord),
        }
    }
}

fn modeled_closure(prog: Arc<Program>, locs: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let cells: Vec<Atomic<i64>> = (0..locs).map(|_| Atomic::new(0)).collect();
        let mut handles = Vec::new();
        for steps in prog.iter().skip(1) {
            let steps = steps.clone();
            let cells = cells.clone();
            handles.push(mc::thread::spawn(move || {
                interp(&steps, &cells);
            }));
        }
        interp(&prog[0], &cells);
        for h in handles {
            h.join();
        }
    }
}

/// Records the rf signature of every feasible execution, in the order the
/// explorer produced them — a fingerprint of the entire DFS trajectory.
struct SigLog(Arc<Mutex<Vec<u64>>>);

impl Plugin for SigLog {
    fn name(&self) -> &'static str {
        "siglog"
    }
    fn check(&mut self, trace: &Trace) -> Vec<Bug> {
        self.0.lock().unwrap().push(relations::rf_signature(trace));
        Vec::new()
    }
}

/// The watchdog-free fiber host (the original fiber fast path).
fn fiber_config() -> Config {
    Config {
        max_executions: 300_000,
        hang_timeout: None,
        ..Config::default()
    }
}

/// The *default*-shaped fiber host: watchdog on, stall detection on the
/// monitor thread. On targets without watchdog preemption this resolves
/// to the pool — the equivalence assertions hold trivially there.
fn fiber_watchdog_config() -> Config {
    Config {
        hang_timeout: Some(std::time::Duration::from_secs(30)),
        ..fiber_config()
    }
}

/// The OS-thread reference host: `fiber_hosting: false` is the explicit
/// host switch (a configured watchdog no longer implies the pool).
fn os_thread_config() -> Config {
    Config {
        fiber_hosting: false,
        hang_timeout: Some(std::time::Duration::from_secs(30)),
        ..fiber_config()
    }
}

/// Explore `prog` under `config` and return the deterministic face of the
/// result: the counters plus the per-execution signature sequence.
#[allow(clippy::type_complexity)]
fn run(
    config: Config,
    prog: Arc<Program>,
) -> ((u64, u64, u64, u64, u64, u64), Vec<String>, Vec<u64>) {
    let sigs = Arc::new(Mutex::new(Vec::new()));
    let stats = mc::explore_with_plugins(
        config,
        vec![Box::new(SigLog(Arc::clone(&sigs)))],
        modeled_closure(prog, 2),
    );
    let bugs: Vec<String> = stats.bugs.iter().map(|b| b.bug.to_string()).collect();
    let sigs = Arc::try_unwrap(sigs).unwrap().into_inner().unwrap();
    (
        (
            stats.executions,
            stats.feasible,
            stats.diverged,
            stats.sleep_pruned,
            stats.executions_pruned,
            stats.peak_depth,
        ),
        bugs,
        sigs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random programs: all three hosts — watchdog-free fibers,
    /// watchdog-on fibers (the `Config::default` shape), and the
    /// OS-thread pool — walk the identical DFS.
    #[test]
    fn fiber_and_os_hosting_explore_identically(prog in program_strategy(3, 3, 2)) {
        let prog = Arc::new(prog);
        let fib = run(fiber_config(), Arc::clone(&prog));
        let wd = run(fiber_watchdog_config(), Arc::clone(&prog));
        let os = run(os_thread_config(), prog);
        prop_assert_eq!(&fib, &os);
        prop_assert_eq!(&wd, &os);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Two workers: each shard explorer hosts its own fibers; the merged
    /// result must still match the OS-thread host at the same worker
    /// count (exhaustive runs are worker-count independent, so the
    /// per-worker signature interleaving is compared as a multiset).
    #[test]
    fn fiber_hosting_composes_with_shard_workers(prog in program_strategy(3, 3, 2)) {
        let prog = Arc::new(prog);
        let two = |base: Config| Config { workers: 2, ..base };
        let (fstats, fbugs, mut fsigs) = run(two(fiber_config()), Arc::clone(&prog));
        let (ostats, obugs, mut osigs) = run(two(os_thread_config()), prog);
        fsigs.sort_unstable();
        osigs.sort_unstable();
        prop_assert_eq!((fstats, fbugs, fsigs), (ostats, obugs, osigs));
    }
}

/// Smallest possible fiber exploration: one modeled thread, no spawns —
/// host→main switch, self-scheduling, finish, exit back to the host.
#[test]
fn a_single_fiber_round_trip() {
    let stats = mc::explore(fiber_config(), || {
        let a = Atomic::new(0i64);
        a.store(1, Relaxed);
        mc::mc_assert!(a.load(Relaxed) == 1);
    });
    assert!(!stats.buggy(), "{:?}", stats.bugs);
    assert_eq!(stats.feasible, 1);
}

/// Single fiber plus the DieMarker abort path (spin divergence, no
/// spawns): unwinding on a fiber stack, then exiting to the host.
#[test]
fn a_single_fiber_die_marker_unwind() {
    let stats = mc::explore(
        Config {
            max_spins: 3,
            ..fiber_config()
        },
        || {
            let a = Atomic::new(0i64);
            while a.load(Relaxed) == 0 {
                mc::spin_loop();
            }
        },
    );
    assert!(stats.diverged > 0, "{}", stats.summary());
}

/// Minimal two-fiber interaction: one spawn, one store, one join.
#[test]
fn a_two_fiber_spawn_join() {
    let stats = mc::explore(fiber_config(), || {
        let a = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            a.store(1, Relaxed);
        });
        t.join();
        mc::mc_assert!(a.load(Relaxed) == 1);
    });
    assert!(!stats.buggy(), "{:?}", stats.bugs);
    assert!(stats.feasible > 0);
}

/// A panic in a *spawned* modeled thread unwinds through a fiber root;
/// both hosts must report the same `UserPanic` and keep the harness
/// reusable for the rest of the exploration.
#[test]
fn user_panic_in_child_reported_identically() {
    let body = || {
        let flag = Atomic::new(0i32);
        let t = mc::thread::spawn(move || {
            if flag.load(Acquire) == 0 {
                panic!("child died");
            }
            flag.store(2, Release);
        });
        flag.store(1, Release);
        t.join();
    };
    let fib = mc::explore(
        Config {
            stop_on_first_bug: false,
            ..fiber_config()
        },
        body,
    );
    let os = mc::explore(
        Config {
            stop_on_first_bug: false,
            ..os_thread_config()
        },
        body,
    );
    let render = |s: &mc::Stats| {
        let mut b: Vec<String> = s.bugs.iter().map(|f| f.bug.to_string()).collect();
        b.sort();
        (s.executions, s.feasible, b)
    };
    assert!(fib.buggy(), "panic not detected under fibers");
    assert_eq!(render(&fib), render(&os));
}

/// A thread that panics right after spawning leaves its child *unstarted*
/// at abort time: the child picks up the `Die` only by starting, running
/// user code to its first visible op, and unwinding there. The child's
/// never-consumed reply must not linger after its death — a stale reply
/// for a dead thread once steered the fiber host into a dead stack.
#[test]
fn abort_with_unstarted_child_drains_cleanly() {
    let body = || {
        let a = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            a.store(1, Relaxed);
        });
        let _ = t.tid();
        panic!("parent died with an unstarted child");
    };
    let fib = mc::explore(fiber_config(), body);
    let os = mc::explore(os_thread_config(), body);
    assert!(fib.buggy(), "parent panic not detected under fibers");
    let render = |s: &mc::Stats| {
        let mut b: Vec<String> = s.bugs.iter().map(|f| f.bug.to_string()).collect();
        b.sort();
        (s.executions, b)
    };
    assert_eq!(render(&fib), render(&os));
}

/// Spin-bound divergence: the `DieMarker` abort path unwinds every live
/// fiber in turn. The run must terminate with the same counters as the
/// OS-thread host (where each worker unwinds on its own thread).
#[test]
fn divergence_abort_drains_fibers() {
    let body = || {
        let flag = Atomic::new(0i32);
        let t = mc::thread::spawn(move || {
            while flag.load(Acquire) == 0 {
                mc::spin_loop();
            }
        });
        flag.store(1, Release);
        t.join();
    };
    let cap = |base: Config| Config {
        max_spins: 3,
        ..base
    };
    let fib = mc::explore(cap(fiber_config()), body);
    let os = mc::explore(cap(os_thread_config()), body);
    assert!(!fib.buggy(), "{:?}", fib.bugs);
    assert!(fib.diverged > 0, "spin bound never hit: {}", fib.summary());
    assert_eq!(
        (fib.executions, fib.feasible, fib.diverged, fib.peak_depth),
        (os.executions, os.feasible, os.diverged, os.peak_depth),
    );
}

/// Hang injection: one rf-branch of the program wedges forever. Under
/// the OS-thread host the explorer's watchdog poll detects the stall and
/// leaks the wedged worker; under the fiber host the monitor thread
/// preempts the wedged fiber with a signal and the explorer drains in
/// place. Both must report the *same* `InternalHang` rendering (built
/// from the configured limit and the deterministic trace, never from
/// measured time) and keep exploring the remaining branches with
/// identical counters.
#[test]
fn injected_hang_reported_identically_and_exploration_continues() {
    let body = || {
        let flag = Atomic::new(0i32);
        let t = mc::thread::spawn(move || {
            flag.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            // Wedge: no visible op, no progress hint — only the watchdog
            // can end this branch. Parking (rather than spinning) keeps
            // the leaked OS-thread-host worker from burning CPU for the
            // rest of the test process.
            loop {
                std::thread::park();
            }
        }
        t.join();
    };
    let short = |base: Config| Config {
        hang_timeout: Some(std::time::Duration::from_millis(300)),
        stop_on_first_bug: false,
        ..base
    };
    let fib = mc::explore(short(fiber_watchdog_config()), body);
    let os = mc::explore(short(os_thread_config()), body);
    assert!(fib.buggy(), "injected hang not detected under fibers");
    assert!(
        fib.bugs
            .iter()
            .any(|f| f.bug.to_string().contains("internal hang")),
        "{:?}",
        fib.bugs
    );
    // Exploration continued past the wedged branch: the read-from-init
    // branch completed as a feasible execution too.
    assert!(fib.executions > 1, "{}", fib.summary());
    assert!(fib.feasible > 0, "{}", fib.summary());
    let render = |s: &mc::Stats| {
        let mut b: Vec<String> = s.bugs.iter().map(|f| f.bug.to_string()).collect();
        b.sort();
        (s.executions, s.feasible, s.diverged, b)
    };
    assert_eq!(render(&fib), render(&os));
}

/// Deeper thread fan-out than the default probe programs: exercises fiber
/// stack pooling and reuse across many executions in one exploration.
#[test]
fn many_threads_on_pooled_stacks() {
    let body = || {
        let c = Atomic::new(0i64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                mc::thread::spawn(move || {
                    c.fetch_add(1, AcqRel);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        mc::mc_assert!(c.load(Acquire) == 4);
    };
    let fib = mc::explore(fiber_config(), body);
    let os = mc::explore(os_thread_config(), body);
    assert!(!fib.buggy(), "{:?}", fib.bugs);
    assert_eq!(
        (fib.executions, fib.feasible, &fib.rf_classes),
        (os.executions, os.feasible, &os.rf_classes),
    );
}
