//! Differential soundness tests for reads-from equivalence pruning
//! (`Config::rf_prune`): the pruned exploration must report a
//! byte-identical bug set and an identical set of rf equivalence classes
//! against the unpruned one — at workers 1 *and* 2 — while exploring
//! strictly fewer executions on read-heavy workloads. The property-based
//! half repeats the comparison on random small programs and additionally
//! checks that no observable read-value outcome is lost or invented.
//!
//! Executions counts are the one thing pruning is *allowed* to change;
//! everything the checker promises the user — bugs, rf classes, outcome
//! sets — must be invariant. See `ARCHITECTURE.md`, *Exploration identity
//! and rf-equivalence pruning*.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use cdsspec_mc as mc;
use mc::MemOrd::{self, *};
use mc::{mc_assert, Atomic, Config};
use proptest::prelude::*;

/// Base config for the differentials: collect every bug (first-bug stops
/// would make the comparison vacuous) and cross-check the axioms.
fn cfg(rf_prune: bool, workers: usize) -> Config {
    Config {
        rf_prune,
        workers,
        stop_on_first_bug: false,
        ..Config::validating()
    }
}

/// Sorted, deduplicated bug messages — the byte-identity comparand (the
/// same rendering the harness reports and the campaign cache hashes).
fn bug_set(stats: &mc::Stats) -> Vec<String> {
    let mut msgs: Vec<String> = stats.bugs.iter().map(|b| b.bug.to_string()).collect();
    msgs.sort();
    msgs.dedup();
    msgs
}

/// Run `test` pruned and unpruned at `workers` and require identical bug
/// sets and rf-class sets. Returns (pruned, unpruned) stats for extra
/// workload-specific assertions.
fn differential(
    workers: usize,
    test: impl Fn() + Send + Sync + Clone + 'static,
) -> (mc::Stats, mc::Stats) {
    let pruned = mc::explore(cfg(true, workers), test.clone());
    let unpruned = mc::explore(cfg(false, workers), test);
    assert_eq!(
        bug_set(&pruned),
        bug_set(&unpruned),
        "pruning changed the bug set at {workers} worker(s)\n pruned: {}\n unpruned: {}",
        pruned.summary(),
        unpruned.summary()
    );
    assert_eq!(
        pruned.rf_classes,
        unpruned.rf_classes,
        "pruning changed the rf classes at {workers} worker(s)\n pruned: {}\n unpruned: {}",
        pruned.summary(),
        unpruned.summary()
    );
    assert!(
        pruned.executions <= unpruned.executions,
        "pruning increased executions at {workers} worker(s): {} vs {}",
        pruned.summary(),
        unpruned.summary()
    );
    (pruned, unpruned)
}

/// Read-heavy, bug-free workload: one writer racing two relaxed readers
/// per location. This is the shape the wake-floor rule targets, so
/// pruning must engage (strictly fewer executions).
fn read_heavy() {
    let x = Atomic::new(0i64);
    let y = Atomic::new(0i64);
    let t1 = mc::thread::spawn(move || {
        x.store(1, Relaxed);
        y.store(1, Relaxed);
    });
    let _ = x.load(Relaxed);
    let _ = y.load(Relaxed);
    let _ = x.load(Relaxed);
    t1.join();
}

/// Relaxed message-passing with two independent assertion bugs: each
/// fires only on some rf assignments, so losing any class would lose a
/// bug message.
fn two_seeded_bugs() {
    let x = Atomic::new(0i64);
    let y = Atomic::new(0i64);
    let t = mc::thread::spawn(move || {
        x.store(1, Relaxed);
        y.store(1, Relaxed);
    });
    let ylate = y.load(Relaxed);
    let xlate = x.load(Relaxed);
    if ylate == 1 {
        mc_assert!(xlate == 1);
    }
    if xlate == 1 {
        mc_assert!(ylate == 1);
    }
    t.join();
}

/// CAS contention: exercises the failed-CAS dependence downgrade and the
/// RMW failure-candidate floor.
fn cas_contention() {
    let x = Atomic::new(0i64);
    let t1 = mc::thread::spawn(move || {
        let _ = x.compare_exchange(0, 1, AcqRel, Relaxed);
    });
    let t2 = mc::thread::spawn(move || {
        let _ = x.compare_exchange(0, 2, AcqRel, Relaxed);
    });
    let _ = x.load(Relaxed);
    let _ = x.load(Relaxed);
    t1.join();
    t2.join();
}

#[test]
fn read_heavy_pruned_run_is_identical_and_smaller() {
    for workers in [1, 2] {
        let (pruned, unpruned) = differential(workers, read_heavy);
        assert!(!pruned.buggy());
        assert!(
            pruned.executions < unpruned.executions,
            "pruning did not engage on a read-heavy workload at {workers} worker(s): {} vs {}",
            pruned.summary(),
            unpruned.summary()
        );
    }
}

#[test]
fn seeded_bug_set_survives_pruning_at_workers_1_and_2() {
    for workers in [1, 2] {
        let (pruned, _) = differential(workers, two_seeded_bugs);
        let bugs = bug_set(&pruned);
        assert_eq!(bugs.len(), 2, "both seeded bugs must be found: {bugs:?}");
        assert!(bugs.iter().any(|m| m.contains("xlate == 1")), "{bugs:?}");
        assert!(bugs.iter().any(|m| m.contains("ylate == 1")), "{bugs:?}");
    }
}

#[test]
fn cas_workload_is_identical_under_pruning() {
    for workers in [1, 2] {
        let (pruned, _) = differential(workers, cas_contention);
        assert!(!pruned.buggy());
        assert!(!pruned.rf_classes.is_empty());
    }
}

/// Pruned exploration is deterministic across worker counts: the same
/// executions, pruned-branch count, and rf classes at 1 and 2 workers
/// (the guarantee that lets sharded and campaign-dispatched runs prune
/// identically).
#[test]
fn pruned_counters_are_worker_count_independent() {
    let w1 = mc::explore(cfg(true, 1), read_heavy);
    let w2 = mc::explore(cfg(true, 2), read_heavy);
    assert_eq!(
        w1.executions,
        w2.executions,
        "{} / {}",
        w1.summary(),
        w2.summary()
    );
    assert_eq!(w1.feasible, w2.feasible);
    assert_eq!(w1.executions_pruned, w2.executions_pruned);
    assert_eq!(w1.rf_classes, w2.rf_classes);
}

/// `executions_pruned` (like every other counter) partitions exactly
/// across a checkpoint cut: pruned branches are counted only at fresh
/// decision points, never during replay, so cut + resumed == full.
#[test]
fn pruned_counter_partitions_across_checkpoint() {
    let base = cfg(true, 1);
    let full = mc::explore(base.clone(), read_heavy);
    assert!(full.executions_pruned > 0, "{}", full.summary());
    let cut = mc::explore(
        Config {
            max_executions: 2,
            ..base.clone()
        },
        read_heavy,
    );
    assert_eq!(cut.stop, mc::StopReason::ExecutionCap);
    let ckpt = cut.checkpoint().expect("capped run leaves a frontier");
    let resumed = mc::explore_from(base, ckpt, read_heavy);
    assert_eq!(resumed.executions, full.executions);
    assert_eq!(resumed.executions_pruned, full.executions_pruned);
    assert_eq!(resumed.rf_classes, full.rf_classes);
}

// ---------------------------------------------------------------------
// Property-based differential on random small programs.
// ---------------------------------------------------------------------

/// A step of a random program (mirrors the generator the axiom proptests
/// use, compact enough to duplicate here).
#[derive(Clone, Copy, Debug)]
enum Step {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
    Cas(usize, i64, i64),
}

type Program = Vec<Vec<(Step, MemOrd)>>;

fn ord_strategy() -> impl Strategy<Value = MemOrd> {
    prop_oneof![
        Just(Relaxed),
        Just(Acquire),
        Just(Release),
        Just(AcqRel),
        Just(SeqCst),
    ]
}

fn step_strategy(locs: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..locs).prop_map(Step::Load),
        (0..locs, 1..4i64).prop_map(|(l, v)| Step::Store(l, v)),
        (0..locs, 1..3i64).prop_map(|(l, v)| Step::FetchAdd(l, v)),
        (0..locs, 0..4i64, 1..4i64).prop_map(|(l, e, n)| Step::Cas(l, e, n)),
    ]
}

fn program_strategy(threads: usize, steps: usize, locs: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop::collection::vec((step_strategy(locs), ord_strategy()), 1..=steps),
        2..=threads,
    )
}

/// Sanitize orderings to what C11 allows per operation kind.
fn legal_ord(step: Step, ord: MemOrd) -> MemOrd {
    match step {
        Step::Load(_) => match ord {
            Release | AcqRel => Acquire,
            o => o,
        },
        Step::Store(..) => match ord {
            Acquire | AcqRel => Release,
            o => o,
        },
        _ => ord,
    }
}

fn interp(steps: &[(Step, MemOrd)], cells: &[Atomic<i64>]) -> Vec<i64> {
    let mut reads = Vec::new();
    for &(step, ord) in steps {
        let ord = legal_ord(step, ord);
        match step {
            Step::Load(l) => reads.push(cells[l].load(ord)),
            Step::Store(l, v) => cells[l].store(v, ord),
            Step::FetchAdd(l, v) => reads.push(cells[l].fetch_add(v, ord)),
            Step::Cas(l, e, n) => {
                let fail = ord.weaken_load().unwrap_or(Relaxed);
                reads.push(match cells[l].compare_exchange(e, n, ord, fail) {
                    Ok(old) => old,
                    Err(seen) => seen,
                });
            }
        }
    }
    reads
}

/// Explore `prog` and collect the set of per-thread read-value vectors
/// over all feasible executions, plus the stats.
fn run_prog(prog: &Program, locs: usize, rf_prune: bool) -> (BTreeSet<Vec<i64>>, mc::Stats) {
    let prog = Arc::new(prog.clone());
    let outcomes: Arc<Mutex<BTreeSet<Vec<i64>>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let config = Config {
        max_executions: 300_000,
        rf_prune,
        ..Config::validating()
    };
    let stats = mc::explore(config, move || {
        let cells: Vec<Atomic<i64>> = (0..locs).map(|_| Atomic::new(0)).collect();
        type ThreadReads = Vec<(usize, Vec<i64>)>;
        let reads: Arc<Mutex<ThreadReads>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (ti, steps) in prog.iter().enumerate().skip(1) {
            let steps = steps.clone();
            let cells = cells.clone();
            let reads = Arc::clone(&reads);
            handles.push(mc::thread::spawn(move || {
                let r = interp(&steps, &cells);
                reads.lock().unwrap().push((ti, r));
            }));
        }
        let r0 = interp(&prog[0], &cells);
        reads.lock().unwrap().push((0, r0));
        for h in handles {
            h.join();
        }
        let mut all = reads.lock().unwrap().clone();
        all.sort_by_key(|(ti, _)| *ti);
        let flat: Vec<i64> = all.into_iter().flat_map(|(_, v)| v).collect();
        oc.lock().unwrap().insert(flat);
    });
    let set = outcomes.lock().unwrap().clone();
    (set, stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// On random programs, pruning preserves the observable outcome set,
    /// the rf-class set, and bug-freeness, while never exploring more.
    #[test]
    fn pruning_preserves_outcomes_on_random_programs(prog in program_strategy(3, 3, 2)) {
        let (with, s1) = run_prog(&prog, 2, true);
        let (without, s2) = run_prog(&prog, 2, false);
        prop_assert!(!s1.truncated() && !s2.truncated(), "{} / {}", s1.summary(), s2.summary());
        prop_assert_eq!(
            &with, &without,
            "pruning changed outcomes\n only-pruned: {:?}\n only-unpruned: {:?}",
            with.difference(&without).collect::<Vec<_>>(),
            without.difference(&with).collect::<Vec<_>>()
        );
        prop_assert_eq!(&s1.rf_classes, &s2.rf_classes, "rf classes diverged");
        prop_assert_eq!(bug_set(&s1), bug_set(&s2), "bug sets diverged");
        // No execution-count monotonicity claim here: the readers-first
        // ordering heuristic perturbs sleep-set effectiveness, and on
        // adversarial micro-programs the pruned tree can be a few leaves
        // larger. The fixed read-heavy differentials above pin the
        // strict reduction where the rules are designed to bite.
    }
}
