//! Cross-check: the parallel frontier-sharded engine must produce the
//! same merged report as the sequential engine.
//!
//! The choice tree is deterministic, so any shard partition visits the
//! same leaves with the same per-leaf outcomes; these tests enforce the
//! consequences end-to-end:
//!
//! * **Exhausted identity**: for runs that explore the whole tree, every
//!   counter and the deduplicated bug set are identical at any worker
//!   count.
//! * **Truncation soundness**: a run cut by the execution cap or the
//!   deadline leaves frontier shards that resume to *exactly* the
//!   sequential total — no leaf lost, none duplicated — at any worker
//!   count and any cut point (the partition invariant, extended from
//!   PR 1's single checkpoint script to shard sets).
//!
//! Plus a property test: any k-way resume of any cap-induced shard split
//! reproduces the sequential totals, including when the resumed half is
//! itself interrupted and resumed again.

use std::collections::BTreeSet;

use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{mc_assert, Atomic, Config, Stats};
use proptest::prelude::*;

/// Baseline: the classic sequential engine, explicitly pinned to one
/// worker so `CDSSPEC_WORKERS` (the CI parallel job) cannot change the
/// reference side of the comparison.
fn seq_config() -> Config {
    Config {
        workers: 1,
        ..Config::default()
    }
}

/// Store buffering with relaxed orderings: a small tree with real
/// reads-from branching.
fn sb_relaxed() {
    let x = Atomic::new(0i64);
    let y = Atomic::new(0i64);
    let t = mc::thread::spawn(move || {
        x.store(1, Relaxed);
        let _ = y.load(Relaxed);
    });
    y.store(1, Relaxed);
    let _ = x.load(Relaxed);
    t.join();
}

/// Message passing with an interleaving-sensitive spin: a deeper tree.
fn mp_release_acquire() {
    let data = Atomic::new(0i64);
    let flag = Atomic::new(0i64);
    let t = mc::thread::spawn(move || {
        data.store(42, Relaxed);
        flag.store(1, Release);
    });
    if flag.load(Acquire) == 1 {
        mc_assert!(data.load(Relaxed) == 42);
    }
    t.join();
}

/// Three threads over two locations: a wider tree (hundreds of leaves).
fn three_thread_mix() {
    let x = Atomic::new(0i64);
    let y = Atomic::new(0i64);
    let t1 = mc::thread::spawn(move || {
        x.store(1, Relaxed);
        let _ = y.fetch_add(1, AcqRel);
    });
    let t2 = mc::thread::spawn(move || {
        y.store(5, Release);
        let _ = x.load(Acquire);
    });
    let _ = x.fetch_add(2, SeqCst);
    t1.join();
    t2.join();
}

/// A buggy workload (racy assertion) for bug-set comparisons.
fn buggy_mp_relaxed() {
    let data = Atomic::new(0i64);
    let flag = Atomic::new(0i64);
    let t = mc::thread::spawn(move || {
        data.store(42, Relaxed);
        flag.store(1, Relaxed); // missing release: assertion can fail
    });
    if flag.load(Relaxed) == 1 {
        mc_assert!(data.load(Relaxed) == 42);
    }
    t.join();
}

const WORKLOADS: &[(&str, fn())] = &[
    ("sb_relaxed", sb_relaxed),
    ("mp_release_acquire", mp_release_acquire),
    ("three_thread_mix", three_thread_mix),
];

fn bug_set(stats: &Stats) -> BTreeSet<String> {
    stats.bugs.iter().map(|b| b.bug.to_string()).collect()
}

/// Digit-for-digit comparison of everything except wall-clock.
fn assert_identical(name: &str, workers: usize, seq: &Stats, par: &Stats) {
    assert_eq!(
        seq.executions, par.executions,
        "{name} w={workers}: executions"
    );
    assert_eq!(seq.feasible, par.feasible, "{name} w={workers}: feasible");
    assert_eq!(seq.diverged, par.diverged, "{name} w={workers}: diverged");
    assert_eq!(
        seq.sleep_pruned, par.sleep_pruned,
        "{name} w={workers}: sleep_pruned"
    );
    assert_eq!(seq.stop, par.stop, "{name} w={workers}: stop reason");
    assert_eq!(
        bug_set(seq),
        bug_set(par),
        "{name} w={workers}: deduplicated bug set"
    );
    assert_eq!(
        seq.frontier.is_some(),
        par.frontier.is_some(),
        "{name} w={workers}: frontier presence"
    );
}

#[test]
fn exhausted_runs_identical_at_any_worker_count() {
    for &(name, test) in WORKLOADS {
        let seq = mc::explore(seq_config(), test);
        assert_eq!(seq.stop, mc::StopReason::Exhausted, "{name}: baseline");
        for workers in [2, 3, 4] {
            let par = mc::explore(
                Config {
                    workers,
                    ..seq_config()
                },
                test,
            );
            assert_identical(name, workers, &seq, &par);
        }
    }
}

#[test]
fn steal_batch_does_not_change_results() {
    let seq = mc::explore(seq_config(), three_thread_mix);
    for steal_batch in [1, 2, 8] {
        let par = mc::explore(
            Config {
                workers: 4,
                steal_batch,
                ..seq_config()
            },
            three_thread_mix,
        );
        assert_identical("three_thread_mix", 4, &seq, &par);
    }
}

#[test]
fn buggy_run_bug_sets_identical_when_enumerating_all() {
    // stop_on_first_bug would make the winner timing-dependent in the
    // parallel engine; full enumeration makes the bug *set* an invariant.
    let full = Config {
        stop_on_first_bug: false,
        ..seq_config()
    };
    let seq = mc::explore(full.clone(), buggy_mp_relaxed);
    assert!(seq.buggy(), "workload must actually be buggy");
    for workers in [2, 4] {
        let par = mc::explore(
            Config {
                workers,
                ..full.clone()
            },
            buggy_mp_relaxed,
        );
        assert_identical("buggy_mp_relaxed", workers, &seq, &par);
    }
}

#[test]
fn buggy_run_with_stop_on_first_bug_agrees_on_bugginess() {
    let seq = mc::explore(seq_config(), buggy_mp_relaxed);
    assert!(seq.buggy());
    let par = mc::explore(
        Config {
            workers: 4,
            ..seq_config()
        },
        buggy_mp_relaxed,
    );
    // Which buggy leaf is reached first is timing-dependent, but whether
    // any exists is not.
    assert!(par.buggy(), "parallel run must find the bug too");
    assert_eq!(par.stop, mc::StopReason::FirstBug);
    // Attribution: a parallel-found bug names a valid worker index.
    assert!(par.bugs.iter().all(|b| b.worker < 4));
}

/// Interrupt a parallel run with the execution cap, then resume its shard
/// frontier to completion: totals must land exactly on the sequential
/// count.
#[test]
fn capped_parallel_run_resumes_to_exact_total() {
    let seq = mc::explore(seq_config(), three_thread_mix);
    for workers in [2, 4] {
        for cap in [1u64, 5, 17, 50] {
            let cut = mc::explore(
                Config {
                    workers,
                    max_executions: cap,
                    ..seq_config()
                },
                three_thread_mix,
            );
            if cut.stop == mc::StopReason::Exhausted {
                assert_eq!(cut.executions, seq.executions);
                continue;
            }
            assert_eq!(cut.stop, mc::StopReason::ExecutionCap);
            assert!(!cut.shard_frontiers.is_empty(), "cap implies a frontier");
            let ck = cut.checkpoint().expect("interrupted run has a checkpoint");
            // Resume sequentially: prior counts carry, so the resumed
            // total is directly comparable to the uninterrupted run.
            let resumed = mc::explore_from(seq_config(), ck, three_thread_mix);
            assert_eq!(resumed.stop, mc::StopReason::Exhausted);
            assert_eq!(
                resumed.executions, seq.executions,
                "workers={workers} cap={cap}: shards must partition the tree"
            );
            assert_eq!(resumed.feasible, seq.feasible);
            assert_eq!(resumed.diverged, seq.diverged);
            assert_eq!(resumed.sleep_pruned, seq.sleep_pruned);
        }
    }
}

/// Same partition invariant when the *resume* side runs in parallel.
#[test]
fn sequential_cut_resumed_in_parallel_is_exact() {
    let seq = mc::explore(seq_config(), three_thread_mix);
    for cap in [3u64, 20] {
        let cut = mc::explore(
            Config {
                max_executions: cap,
                ..seq_config()
            },
            three_thread_mix,
        );
        assert_eq!(cut.stop, mc::StopReason::ExecutionCap);
        let ck = cut.checkpoint().unwrap();
        let resumed = mc::explore_from(
            Config {
                workers: 4,
                ..seq_config()
            },
            ck,
            three_thread_mix,
        );
        assert_eq!(resumed.stop, mc::StopReason::Exhausted);
        assert_eq!(resumed.executions, seq.executions, "cap={cap}");
        assert_eq!(resumed.feasible, seq.feasible);
    }
}

/// A zero deadline truncates immediately (after at most one execution per
/// worker); resuming the abandoned shards must still reach the exact
/// sequential totals.
#[test]
fn deadline_truncated_parallel_run_resumes_to_exact_total() {
    let seq = mc::explore(seq_config(), three_thread_mix);
    for workers in [1, 2, 4] {
        let cut = mc::explore(
            Config {
                workers,
                time_budget: Some(std::time::Duration::ZERO),
                ..seq_config()
            },
            three_thread_mix,
        );
        if cut.stop == mc::StopReason::Exhausted {
            continue; // tree finished inside the first poll window
        }
        assert_eq!(cut.stop, mc::StopReason::Deadline, "workers={workers}");
        let ck = cut.checkpoint().expect("deadline leaves a frontier");
        let resumed = mc::explore_from(seq_config(), ck, three_thread_mix);
        assert_eq!(resumed.stop, mc::StopReason::Exhausted);
        assert_eq!(resumed.executions, seq.executions, "workers={workers}");
        assert_eq!(resumed.feasible, seq.feasible);
        assert_eq!(resumed.diverged, seq.diverged);
        assert_eq!(resumed.sleep_pruned, seq.sleep_pruned);
    }
}

/// A parallel checkpoint serialized to text (v2: one line per shard) and
/// parsed back must resume to the same exact totals.
#[test]
fn parallel_checkpoint_round_trips_through_text() {
    let seq = mc::explore(seq_config(), three_thread_mix);
    let cut = mc::explore(
        Config {
            workers: 4,
            max_executions: 9,
            ..seq_config()
        },
        three_thread_mix,
    );
    if cut.stop == mc::StopReason::Exhausted {
        return; // tiny machine finished under the cap; nothing to check
    }
    let text = cut.checkpoint().unwrap().to_text();
    let back = mc::Checkpoint::from_text(&text).expect("parses");
    assert_eq!(
        back.stats.shard_frontiers, cut.shard_frontiers,
        "shards must survive the text round trip"
    );
    let resumed = mc::explore_from(seq_config(), back, three_thread_mix);
    assert_eq!(resumed.executions, seq.executions);
    assert_eq!(resumed.feasible, seq.feasible);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any cut point, any worker count on either side of the cut, and
    /// optionally a *second* interruption of the resumed half: the final
    /// totals always equal the uninterrupted sequential run's.
    #[test]
    fn any_shard_split_resumes_exactly(
        cap in 1u64..60,
        cut_workers in 1usize..5,
        resume_workers in 1usize..5,
        second_cap in prop::option::of(1u64..30),
    ) {
        let seq = mc::explore(seq_config(), three_thread_mix);
        let cut = mc::explore(
            Config { workers: cut_workers, max_executions: cap, ..seq_config() },
            three_thread_mix,
        );
        prop_assert!(cut.executions >= cap.min(seq.executions));
        let Some(ck) = cut.checkpoint() else {
            // Exhausted under the cap: the counters must already agree.
            prop_assert_eq!(cut.executions, seq.executions);
            return;
        };

        // Optionally interrupt the resumed half too, then finish it.
        let (ck, resume_base) = match second_cap {
            Some(cap2) => {
                let mid = mc::explore_from(
                    Config { workers: resume_workers, max_executions: cap2, ..seq_config() },
                    ck,
                    three_thread_mix,
                );
                match mid.checkpoint() {
                    Some(ck2) => (ck2, mid),
                    None => {
                        prop_assert_eq!(mid.executions, seq.executions);
                        return;
                    }
                }
            }
            None => {
                let base = cut.clone();
                (ck, base)
            }
        };
        let _ = resume_base;

        let fin = mc::explore_from(
            Config { workers: resume_workers, ..seq_config() },
            ck,
            three_thread_mix,
        );
        prop_assert_eq!(fin.stop, mc::StopReason::Exhausted);
        prop_assert_eq!(fin.executions, seq.executions);
        prop_assert_eq!(fin.feasible, seq.feasible);
        prop_assert_eq!(fin.diverged, seq.diverged);
        prop_assert_eq!(fin.sleep_pruned, seq.sleep_pruned);
        prop_assert_eq!(bug_set(&fin), bug_set(&seq));
    }

    /// Bug sets survive sharded full enumeration at any worker count.
    #[test]
    fn bug_sets_stable_under_any_split(workers in 1usize..5, steal_batch in 1usize..4) {
        let full = Config { stop_on_first_bug: false, ..seq_config() };
        let seq = mc::explore(full.clone(), buggy_mp_relaxed);
        let par = mc::explore(
            Config { workers, steal_batch, ..full.clone() },
            buggy_mp_relaxed,
        );
        prop_assert_eq!(seq.executions, par.executions);
        prop_assert_eq!(bug_set(&seq), bug_set(&par));
    }
}
