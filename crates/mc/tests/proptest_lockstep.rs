//! Lockstep property tests for the incremental trace indexes.
//!
//! The SoA [`Trace`] maintains its derived relations — per-thread event
//! ranges, per-location rf/mo chains, the running rf-signature state, and
//! (when enabled) the sb∪sw adjacency delta — *as events are committed*.
//! The post-hoc derivations they replaced are kept compiled in as
//! reference implementations; these tests pin the two to each other on
//! every feasible execution of random weakly-ordered programs:
//!
//! 1. `relations::rf_signature` (O(n) fold over the incremental state)
//!    must equal `relations::posthoc::rf_signature` (full re-walk);
//! 2. the fast auditor `relations::audit` (trusts clocks and indexes)
//!    must report nothing the full oracle `relations::validate` does not
//!    — and vice versa for the checks both perform;
//! 3. with sw recording on, the committed sb∪sw delta must close to
//!    exactly the happens-before the oracle recomputes from scratch
//!    (`relations::check_sw_delta`).
//!
//! The lockstep plugin rides along a capped-then-resumed exploration and
//! a two-worker (shard-stealing) exploration too: recycled trace buffers
//! and shard-peeled replays are exactly where stale incremental state
//! would hide.

use std::sync::Arc;

use cdsspec_c11::relations;
use cdsspec_c11::Trace;
use cdsspec_mc as mc;
use mc::MemOrd::{self, *};
use mc::{Atomic, Bug, Config, Plugin};
use proptest::prelude::*;

/// A step of a random program.
#[derive(Clone, Copy, Debug)]
enum Step {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
    Cas(usize, i64, i64),
    Fence,
}

type Program = Vec<Vec<(Step, MemOrd)>>;

fn ord_strategy() -> impl Strategy<Value = MemOrd> {
    prop_oneof![
        Just(Relaxed),
        Just(Acquire),
        Just(Release),
        Just(AcqRel),
        Just(SeqCst),
    ]
}

fn step_strategy(locs: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..locs).prop_map(Step::Load),
        (0..locs, 1..6i64).prop_map(|(l, v)| Step::Store(l, v)),
        (0..locs, 1..3i64).prop_map(|(l, v)| Step::FetchAdd(l, v)),
        (0..locs, 0..6i64, 1..6i64).prop_map(|(l, e, n)| Step::Cas(l, e, n)),
        Just(Step::Fence),
    ]
}

fn program_strategy(threads: usize, steps: usize, locs: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop::collection::vec((step_strategy(locs), ord_strategy()), 1..=steps),
        1..=threads,
    )
}

/// Sanitize orderings to what C11 allows per operation kind.
fn legal_ord(step: Step, ord: MemOrd) -> MemOrd {
    match step {
        Step::Load(_) => match ord {
            Release | AcqRel => Acquire,
            o => o,
        },
        Step::Store(..) => match ord {
            Acquire | AcqRel => Release,
            o => o,
        },
        _ => ord,
    }
}

fn interp(steps: &[(Step, MemOrd)], cells: &[Atomic<i64>]) {
    for &(step, ord) in steps {
        let ord = legal_ord(step, ord);
        match step {
            Step::Load(l) => {
                cells[l].load(ord);
            }
            Step::Store(l, v) => cells[l].store(v, ord),
            Step::FetchAdd(l, v) => {
                cells[l].fetch_add(v, ord);
            }
            Step::Cas(l, e, n) => {
                let fail = ord.weaken_load().unwrap_or(Relaxed);
                let _ = cells[l].compare_exchange(e, n, ord, fail);
            }
            Step::Fence => mc::fence(ord),
        }
    }
}

fn modeled_closure(prog: Arc<Program>, locs: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let cells: Vec<Atomic<i64>> = (0..locs).map(|_| Atomic::new(0)).collect();
        let mut handles = Vec::new();
        for steps in prog.iter().skip(1) {
            let steps = steps.clone();
            let cells = cells.clone();
            handles.push(mc::thread::spawn(move || {
                interp(&steps, &cells);
            }));
        }
        interp(&prog[0], &cells);
        for h in handles {
            h.join();
        }
    }
}

/// The lockstep checker: compares incremental results against the
/// retained post-hoc derivations on every feasible trace and reports any
/// divergence as a plugin bug (so it surfaces through `stats.bugs`).
struct Lockstep;

impl Plugin for Lockstep {
    fn name(&self) -> &'static str {
        "lockstep"
    }

    fn check(&mut self, trace: &Trace) -> Vec<Bug> {
        let mut bugs = Vec::new();
        let bug = |message: String| Bug::Plugin {
            plugin: "lockstep",
            message,
        };

        let inc = relations::rf_signature(trace);
        let post = relations::posthoc::rf_signature(trace);
        if inc != post {
            bugs.push(bug(format!(
                "rf_signature diverged: incremental {inc:#x} vs post-hoc {post:#x}"
            )));
        }

        // The auditor performs every validate check except HbCycle /
        // ClockMismatch, with identical messages; on these (correct)
        // programs both must be empty — any asymmetry is a divergence.
        let mut audit: Vec<String> = relations::audit(trace)
            .iter()
            .map(|e| e.to_string())
            .collect();
        let mut oracle: Vec<String> = relations::validate(trace, true)
            .iter()
            .map(|e| e.to_string())
            .collect();
        audit.sort();
        oracle.sort();
        if audit != oracle {
            bugs.push(bug(format!(
                "audit/oracle diverged:\n  audit:  {audit:?}\n  oracle: {oracle:?}"
            )));
        }

        // `Config::validating` arms sw recording in the runtime; a false
        // flag here means that wiring broke and the delta check silently
        // stopped running — fail loudly instead.
        if !trace.record_sw {
            bugs.push(bug("sw recording off under a validating config".into()));
        } else if let Err((a, b)) = relations::check_sw_delta(trace) {
            bugs.push(bug(format!(
                "sb∪sw delta closure missed hb edge {a:?} -> {b:?}"
            )));
        }
        bugs
    }
}

fn lockstep_config() -> Config {
    Config {
        max_executions: 300_000,
        stop_on_first_bug: false,
        // Turns on clock cross-checking *and* sw-edge recording in the
        // runtime, arming the delta-closure comparison above.
        ..Config::validating()
    }
}

fn assert_clean(stats: &mc::Stats) {
    assert!(
        !stats.buggy(),
        "lockstep divergence: {:?}",
        stats
            .bugs
            .iter()
            .map(|b| format!("{}", b.bug))
            .collect::<Vec<_>>()
    );
    assert!(stats.feasible > 0, "nothing explored: {}", stats.summary());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Straight-through exploration: every feasible execution agrees.
    #[test]
    fn incremental_indexes_agree_with_posthoc(prog in program_strategy(3, 3, 2)) {
        let prog = Arc::new(prog);
        let stats = mc::explore_with_plugins(
            lockstep_config(),
            vec![Box::new(Lockstep)],
            modeled_closure(prog, 2),
        );
        assert_clean(&stats);
    }

    /// Capped-then-resumed exploration: the recycled trace buffers of the
    /// resumed run must rebuild their incremental state from scratch.
    #[test]
    fn indexes_agree_across_checkpoint_resume(prog in program_strategy(2, 3, 2), cap in 1u64..8) {
        let prog = Arc::new(prog);
        let capped = Config { max_executions: cap, ..lockstep_config() };
        let cut = mc::explore_with_plugins(
            capped,
            vec![Box::new(Lockstep)],
            modeled_closure(Arc::clone(&prog), 2),
        );
        prop_assert!(!cut.buggy(), "lockstep divergence before the cap: {:?}", cut.bugs);
        if let Some(ckpt) = cut.checkpoint() {
            let resumed = mc::explore_from_with_plugins(
                lockstep_config(),
                ckpt,
                vec![Box::new(Lockstep)],
                modeled_closure(prog, 2),
            );
            assert_clean(&resumed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Two-worker exploration: shard-peeled replays and work stealing
    /// reuse per-worker harnesses; every worker's executions must agree.
    #[test]
    fn indexes_agree_under_shard_stealing(prog in program_strategy(3, 3, 2)) {
        let prog = Arc::new(prog);
        let config = Config { workers: 2, ..lockstep_config() };
        let stats = mc::explore_factory(
            config,
            Arc::new(|| vec![Box::new(Lockstep) as Box<dyn Plugin>]),
            modeled_closure(prog, 2),
        );
        assert_clean(&stats);
    }
}
